#include "datalog/parser.h"

#include "datalog/lexer.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;

TEST(LexerTest, BasicTokens) {
  StatusOr<std::vector<Token>> tokens = Tokenize("anc(X, y1) :- par(X).");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kLParen,
                TokenKind::kVariable, TokenKind::kComma,
                TokenKind::kIdentifier, TokenKind::kRParen,
                TokenKind::kImplies, TokenKind::kIdentifier,
                TokenKind::kLParen, TokenKind::kVariable,
                TokenKind::kRParen, TokenKind::kPeriod, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAndWhitespace) {
  StatusOr<std::vector<Token>> tokens =
      Tokenize("% a comment\n  p(a). % trailing\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 6u);  // p ( a ) . END
}

TEST(LexerTest, NumbersAndStrings) {
  StatusOr<std::vector<Token>> tokens = Tokenize("p(42, -7, 'hello world').");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[2].text, "42");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[4].text, "-7");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[6].text, "hello world");
}

TEST(LexerTest, ErrorsCarryPosition) {
  StatusOr<std::vector<Token>> tokens = Tokenize("p(a).\n  @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("p('oops).").ok());
}

TEST(LexerTest, LoneColonIsError) {
  EXPECT_FALSE(Tokenize("p(a) : q(a).").ok());
}

TEST(ParserTest, FactsAndRules) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "par(a, b).\n"
      "par(b, c).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  EXPECT_EQ(program.facts.size(), 2u);
  EXPECT_EQ(program.rules.size(), 2u);
  EXPECT_EQ(ToString(program.rules[1], symbols),
            "anc(X, Y) :- par(X, Z), anc(Z, Y).");
}

TEST(ParserTest, ZeroArityPredicates) {
  SymbolTable symbols;
  Program program = ParseOrDie("go.\nready :- go.\n", &symbols);
  EXPECT_EQ(program.facts.size(), 1u);
  EXPECT_EQ(program.rules.size(), 1u);
  EXPECT_EQ(program.facts[0].arity(), 0);
}

TEST(ParserTest, QuotedAndNumericConstants) {
  SymbolTable symbols;
  Program program = ParseOrDie("edge(1, 'node two').\n", &symbols);
  ASSERT_EQ(program.facts.size(), 1u);
  EXPECT_EQ(symbols.Name(program.facts[0].args[0].sym), "1");
  EXPECT_EQ(symbols.Name(program.facts[0].args[1].sym), "node two");
}

TEST(ParserTest, NonGroundFactRejected) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseProgram("par(X, b).", &symbols).ok());
}

TEST(ParserTest, MissingPeriodRejected) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseProgram("anc(X, Y) :- par(X, Y)", &symbols).ok());
}

TEST(ParserTest, VariableAsPredicateRejected) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseProgram("Par(a, b).", &symbols).ok());
}

TEST(ParserTest, EmptyProgram) {
  SymbolTable symbols;
  Program program = ParseOrDie("  % nothing here\n", &symbols);
  EXPECT_TRUE(program.rules.empty());
  EXPECT_TRUE(program.facts.empty());
}

TEST(ParserTest, ParseErrorsIncludeLocation) {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram("p(a).\nq(a) :- ,\n", &symbols);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RoundTripThroughPrinter) {
  SymbolTable symbols;
  const char* source =
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
      "par(a, b).\n"
      "?- anc(a, X).\n";
  Program program = ParseOrDie(source, &symbols);
  EXPECT_EQ(ToString(program), source);
}

TEST(ParserTest, EmbeddedQueries) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(a).\n?- p(X).\n?- p(a).\n", &symbols);
  ASSERT_EQ(program.queries.size(), 2u);
  EXPECT_TRUE(program.queries[0].args[0].is_var());
  EXPECT_TRUE(program.queries[1].IsGround());
}

TEST(ParserTest, MalformedQueryDirectiveRejected) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseProgram("?- p(X)", &symbols).ok());   // no period
  EXPECT_FALSE(ParseProgram("? p(X).", &symbols).ok());   // lone '?'
}

}  // namespace
}  // namespace pdatalog
