#include "datalog/fact_io.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(FactIoTest, TabSeparated) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromString("a\tb\nb\tc\n", "edge", &symbols, &db);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  const Relation* rel = db.Find(symbols.Lookup("edge"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 2);
  EXPECT_TRUE(rel->Contains(
      Tuple{symbols.Lookup("a"), symbols.Lookup("b")}));
}

TEST(FactIoTest, CommaAndSpaceSeparators) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromString("x, y\n  p   q \n", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST(FactIoTest, CommentsAndBlanksSkipped) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n = LoadFactsFromString(
      "% comment\n# another\n\n  \na b\n", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(FactIoTest, DuplicatesCollapse) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromString("a b\na b\na c\n", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST(FactIoTest, InconsistentArityRejected) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromString("a b\na b c\n", "r", &symbols, &db);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos);
}

TEST(FactIoTest, ArityCheckedAgainstExistingRelation) {
  SymbolTable symbols;
  Database db;
  db.GetOrCreate(symbols.Intern("r"), 3);
  StatusOr<size_t> n = LoadFactsFromString("a b\n", "r", &symbols, &db);
  EXPECT_FALSE(n.ok());
}

TEST(FactIoTest, EmptyContentIsFine) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n = LoadFactsFromString("", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(FactIoTest, MissingTrailingNewline) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n = LoadFactsFromString("a b", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(FactIoTest, WindowsLineEndings) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromString("a\tb\r\nc\td\r\n", "r", &symbols, &db);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_TRUE(db.Find(symbols.Lookup("r"))
                  ->Contains(Tuple{symbols.Lookup("c"),
                                   symbols.Lookup("d")}));
}

TEST(FactIoTest, LoadFromFile) {
  const char* path = "/tmp/pdatalog_fact_io_test.tsv";
  {
    std::ofstream out(path);
    out << "n0\tn1\nn1\tn2\n";
  }
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n = LoadFactsFromFile(path, "edge", &symbols, &db);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  std::remove(path);
}

TEST(FactIoTest, MissingFileReportsNotFound) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadFactsFromFile("/nonexistent/nope.tsv", "edge", &symbols, &db);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pdatalog
