// Differential fuzzing: random safe programs evaluated by the naive,
// semi-naive and parallel (Section 7) engines must agree on every
// derived relation, and the theorems' work bounds must hold.
#include "eval/naive.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

// Picks one variable per rule for the general-scheme discriminating
// sequence: the first variable of the body.
std::vector<GeneralRuleSpec> PickSpecs(const Program& program, int P,
                                       uint64_t seed) {
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    std::vector<Symbol> body_vars;
    for (const Atom& atom : program.rules[r].body) {
      CollectVariables(atom, &body_vars);
    }
    if (!body_vars.empty()) {
      specs[r].vars = {body_vars[seed % body_vars.size()]};
    }
    specs[r].h = DiscriminatingFunction::UniformHash(P, seed);
  }
  return specs;
}

std::string DumpDerived(const Database& db, const ProgramInfo& info,
                        const SymbolTable& symbols) {
  std::vector<Symbol> preds(info.derived.begin(), info.derived.end());
  std::sort(preds.begin(), preds.end());
  std::string out;
  for (Symbol p : preds) {
    out += symbols.Name(p) + ":\n";
    const Relation* rel = db.Find(p);
    if (rel != nullptr) out += rel->ToSortedString(symbols);
  }
  return out;
}

TEST_P(FuzzTest, EnginesAgreeOnRandomPrograms) {
  uint64_t seed = GetParam();
  SymbolTable symbols;
  RandomProgramOptions options;
  options.seed = seed;
  StatusOr<Program> program = GenerateRandomProgram(&symbols, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ProgramInfo info;
  ASSERT_TRUE(Validate(*program, &info).ok());

  // Semi-naive.
  Database semi_db;
  ASSERT_TRUE(semi_db.LoadFacts(*program).ok());
  EvalStats semi;
  ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &semi_db, &semi).ok());

  // Naive.
  Database naive_db;
  ASSERT_TRUE(naive_db.LoadFacts(*program).ok());
  EvalStats naive;
  ASSERT_TRUE(NaiveEvaluate(*program, info, &naive_db, &naive).ok());

  std::string semi_dump = DumpDerived(semi_db, info, symbols);
  EXPECT_EQ(semi_dump, DumpDerived(naive_db, info, symbols))
      << "seed " << seed;
  EXPECT_LE(semi.firings, naive.firings) << "seed " << seed;

  // Parallel, general scheme, both scheduling modes.
  StatusOr<RewriteBundle> bundle =
      RewriteGeneral(*program, info, 3, PickSpecs(*program, 3, seed));
  ASSERT_TRUE(bundle.ok()) << "seed " << seed << ": "
                           << bundle.status().ToString();
  for (bool threads : {false, true}) {
    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    ParallelOptions popts;
    popts.use_threads = threads;
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_EQ(DumpDerived(result->output, info, symbols), semi_dump)
        << "seed " << seed << " threads=" << threads;
    EXPECT_LE(result->total_firings, semi.firings)
        << "seed " << seed << " threads=" << threads;
  }
}

TEST(FuzzStructureTest, GeneratedProgramsAreDeterministic) {
  SymbolTable s1, s2;
  RandomProgramOptions options;
  options.seed = 9;
  StatusOr<Program> p1 = GenerateRandomProgram(&s1, options);
  StatusOr<Program> p2 = GenerateRandomProgram(&s2, options);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(ToString(*p1), ToString(*p2));
}

TEST(FuzzStructureTest, SeedsDiffer) {
  SymbolTable s1, s2;
  RandomProgramOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  StatusOr<Program> p1 = GenerateRandomProgram(&s1, o1);
  StatusOr<Program> p2 = GenerateRandomProgram(&s2, o2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(ToString(*p1), ToString(*p2));
}

TEST(FuzzStructureTest, RespectsShapeOptions) {
  SymbolTable symbols;
  RandomProgramOptions options;
  options.seed = 3;
  options.num_derived = 4;
  options.rules_per_derived = 3;
  StatusOr<Program> program = GenerateRandomProgram(&symbols, options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules.size(), 12u);
  ProgramInfo info;
  ASSERT_TRUE(Validate(*program, &info).ok());
  EXPECT_EQ(info.derived.size(), 4u);
}

}  // namespace
}  // namespace pdatalog
