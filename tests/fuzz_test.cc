// Differential fuzzing: random safe programs evaluated by the naive,
// semi-naive and parallel (Section 7) engines must agree on every
// derived relation, and the theorems' work bounds must hold. Plus
// protocol fuzzing: the serving engine's request handler must answer
// every malformed line with a clean error, never a crash.
#include <random>

#include "eval/naive.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "server/protocol.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

// Picks one variable per rule for the general-scheme discriminating
// sequence: the first variable of the body.
std::vector<GeneralRuleSpec> PickSpecs(const Program& program, int P,
                                       uint64_t seed) {
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    std::vector<Symbol> body_vars;
    for (const Atom& atom : program.rules[r].body) {
      CollectVariables(atom, &body_vars);
    }
    if (!body_vars.empty()) {
      specs[r].vars = {body_vars[seed % body_vars.size()]};
    }
    specs[r].h = DiscriminatingFunction::UniformHash(P, seed);
  }
  return specs;
}

std::string DumpDerived(const Database& db, const ProgramInfo& info,
                        const SymbolTable& symbols) {
  std::vector<Symbol> preds(info.derived.begin(), info.derived.end());
  std::sort(preds.begin(), preds.end());
  std::string out;
  for (Symbol p : preds) {
    out += symbols.Name(p) + ":\n";
    const Relation* rel = db.Find(p);
    if (rel != nullptr) out += rel->ToSortedString(symbols);
  }
  return out;
}

TEST_P(FuzzTest, EnginesAgreeOnRandomPrograms) {
  uint64_t seed = GetParam();
  SymbolTable symbols;
  RandomProgramOptions options;
  options.seed = seed;
  StatusOr<Program> program = GenerateRandomProgram(&symbols, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ProgramInfo info;
  ASSERT_TRUE(Validate(*program, &info).ok());

  // Semi-naive.
  Database semi_db;
  ASSERT_TRUE(semi_db.LoadFacts(*program).ok());
  EvalStats semi;
  ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &semi_db, &semi).ok());

  // Naive.
  Database naive_db;
  ASSERT_TRUE(naive_db.LoadFacts(*program).ok());
  EvalStats naive;
  ASSERT_TRUE(NaiveEvaluate(*program, info, &naive_db, &naive).ok());

  std::string semi_dump = DumpDerived(semi_db, info, symbols);
  EXPECT_EQ(semi_dump, DumpDerived(naive_db, info, symbols))
      << "seed " << seed;
  EXPECT_LE(semi.firings, naive.firings) << "seed " << seed;

  // Parallel, general scheme, both scheduling modes.
  StatusOr<RewriteBundle> bundle =
      RewriteGeneral(*program, info, 3, PickSpecs(*program, 3, seed));
  ASSERT_TRUE(bundle.ok()) << "seed " << seed << ": "
                           << bundle.status().ToString();
  for (bool threads : {false, true}) {
    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    ParallelOptions popts;
    popts.use_threads = threads;
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_EQ(DumpDerived(result->output, info, symbols), semi_dump)
        << "seed " << seed << " threads=" << threads;
    EXPECT_LE(result->total_firings, semi.firings)
        << "seed " << seed << " threads=" << threads;
  }
}

// Every protocol input — truncated atoms, wrong-arity updates, garbage
// verbs, raw bytes — must produce either silence (blank/comment) or a
// reply terminated by an "ok"/"err" line. Snapshots are disabled so no
// fuzzed line touches the filesystem.
TEST(ProtocolFuzzTest, MalformedLinesNeverCrash) {
  StatusOr<std::unique_ptr<ServerEngine>> engine = ServerEngine::Create(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
      "par(a, b).\n");
  ASSERT_TRUE(engine.ok());
  ProtocolOptions options;
  options.allow_snapshot = false;

  auto check = [&](const std::string& line) {
    ProtocolReply reply = HandleRequest(engine->get(), line, options);
    if (reply.text.empty()) return;  // ignored line
    ASSERT_EQ(reply.text.back(), '\n') << "input: '" << line << "'";
    // Framing: the last line is "ok..." or "err ...".
    size_t last = reply.text.rfind('\n', reply.text.size() - 2);
    std::string tail =
        reply.text.substr(last == std::string::npos ? 0 : last + 1);
    EXPECT_TRUE(tail.rfind("ok", 0) == 0 || tail.rfind("err ", 0) == 0)
        << "input: '" << line << "' reply: '" << reply.text << "'";
  };

  // Hand-picked near-misses of every verb.
  for (const char* line : {
           "?", "?-", "?- ", "?- anc", "?- anc(", "?- anc(a", "?- anc(a,",
           "?- anc(a, b", "?- anc(a, b)..", "?- anc(a, b) :- par(a, b).",
           "?- anc(a, b). par(c, d).", "?- anc(a, b, c).", "?- 42.",
           "+", "+.", "+par", "+par(", "+par(a).", "+par(a, b, c).",
           "+par(a, X).", "+anc(a, b).", "+nosuch(a, b).",
           "+par(a, b) :- anc(b, a).", "+par(a, b). par(c, d).",
           "!", "!!", "!snap", "!snapshot", "!stats extra", "!flushh",
           "!quit now maybe", "!snapshot /tmp/nope",
           "par(a, b).", "anc(a, X)?", "-par(a, b).", "hello world",
           "\x01\x02\x03", "?- anc(\xff\xfe, X).", "????????",
       }) {
    check(line);
  }
  // "!quit now maybe" has arguments but still quits; make sure a plain
  // !quit parsed as quit exactly once above didn't kill the engine.
  EXPECT_TRUE(engine->get()->QueryText("anc(a, X)").ok());

  // Random byte soup, printable-biased so some lines hit the verb
  // dispatch paths.
  std::mt19937_64 rng(0x5eed);
  const std::string alphabet =
      "?+!-.,()abcXYZ_09 \t'\"\\%:\x7f\x01";
  for (int i = 0; i < 2000; ++i) {
    std::string line;
    size_t len = rng() % 40;
    for (size_t c = 0; c < len; ++c) {
      line += alphabet[rng() % alphabet.size()];
    }
    check(line);
  }
  // The engine survived and still answers.
  StatusOr<QueryResult> alive = engine->get()->QueryText("anc(a, X)");
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive->bindings.size(), 1u);
}

TEST(FuzzStructureTest, GeneratedProgramsAreDeterministic) {
  SymbolTable s1, s2;
  RandomProgramOptions options;
  options.seed = 9;
  StatusOr<Program> p1 = GenerateRandomProgram(&s1, options);
  StatusOr<Program> p2 = GenerateRandomProgram(&s2, options);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(ToString(*p1), ToString(*p2));
}

TEST(FuzzStructureTest, SeedsDiffer) {
  SymbolTable s1, s2;
  RandomProgramOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  StatusOr<Program> p1 = GenerateRandomProgram(&s1, o1);
  StatusOr<Program> p2 = GenerateRandomProgram(&s2, o2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(ToString(*p1), ToString(*p2));
}

TEST(FuzzStructureTest, RespectsShapeOptions) {
  SymbolTable symbols;
  RandomProgramOptions options;
  options.seed = 3;
  options.num_derived = 4;
  options.rules_per_derived = 3;
  StatusOr<Program> program = GenerateRandomProgram(&symbols, options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules.size(), 12u);
  ProgramInfo info;
  ASSERT_TRUE(Validate(*program, &info).ok());
  EXPECT_EQ(info.derived.size(), 4u);
}

}  // namespace
}  // namespace pdatalog
