#include "storage/database.h"

#include "datalog/parser.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;

TEST(DatabaseTest, GetOrCreateIsIdempotent) {
  SymbolTable symbols;
  Database db;
  Symbol p = symbols.Intern("p");
  Relation& r1 = db.GetOrCreate(p, 2);
  Relation& r2 = db.GetOrCreate(p, 2);
  EXPECT_EQ(&r1, &r2);
  EXPECT_EQ(db.relation_count(), 1u);
}

TEST(DatabaseTest, FindMissingReturnsNull) {
  SymbolTable symbols;
  Database db;
  EXPECT_EQ(db.Find(symbols.Intern("nope")), nullptr);
}

TEST(DatabaseTest, InsertCreatesRelation) {
  SymbolTable symbols;
  Database db;
  Symbol p = symbols.Intern("p");
  EXPECT_TRUE(db.Insert(p, Tuple{1, 2}, 2));
  EXPECT_FALSE(db.Insert(p, Tuple{1, 2}, 2));
  EXPECT_EQ(db.Find(p)->size(), 1u);
}

TEST(DatabaseTest, LoadFactsFromProgram) {
  SymbolTable symbols;
  Program program = ParseOrDie("par(a, b).\npar(b, c).\nsolo(x).\n", &symbols);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("par"))->size(), 2u);
  EXPECT_EQ(db.Find(symbols.Lookup("solo"))->size(), 1u);
}

TEST(DatabaseTest, LoadFactsDeduplicates) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(a).\np(a).\n", &symbols);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("p"))->size(), 1u);
}

TEST(DatabaseTest, MoveTransfersRelations) {
  SymbolTable symbols;
  Database db;
  Symbol p = symbols.Intern("p");
  db.Insert(p, Tuple{3}, 1);
  Database moved = std::move(db);
  ASSERT_NE(moved.Find(p), nullptr);
  EXPECT_EQ(moved.Find(p)->size(), 1u);
}

}  // namespace
}  // namespace pdatalog
