// The resident serving engine: snapshot-isolated concurrent reads over
// a live incrementally-maintained fixpoint, the line protocol, and the
// socket listener. The concurrency tests are the reason this target
// runs under the TSan CI job.
#include "server/engine.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "test_util.h"

namespace pdatalog {
namespace {

constexpr char kChainProgram[] = R"(
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  par(n0, n1).
)";

std::string NodeName(int i) { return "n" + std::to_string(i); }

// par(n0,n1) ... par(n{k-1},nk) -- a k-edge chain whose closure has
// exactly k(k+1)/2 pairs. The tests' consistency oracle.
size_t ClosureSize(size_t chain_edges) {
  return chain_edges * (chain_edges + 1) / 2;
}

TEST(ServerEngineTest, InitialFixpointServesQueries) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->epoch(), 1u);

  StatusOr<QueryResult> anc = (*engine)->QueryText("anc(n0, X)");
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc->bindings.size(), 1u);
  EXPECT_EQ((*engine)->Render(*anc), "X = n1\n");

  StatusOr<QueryResult> ground = (*engine)->QueryText("anc(n0, n1).");
  ASSERT_TRUE(ground.ok());
  EXPECT_TRUE(ground->IsBoolean());
  EXPECT_TRUE(ground->Holds());
}

TEST(ServerEngineTest, FlushIsReadYourWrites) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  for (int i = 1; i < 8; ++i) {
    ASSERT_TRUE((*engine)
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
  }
  uint64_t epoch = (*engine)->Flush();
  EXPECT_GT(epoch, 1u);
  StatusOr<QueryResult> anc = (*engine)->QueryText("anc(n0, X)");
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc->bindings.size(), 8u);  // n0 reaches n1..n8
}

TEST(ServerEngineTest, SubmitValidatesSynchronously) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  // Derived predicate.
  EXPECT_FALSE((*engine)->SubmitFactText("anc(a, b)").ok());
  // Unknown predicate.
  EXPECT_FALSE((*engine)->SubmitFactText("edge(a, b)").ok());
  // Arity mismatch.
  EXPECT_FALSE((*engine)->SubmitFactText("par(a, b, c)").ok());
  // Not ground.
  EXPECT_FALSE((*engine)->SubmitFactText("par(a, X)").ok());
  // Not a fact.
  EXPECT_FALSE((*engine)->SubmitFactText("par(a, b) :- par(b, a)").ok());
  EXPECT_FALSE((*engine)->SubmitFactText("").ok());
  // Nothing reached the queue; the fixpoint is untouched.
  EXPECT_EQ((*engine)->Flush(), 1u);
}

TEST(ServerEngineTest, MalformedQueriesErrorCleanly) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  for (const char* bad :
       {"", "anc(", "anc(a, b", ":-", "anc(a,b). anc(c,d)",
        "anc(X, Y) :- par(X, Y)"}) {
    EXPECT_FALSE((*engine)->QueryText(bad).ok()) << "'" << bad << "'";
  }
  // Unknown predicate is an empty answer, not an error (like an empty
  // relation).
  StatusOr<QueryResult> unknown = (*engine)->QueryText("nosuch(X)");
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(unknown->bindings.empty());
}

// The tentpole invariant: reader threads racing a streaming updater
// only ever observe epoch-consistent fixpoints — for a chain prefix of
// k edges, exactly k(k+1)/2 closure pairs — and epochs never move
// backwards. Runs under TSan in CI.
TEST(ServerEngineTest, ConcurrentReadersSeeConsistentSnapshots) {
  ServerOptions options;
  options.max_batch = 4;  // force many publication points
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();
  // Pre-parse the probe query so readers exercise the lock-free path.
  StatusOr<ParsedQuery> probe = server->Parse("anc(n0, X)");
  ASSERT_TRUE(probe.ok());

  constexpr int kEdges = 48;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      size_t last_rows = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const ServerSnapshot> snap = server->snapshot();
        if (snap->epoch < last_epoch) ++violations;
        const RelationView* par = nullptr;
        const RelationView* anc = nullptr;
        for (const auto& [pred, view] : snap->view.relations()) {
          if (view.arity() == 2) {
            // Identify by size order below; resolve names lock-free is
            // impossible, so probe both assignments.
            if (par == nullptr) {
              par = &view;
            } else {
              anc = &view;
            }
          }
        }
        if (par != nullptr && anc != nullptr) {
          size_t small = std::min(par->size(), anc->size());
          size_t big = std::max(par->size(), anc->size());
          if (big != ClosureSize(small)) ++violations;
          if (big < last_rows) ++violations;  // monotone growth
          last_rows = big;
        }
        last_epoch = snap->epoch;
        if ((r % 2) == 0) {
          // Half the readers also exercise the full query path.
          StatusOr<QueryResult> result = server->Query(*probe);
          if (!result.ok()) ++violations;
        }
      }
    });
  }

  for (int i = 1; i < kEdges; ++i) {
    ASSERT_TRUE(server
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
    if (i % 7 == 0) server->Flush();
  }
  server->Flush();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Bit-identical to a from-scratch batch evaluation over the same
  // facts (the acceptance criterion).
  SymbolTable symbols;
  Program program =
      testing_util::ParseOrDie(kChainProgram, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  Database batch;
  ASSERT_TRUE(batch.LoadFacts(program).ok());
  Relation& par_rel = batch.GetOrCreate(symbols.Intern("par"), 2);
  for (int i = 1; i < kEdges; ++i) {
    par_rel.Insert(Tuple{symbols.Intern(NodeName(i)),
                         symbols.Intern(NodeName(i + 1))});
  }
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &batch, &stats).ok());

  std::shared_ptr<const ServerSnapshot> final_snap = server->snapshot();
  StatusOr<QueryResult> all = server->QueryText("anc(X, Y)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->bindings.size(),
            batch.Find(symbols.Lookup("anc"))->size());
  EXPECT_EQ(final_snap->view.Find(server->Parse("anc(X, Y)")->atom.predicate)
                ->size(),
            ClosureSize(kEdges));
}

TEST(ServerEngineTest, ShutdownDrainsPendingUpdates) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  for (int i = 1; i < 20; ++i) {
    ASSERT_TRUE((*engine)
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
  }
  (*engine)->Shutdown();
  // Everything submitted before shutdown is in the final snapshot.
  EXPECT_EQ((*engine)->snapshot()->view.total_rows(),
            20u + ClosureSize(20));
  // New submissions are refused, queries still answer.
  EXPECT_FALSE((*engine)->SubmitFactText("par(x, y)").ok());
  EXPECT_TRUE((*engine)->QueryText("anc(n0, X)").ok());
}

TEST(ServerEngineTest, SaveSnapshotRoundTrips) {
  std::string dir = "/tmp/pdatalog_server_test_" +
                    std::to_string(static_cast<unsigned>(::getpid()));
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->SubmitFactText("par(n1, n2)").ok());
  (*engine)->Flush();
  StatusOr<size_t> saved = (*engine)->SaveSnapshot(dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(*saved, 2u);

  SymbolTable symbols;
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, &symbols, &loaded).ok());
  EXPECT_EQ(loaded.Find(symbols.Lookup("anc"))->size(), 3u);
  std::string cmd = "rm -rf " + dir;
  (void)!std::system(cmd.c_str());
}

TEST(ServerEngineTest, TraceSpansAndStatsRecorded) {
  ServerOptions options;
  options.trace = true;
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->SubmitFactText("par(n1, n2)").ok());
  (*engine)->Flush();
  ASSERT_TRUE((*engine)->QueryText("anc(n0, X)").ok());

  Tracer* tracer = (*engine)->tracer();
  ASSERT_NE(tracer, nullptr);
  bool saw_apply = false, saw_maintain = false, saw_query = false;
  for (int ring = 0; ring < tracer->num_rings(); ++ring) {
    const TraceRing& r = *tracer->ring(ring);
    for (size_t i = 0; i < r.size(); ++i) {
      if (r.event(i).phase == TracePhase::kApply) saw_apply = true;
      if (r.event(i).phase == TracePhase::kMaintain) saw_maintain = true;
      if (r.event(i).phase == TracePhase::kQuery) saw_query = true;
    }
  }
  EXPECT_TRUE(saw_apply);
  EXPECT_TRUE(saw_maintain);
  EXPECT_TRUE(saw_query);

  MetricsRegistry metrics = (*engine)->MetricsCopy();
  ASSERT_NE(metrics.FindHistogram("hist.query_ns"), nullptr);
  ASSERT_NE(metrics.FindHistogram("hist.update_batch_ns"), nullptr);
  EXPECT_EQ(metrics.FindHistogram("hist.query_ns")->count(), 1u);
  EXPECT_GE(metrics.counter("serve.update_batches"), 1u);

  std::string stats = (*engine)->StatsReport();
  EXPECT_NE(stats.find("epoch"), std::string::npos);
  EXPECT_NE(stats.find("hist.query_ns"), std::string::npos);
}

// --- protocol ------------------------------------------------------

TEST(ProtocolTest, VerbsRoundTrip) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();

  EXPECT_EQ(HandleRequest(server, "+par(n1, n2).").text, "ok\n");
  EXPECT_EQ(HandleRequest(server, "!flush").text, "ok epoch 2\n");
  EXPECT_EQ(HandleRequest(server, "?- anc(n0, X).").text,
            "X = n1\nX = n2\nok 2\n");
  EXPECT_EQ(HandleRequest(server, "? anc(n0, n2).").text, "true\nok 1\n");
  EXPECT_EQ(HandleRequest(server, "?- anc(n2, n0).").text,
            "false\nok 0\n");

  ProtocolReply stats = HandleRequest(server, "!stats");
  EXPECT_NE(stats.text.find("epoch 2"), std::string::npos);
  EXPECT_EQ(stats.text.substr(stats.text.size() - 3), "ok\n");

  ProtocolReply quit = HandleRequest(server, "!quit");
  EXPECT_TRUE(quit.quit);
  EXPECT_EQ(quit.text, "ok bye\n");

  // Blank and comment lines are ignored.
  EXPECT_EQ(HandleRequest(server, "").text, "");
  EXPECT_EQ(HandleRequest(server, "   \t").text, "");
  EXPECT_EQ(HandleRequest(server, "% a comment").text, "");
}

TEST(ProtocolTest, ErrorsAreCleanSingleLines) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();
  ProtocolOptions no_snapshot;
  no_snapshot.allow_snapshot = false;

  for (const char* line :
       {"?- anc(", "+nosuch(a, b).", "+par(a).", "+anc(a, b).",
        "!bogus", "!snapshot", "garbage", "?- anc(a,b). anc(c,d)."}) {
    ProtocolReply reply = HandleRequest(server, line, no_snapshot);
    ASSERT_FALSE(reply.text.empty()) << "'" << line << "'";
    EXPECT_EQ(reply.text.substr(0, 4), "err ") << "'" << line << "'";
    EXPECT_EQ(reply.text.find('\n'), reply.text.size() - 1)
        << "'" << line << "'";
    EXPECT_FALSE(reply.quit);
  }
  EXPECT_EQ(HandleRequest(server, "!snapshot /tmp/x", no_snapshot).text,
            "err snapshot is disabled\n");
}

TEST(ProtocolTest, ServeLoopStdio) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  std::istringstream in(
      "+par(n1, n2).\n!flush\n?- anc(n0, X).\n!quit\nignored after quit\n");
  std::ostringstream out;
  ServeLoop(engine->get(), in, out);
  EXPECT_EQ(out.str(),
            "ok\nok epoch 2\nX = n1\nX = n2\nok 2\nok bye\n");
}

// --- socket listener -----------------------------------------------

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one request line and reads until the terminating ok/err line.
std::string Exchange(int fd, const std::string& line) {
  std::string request = line + "\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char c;
  std::string current;
  while (true) {
    ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) break;
    reply += c;
    if (c != '\n') {
      current += c;
      continue;
    }
    if (current.rfind("ok", 0) == 0 || current.rfind("err", 0) == 0) {
      break;
    }
    current.clear();
  }
  return reply;
}

TEST(SocketServerTest, ServesConcurrentClients) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  SocketServer server(engine->get());
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  int c1 = ConnectLoopback(server.port());
  int c2 = ConnectLoopback(server.port());
  ASSERT_GE(c1, 0);
  ASSERT_GE(c2, 0);

  EXPECT_EQ(Exchange(c1, "+par(n1, n2)."), "ok\n");
  EXPECT_EQ(Exchange(c1, "!flush"), "ok epoch 2\n");
  // The second client sees the first client's update.
  EXPECT_EQ(Exchange(c2, "?- anc(n0, n2)."), "true\nok 1\n");
  EXPECT_EQ(Exchange(c2, "nonsense"),
            "err unrecognized request (try '?- atom.', '+fact.', "
            "'!stats', '!flush', '!quit')\n");
  EXPECT_EQ(Exchange(c1, "!quit"), "ok bye\n");
  ::close(c1);

  // Stop with a connection still open: must not hang or crash.
  server.Stop();
  ::close(c2);
}

}  // namespace
}  // namespace pdatalog
