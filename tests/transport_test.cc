// The transport layer (core/transport.h, core/spsc_ring.h): flag
// parsing, ring capacity rounding and wraparound, the overflow-spillway
// and stall-handler protocols, engine option validation, and — the
// load-bearing property — differential fixpoint tests: the SPSC ring
// backend must produce a bit-identical fixpoint to the mutex reference
// backend, under both schedulers, with tiny rings that force the
// backpressure machinery, and under channel faults with retransmission.
#include "core/transport.h"

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/partition.h"
#include "core/spsc_ring.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"
#include "workload/programs.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::ParseOrDie;
using testing_util::SequentialAncestor;
using testing_util::ValidateOrDie;

TupleBlock OneTupleBlock(Value v) {
  TupleBlock block;
  block.predicate = 1;
  block.arity = 2;
  Value vals[2] = {v, v + 1};
  block.Append(vals, 2);
  return block;
}

// ---------------------------------------------------------------------
// Flag parsing and defaults
// ---------------------------------------------------------------------

TEST(TransportKindTest, ParsesKnownNamesOnly) {
  TransportKind kind = TransportKind::kSpsc;
  EXPECT_TRUE(ParseTransportKind("mutex", &kind));
  EXPECT_EQ(kind, TransportKind::kMutex);
  EXPECT_TRUE(ParseTransportKind("spsc", &kind));
  EXPECT_EQ(kind, TransportKind::kSpsc);
  EXPECT_FALSE(ParseTransportKind("", &kind));
  EXPECT_FALSE(ParseTransportKind("ring", &kind));
  EXPECT_FALSE(ParseTransportKind("MUTEX", &kind));
  EXPECT_STREQ(TransportKindName(TransportKind::kMutex), "mutex");
  EXPECT_STREQ(TransportKindName(TransportKind::kSpsc), "spsc");
}

TEST(TransportKindTest, DefaultRingFramesShrinksWithTopology) {
  // P*P channels, two rings each: capacity steps down so slot memory
  // stays bounded as the topology grows.
  EXPECT_EQ(DefaultRingFrames(1), 1024u);
  EXPECT_EQ(DefaultRingFrames(16), 1024u);
  EXPECT_EQ(DefaultRingFrames(17), 256u);
  EXPECT_EQ(DefaultRingFrames(64), 256u);
  EXPECT_EQ(DefaultRingFrames(65), 64u);
}

TEST(IdleWaitPolicyTest, OnlyTheSpscFastPathSpins) {
  EXPECT_GT(MakeIdleWaitPolicy(TransportKind::kSpsc, false).spin_polls, 0);
  // The mutex backend, and any slow-path run (faults/retransmit), must
  // keep the non-spinning ladder — --faults delay mode deliberately
  // stretches quiescence, and busy-spinning through it wastes a core.
  EXPECT_EQ(MakeIdleWaitPolicy(TransportKind::kSpsc, true).spin_polls, 0);
  EXPECT_EQ(MakeIdleWaitPolicy(TransportKind::kMutex, false).spin_polls, 0);
  EXPECT_EQ(MakeIdleWaitPolicy(TransportKind::kMutex, true).spin_polls, 0);
}

// ---------------------------------------------------------------------
// SpscRing unit behavior
// ---------------------------------------------------------------------

TEST(SpscRingTest, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // -> 8 slots
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(ring.size(), 8u);
}

TEST(SpscRingTest, SingleThreadedWrapKeepsFifo) {
  SpscRing<int> ring(4);
  std::vector<int> out;
  int next = 0;
  int expect = 0;
  // Push/pop in irregular strides so head and tail wrap many times.
  for (int round = 0; round < 100; ++round) {
    const int stride = (round % 4) + 1;
    for (int i = 0; i < stride; ++i) {
      int v = next++;
      ASSERT_TRUE(ring.TryPush(v));
    }
    out.clear();
    ring.PopAll(&out);
    for (int v : out) ASSERT_EQ(v, expect++);
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(expect, next);
}

TEST(SpscRingTest, TryPushNTakesPrefixWhenShortOnSpace) {
  SpscRing<int> ring(4);
  int a = 1;
  ASSERT_TRUE(ring.TryPush(a));
  int batch[4] = {2, 3, 4, 5};
  // Only 3 slots remain: the batch push must take exactly the prefix.
  EXPECT_EQ(ring.TryPushN(batch, 4), 3u);
  std::vector<int> out;
  EXPECT_EQ(ring.PopAll(&out), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

// ---------------------------------------------------------------------
// Overflow spillway (non-blocking mode) and stall handler
// ---------------------------------------------------------------------

TEST(SpscTransportTest, OverflowSpillwayKeepsFifoPastCapacity) {
  // Non-blocking mode (round-robin scheduler): pushing far past the
  // ring's capacity on one thread must divert to the spillway and still
  // come out lossless and in order.
  TransportOptions opts;
  opts.ring_frames = 4;
  opts.blocking = false;
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSpsc, opts);
  for (Value v = 0; v < 100; ++v) t->SendBlock(OneTupleBlock(v));
  EXPECT_TRUE(t->HasPending());

  std::vector<TupleBlock> out;
  EXPECT_EQ(t->DrainBlocks(&out), 100u);
  ASSERT_EQ(out.size(), 100u);
  for (Value v = 0; v < 100; ++v) EXPECT_EQ(out[v].value(0, 0), v);
  EXPECT_FALSE(t->HasPending());

  // After the spillway is emptied the ring path re-engages; a second
  // wave must still be FIFO across the spill/unspill boundary.
  for (Value v = 100; v < 110; ++v) t->SendBlock(OneTupleBlock(v));
  out.clear();
  EXPECT_EQ(t->DrainBlocks(&out), 10u);
  for (Value v = 0; v < 10; ++v) EXPECT_EQ(out[v].value(0, 0), v + 100);
}

TEST(SpscTransportTest, AbortingStallHandlerDivertsInsteadOfDropping) {
  // Blocking mode with a stall handler that reports "run is over": the
  // blocked send must divert to the spillway, not drop the frame and
  // not deadlock (this is the receiver-already-exited abort path).
  TransportOptions opts;
  opts.ring_frames = 4;
  opts.blocking = true;
  opts.spin_polls = 2;  // reach the stall handler quickly
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSpsc, opts);
  int stalls = 0;
  t->set_stall_handler([&stalls] {
    ++stalls;
    return false;  // abort: stop waiting
  });
  for (Value v = 0; v < 10; ++v) t->SendBlock(OneTupleBlock(v));
  EXPECT_GT(stalls, 0);

  std::vector<TupleBlock> out;
  EXPECT_EQ(t->DrainBlocks(&out), 10u);
  for (Value v = 0; v < 10; ++v) EXPECT_EQ(out[v].value(0, 0), v);
}

TEST(SpscTransportTest, BytesPathSpillsAndDrainsInOrder) {
  TransportOptions opts;
  opts.ring_frames = 4;
  opts.blocking = false;
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSpsc, opts);
  for (int i = 0; i < 50; ++i) {
    t->SendBytes(std::vector<uint8_t>(4, static_cast<uint8_t>(i)));
  }
  std::vector<std::vector<uint8_t>> out;
  EXPECT_EQ(t->DrainBytes(&out), 50u);
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i][0], static_cast<uint8_t>(i));
  }
  EXPECT_FALSE(t->HasPending());
}

// ---------------------------------------------------------------------
// Engine option validation
// ---------------------------------------------------------------------

TEST(TransportEngineTest, RejectsBadRingCapacity) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  for (int bad : {-1, 1, (1 << 20) + 1}) {
    ParallelOptions options;
    options.use_threads = false;
    options.transport = TransportKind::kSpsc;
    options.transport_ring_frames = bad;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_FALSE(result.ok()) << "ring_frames " << bad;
    EXPECT_NE(result.status().message().find("transport_ring_frames"),
              std::string::npos)
        << result.status().ToString();
  }
}

// ---------------------------------------------------------------------
// Differential fixpoint tests: spsc must be bit-identical to mutex
// ---------------------------------------------------------------------

class TransportDifferentialTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(RoundRobinAndThreads, TransportDifferentialTest,
                         ::testing::Values(false, true));

TEST_P(TransportDifferentialTest, AncestorFixpointIdenticalAcrossBackends) {
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 120, 360, 1.4, 7);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  for (TransportKind kind : {TransportKind::kMutex, TransportKind::kSpsc}) {
    ParallelOptions options;
    options.use_threads = GetParam();
    options.transport = kind;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << TransportKindName(kind);
  }
}

TEST_P(TransportDifferentialTest, TinyRingForcesBackpressureAndStillAgrees) {
  // ring_frames=2 guarantees every worker hits a full ring constantly;
  // threaded runs exercise the blocking wait + stall-drain path,
  // round-robin runs exercise the overflow spillway.
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 100, 300, 1.4, 11);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.transport = TransportKind::kSpsc;
  options.transport_ring_frames = 2;
  options.block_tuples = 4;  // many small frames -> maximum churn
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
}

TEST_P(TransportDifferentialTest, AncestorFixpointExactUnderFaults) {
  // Faults + retransmit always run on the mutex-guarded slow path, so
  // the spsc backend must be exactly as reliable (and bit-identical)
  // there too.
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 80, 240, 1.4, 13);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  for (TransportKind kind : {TransportKind::kMutex, TransportKind::kSpsc}) {
    ParallelOptions options;
    options.use_threads = GetParam();
    options.transport = kind;
    options.serialize_messages = true;
    options.retransmit = true;
    options.faults.drop = 0.15;
    options.faults.duplicate = 0.1;
    options.faults.reorder = 0.1;
    options.faults.corrupt = 0.05;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << TransportKindName(kind);
  }
}

TEST_P(TransportDifferentialTest, PointsToFixpointIdenticalAcrossBackends) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("points_to");
  ASSERT_TRUE(named.ok());
  Program program = ParseOrDie(named->source, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  auto gen_facts = [&symbols](Database* db) {
    SplitMix64 rng(21);
    Relation& new_rel = db->GetOrCreate(symbols.Intern("new"), 2);
    Relation& assign = db->GetOrCreate(symbols.Intern("assign"), 2);
    Relation& load = db->GetOrCreate(symbols.Intern("load"), 2);
    Relation& store = db->GetOrCreate(symbols.Intern("store"), 2);
    auto var = [&symbols](uint64_t i) {
      return symbols.Intern("v" + std::to_string(i));
    };
    auto obj = [&symbols](uint64_t i) {
      return symbols.Intern("o" + std::to_string(i));
    };
    for (int i = 0; i < 30; ++i) {
      uint64_t hot = rng.NextBelow(2);
      new_rel.Insert(
          Tuple{var(rng.NextBelow(14)), obj(hot ? 0 : rng.NextBelow(6))});
      assign.Insert(
          Tuple{var(rng.NextBelow(14)), var(hot ? 0 : rng.NextBelow(14))});
      load.Insert(Tuple{var(rng.NextBelow(14)), var(rng.NextBelow(14))});
      store.Insert(Tuple{var(rng.NextBelow(14)), var(rng.NextBelow(14))});
    }
  };

  Database seq_db;
  gen_facts(&seq_db);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());
  std::string expected_pt =
      seq_db.Find(symbols.Lookup("pt"))->ToSortedString(symbols);

  Symbol o = symbols.Intern("O");
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (GeneralRuleSpec& spec : specs) {
    spec.vars = {o};
    spec.h = DiscriminatingFunction::UniformHash(3);
  }
  StatusOr<RewriteBundle> bundle =
      RewriteGeneral(program, info, 3, specs, /*fragment_bases=*/false);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  for (TransportKind kind : {TransportKind::kMutex, TransportKind::kSpsc}) {
    Database edb;
    gen_facts(&edb);
    ParallelOptions options;
    options.use_threads = GetParam();
    options.transport = kind;
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(
        result->output.Find(symbols.Lookup("pt"))->ToSortedString(symbols),
        expected_pt)
        << TransportKindName(kind);
  }
}

}  // namespace
}  // namespace pdatalog
