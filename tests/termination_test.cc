#include "core/termination.h"

#include <atomic>
#include <thread>
#include <vector>

#include "core/channel.h"
#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(TerminationTest, AllIdleNoTrafficTerminates) {
  TerminationDetector detector(3);
  for (int w = 0; w < 3; ++w) detector.SetIdle(w, true);
  EXPECT_TRUE(detector.TryDetect());
  EXPECT_TRUE(detector.terminated());
}

TEST(TerminationTest, ActiveWorkerBlocksTermination) {
  TerminationDetector detector(2);
  detector.SetIdle(0, true);
  detector.SetIdle(1, false);
  EXPECT_FALSE(detector.TryDetect());
}

TEST(TerminationTest, InFlightMessageBlocksTermination) {
  TerminationDetector detector(2);
  detector.SetIdle(0, true);
  detector.SetIdle(1, true);
  detector.CountSend(0, 1);  // sent but not yet received
  EXPECT_FALSE(detector.TryDetect());
  detector.CountReceive(1, 1);
  EXPECT_TRUE(detector.TryDetect());
}

TEST(TerminationTest, TerminationIsSticky) {
  TerminationDetector detector(1);
  detector.SetIdle(0, true);
  EXPECT_TRUE(detector.TryDetect());
  // Later state changes don't un-terminate.
  detector.SetIdle(0, false);
  EXPECT_TRUE(detector.TryDetect());
}

TEST(TerminationTest, StressPingPongNeverTerminatesEarly) {
  // Two workers bounce a token back and forth `kHops` times, then stop.
  // The detector must fire exactly once, only after all hops completed.
  constexpr int kHops = 2000;
  TerminationDetector detector(2);
  CommNetwork network(2);
  std::atomic<int> hops{0};
  std::atomic<bool> early_termination{false};

  auto worker = [&](int id) {
    detector.SetIdle(id, false);
    if (id == 0) {
      detector.CountSend(0, 1);
      network.channel(0, 1).Send(Message{0, Tuple{1}});
    }
    std::vector<Message> buffer;
    while (!detector.terminated()) {
      buffer.clear();
      size_t n = network.channel(1 - id, id).Drain(&buffer);
      if (n > 0) {
        detector.SetIdle(id, false);
        detector.CountReceive(id, n);
        int h = hops.fetch_add(1) + 1;
        if (h < kHops) {
          detector.CountSend(id, 1);
          network.channel(id, 1 - id).Send(Message{0, Tuple{1}});
        }
      } else {
        detector.SetIdle(id, true);
        if (detector.TryDetect()) {
          if (hops.load() < kHops) early_termination = true;
          return;
        }
        std::this_thread::yield();
      }
    }
  };

  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_FALSE(early_termination.load());
  EXPECT_EQ(hops.load(), kHops);
  EXPECT_TRUE(detector.terminated());
}

TEST(ChannelTest, SendDrainRoundTrip) {
  Channel channel;
  channel.Send(Message{7, Tuple{1, 2}});
  channel.Send(Message{7, Tuple{3, 4}});
  EXPECT_TRUE(channel.HasPending());
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].tuple, (Tuple{1, 2}));
  EXPECT_FALSE(channel.HasPending());
  EXPECT_EQ(channel.total_sent(), 2u);
}

TEST(ChannelTest, DrainAppendsToExisting) {
  Channel channel;
  channel.Send(Message{1, Tuple{9}});
  std::vector<Message> out;
  out.push_back(Message{0, Tuple{5}});
  channel.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
}

TEST(CommNetworkTest, MatrixShape) {
  CommNetwork network(3);
  network.channel(0, 2).Send(Message{1, Tuple{1}});
  network.channel(0, 2).Send(Message{1, Tuple{2}});
  network.channel(1, 0).Send(Message{1, Tuple{3}});
  auto m = network.SentMatrix();
  EXPECT_EQ(m[0][2], 2u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[2][1], 0u);
}

TEST(CommNetworkTest, ChannelsAreDistinct) {
  CommNetwork network(2);
  network.channel(0, 1).Send(Message{1, Tuple{1}});
  EXPECT_FALSE(network.channel(1, 0).HasPending());
  EXPECT_TRUE(network.channel(0, 1).HasPending());
}

TEST(ChannelTest, ConcurrentSendersAllDelivered) {
  Channel channel;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&channel] {
      for (int i = 0; i < kPerThread; ++i) {
        channel.Send(Message{0, Tuple{static_cast<Value>(i)}});
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 4u * kPerThread);
}

}  // namespace
}  // namespace pdatalog
