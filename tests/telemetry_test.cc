// The live-serving telemetry layer: windowed histograms, slow-query and
// sample rings, health verdicts, the Prometheus text exposition (with a
// parse-back validator mirroring tools/check_exposition.py), the
// `!health` / `!watch` protocol verbs, and the HTTP scrape endpoint.
// The endpoint and backlog tests run under the TSan CI job.
#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/engine.h"
#include "server/protocol.h"

namespace pdatalog {
namespace {

constexpr char kChainProgram[] = R"(
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  par(n0, n1).
)";

std::string NodeName(int i) { return "n" + std::to_string(i); }

// --- WindowedHistogram ----------------------------------------------

TEST(WindowedHistogramTest, WindowAgesOutAtTheEdgeLifetimeKeepsAll) {
  WindowedHistogram w(4);
  for (uint64_t v : {10u, 20u, 30u}) w.Record(v);
  EXPECT_EQ(w.WindowMerged().count(), 3u);
  EXPECT_EQ(w.lifetime().count(), 3u);

  // Three rotations: the recording bucket is still inside the window.
  for (int i = 0; i < 3; ++i) w.Rotate();
  EXPECT_EQ(w.WindowMerged().count(), 3u);

  // The fourth rotation wraps onto the recording bucket and clears it —
  // the window edge.
  w.Rotate();
  EXPECT_EQ(w.WindowMerged().count(), 0u);
  EXPECT_TRUE(w.WindowMerged().empty());
  EXPECT_EQ(w.lifetime().count(), 3u);
  EXPECT_EQ(w.rotations(), 4u);
}

TEST(WindowedHistogramTest, WindowMergesAcrossBuckets) {
  WindowedHistogram w(3);
  w.Record(100);
  w.Rotate();
  w.Record(200);
  w.Rotate();
  w.Record(400);
  // All three buckets live: merged window sees everything.
  Histogram merged = w.WindowMerged();
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.sum(), 700u);
  EXPECT_EQ(merged.max(), 400u);
  // One more rotation evicts the oldest record only.
  w.Rotate();
  merged = w.WindowMerged();
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.sum(), 600u);
}

TEST(WindowedHistogramTest, EmptyWindowPercentilesAreZeroSafe) {
  WindowedHistogram w(2);
  Histogram merged = w.WindowMerged();
  EXPECT_EQ(merged.Percentile(50), 0.0);
  EXPECT_EQ(merged.Percentile(99), 0.0);
  EXPECT_EQ(merged.Mean(), 0.0);
  // A single-bucket "window" still works (degenerates to an epoch that
  // clears on every rotation).
  WindowedHistogram one(1);
  one.Record(7);
  EXPECT_EQ(one.WindowMerged().count(), 1u);
  one.Rotate();
  EXPECT_EQ(one.WindowMerged().count(), 0u);
}

// --- rings -----------------------------------------------------------

TEST(SlowQueryRingTest, DropsOldestKeepsTotal) {
  SlowQueryRing ring(3);
  for (int i = 0; i < 5; ++i) {
    SlowQueryRecord r;
    r.latency_ns = static_cast<uint64_t>(i);
    r.atom = "q" + std::to_string(i);
    ring.Add(std::move(r));
  }
  EXPECT_EQ(ring.total(), 5u);
  std::vector<SlowQueryRecord> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  // Oldest-first, and the two oldest were evicted.
  EXPECT_EQ(kept[0].atom, "q2");
  EXPECT_EQ(kept[1].atom, "q3");
  EXPECT_EQ(kept[2].atom, "q4");
}

TEST(SampleRingTest, LatestAndOldestWithinWindow) {
  SampleRing ring(3);
  for (uint64_t t : {100u, 200u, 300u, 400u}) {  // 100 evicted
    auto s = std::make_shared<TelemetrySample>();
    s->ticks = t;
    ring.Add(std::move(s));
  }
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->ticks, 400u);
  // Window of 150 ticks back from now=450 admits 300 and 400 only.
  auto oldest = ring.OldestWithin(450, 150);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->ticks, 300u);
  // A window nothing satisfies.
  EXPECT_EQ(ring.OldestWithin(1000, 100), nullptr);
  auto all = ring.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front()->ticks, 200u);
}

// --- health ----------------------------------------------------------

TEST(HealthTest, ThresholdsAndDisabledChecks) {
  HealthThresholds t;
  t.max_queue_depth = 10;
  t.max_lag_ms = 100;
  EXPECT_TRUE(EvaluateHealth(0, 0, t).ok);
  EXPECT_TRUE(EvaluateHealth(10, 100, t).ok);  // at the threshold: ok

  HealthVerdict deep = EvaluateHealth(11, 0, t);
  EXPECT_FALSE(deep.ok);
  ASSERT_EQ(deep.reasons.size(), 1u);
  EXPECT_NE(deep.reasons[0].find("queue depth 11"), std::string::npos);

  HealthVerdict both = EvaluateHealth(11, 101, t);
  EXPECT_FALSE(both.ok);
  EXPECT_EQ(both.reasons.size(), 2u);
  EXPECT_NE(both.ToString().find("degraded ("), std::string::npos);

  // Zero disables a check entirely.
  t.max_queue_depth = 0;
  t.max_lag_ms = 0;
  EXPECT_TRUE(EvaluateHealth(1u << 20, 1e9, t).ok);
  EXPECT_EQ(EvaluateHealth(0, 0, t).ToString(), "ok");
}

// --- exposition format -----------------------------------------------

TEST(ExpositionTest, NamesAndLabels) {
  EXPECT_EQ(SanitizeMetricName("serve.queue_depth"),
            "pdatalog_serve_queue_depth");
  EXPECT_EQ(SanitizeMetricName("worker.3.rows-examined"),
            "pdatalog_worker_3_rows_examined");
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// A strict line validator for the text exposition format, mirroring
// tools/check_exposition.py: every non-comment line is
// `name[{labels}] value`, names are legal, every samples' metric family
// has a preceding # TYPE line, and histogram bucket series are
// cumulative and closed by +Inf == _count.
void ValidateExposition(const std::string& text) {
  std::map<std::string, std::string> types;       // family -> type
  std::map<std::string, uint64_t> last_bucket;    // family -> cumulative
  std::map<std::string, uint64_t> inf_bucket;     // family -> +Inf value
  std::map<std::string, uint64_t> count_value;    // family -> _count
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    SCOPED_TRACE("line " + std::to_string(lineno) + ": " + line);
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, name, type;
      comment >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        ASSERT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram");
        ASSERT_EQ(types.count(name), 0u) << "duplicate TYPE";
        types[name] = type;
      }
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    std::string series = line.substr(0, space);
    std::string value_text = line.substr(space + 1);
    ASSERT_FALSE(value_text.empty());
    char* end = nullptr;
    double value = std::strtod(value_text.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable value";

    std::string name = series;
    std::string labels;
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}');
      name = series.substr(0, brace);
      labels = series.substr(brace + 1, series.size() - brace - 2);
    }
    ASSERT_FALSE(name.empty());
    for (size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      bool legal = std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_' || c == ':' ||
                   (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
      ASSERT_TRUE(legal) << "illegal name char '" << c << "'";
    }

    // Resolve the family: histogram samples append _bucket/_sum/_count.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        std::string base = name.substr(0, name.size() - s.size());
        if (types.count(base) != 0 && types[base] == "histogram") {
          family = base;
        }
      }
    }
    ASSERT_EQ(types.count(family), 1u) << "no # TYPE for " << family;

    if (types[family] == "histogram" && name == family + "_bucket") {
      ASSERT_NE(labels.find("le=\""), std::string::npos);
      uint64_t v = static_cast<uint64_t>(value);
      ASSERT_GE(v, last_bucket[family]) << "buckets must be cumulative";
      last_bucket[family] = v;
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket[family] = v;
      }
    }
    if (types[family] == "histogram" && name == family + "_count") {
      count_value[family] = static_cast<uint64_t>(value);
    }
  }
  for (const auto& [family, type] : types) {
    if (type != "histogram") continue;
    ASSERT_EQ(inf_bucket.count(family), 1u)
        << family << " missing +Inf bucket";
    ASSERT_EQ(inf_bucket[family], count_value[family])
        << family << " +Inf bucket must equal _count";
  }
}

TEST(ExpositionTest, RendersAndParsesBack) {
  MetricsRegistry m;
  m.AddCounter("serve.queries", 42);
  m.AddCounter("run.cross_tuples", 0);
  m.SetGauge("serve.queue_depth", 7);
  m.SetGauge("serve.maintain_lag_ms", 1.25);
  Histogram h;
  for (uint64_t v : {0u, 1u, 3u, 100u, 5000u}) h.Record(v);
  m.MergeHistogram("hist.query_ns", h);

  SlowQueryRecord slow;
  slow.atom = "anc(\"weird\\name\", X)";
  slow.epoch = 3;
  slow.scan_rows = 17;
  slow.latency_ns = 2500000;

  std::string text = ExpositionText(m, {slow});
  ValidateExposition(text);

  EXPECT_NE(text.find("# TYPE pdatalog_serve_queries_total counter\n"
                      "pdatalog_serve_queries_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdatalog_serve_queue_depth 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pdatalog_hist_query_ns histogram"),
            std::string::npos);
  // Bucket 0 holds the one zero; the +Inf bucket covers all five.
  EXPECT_NE(text.find("pdatalog_hist_query_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdatalog_hist_query_ns_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdatalog_hist_query_ns_count 5\n"),
            std::string::npos);
  // The slow-query series carries escaped labels.
  EXPECT_NE(text.find("pdatalog_slow_query_latency_ms{slot=\"0\","
                      "atom=\"anc(\\\"weird\\\\name\\\", X)\",epoch=\"3\","
                      "scan_rows=\"17\"} 2.5\n"),
            std::string::npos);
}

// --- engine integration ----------------------------------------------

TEST(EngineTelemetryTest, SampleCarriesGaugesWindowsAndRates) {
  ServerOptions options;
  options.sample_interval_ms = 0;  // no sampler thread; sample by hand
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerEngine* server = engine->get();

  ASSERT_TRUE(server->SubmitFactText("par(n1, n2)").ok());
  server->Flush();
  ASSERT_TRUE(server->QueryText("anc(n0, X)").ok());

  std::shared_ptr<const TelemetrySample> sample = server->SampleNow();
  ASSERT_NE(sample, nullptr);
  const MetricsRegistry& m = sample->metrics;
  EXPECT_EQ(m.counter("serve.queries"), 1u);
  EXPECT_EQ(m.counter("serve.updates_applied"), 1u);
  EXPECT_EQ(m.gauge("serve.epoch"), 2.0);
  EXPECT_EQ(m.gauge("serve.queue_depth"), 0.0);
  EXPECT_GE(m.gauge("serve.snapshot_age_ms"), 0.0);
  ASSERT_NE(m.FindHistogram("hist.query_ns"), nullptr);
  ASSERT_NE(m.FindHistogram("hist.query_window_ns"), nullptr);
  EXPECT_EQ(m.FindHistogram("hist.query_window_ns")->count(), 1u);
  ASSERT_NE(m.FindHistogram("hist.flush_wait_ns"), nullptr);
  EXPECT_EQ(m.counter("serve.flushes"), 1u);

  // The sample ring retains history; a second sample computes rates
  // against the first.
  EXPECT_EQ(server->SamplesCopy().size(), 1u);
  ASSERT_TRUE(server->QueryText("anc(n0, X)").ok());
  std::shared_ptr<const TelemetrySample> second = server->SampleNow();
  EXPECT_EQ(server->SamplesCopy().size(), 2u);
  EXPECT_EQ(server->latest_sample(), second);
  EXPECT_GE(second->metrics.gauge("serve.window_qps"), 0.0);

  // The full exposition of a live engine parses back.
  ValidateExposition(server->ExpositionText());
}

TEST(EngineTelemetryTest, SlowQueryRingCapturesRenderedAtoms) {
  ServerOptions options;
  options.sample_interval_ms = 0;
  options.slow_query_ms = 1e-6;  // 1 ns: every query is slow
  options.slow_ring = 4;
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server->QueryText("anc(n0, X)").ok());
  }
  std::vector<SlowQueryRecord> slow = server->SlowQueries();
  ASSERT_EQ(slow.size(), 4u);  // ring capacity, drop-oldest
  for (const SlowQueryRecord& r : slow) {
    EXPECT_EQ(r.atom, "anc(n0, X)");
    EXPECT_EQ(r.epoch, 1u);
    EXPECT_EQ(r.scan_rows, 1u);  // anc has one row
    EXPECT_EQ(r.result_rows, 1u);
  }
  std::shared_ptr<const TelemetrySample> sample = server->SampleNow();
  EXPECT_EQ(sample->metrics.counter("serve.slow_queries"), 6u);

  // `!stats` dumps the ring; /metrics exports it as a labeled family.
  std::string stats = server->StatsReport();
  EXPECT_NE(stats.find("slow queries"), std::string::npos);
  EXPECT_NE(stats.find("anc(n0, X)"), std::string::npos);
  std::string exposition = server->ExpositionText();
  EXPECT_NE(exposition.find("pdatalog_slow_query_latency_ms{slot=\"0\","
                            "atom=\"anc(n0, X)\""),
            std::string::npos);
  ValidateExposition(exposition);
}

TEST(EngineTelemetryTest, HealthFlipsUnderBacklogAndRecovers) {
  ServerOptions options;
  options.sample_interval_ms = 0;
  options.max_batch = 1;  // one evaluation cycle per queued fact
  options.health.max_queue_depth = 4;
  options.health.max_lag_ms = 0;  // queue check only (deterministic)
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();
  EXPECT_TRUE(server->Health().ok);
  EXPECT_EQ(HandleRequest(server, "!health").text, "ok health ok\n");

  // A burst far deeper than the threshold: each fact needs its own
  // maintenance cycle, so the queue outruns the drain.
  for (int i = 1; i <= 200; ++i) {
    ASSERT_TRUE(server
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
  }
  HealthVerdict during = server->Health();
  EXPECT_FALSE(during.ok);
  ASSERT_FALSE(during.reasons.empty());
  EXPECT_NE(during.reasons[0].find("queue depth"), std::string::npos);
  ProtocolReply reply = HandleRequest(server, "!health");
  EXPECT_EQ(reply.text.substr(0, 19), "ok health degraded ");

  // Recovery: once the backlog drains, the verdict returns to ok.
  server->Flush();
  EXPECT_TRUE(server->Health().ok);
  EXPECT_EQ(HandleRequest(server, "!health").text, "ok health ok\n");
}

// --- !watch ----------------------------------------------------------

TEST(WatchTest, ParsesArgumentsAndRejectsGarbage) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();

  ProtocolReply plain = HandleRequest(server, "!watch");
  EXPECT_TRUE(plain.watch);
  EXPECT_TRUE(plain.text.empty());
  EXPECT_EQ(plain.watch_interval_ms, 2000);
  EXPECT_EQ(plain.watch_count, 0u);

  ProtocolReply timed = HandleRequest(server, "!watch 0.5 3");
  EXPECT_TRUE(timed.watch);
  EXPECT_EQ(timed.watch_interval_ms, 500);
  EXPECT_EQ(timed.watch_count, 3u);

  for (const char* bad : {"!watch -1", "!watch 9999", "!watch abc",
                          "!watch 1 xyz", "!watch 1 2 3junk"}) {
    ProtocolReply reply = HandleRequest(server, bad);
    EXPECT_FALSE(reply.watch) << bad;
    EXPECT_EQ(reply.text.substr(0, 4), "err ") << bad;
  }
}

TEST(WatchTest, ServeLoopStreamsLinesThenOk) {
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram);
  ASSERT_TRUE(engine.ok());
  std::istringstream in("!watch 0 2\n!quit\n");
  std::ostringstream out;
  ServeLoop(engine->get(), in, out);
  std::string text = out.str();
  // Two watch lines, the closing ok, then the quit reply.
  size_t first = text.find("watch epoch=1 ");
  ASSERT_NE(first, std::string::npos) << text;
  size_t second = text.find("watch epoch=1 ", first + 1);
  ASSERT_NE(second, std::string::npos) << text;
  EXPECT_NE(text.find("health=ok"), std::string::npos);
  EXPECT_NE(text.find("\nok\nok bye\n"), std::string::npos) << text;
}

// --- HTTP endpoint ---------------------------------------------------

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One HTTP round trip: send the request, read to EOF (the server
// closes after responding).
std::string HttpGet(int port, const std::string& request_line) {
  int fd = ConnectLoopback(port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryHttpTest, ServesMetricsHealthAndErrors) {
  ServerOptions options;
  options.sample_interval_ms = 0;
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();
  ASSERT_TRUE(server->SubmitFactText("par(n1, n2)").ok());
  server->Flush();
  ASSERT_TRUE(server->QueryText("anc(n0, X)").ok());

  TelemetryHttpServer http(server);
  ASSERT_TRUE(http.Start(0).ok());
  ASSERT_GT(http.port(), 0);

  std::string metrics = HttpGet(http.port(), "GET /metrics HTTP/1.0");
  EXPECT_EQ(metrics.substr(0, 15), "HTTP/1.0 200 OK");
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  size_t body_at = metrics.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = metrics.substr(body_at + 4);
  EXPECT_NE(body.find("pdatalog_serve_queries_total 1"),
            std::string::npos);
  EXPECT_NE(body.find("pdatalog_serve_epoch 2"), std::string::npos);
  EXPECT_NE(body.find("pdatalog_hist_query_window_ns_bucket"),
            std::string::npos);
  EXPECT_NE(body.find("pdatalog_serve_maintain_lag_ms"),
            std::string::npos);
  ValidateExposition(body);
  // Content-Length matches the body exactly.
  size_t length_at = metrics.find("Content-Length: ");
  ASSERT_NE(length_at, std::string::npos);
  EXPECT_EQ(std::stoul(metrics.substr(length_at + 16)), body.size());

  std::string health = HttpGet(http.port(), "GET /health HTTP/1.0");
  EXPECT_EQ(health.substr(0, 15), "HTTP/1.0 200 OK");
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  // Query strings are ignored; bad paths and methods get clean errors.
  EXPECT_EQ(HttpGet(http.port(), "GET /health?probe=1 HTTP/1.0")
                .substr(0, 15),
            "HTTP/1.0 200 OK");
  EXPECT_EQ(HttpGet(http.port(), "GET /nope HTTP/1.0").substr(0, 12),
            "HTTP/1.0 404");
  EXPECT_EQ(HttpGet(http.port(), "POST /metrics HTTP/1.0").substr(0, 12),
            "HTTP/1.0 405");
  EXPECT_EQ(HttpGet(http.port(), "garbage").substr(0, 12),
            "HTTP/1.0 400");

  http.Stop();
}

TEST(TelemetryHttpTest, HealthReturns503WhenDegraded) {
  ServerOptions options;
  options.sample_interval_ms = 0;
  options.max_batch = 1;
  options.health.max_queue_depth = 4;
  options.health.max_lag_ms = 0;
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();
  TelemetryHttpServer http(server);
  ASSERT_TRUE(http.Start(0).ok());

  for (int i = 1; i <= 200; ++i) {
    ASSERT_TRUE(server
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
  }
  std::string during = HttpGet(http.port(), "GET /health HTTP/1.0");
  EXPECT_EQ(during.substr(0, 12), "HTTP/1.0 503");
  EXPECT_NE(during.find("degraded"), std::string::npos);

  server->Flush();
  std::string after = HttpGet(http.port(), "GET /health HTTP/1.0");
  EXPECT_EQ(after.substr(0, 15), "HTTP/1.0 200 OK");
  http.Stop();
}

// The sampler thread races real queries, updates, flushes, and scrapes;
// runs under TSan in CI.
TEST(EngineTelemetryTest, BackgroundSamplerRacesTraffic) {
  ServerOptions options;
  options.sample_interval_ms = 1;  // aggressive for the test
  options.window_intervals = 4;
  options.trace = true;  // sampler also reads trace drop counters live
  options.slow_query_ms = 1e-6;
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(kChainProgram, options);
  ASSERT_TRUE(engine.ok());
  ServerEngine* server = engine->get();

  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(server
                    ->SubmitFactText("par(" + NodeName(i) + ", " +
                                     NodeName(i + 1) + ")")
                    .ok());
    ASSERT_TRUE(server->QueryText("anc(n0, X)").ok());
    if (i % 10 == 0) {
      server->Flush();
      ValidateExposition(server->ExpositionText());
    }
  }
  server->Flush();
  server->Shutdown();
  // The sampler published at least one sample on its own clock.
  EXPECT_GE(server->SamplesCopy().size(), 1u);
  ValidateExposition(server->ExpositionText());
}

}  // namespace
}  // namespace pdatalog
