// Tests for the post-run trace analyzer (src/obs/analyze.h): busy/idle
// folding, skew, critical-path reconstruction over a hand-built trace
// with known geometry, and the empirical communication matrices of the
// paper's Section 4 schemes (Example 2 broadcasts all-to-all; Example 3
// with a mod-P discriminating function over a chain talks only to the
// successor processor).
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/report.h"
#include "core/rewrite.h"
#include "gtest/gtest.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;

void Append(TraceRing* ring, uint64_t ts, TracePhase phase,
            TraceEventKind kind, uint32_t arg = 0) {
  ring->Append(TraceEvent{ts, arg, phase, kind});
}

// Two workers, one frame, fully hand-built: worker 0 initializes for
// 100 ns and sends a frame at t=90; worker 1 idles for 200 ns, drains
// the frame (recv at t=210), starts round 1, and probes until t=400.
// The critical path must be w0 [0, 90] -> flow edge -> w1 [200, 400].
ProfileReport HandBuiltTwoWorkerReport(Tracer* tracer) {
  const uint64_t e = tracer->epoch_ticks();
  TraceRing* r0 = tracer->ring(0);
  Append(r0, e + 0, TracePhase::kInit, TraceEventKind::kBegin);
  Append(r0, e + 90, TracePhase::kFlowSend, TraceEventKind::kInstant,
         PackFlowArg(1, 0));
  Append(r0, e + 100, TracePhase::kInit, TraceEventKind::kEnd);

  TraceRing* r1 = tracer->ring(1);
  Append(r1, e + 0, TracePhase::kIdle, TraceEventKind::kBegin);
  Append(r1, e + 200, TracePhase::kIdle, TraceEventKind::kEnd);
  Append(r1, e + 200, TracePhase::kDrain, TraceEventKind::kBegin);
  Append(r1, e + 210, TracePhase::kFlowRecv, TraceEventKind::kInstant,
         PackFlowArg(0, 0));
  Append(r1, e + 250, TracePhase::kDrain, TraceEventKind::kEnd);
  Append(r1, e + 250, TracePhase::kRound, TraceEventKind::kInstant, 1);
  Append(r1, e + 250, TracePhase::kProbe, TraceEventKind::kBegin);
  Append(r1, e + 400, TracePhase::kProbe, TraceEventKind::kEnd);
  return AnalyzeTrace(*tracer);
}

TEST(AnalyzeTest, HandBuiltBusyIdleAndSkew) {
  Tracer tracer(2, 64);
  ProfileReport report = HandBuiltTwoWorkerReport(&tracer);

  EXPECT_EQ(report.num_workers, 2);
  EXPECT_EQ(report.span_ns, 400u);
  EXPECT_EQ(report.dropped, 0u);
  ASSERT_EQ(report.totals.size(), 2u);
  EXPECT_EQ(report.totals[0].busy_ns, 100u);
  EXPECT_EQ(report.totals[0].idle_ns, 0u);
  EXPECT_EQ(report.totals[1].busy_ns, 200u);  // drain 50 + probe 150
  EXPECT_EQ(report.totals[1].idle_ns, 200u);
  EXPECT_EQ(
      report.totals[0].phase_ns[static_cast<size_t>(TracePhase::kInit)],
      100u);
  EXPECT_EQ(
      report.totals[1].phase_ns[static_cast<size_t>(TracePhase::kDrain)],
      50u);
  EXPECT_EQ(
      report.totals[1].phase_ns[static_cast<size_t>(TracePhase::kProbe)],
      150u);

  // max 200 over mean 150.
  EXPECT_NEAR(report.skew_ratio, 200.0 / 150.0, 1e-9);
  EXPECT_EQ(report.straggler, 1);
}

TEST(AnalyzeTest, HandBuiltRoundAttribution) {
  Tracer tracer(2, 64);
  ProfileReport report = HandBuiltTwoWorkerReport(&tracer);

  // Rounds: 0 (init window: w0 init, w1 idle+drain) and 1 (w1 probe).
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].workers[0].busy_ns, 100u);
  EXPECT_EQ(report.rounds[0].workers[1].busy_ns, 50u);
  EXPECT_EQ(report.rounds[1].workers[0].busy_ns, 0u);
  EXPECT_EQ(report.rounds[1].workers[1].busy_ns, 150u);
  // Round 1: max 150 over mean 75.
  EXPECT_NEAR(report.rounds[1].skew_ratio, 2.0, 1e-9);
  EXPECT_EQ(report.rounds[1].straggler, 1);
}

TEST(AnalyzeTest, HandBuiltCriticalPathFollowsFlowEdge) {
  Tracer tracer(2, 64);
  ProfileReport report = HandBuiltTwoWorkerReport(&tracer);

  // w0's init up to the send instant, then the flow edge into w1's
  // drain+probe interval. 90 + 200 = 290 ns of path.
  ASSERT_EQ(report.critical_path.size(), 2u);
  EXPECT_EQ(report.critical_path[0].worker, 0);
  EXPECT_EQ(report.critical_path[0].begin_ns, 0u);
  EXPECT_EQ(report.critical_path[0].end_ns, 90u);
  EXPECT_EQ(report.critical_path[0].from_worker, -1);
  EXPECT_EQ(report.critical_path[1].worker, 1);
  EXPECT_EQ(report.critical_path[1].begin_ns, 200u);
  EXPECT_EQ(report.critical_path[1].end_ns, 400u);
  EXPECT_EQ(report.critical_path[1].from_worker, 0);
  EXPECT_EQ(report.critical_path_ns, 290u);

  std::string text = report.ToText();
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("after frame from worker 0"), std::string::npos);
}

TEST(AnalyzeTest, HandBuiltJsonMentionsEverySection) {
  Tracer tracer(2, 64);
  ProfileReport report = HandBuiltTwoWorkerReport(&tracer);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"skew_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path_ns\": 290"), std::string::npos);
}

TEST(AnalyzeTest, EmptyTracerYieldsNeutralReport) {
  Tracer tracer(3, 16);
  ProfileReport report = AnalyzeTrace(tracer);
  EXPECT_EQ(report.num_workers, 3);
  EXPECT_EQ(report.span_ns, 0u);
  EXPECT_DOUBLE_EQ(report.skew_ratio, 1.0);
  EXPECT_TRUE(report.critical_path.empty());
  // Renders without crashing even with nothing recorded.
  EXPECT_NE(report.ToText().find("profile:"), std::string::npos);
}

// Example 2 fragments par arbitrarily and broadcasts every derived
// tuple: the empirical communication matrix must be all-to-all (every
// off-diagonal entry positive), matching the Section 5 network graph.
TEST(AnalyzeTest, Example2MatrixIsAllToAll) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 16);
  const int P = 3;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, P);

  Tracer tracer(P);
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ProfileReport report = AnalyzeRun(tracer, MakeProfileContext(*result));
  ASSERT_EQ(report.tuples_matrix.size(), static_cast<size_t>(P));
  for (int i = 0; i < P; ++i) {
    for (int j = 0; j < P; ++j) {
      if (i == j) continue;
      EXPECT_GT(report.tuples_matrix[i][j], 0u)
          << "no tuples " << i << " -> " << j << " under broadcast";
    }
  }
  EXPECT_GE(report.skew_ratio, 1.0);
  EXPECT_GT(report.rounds.size(), 1u);
  uint64_t round_tuples = 0;
  for (const RoundProfile& r : report.rounds) round_tuples += r.tuples_sent;
  EXPECT_EQ(round_tuples, result->cross_tuples);
}

// Example 3 with the paper's h(Z) = Z mod P over a chain of raw
// integers: the repo's ancestor sirup is left-recursive
// (anc(X, Y) :- par(X, Z), anc(Z, Y)), so a derived anc(V, _) is
// consumed only by the firing that extends it backwards to V - 1,
// which lives on processor (V - 1) mod P — the network graph
// degenerates to a ring, each processor talking only to its
// predecessor.
TEST(AnalyzeTest, Example3ModuloChainMatrixIsSuccessorRing) {
  auto setup = MakeAncestorSetup();
  SymbolTable& symbols = setup->symbols;
  constexpr int P = 4;
  constexpr int N = 24;
  Relation& par = setup->edb.GetOrCreate(symbols.Intern("par"), 2);
  for (Value i = 0; i < N; ++i) par.Insert(Tuple{i, i + 1});

  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Z")};
  options.v_e = {symbols.Intern("X")};
  options.h = DiscriminatingFunction::Custom(
      [](const Value* v, int) { return static_cast<int>(v[0] % P); }, P);
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, P, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Tracer tracer(P);
  ParallelOptions popts;
  popts.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(*bundle, &setup->edb, popts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Sanity: the full transitive closure of a 24-edge chain.
  EXPECT_EQ(result->pooled_tuples,
            static_cast<uint64_t>(N) * (N + 1) / 2);

  ProfileReport report = AnalyzeRun(tracer, MakeProfileContext(*result));
  ASSERT_EQ(report.tuples_matrix.size(), static_cast<size_t>(P));
  bool any_ring_traffic = false;
  for (int i = 0; i < P; ++i) {
    for (int j = 0; j < P; ++j) {
      if (i == j) continue;
      if (j == (i + P - 1) % P) {
        any_ring_traffic |= report.tuples_matrix[i][j] > 0;
      } else {
        EXPECT_EQ(report.tuples_matrix[i][j], 0u)
            << "unexpected tuples " << i << " -> " << j
            << " outside the ring";
      }
    }
  }
  EXPECT_TRUE(any_ring_traffic);
}

// On a real multi-round run the critical path must land inside the
// span, chain monotonically, and start at a segment with no inbound
// flow edge.
TEST(AnalyzeTest, RealRunCriticalPathIsWellFormed) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 20);
  const int P = 3;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);

  Tracer tracer(P);
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ProfileReport report = AnalyzeRun(tracer, MakeProfileContext(*result));
  ASSERT_FALSE(report.critical_path.empty());
  EXPECT_EQ(report.critical_path.front().from_worker, -1);
  uint64_t prev_end = 0;
  for (const CriticalPathSegment& seg : report.critical_path) {
    EXPECT_LE(seg.begin_ns, seg.end_ns);
    EXPECT_LE(seg.end_ns, report.span_ns);
    EXPECT_GE(seg.end_ns, prev_end);
    prev_end = seg.end_ns;
    EXPECT_GE(seg.worker, 0);
    EXPECT_LT(seg.worker, P);
  }
  EXPECT_GT(report.critical_path_ns, 0u);
  EXPECT_LE(report.critical_path_ns, report.span_ns);
}

}  // namespace
}  // namespace pdatalog
