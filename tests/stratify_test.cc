#include "eval/stratify.h"

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

// Index of the stratum containing predicate `name`, or -1.
int StratumOf(const Stratification& strat, const SymbolTable& symbols,
              const char* name) {
  Symbol sym = symbols.Lookup(name);
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    for (Symbol p : strat.strata[s]) {
      if (p == sym) return static_cast<int>(s);
    }
  }
  return -1;
}

TEST(StratifyTest, LayeredViewsOrderedBottomUp) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "lvl1(X) :- base(X).\n"
      "lvl2(X) :- lvl1(X).\n"
      "lvl3(X) :- lvl2(X).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Stratification strat = Stratify(program, info);
  ASSERT_EQ(strat.strata.size(), 3u);
  EXPECT_LT(StratumOf(strat, symbols, "lvl1"),
            StratumOf(strat, symbols, "lvl2"));
  EXPECT_LT(StratumOf(strat, symbols, "lvl2"),
            StratumOf(strat, symbols, "lvl3"));
}

TEST(StratifyTest, MutualRecursionSharesStratum) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n"
      "top(X) :- even(X).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Stratification strat = Stratify(program, info);
  ASSERT_EQ(strat.strata.size(), 2u);
  EXPECT_EQ(StratumOf(strat, symbols, "even"),
            StratumOf(strat, symbols, "odd"));
  EXPECT_GT(StratumOf(strat, symbols, "top"),
            StratumOf(strat, symbols, "even"));
}

TEST(StratifyTest, SelfRecursionIsItsOwnComponent) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Stratification strat = Stratify(program, info);
  ASSERT_EQ(strat.strata.size(), 1u);
  EXPECT_EQ(strat.rules_by_stratum[0].size(), 2u);
}

TEST(StratifyTest, RulesAssignedToHeadStratum) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "a(X) :- base(X).\n"
      "b(X) :- a(X).\n"
      "b(X) :- b(X), a(X).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Stratification strat = Stratify(program, info);
  ASSERT_EQ(strat.strata.size(), 2u);
  int a = StratumOf(strat, symbols, "a");
  int b = StratumOf(strat, symbols, "b");
  EXPECT_EQ(strat.rules_by_stratum[a], (std::vector<int>{0}));
  EXPECT_EQ(strat.rules_by_stratum[b], (std::vector<int>{1, 2}));
}

TEST(StratifyTest, StratifiedEvaluationMatchesMonolithic) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    SymbolTable symbols;
    RandomProgramOptions gen;
    gen.seed = seed;
    gen.num_derived = 4;
    StatusOr<Program> program = GenerateRandomProgram(&symbols, gen);
    ASSERT_TRUE(program.ok());
    ProgramInfo info = ValidateOrDie(*program);

    Database mono_db;
    ASSERT_TRUE(mono_db.LoadFacts(*program).ok());
    EvalStats mono;
    ASSERT_TRUE(
        SemiNaiveEvaluate(*program, info, &mono_db, &mono).ok());

    Database strat_db;
    ASSERT_TRUE(strat_db.LoadFacts(*program).ok());
    EvalOptions options;
    options.stratified = true;
    EvalStats strat;
    ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &strat_db, &strat,
                                  nullptr, options)
                    .ok());

    for (Symbol p : info.derived) {
      EXPECT_EQ(strat_db.Find(p)->ToSortedString(symbols),
                mono_db.Find(p)->ToSortedString(symbols))
          << "seed " << seed << " pred " << symbols.Name(p);
    }
    EXPECT_EQ(strat.firings, mono.firings) << "seed " << seed;
    EXPECT_EQ(strat.tuples_inserted, mono.tuples_inserted)
        << "seed " << seed;
  }
}

TEST(StratifyTest, StratifiedSavesWastedVariantRuns) {
  // Layered closures: the top layer's rules should not run during the
  // bottom layer's many rounds. rows_examined is the work proxy.
  SymbolTable symbols;
  const char* source =
      "r1(X, Y) :- e(X, Y).\n"
      "r1(X, Y) :- e(X, Z), r1(Z, Y).\n"
      "r2(X, Y) :- r1(X, Y).\n"
      "r2(X, Y) :- r1(X, Z), r2(Z, Y).\n";
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  auto run = [&](bool stratified) {
    Database db;
    Relation& e = db.GetOrCreate(symbols.Lookup("e"), 2);
    for (Value i = 0; i < 30; ++i) {
      e.Insert(Tuple{symbols.Intern("n" + std::to_string(i)),
                     symbols.Intern("n" + std::to_string(i + 1))});
    }
    EvalOptions options;
    options.stratified = stratified;
    EvalStats stats;
    EXPECT_TRUE(
        SemiNaiveEvaluate(program, info, &db, &stats, nullptr, options)
            .ok());
    return stats;
  };

  EvalStats mono = run(false);
  EvalStats strat = run(true);
  EXPECT_EQ(strat.firings, mono.firings);
  EXPECT_LE(strat.rows_examined, mono.rows_examined);
}

TEST(StratifyTest, EmptyProgram) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(a).\n", &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Stratification strat = Stratify(program, info);
  EXPECT_TRUE(strat.strata.empty());
}

}  // namespace
}  // namespace pdatalog
