#include "eval/plan.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;

// Minimal evaluator mapping every sequence to (sum of values) % mod.
class ModEvaluator : public ConstraintEvaluator {
 public:
  explicit ModEvaluator(int mod) : mod_(mod) {}
  int Evaluate(int, const Value* values, int n) const override {
    uint64_t sum = 0;
    for (int i = 0; i < n; ++i) sum += values[i];
    return static_cast<int>(sum % mod_);
  }

 private:
  int mod_;
};

std::vector<Tuple> RunJoin(const CompiledRule& compiled,
                       const std::vector<AtomInput>& inputs,
                       const ConstraintEvaluator* eval = nullptr,
                       ExecStats* stats_out = nullptr) {
  std::vector<Tuple> out;
  ExecStats stats;
  JoinExecutor::Execute(compiled, inputs, eval,
                        [&](const Tuple& t) { out.push_back(t); }, &stats);
  if (stats_out) *stats_out = stats;
  return out;
}

TEST(PlanTest, SingleAtomScan) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Y) :- q(Y, X).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());

  Relation q(2);
  q.Insert(Tuple{1, 2});
  q.Insert(Tuple{3, 4});
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 0, q.size()}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Tuple{2, 1}));  // head swaps columns
  EXPECT_EQ(out[1], (Tuple{4, 3}));
}

TEST(PlanTest, TwoAtomJoinUsesIndex) {
  SymbolTable symbols;
  Program program = ParseOrDie("r(X, Z) :- a(X, Y), b(Y, Z).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  // Second step should probe b on its first column.
  ASSERT_EQ(compiled->required_indexes().size(), 1u);
  EXPECT_EQ(compiled->required_indexes()[0].second, 0b01u);

  Relation a(2), b(2);
  a.Insert(Tuple{1, 10});
  a.Insert(Tuple{2, 20});
  b.Insert(Tuple{10, 100});
  b.Insert(Tuple{10, 101});
  b.Insert(Tuple{30, 300});
  b.EnsureIndex(0b01);

  std::vector<Tuple> out =
      RunJoin(*compiled, {{&a, 0, a.size()}, {&b, 0, b.size()}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Tuple{1, 100}));
  EXPECT_EQ(out[1], (Tuple{1, 101}));
}

TEST(PlanTest, ConstantInBodyFilters) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X, c).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());

  Value c = symbols.Lookup("c");
  Value d = symbols.Intern("d");
  Relation q(2);
  q.Insert(Tuple{1, c});
  q.Insert(Tuple{2, d});
  q.EnsureIndex(0b10);
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 0, q.size()}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{1}));
}

TEST(PlanTest, ConstantInHead) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, tag) :- q(X).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation q(1);
  q.Insert(Tuple{7});
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 0, q.size()}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1], symbols.Lookup("tag"));
}

TEST(PlanTest, RepeatedVariableWithinAtom) {
  SymbolTable symbols;
  Program program = ParseOrDie("diag(X) :- q(X, X).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  // The repeat is checked post-fetch, not via the index.
  EXPECT_TRUE(compiled->required_indexes().empty());

  Relation q(2);
  q.Insert(Tuple{1, 1});
  q.Insert(Tuple{1, 2});
  q.Insert(Tuple{3, 3});
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 0, q.size()}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Tuple{1}));
  EXPECT_EQ(out[1], (Tuple{3}));
}

TEST(PlanTest, RepeatedVariableAcrossAtoms) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X), r(X).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation q(1), r(1);
  q.Insert(Tuple{1});
  q.Insert(Tuple{2});
  r.Insert(Tuple{2});
  r.Insert(Tuple{3});
  r.EnsureIndex(0b01);
  std::vector<Tuple> out =
      RunJoin(*compiled, {{&q, 0, q.size()}, {&r, 0, r.size()}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{2}));
}

TEST(PlanTest, RowRangesRestrictScan) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation q(1);
  for (Value i = 0; i < 10; ++i) q.Insert(Tuple{i});
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 3, 6}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Tuple{3}));
  EXPECT_EQ(out[2], (Tuple{5}));
}

TEST(PlanTest, RowRangesRestrictIndexProbes) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Z) :- a(X, Y), b(Y, Z).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation a(2), b(2);
  a.Insert(Tuple{1, 5});
  b.Insert(Tuple{5, 50});  // row 0
  b.Insert(Tuple{5, 51});  // row 1
  b.Insert(Tuple{5, 52});  // row 2
  b.EnsureIndex(0b01);
  // Only rows [1, 2) of b are visible.
  std::vector<Tuple> out = RunJoin(*compiled, {{&a, 0, a.size()}, {&b, 1, 2}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{1, 51}));
}

TEST(PlanTest, PreferredFirstControlsJoinOrder) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Z) :- a(X, Y), b(Y, Z).\n", &symbols);
  StatusOr<CompiledRule> delta_second =
      CompiledRule::Compile(program.rules[0], /*preferred_first=*/1);
  ASSERT_TRUE(delta_second.ok());
  EXPECT_EQ(delta_second->steps()[0].body_index, 1);
  // Now atom a is probed on column 1 (Y bound by b).
  ASSERT_EQ(delta_second->required_indexes().size(), 1u);
  EXPECT_EQ(delta_second->required_indexes()[0].second, 0b10u);
}

TEST(PlanTest, HashConstraintFilters) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  Rule rule = program.rules[0];
  HashConstraint c;
  c.function = 0;
  c.vars = {symbols.Lookup("X")};
  c.target = 0;
  rule.constraints.push_back(c);

  StatusOr<CompiledRule> compiled = CompiledRule::Compile(rule);
  ASSERT_TRUE(compiled.ok());
  Relation q(1);
  for (Value i = 0; i < 10; ++i) q.Insert(Tuple{i});
  ModEvaluator eval(2);  // keeps even values only
  std::vector<Tuple> out = RunJoin(*compiled, {{&q, 0, q.size()}}, &eval);
  ASSERT_EQ(out.size(), 5u);
  for (const Tuple& t : out) EXPECT_EQ(t[0] % 2, 0u);
}

TEST(PlanTest, ConstraintCheckedAsEarlyAsPossible) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Y) :- q(X), r(Y).\n", &symbols);
  Rule rule = program.rules[0];
  HashConstraint c;
  c.function = 0;
  c.vars = {symbols.Lookup("X")};
  c.target = 0;
  rule.constraints.push_back(c);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(rule);
  ASSERT_TRUE(compiled.ok());
  // X is bound by the first step, so the constraint is attached there.
  ASSERT_FALSE(compiled->steps().empty());
  EXPECT_FALSE(compiled->steps()[0].constraints_ready.empty());
}

TEST(PlanTest, FiringsCountedPerSubstitution) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- a(X, Y).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation a(2);
  a.Insert(Tuple{1, 10});
  a.Insert(Tuple{1, 11});  // same head tuple, distinct substitution
  ExecStats stats;
  std::vector<Tuple> out = RunJoin(*compiled, {{&a, 0, a.size()}}, nullptr,
                               &stats);
  EXPECT_EQ(out.size(), 2u);  // sink sees both firings
  EXPECT_EQ(stats.firings, 2u);
}

TEST(PlanTest, UnboundConstraintVarRejectedAtCompile) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  Rule rule = program.rules[0];
  HashConstraint c;
  c.function = 0;
  c.vars = {symbols.Intern("NOPE")};
  c.target = 0;
  rule.constraints.push_back(c);
  EXPECT_FALSE(CompiledRule::Compile(rule).ok());
}

TEST(PlanTest, EmptyBodyFiresOnce) {
  SymbolTable symbols;
  Rule rule;
  rule.head = MakeAtom(symbols, "unit", {"a"});
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(rule);
  ASSERT_TRUE(compiled.ok());
  std::vector<Tuple> out = RunJoin(*compiled, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Tuple{symbols.Lookup("a")});
}

TEST(PlanTest, CartesianProductWithoutSharedVars) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Y) :- q(X), r(Y).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  Relation q(1), r(1);
  q.Insert(Tuple{1});
  q.Insert(Tuple{2});
  r.Insert(Tuple{8});
  r.Insert(Tuple{9});
  std::vector<Tuple> out =
      RunJoin(*compiled, {{&q, 0, q.size()}, {&r, 0, r.size()}});
  EXPECT_EQ(out.size(), 4u);
}

TEST(PlanTest, DebugStringShowsAccessPaths) {
  SymbolTable symbols;
  Program program = ParseOrDie("r(X, Z) :- a(X, Y), b(Y, Z).\n", &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());
  std::string plan = compiled->DebugString(symbols);
  EXPECT_NE(plan.find("1. scan a(X, Y)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("2. probe b(Y, Z) on (Y)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("emit r(X, Z)"), std::string::npos) << plan;
}

TEST(PlanTest, DebugStringShowsConstraintChecks) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  Rule rule = program.rules[0];
  HashConstraint c;
  c.function = 0;
  c.label = symbols.Intern("h");
  c.vars = {symbols.Lookup("X")};
  c.target = 2;
  rule.constraints.push_back(c);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(rule);
  ASSERT_TRUE(compiled.ok());
  std::string plan = compiled->DebugString(symbols);
  EXPECT_NE(plan.find("[check h(X) = 2]"), std::string::npos) << plan;
}

}  // namespace
}  // namespace pdatalog
