// Shared helpers for the test suites.
#ifndef PDATALOG_TESTS_TEST_UTIL_H_
#define PDATALOG_TESTS_TEST_UTIL_H_

#include <string>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "datalog/validate.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "storage/database.h"

namespace pdatalog {
namespace testing_util {

// Parses `source` or fails the test.
inline Program ParseOrDie(std::string_view source, SymbolTable* symbols) {
  StatusOr<Program> program = ParseProgram(source, symbols);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

inline ProgramInfo ValidateOrDie(const Program& program) {
  ProgramInfo info;
  Status status = Validate(program, &info);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return info;
}

// Runs a full sequential semi-naive evaluation of `source` with its
// inline facts; returns the database (EDB + IDB).
inline Database EvalOrDie(std::string_view source, SymbolTable* symbols,
                          EvalStats* stats = nullptr) {
  Program program = ParseOrDie(source, symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  EXPECT_TRUE(db.LoadFacts(program).ok());
  EvalStats local_stats;
  Status status = SemiNaiveEvaluate(program, info, &db,
                                    stats ? stats : &local_stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return db;
}

// Sorted dump of a relation, "" if the relation does not exist.
inline std::string Dump(const Database& db, const SymbolTable& symbols,
                        std::string_view predicate) {
  Symbol sym = symbols.Lookup(predicate);
  if (sym == kInvalidSymbol) return "";
  const Relation* rel = db.Find(sym);
  return rel == nullptr ? "" : rel->ToSortedString(symbols);
}

// The classic ancestor linear sirup.
inline constexpr char kAncestorProgram[] = R"(
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
)";

}  // namespace testing_util
}  // namespace pdatalog

#endif  // PDATALOG_TESTS_TEST_UTIL_H_
