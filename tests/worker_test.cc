// Direct unit tests of the Worker: init/step semantics, pattern-matched
// sending (including constants and repeated variables in the recursive
// atom), self-channel accounting, and undetermined-broadcast behaviour.
#include "core/worker.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::AncestorScheme;
using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

struct WorkerRig {
  std::unique_ptr<CommNetwork> network;
  std::unique_ptr<TerminationDetector> detector;
  std::vector<std::unique_ptr<Worker>> workers;

  static WorkerRig Create(const RewriteBundle& bundle, Database* edb) {
    WorkerRig rig;
    rig.network = std::make_unique<CommNetwork>(bundle.num_processors);
    rig.detector =
        std::make_unique<TerminationDetector>(bundle.num_processors);
    StatusOr<PartitionResult> partition = PartitionBases(bundle, *edb);
    EXPECT_TRUE(partition.ok());
    for (int i = 0; i < bundle.num_processors; ++i) {
      StatusOr<std::unique_ptr<Worker>> worker = Worker::Create(
          &bundle, i, edb, std::move(partition->fragments[i]),
          rig.network.get(), rig.detector.get());
      EXPECT_TRUE(worker.ok()) << worker.status().ToString();
      rig.workers.push_back(std::move(*worker));
    }
    return rig;
  }

  // Runs init + round-robin steps to quiescence.
  void RunToQuiescence() {
    for (auto& w : workers) ASSERT_TRUE(w->Init().ok());
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& w : workers) {
        StatusOr<bool> stepped = w->Step();
        ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
        if (*stepped) progress = true;
      }
    }
  }
};

TEST(WorkerTest, StepWithoutInputIsNoOp) {
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  // No Init, no data: stepping does nothing.
  StatusOr<bool> stepped = rig.workers[0]->Step();
  ASSERT_TRUE(stepped.ok());
  EXPECT_FALSE(*stepped);
  EXPECT_EQ(rig.workers[0]->stats().rounds, 0);
}

TEST(WorkerTest, InitFiresExitRulesAndRoutes) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  rig.workers[0]->Init();
  rig.workers[1]->Init();
  uint64_t sent = 0;
  for (auto& w : rig.workers) {
    sent += w->stats().sent_cross + w->stats().sent_self;
  }
  // Every exit tuple (4 of them) is routed exactly once (Example 3).
  EXPECT_EQ(sent, 4u);
}

TEST(WorkerTest, QuiescenceComputesClosure) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 6);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  rig.RunToQuiescence();
  size_t total = 0;
  for (auto& w : rig.workers) {
    total += w->OutputRelation(setup->anc()).size();
  }
  EXPECT_EQ(total, 21u);  // 6*7/2, no duplicates across workers here
}

TEST(WorkerTest, ConstantInRecursiveAtomFiltersSends) {
  // t(X, Y) :- t(Y, c), b(X, Y): only tuples whose second column is the
  // constant c can ever fire a processing rule, so only those are sent.
  SymbolTable symbols;
  Program program = ParseOrDie(
      "t(X, Y) :- s(X, Y).\n"
      "t(X, Y) :- t(Y, c), b(X, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Y")};
  options.v_e = {symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  Value c = symbols.Lookup("c");
  Value n1 = symbols.Intern("n1");
  Value n2 = symbols.Intern("n2");
  Relation& s = edb.GetOrCreate(symbols.Lookup("s"), 2);
  s.Insert(Tuple{n1, c});   // matches the pattern t(Y, c)
  s.Insert(Tuple{n1, n2});  // does not
  s.Insert(Tuple{n2, c});   // matches

  WorkerRig rig = WorkerRig::Create(*bundle, &edb);
  rig.workers[0]->Init();
  rig.workers[1]->Init();
  uint64_t sent = 0;
  for (auto& w : rig.workers) {
    sent += w->stats().sent_cross + w->stats().sent_self;
  }
  EXPECT_EQ(sent, 2u);  // only the two pattern-matching tuples travel
}

TEST(WorkerTest, RepeatedVariableInRecursiveAtomFiltersSends) {
  // t(X, Y) :- t(Y, Y), b(X, Y): only diagonal tuples are consumable.
  SymbolTable symbols;
  Program program = ParseOrDie(
      "t(X, Y) :- s(X, Y).\n"
      "t(X, Y) :- t(Y, Y), b(X, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Y")};
  options.v_e = {symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  Value n1 = symbols.Intern("n1");
  Value n2 = symbols.Intern("n2");
  Relation& s = edb.GetOrCreate(symbols.Lookup("s"), 2);
  s.Insert(Tuple{n1, n1});  // diagonal: consumable
  s.Insert(Tuple{n1, n2});  // not

  WorkerRig rig = WorkerRig::Create(*bundle, &edb);
  rig.workers[0]->Init();
  rig.workers[1]->Init();
  uint64_t sent = 0;
  for (auto& w : rig.workers) {
    sent += w->stats().sent_cross + w->stats().sent_self;
  }
  EXPECT_EQ(sent, 1u);
}

TEST(WorkerTest, BroadcastCountsOnUndeterminedSends) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 5);
  // Example 2: v(r) = <X, Z>, X not in anc(Z, Y) => broadcast.
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, 3);
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  rig.RunToQuiescence();
  uint64_t broadcasts = 0;
  uint64_t messages = 0;
  uint64_t out = 0;
  for (auto& w : rig.workers) {
    broadcasts += w->stats().broadcasts;
    messages += w->stats().sent_cross + w->stats().sent_self;
    out += w->stats().out_inserted;
  }
  EXPECT_EQ(broadcasts, out);       // every output tuple is broadcast
  EXPECT_EQ(messages, out * 3);     // to all three processors
}

TEST(WorkerTest, ReceivedDuplicatesDoNotRefire) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, 2);
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  rig.RunToQuiescence();
  // Broadcast delivers each tuple to both workers; in_inserted counts
  // distinct t_in tuples, received counts raw messages.
  for (auto& w : rig.workers) {
    EXPECT_LE(w->stats().in_inserted, w->stats().received);
  }
  size_t closure = 0;
  std::string dump;
  Relation pooled(2);
  for (auto& w : rig.workers) {
    const Relation& out = w->OutputRelation(setup->anc());
    for (size_t r = 0; r < out.size(); ++r) pooled.Insert(out.row(r));
  }
  closure = pooled.size();
  EXPECT_EQ(closure, 10u);  // 4*5/2
  (void)dump;
}

TEST(WorkerTest, LocalProgramPrintable) {
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  Database edb;
  WorkerRig rig = WorkerRig::Create(bundle, &setup->edb);
  const Database& local = rig.workers[0]->local_db();
  // Worker-local relations exist for both decorated predicates.
  Symbol anc = setup->anc();
  EXPECT_NE(local.Find(bundle.out_name.at(anc)), nullptr);
  EXPECT_NE(local.Find(bundle.in_name.at(anc)), nullptr);
  (void)edb;
}

}  // namespace
}  // namespace pdatalog
