#include "core/discriminating.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(DiscriminatingTest, UniformHashInRangeAndDeterministic) {
  DiscriminatingFunction fn = DiscriminatingFunction::UniformHash(4);
  Value vals[2] = {10, 20};
  int first = fn.Evaluate(vals, 2);
  EXPECT_GE(first, 0);
  EXPECT_LT(first, 4);
  EXPECT_EQ(fn.Evaluate(vals, 2), first);
}

TEST(DiscriminatingTest, UniformHashSpreadsValues) {
  DiscriminatingFunction fn = DiscriminatingFunction::UniformHash(4);
  int seen[4] = {0, 0, 0, 0};
  for (Value v = 0; v < 100; ++v) {
    Value vals[1] = {v};
    ++seen[fn.Evaluate(vals, 1)];
  }
  for (int i = 0; i < 4; ++i) EXPECT_GT(seen[i], 0) << "bucket " << i;
}

TEST(DiscriminatingTest, UniformHashOrderSensitive) {
  DiscriminatingFunction fn = DiscriminatingFunction::UniformHash(1000);
  Value ab[2] = {1, 2};
  Value ba[2] = {2, 1};
  EXPECT_NE(fn.Evaluate(ab, 2), fn.Evaluate(ba, 2));
}

TEST(DiscriminatingTest, SymmetricHashOrderInvariant) {
  DiscriminatingFunction fn = DiscriminatingFunction::SymmetricHash(1000);
  Value abc[3] = {5, 9, 13};
  Value cab[3] = {13, 5, 9};
  Value bca[3] = {9, 13, 5};
  EXPECT_EQ(fn.Evaluate(abc, 3), fn.Evaluate(cab, 3));
  EXPECT_EQ(fn.Evaluate(abc, 3), fn.Evaluate(bca, 3));
}

TEST(DiscriminatingTest, LinearMatchesPaperExample7Range) {
  // h(a1,a2,a3) = g(a1) - g(a2) + g(a3): range {-1, 0, 1, 2}.
  std::vector<int> values = LinearAchievableValues({1, -1, 1});
  EXPECT_EQ(values, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(DiscriminatingTest, LinearEvaluateWithinAchievable) {
  DiscriminatingFunction fn = DiscriminatingFunction::Linear({1, -1, 1});
  std::vector<int> achievable = LinearAchievableValues(fn.coeffs);
  for (Value a = 0; a < 20; ++a) {
    Value vals[3] = {a, a + 1, a + 2};
    int v = fn.Evaluate(vals, 3);
    EXPECT_TRUE(std::count(achievable.begin(), achievable.end(), v));
  }
}

TEST(DiscriminatingTest, LinearGIsBinary) {
  DiscriminatingFunction fn = DiscriminatingFunction::Linear({1});
  for (Value v = 0; v < 50; ++v) {
    EXPECT_TRUE(fn.G(v) == 0 || fn.G(v) == 1);
  }
}

TEST(DiscriminatingTest, DenseRemapCoversRange) {
  DiscriminatingFunction fn =
      WithDenseRemap(DiscriminatingFunction::Linear({1, -1, 1}));
  EXPECT_EQ(fn.num_processors, 4);
  for (Value a = 0; a < 50; ++a) {
    Value vals[3] = {a, 2 * a + 1, 3 * a + 7};
    int v = fn.Evaluate(vals, 3);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(DiscriminatingTest, TableLookupUsesTableThenFallback) {
  std::unordered_map<Tuple, int, TupleHash> table;
  table.emplace(Tuple{1, 2}, 3);
  DiscriminatingFunction fn =
      DiscriminatingFunction::TableLookup(std::move(table), 4);
  Value in_table[2] = {1, 2};
  EXPECT_EQ(fn.Evaluate(in_table, 2), 3);
  Value other[2] = {9, 9};
  int v = fn.Evaluate(other, 2);
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 4);
}

TEST(DiscriminatingTest, ConstantAlwaysSame) {
  DiscriminatingFunction fn = DiscriminatingFunction::Constant(2);
  Value vals[1] = {77};
  EXPECT_EQ(fn.Evaluate(vals, 1), 2);
  Value other[3] = {1, 2, 3};
  EXPECT_EQ(fn.Evaluate(other, 3), 2);
}

TEST(DiscriminatingTest, KeepOrHashExtremes) {
  // rho = 1: always the owner. rho = 0: a uniform hash.
  DiscriminatingFunction keep = DiscriminatingFunction::KeepOrHash(3, 1.0, 8);
  DiscriminatingFunction hash = DiscriminatingFunction::KeepOrHash(3, 0.0, 8);
  int owner_hits = 0;
  for (Value v = 0; v < 200; ++v) {
    Value vals[1] = {v};
    EXPECT_EQ(keep.Evaluate(vals, 1), 3);
    if (hash.Evaluate(vals, 1) == 3) ++owner_hits;
  }
  // Uniform over 8 buckets: roughly 25 of 200 land on the owner.
  EXPECT_LT(owner_hits, 80);
}

TEST(DiscriminatingTest, KeepOrHashFractionTracksRho) {
  DiscriminatingFunction fn = DiscriminatingFunction::KeepOrHash(0, 0.5, 16);
  int kept = 0;
  for (Value v = 0; v < 1000; ++v) {
    Value vals[1] = {v};
    if (fn.Evaluate(vals, 1) == 0) ++kept;
  }
  // ~50% kept (plus ~3% hash fallthrough onto processor 0).
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 650);
}

TEST(DiscriminatingTest, KeepOrHashDecisionIndependentOfCaller) {
  // Every processor that evaluates its own h_i on the same tuple with
  // the same rho must reach consistent routing; the coin depends only
  // on the tuple.
  DiscriminatingFunction h0 = DiscriminatingFunction::KeepOrHash(0, 0.5, 4);
  DiscriminatingFunction h1 = DiscriminatingFunction::KeepOrHash(1, 0.5, 4);
  for (Value v = 0; v < 100; ++v) {
    Value vals[1] = {v};
    bool kept0 = h0.Evaluate(vals, 1) == 0;
    bool kept1 = h1.Evaluate(vals, 1) == 1;
    // Note: hash fallthrough may coincidentally hit the owner; only
    // check agreement of the keep decision itself via the forwarded
    // target equality below.
    if (!kept0 && !kept1) {
      EXPECT_EQ(h0.Evaluate(vals, 1), h1.Evaluate(vals, 1));
    }
  }
}

TEST(DiscriminatingTest, RegistryEvaluatesById) {
  DiscriminatingRegistry registry;
  int a = registry.Register(DiscriminatingFunction::Constant(1));
  int b = registry.Register(DiscriminatingFunction::Constant(2));
  Value vals[1] = {0};
  EXPECT_EQ(registry.Evaluate(a, vals, 1), 1);
  EXPECT_EQ(registry.Evaluate(b, vals, 1), 2);
  EXPECT_EQ(registry.size(), 2);
}

TEST(DiscriminatingTest, SeedChangesUniformHash) {
  DiscriminatingFunction f1 = DiscriminatingFunction::UniformHash(64, 1);
  DiscriminatingFunction f2 = DiscriminatingFunction::UniformHash(64, 2);
  int diffs = 0;
  for (Value v = 0; v < 100; ++v) {
    Value vals[1] = {v};
    if (f1.Evaluate(vals, 1) != f2.Evaluate(vals, 1)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

}  // namespace
}  // namespace pdatalog
