#include "eval/incremental.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

struct AncestorInc {
  SymbolTable symbols;
  Program program;
  ProgramInfo info;

  AncestorInc() {
    program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
    info = ValidateOrDie(program);
  }

  Tuple Edge(const char* a, const char* b) {
    return Tuple{symbols.Intern(a), symbols.Intern(b)};
  }
};

TEST(IncrementalTest, FirstEvaluateMatchesBatch) {
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  Symbol par = fx.symbols.Lookup("par");
  ASSERT_TRUE(inc->AddFact(par, fx.Edge("a", "b")).ok());
  ASSERT_TRUE(inc->AddFact(par, fx.Edge("b", "c")).ok());
  ASSERT_TRUE(inc->Evaluate().ok());

  Database batch;
  batch.GetOrCreate(par, 2).Insert(fx.Edge("a", "b"));
  batch.Find(par)->Contains(fx.Edge("a", "b"));
  batch.GetOrCreate(par, 2).Insert(fx.Edge("b", "c"));
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(fx.program, fx.info, &batch, &stats).ok());

  Symbol anc = fx.symbols.Lookup("anc");
  EXPECT_EQ(inc->Find(anc)->ToSortedString(fx.symbols),
            batch.Find(anc)->ToSortedString(fx.symbols));
}

TEST(IncrementalTest, AddingAnEdgeExtendsTheClosure) {
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  Symbol par = fx.symbols.Lookup("par");
  Symbol anc = fx.symbols.Lookup("anc");

  ASSERT_TRUE(inc->AddFact(par, fx.Edge("a", "b")).ok());
  ASSERT_TRUE(inc->Evaluate().ok());
  EXPECT_EQ(inc->Find(anc)->size(), 1u);

  // Bridge: now a->b->c and the transitive pair appear.
  ASSERT_TRUE(inc->AddFact(par, fx.Edge("b", "c")).ok());
  StatusOr<EvalStats> batch = inc->Evaluate();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(inc->Find(anc)->size(), 3u);
  EXPECT_TRUE(inc->Find(anc)->Contains(fx.Edge("a", "c")));
  EXPECT_GT(batch->firings, 0u);
}

TEST(IncrementalTest, EvaluateIsIdempotentWithoutNewFacts) {
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  Symbol par = fx.symbols.Lookup("par");
  ASSERT_TRUE(inc->AddFact(par, fx.Edge("a", "b")).ok());
  ASSERT_TRUE(inc->Evaluate().ok());
  StatusOr<EvalStats> second = inc->Evaluate();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->firings, 0u);
  EXPECT_EQ(second->rounds, 0);
}

TEST(IncrementalTest, DuplicateFactIsNoOp) {
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  Symbol par = fx.symbols.Lookup("par");
  StatusOr<bool> first = inc->AddFact(par, fx.Edge("a", "b"));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  ASSERT_TRUE(inc->Evaluate().ok());
  StatusOr<bool> again = inc->AddFact(par, fx.Edge("a", "b"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  StatusOr<EvalStats> batch = inc->Evaluate();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->firings, 0u);
}

TEST(IncrementalTest, DerivedFactRejected) {
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  StatusOr<bool> bad =
      inc->AddFact(fx.symbols.Lookup("anc"), fx.Edge("a", "b"));
  EXPECT_FALSE(bad.ok());
}

TEST(IncrementalTest, IncrementalWorkIsLessThanRecomputation) {
  // Grow a chain one edge at a time; each increment should cost far
  // fewer firings than recomputing the whole closure.
  AncestorInc fx;
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(fx.program, fx.info);
  ASSERT_TRUE(inc.ok());
  Symbol par = fx.symbols.Lookup("par");
  auto node = [&](int i) {
    return fx.symbols.Intern("n" + std::to_string(i));
  };
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(inc->AddFact(par, Tuple{node(i), node(i + 1)}).ok());
    ASSERT_TRUE(inc->Evaluate().ok());
  }
  Symbol anc = fx.symbols.Lookup("anc");
  EXPECT_EQ(inc->Find(anc)->size(), 30u * 31u / 2u);
  // Total incremental firings equal the one-shot batch firings: each
  // derivation still happens exactly once across all increments.
  Database batch;
  Relation& rel = batch.GetOrCreate(par, 2);
  for (int i = 0; i < 30; ++i) rel.Insert(Tuple{node(i), node(i + 1)});
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(fx.program, fx.info, &batch, &stats).ok());
  EXPECT_EQ(inc->stats().firings, stats.firings);
}

TEST(IncrementalTest, RandomProgramsMatchBatchUnderIncrementalLoading) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SymbolTable symbols;
    RandomProgramOptions gen;
    gen.seed = seed;
    StatusOr<Program> program = GenerateRandomProgram(&symbols, gen);
    ASSERT_TRUE(program.ok());
    ProgramInfo info = ValidateOrDie(*program);

    // Batch.
    Database batch;
    ASSERT_TRUE(batch.LoadFacts(*program).ok());
    EvalStats stats;
    ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &batch, &stats).ok());

    // Incremental: feed facts in three chunks with Evaluate() between.
    StatusOr<IncrementalEvaluator> inc =
        IncrementalEvaluator::Create(*program, info);
    ASSERT_TRUE(inc.ok());
    for (size_t f = 0; f < program->facts.size(); ++f) {
      const Atom& fact = program->facts[f];
      Value vals[32];
      for (int c = 0; c < fact.arity(); ++c) vals[c] = fact.args[c].sym;
      ASSERT_TRUE(
          inc->AddFact(fact.predicate, Tuple(vals, fact.arity())).ok());
      if (f % (program->facts.size() / 3 + 1) == 0) {
        ASSERT_TRUE(inc->Evaluate().ok());
      }
    }
    ASSERT_TRUE(inc->Evaluate().ok());

    for (Symbol p : info.derived) {
      EXPECT_EQ(inc->Find(p)->ToSortedString(symbols),
                batch.Find(p)->ToSortedString(symbols))
          << "seed " << seed << " pred " << symbols.Name(p);
    }
  }
}

TEST(IncrementalTest, MutualRecursionIncrementally) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(program, info);
  ASSERT_TRUE(inc.ok());
  auto node = [&](int i) {
    return symbols.Intern("n" + std::to_string(i));
  };
  ASSERT_TRUE(
      inc->AddFact(symbols.Lookup("zero"), Tuple{node(0)}).ok());
  Symbol edge = symbols.Lookup("edge");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(inc->AddFact(edge, Tuple{node(i), node(i + 1)}).ok());
    ASSERT_TRUE(inc->Evaluate().ok());
  }
  EXPECT_EQ(inc->Find(symbols.Lookup("even"))->size(), 4u);  // 0 2 4 6
  EXPECT_EQ(inc->Find(symbols.Lookup("odd"))->size(), 3u);   // 1 3 5
}

}  // namespace
}  // namespace pdatalog
