#include "datalog/symbol_table.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(SymbolTableTest, InternReturnsStableIds) {
  SymbolTable table;
  Symbol a = table.Intern("alice");
  Symbol b = table.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alice"), a);
  EXPECT_EQ(table.Intern("bob"), b);
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  Symbol a = table.Intern("alice");
  EXPECT_EQ(table.Name(a), "alice");
}

TEST(SymbolTableTest, LookupWithoutIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Lookup("ghost"), kInvalidSymbol);
  Symbol a = table.Intern("real");
  EXPECT_EQ(table.Lookup("real"), a);
}

TEST(SymbolTableTest, SizeTracksDistinctNames) {
  SymbolTable table;
  table.Intern("x");
  table.Intern("y");
  table.Intern("x");
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, ManySymbolsSurviveRehash) {
  // Guards the deque-stability invariant: string_view keys must stay
  // valid across thousands of insertions (SSO strings would dangle if
  // storage moved).
  SymbolTable table;
  std::vector<Symbol> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(table.Lookup("sym" + std::to_string(i)), ids[i]);
    EXPECT_EQ(table.Name(ids[i]), "sym" + std::to_string(i));
  }
}

TEST(SymbolTableTest, EmptyStringIsValidSymbol) {
  SymbolTable table;
  Symbol e = table.Intern("");
  EXPECT_EQ(table.Name(e), "");
  EXPECT_EQ(table.Intern(""), e);
}

}  // namespace
}  // namespace pdatalog
