// Unit tests for the precompiled tuple router: pattern checks reduced
// to (column, constant) / (column, column) comparisons, discriminating
// evaluation on pre-resolved columns, broadcast fallback, and
// stamp-based destination dedup across overlapping specs.
#include "core/routing.h"

#include "core/discriminating.h"
#include "gtest/gtest.h"

namespace pdatalog {
namespace {

SendSpec MakeSpec(SymbolTable& symbols, std::string_view predicate,
                  const std::vector<std::string>& pattern_args,
                  const std::vector<std::string>& vars, int function,
                  bool determined) {
  SendSpec spec;
  spec.predicate = symbols.Intern(std::string(predicate));
  spec.pattern = MakeAtom(symbols, predicate, pattern_args);
  for (const std::string& v : vars) spec.vars.push_back(symbols.Intern(v));
  spec.function = function;
  spec.determined = determined;
  if (determined) {
    for (Symbol v : spec.vars) {
      for (int c = 0; c < spec.pattern.arity(); ++c) {
        if (spec.pattern.args[c].is_var() && spec.pattern.args[c].sym == v) {
          spec.var_positions.push_back(c);
          break;
        }
      }
    }
  }
  return spec;
}

TEST(RoutingTest, DeterminedSpecRoutesByFunction) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  int mod4 = registry.Register(DiscriminatingFunction::Custom(
      [](const Value* vals, int) { return static_cast<int>(vals[0] % 4); },
      4));
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "anc", {"X", "Y"}, {"X"}, mod4, true)};
  TupleRouter router(specs, 4, &registry);
  EXPECT_EQ(router.num_routes(), 1u);

  Symbol anc = symbols.Lookup("anc");
  std::vector<int> dests;
  EXPECT_EQ(router.Route(anc, Tuple{6, 1}, &dests), 0);  // no broadcasts
  EXPECT_EQ(dests, (std::vector<int>{2}));
}

TEST(RoutingTest, UndeterminedSpecBroadcasts) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  // The discriminating var Z does not occur in the pattern (Example 2).
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "anc", {"X", "Y"}, {"Z"}, 0, false)};
  TupleRouter router(specs, 3, &registry);

  std::vector<int> dests;
  EXPECT_EQ(router.Route(symbols.Lookup("anc"), Tuple{1, 2}, &dests), 1);
  EXPECT_EQ(dests, (std::vector<int>{0, 1, 2}));
}

TEST(RoutingTest, ConstantInPatternFilters) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  int to0 = registry.Register(DiscriminatingFunction::Constant(0));
  // Pattern p(X, c): only tuples with the constant in column 1 match.
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "p", {"X", "c"}, {"X"}, to0, true)};
  TupleRouter router(specs, 2, &registry);
  Value c = symbols.Lookup("c");

  Symbol p = symbols.Lookup("p");
  std::vector<int> dests;
  router.Route(p, Tuple{5, c}, &dests);
  EXPECT_EQ(dests, (std::vector<int>{0}));
  dests.clear();
  router.Route(p, Tuple{5, c + 1}, &dests);
  EXPECT_TRUE(dests.empty());
}

TEST(RoutingTest, RepeatedVariableRequiresEqualColumns) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  int to1 = registry.Register(DiscriminatingFunction::Constant(1));
  // Pattern q(X, X): both columns must hold the same value.
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "q", {"X", "X"}, {"X"}, to1, true)};
  TupleRouter router(specs, 2, &registry);

  Symbol q = symbols.Lookup("q");
  std::vector<int> dests;
  router.Route(q, Tuple{7, 7}, &dests);
  EXPECT_EQ(dests, (std::vector<int>{1}));
  dests.clear();
  router.Route(q, Tuple{7, 8}, &dests);
  EXPECT_TRUE(dests.empty());
}

TEST(RoutingTest, OverlappingSpecsDeduplicateDestinations) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  int to1 = registry.Register(DiscriminatingFunction::Constant(1));
  int also1 = registry.Register(DiscriminatingFunction::Constant(1));
  int to2 = registry.Register(DiscriminatingFunction::Constant(2));
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "anc", {"X", "Y"}, {"X"}, to1, true),
      MakeSpec(symbols, "anc", {"X", "Y"}, {"X"}, also1, true),
      MakeSpec(symbols, "anc", {"X", "Y"}, {"Y"}, to2, true)};
  TupleRouter router(specs, 4, &registry);
  EXPECT_EQ(router.num_routes(), 3u);

  std::vector<int> dests;
  router.Route(symbols.Lookup("anc"), Tuple{1, 2}, &dests);
  EXPECT_EQ(dests, (std::vector<int>{1, 2}));  // 1 emitted once

  // Dedup state resets per call (stamped, not cleared).
  dests.clear();
  router.Route(symbols.Lookup("anc"), Tuple{3, 4}, &dests);
  EXPECT_EQ(dests, (std::vector<int>{1, 2}));
}

TEST(RoutingTest, UnknownPredicateRoutesNowhere) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  std::vector<SendSpec> specs;
  TupleRouter router(specs, 4, &registry);
  std::vector<int> dests;
  EXPECT_EQ(router.Route(symbols.Intern("ghost"), Tuple{1}, &dests), 0);
  EXPECT_TRUE(dests.empty());
}

TEST(RoutingTest, WideDiscriminatingSequenceRoutesAllColumns) {
  SymbolTable symbols;
  DiscriminatingRegistry registry;
  // Sums every value: verifies vals_ scratch is sized from the spec, not
  // a fixed-size stack buffer.
  int sum_mod = registry.Register(DiscriminatingFunction::Custom(
      [](const Value* vals, int n) {
        uint64_t s = 0;
        for (int i = 0; i < n; ++i) s += vals[i];
        return static_cast<int>(s % 5);
      },
      5));
  std::vector<std::string> args, vars;
  for (int i = 0; i < 40; ++i) {
    args.push_back("V" + std::to_string(i));
    vars.push_back("V" + std::to_string(i));
  }
  std::vector<SendSpec> specs = {
      MakeSpec(symbols, "wide", args, vars, sum_mod, true)};
  TupleRouter router(specs, 5, &registry);

  std::vector<Value> row(40);
  uint64_t sum = 0;
  for (int i = 0; i < 40; ++i) {
    row[i] = static_cast<Value>(i * 3 + 1);
    sum += row[i];
  }
  std::vector<int> dests;
  router.Route(symbols.Lookup("wide"),
               Tuple(row.data(), static_cast<int>(row.size())), &dests);
  EXPECT_EQ(dests, (std::vector<int>{static_cast<int>(sum % 5)}));
}

}  // namespace
}  // namespace pdatalog
