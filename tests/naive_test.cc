#include "eval/naive.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::Dump;
using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

TEST(NaiveTest, AncestorChain) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "par(a, b).\npar(b, c).\npar(c, d).\n" +
          std::string(testing_util::kAncestorProgram),
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EvalStats stats;
  ASSERT_TRUE(NaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(Dump(db, symbols, "anc"),
            "(a, b)\n(a, c)\n(a, d)\n(b, c)\n(b, d)\n(c, d)\n");
}

TEST(NaiveTest, ReDerivesEveryRound) {
  // On a k-chain, naive refires all earlier derivations each round:
  // strictly more firings than semi-naive.
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  Database naive_db;
  GenChain(&symbols, &naive_db, "par", 20);
  EvalStats naive;
  ASSERT_TRUE(NaiveEvaluate(program, info, &naive_db, &naive).ok());

  Database semi_db;
  GenChain(&symbols, &semi_db, "par", 20);
  EvalStats semi;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &semi_db, &semi).ok());

  EXPECT_EQ(naive_db.Find(symbols.Lookup("anc"))->size(),
            semi_db.Find(symbols.Lookup("anc"))->size());
  EXPECT_GT(naive.firings, 2 * semi.firings);
}

TEST(NaiveTest, JacobiRoundsTrackDepth) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  GenChain(&symbols, &db, "par", 8);
  EvalStats stats;
  ASSERT_TRUE(NaiveEvaluate(program, info, &db, &stats).ok());
  // Depth-8 closure: at least 8 productive rounds plus the final
  // fixpoint check.
  EXPECT_GE(stats.rounds, 8);
}

TEST(NaiveTest, EmptyProgramAndDatabase) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  EvalStats stats;
  ASSERT_TRUE(NaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("anc"))->size(), 0u);
}

TEST(NaiveTest, MutualRecursionMatchesSemiNaive) {
  SymbolTable symbols;
  const char* source =
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n";
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  auto fill = [&](Database* db) {
    GenRandomGraph(&symbols, db, "edge", 25, 60, 12);
    db->Insert(symbols.Intern("zero"), Tuple{symbols.Intern("n0")}, 1);
  };
  Database naive_db;
  fill(&naive_db);
  EvalStats naive;
  ASSERT_TRUE(NaiveEvaluate(program, info, &naive_db, &naive).ok());
  Database semi_db;
  fill(&semi_db);
  EvalStats semi;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &semi_db, &semi).ok());
  for (const char* pred : {"even", "odd"}) {
    EXPECT_EQ(Dump(naive_db, symbols, pred), Dump(semi_db, symbols, pred));
  }
}

}  // namespace
}  // namespace pdatalog
