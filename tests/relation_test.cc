#include "storage/relation.h"

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(Tuple{1, 2}));
  EXPECT_FALSE(rel.Insert(Tuple{1, 2}));
  EXPECT_TRUE(rel.Insert(Tuple{2, 1}));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(Tuple{1, 2});
  EXPECT_TRUE(rel.Contains(Tuple{1, 2}));
  EXPECT_FALSE(rel.Contains(Tuple{2, 2}));
}

TEST(RelationTest, RowsAppendOnlyInInsertionOrder) {
  Relation rel(1);
  rel.Insert(Tuple{5});
  rel.Insert(Tuple{3});
  rel.Insert(Tuple{5});  // duplicate, not appended
  rel.Insert(Tuple{9});
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.row(0), (Tuple{5}));
  EXPECT_EQ(rel.row(1), (Tuple{3}));
  EXPECT_EQ(rel.row(2), (Tuple{9}));
}

TEST(RelationTest, DedupSurvivesRehashAndGrowth) {
  Relation rel(2);
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_TRUE(rel.Insert(Tuple{i, i + 1}));
  }
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_FALSE(rel.Insert(Tuple{i, i + 1}));
  }
  EXPECT_EQ(rel.size(), 5000u);
}

TEST(ColumnIndexTest, KeyExtraction) {
  ColumnIndex index(/*mask=*/0b101, /*arity=*/3);
  Tuple key = index.MakeKey(Tuple{7, 8, 9});
  EXPECT_EQ(key, (Tuple{7, 9}));
}

TEST(RelationTest, EnsureIndexLookup) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.Insert(Tuple{1, 11});
  rel.Insert(Tuple{2, 10});
  const ColumnIndex& index = rel.EnsureIndex(0b01);  // key on column 0
  const std::vector<uint32_t>* ids = index.Lookup(Tuple{1});
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ(ids->size(), 2u);
  EXPECT_EQ((*ids)[0], 0u);
  EXPECT_EQ((*ids)[1], 1u);
  EXPECT_EQ(index.Lookup(Tuple{9}), nullptr);
}

TEST(RelationTest, IndexExtendsIncrementally) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.EnsureIndex(0b01);
  rel.Insert(Tuple{1, 11});
  // A stale index is still returned, but only covers the built prefix.
  const ColumnIndex* stale = rel.GetIndex(0b01);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->built_upto(), 1u);
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  const std::vector<uint32_t>* ids = index.Lookup(Tuple{1});
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ(ids->size(), 2u);
  EXPECT_EQ(index.built_upto(), 2u);
}

TEST(RelationTest, GetIndexMissing) {
  Relation rel(2);
  rel.Insert(Tuple{1, 2});
  EXPECT_EQ(rel.GetIndex(0b10), nullptr);
}

TEST(RelationTest, MultipleIndexesCoexist) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.Insert(Tuple{2, 10});
  const ColumnIndex& by_first = rel.EnsureIndex(0b01);
  const ColumnIndex& by_second = rel.EnsureIndex(0b10);
  EXPECT_EQ(by_first.Lookup(Tuple{1})->size(), 1u);
  EXPECT_EQ(by_second.Lookup(Tuple{10})->size(), 2u);
}

TEST(RelationTest, FullMaskIndexActsAsExactLookup) {
  Relation rel(2);
  rel.Insert(Tuple{4, 5});
  const ColumnIndex& index = rel.EnsureIndex(0b11);
  EXPECT_NE(index.Lookup(Tuple{4, 5}), nullptr);
  EXPECT_EQ(index.Lookup(Tuple{5, 4}), nullptr);
}

TEST(RelationTest, SortedDump) {
  SymbolTable symbols;
  Value a = symbols.Intern("a");
  Value b = symbols.Intern("b");
  Relation rel(2);
  rel.Insert(Tuple{b, a});
  rel.Insert(Tuple{a, b});
  EXPECT_EQ(rel.ToSortedString(symbols), "(a, b)\n(b, a)\n");
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
}

}  // namespace
}  // namespace pdatalog
