#include "storage/relation.h"

#include <initializer_list>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

// Drains a probe cursor into a vector for easy assertions.
std::vector<uint32_t> Collect(const ColumnIndex& index,
                              std::initializer_list<Value> key,
                              size_t begin, size_t end) {
  std::vector<Value> k(key);
  ColumnIndex::Probe probe =
      index.ProbeRange(k.data(), static_cast<int>(k.size()), begin, end);
  std::vector<uint32_t> out;
  uint32_t id = 0;
  while (probe.Next(&id)) out.push_back(id);
  return out;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(Tuple{1, 2}));
  EXPECT_FALSE(rel.Insert(Tuple{1, 2}));
  EXPECT_TRUE(rel.Insert(Tuple{2, 1}));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(Tuple{1, 2});
  EXPECT_TRUE(rel.Contains(Tuple{1, 2}));
  EXPECT_FALSE(rel.Contains(Tuple{2, 2}));
}

TEST(RelationTest, RowsAppendOnlyInInsertionOrder) {
  Relation rel(1);
  rel.Insert(Tuple{5});
  rel.Insert(Tuple{3});
  rel.Insert(Tuple{5});  // duplicate, not appended
  rel.Insert(Tuple{9});
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.row(0), (Tuple{5}));
  EXPECT_EQ(rel.row(1), (Tuple{3}));
  EXPECT_EQ(rel.row(2), (Tuple{9}));
}

TEST(RelationTest, DedupSurvivesRehashAndGrowth) {
  Relation rel(2);
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_TRUE(rel.Insert(Tuple{i, i + 1}));
  }
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_FALSE(rel.Insert(Tuple{i, i + 1}));
  }
  EXPECT_EQ(rel.size(), 5000u);
}

TEST(ColumnIndexTest, KeyExtraction) {
  ColumnStore store(3);
  ColumnIndex index(/*mask=*/0b101, /*arity=*/3, &store);
  Tuple key = index.MakeKey(Tuple{7, 8, 9});
  EXPECT_EQ(key, (Tuple{7, 9}));
}

TEST(RelationTest, EnsureIndexProbe) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.Insert(Tuple{1, 11});
  rel.Insert(Tuple{2, 10});
  const ColumnIndex& index = rel.EnsureIndex(0b01);  // key on column 0
  EXPECT_EQ(Collect(index, {1}, 0, rel.size()),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(Collect(index, {9}, 0, rel.size()).empty());
}

TEST(RelationTest, ProbeRespectsRowRange) {
  Relation rel(2);
  for (Value i = 0; i < 20; ++i) rel.Insert(Tuple{7, i});
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  EXPECT_EQ(Collect(index, {7}, 5, 8), (std::vector<uint32_t>{5, 6, 7}));
  EXPECT_EQ(Collect(index, {7}, 19, 20), (std::vector<uint32_t>{19}));
  EXPECT_TRUE(Collect(index, {7}, 4, 4).empty());
}

TEST(RelationTest, IndexExtendsIncrementally) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.EnsureIndex(0b01);
  rel.Insert(Tuple{1, 11});
  // A stale index is still returned, but only covers the built prefix.
  const ColumnIndex* stale = rel.GetIndex(0b01);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->built_upto(), 1u);
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  EXPECT_EQ(Collect(index, {1}, 0, rel.size()),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index.built_upto(), 2u);
}

TEST(RelationTest, GetIndexMissing) {
  Relation rel(2);
  rel.Insert(Tuple{1, 2});
  EXPECT_EQ(rel.GetIndex(0b10), nullptr);
}

TEST(RelationTest, MultipleIndexesCoexist) {
  Relation rel(2);
  rel.Insert(Tuple{1, 10});
  rel.Insert(Tuple{2, 10});
  const ColumnIndex& by_first = rel.EnsureIndex(0b01);
  const ColumnIndex& by_second = rel.EnsureIndex(0b10);
  EXPECT_EQ(Collect(by_first, {1}, 0, rel.size()).size(), 1u);
  EXPECT_EQ(Collect(by_second, {10}, 0, rel.size()).size(), 2u);
}

TEST(RelationTest, FullMaskIndexActsAsExactLookup) {
  Relation rel(2);
  rel.Insert(Tuple{4, 5});
  const ColumnIndex& index = rel.EnsureIndex(0b11);
  EXPECT_EQ(Collect(index, {4, 5}, 0, rel.size()).size(), 1u);
  EXPECT_TRUE(Collect(index, {5, 4}, 0, rel.size()).empty());
}

TEST(RelationTest, SortedDump) {
  SymbolTable symbols;
  Value a = symbols.Intern("a");
  Value b = symbols.Intern("b");
  Relation rel(2);
  rel.Insert(Tuple{b, a});
  rel.Insert(Tuple{a, b});
  EXPECT_EQ(rel.ToSortedString(symbols), "(a, b)\n(b, a)\n");
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
}

}  // namespace
}  // namespace pdatalog
