#include "eval/seminaive.h"

#include "eval/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::Dump;
using testing_util::EvalOrDie;
using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

TEST(SemiNaiveTest, AncestorOnChain) {
  SymbolTable symbols;
  Database db = EvalOrDie(
      "par(a, b).\npar(b, c).\npar(c, d).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  EXPECT_EQ(Dump(db, symbols, "anc"),
            "(a, b)\n(a, c)\n(a, d)\n(b, c)\n(b, d)\n(c, d)\n");
}

TEST(SemiNaiveTest, EmptyBaseRelationYieldsEmptyOutput) {
  SymbolTable symbols;
  Database db = EvalOrDie(testing_util::kAncestorProgram, &symbols);
  EXPECT_EQ(Dump(db, symbols, "anc"), "");
}

TEST(SemiNaiveTest, NonRecursiveView) {
  SymbolTable symbols;
  Database db = EvalOrDie(
      "emp(alice, eng).\nemp(bob, hr).\n"
      "dept(X) :- emp(Y, X).\n",
      &symbols);
  EXPECT_EQ(Dump(db, symbols, "dept"), "(eng)\n(hr)\n");
}

TEST(SemiNaiveTest, NonLinearAncestorMatchesLinear) {
  SymbolTable symbols;
  std::string facts =
      "par(a, b).\npar(b, c).\npar(c, d).\npar(b, e).\npar(e, f).\n";
  Database linear = EvalOrDie(
      facts + "anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  SymbolTable symbols2;
  Database nonlinear = EvalOrDie(
      facts + "anc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols2);
  EXPECT_EQ(Dump(linear, symbols, "anc"), Dump(nonlinear, symbols2, "anc"));
}

TEST(SemiNaiveTest, MutualRecursion) {
  SymbolTable symbols;
  // even/odd distance from n0 along a chain of 4 edges.
  Database db = EvalOrDie(
      "edge(n0, n1).\nedge(n1, n2).\nedge(n2, n3).\nedge(n3, n4).\n"
      "start(n0).\n"
      "even(X) :- start(X).\n"
      "even(Y) :- odd(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n",
      &symbols);
  EXPECT_EQ(Dump(db, symbols, "even"), "(n0)\n(n2)\n(n4)\n");
  EXPECT_EQ(Dump(db, symbols, "odd"), "(n1)\n(n3)\n");
}

TEST(SemiNaiveTest, SameGeneration) {
  SymbolTable symbols;
  Database db = EvalOrDie(
      "par(c1, p).\npar(c2, p).\n"
      "par(g1, c1).\npar(g2, c2).\n"
      "sg(X, Y) :- par(X, P), par(Y, P).\n"
      "sg(X, Y) :- par(X, X1), sg(X1, Y1), par(Y, Y1).\n",
      &symbols);
  std::string out = Dump(db, symbols, "sg");
  EXPECT_NE(out.find("(c1, c2)"), std::string::npos);
  EXPECT_NE(out.find("(g1, g2)"), std::string::npos);
  EXPECT_EQ(out.find("(c1, g1)"), std::string::npos);
}

TEST(SemiNaiveTest, CycleClosureTerminates) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  GenCycle(&symbols, &db, "par", 10);
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  // Closure of a 10-cycle is complete: 100 pairs.
  EXPECT_EQ(db.Find(symbols.Lookup("anc"))->size(), 100u);
}

TEST(SemiNaiveTest, StatsAreMeaningful) {
  SymbolTable symbols;
  EvalStats stats;
  EvalOrDie(
      "par(a, b).\npar(b, c).\npar(c, d).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols, &stats);
  // On a 3-chain: 3 exit firings + (b,c)+(b,d)+(c,d) recursive
  // derivations via distinct substitutions: a->b->c, a->b->d, b->c->d.
  EXPECT_EQ(stats.tuples_inserted, 6u);
  EXPECT_EQ(stats.firings, 6u);
  EXPECT_GE(stats.rounds, 3);
}

TEST(SemiNaiveTest, DerivationCountOnDiamond) {
  SymbolTable symbols;
  EvalStats stats;
  // Diamond: a->b, a->c, b->d, c->d. anc(a,d) derivable two ways.
  EvalOrDie(
      "par(a, b).\npar(a, c).\npar(b, d).\npar(c, d).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols, &stats);
  EXPECT_EQ(stats.firings, 6u);          // 4 exit + 2 recursive
  EXPECT_EQ(stats.tuples_inserted, 5u);  // anc(a,d) deduplicated
}

TEST(NaiveTest, MatchesSemiNaiveOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SymbolTable symbols;
    Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
    ProgramInfo info = ValidateOrDie(program);

    Database db_semi;
    GenRandomGraph(&symbols, &db_semi, "par", 30, 60, seed);
    EvalStats semi_stats;
    ASSERT_TRUE(
        SemiNaiveEvaluate(program, info, &db_semi, &semi_stats).ok());

    Database db_naive;
    GenRandomGraph(&symbols, &db_naive, "par", 30, 60, seed);
    EvalStats naive_stats;
    ASSERT_TRUE(NaiveEvaluate(program, info, &db_naive, &naive_stats).ok());

    EXPECT_EQ(Dump(db_semi, symbols, "anc"), Dump(db_naive, symbols, "anc"))
        << "seed " << seed;
    // Naive repeats derivations; semi-naive must not do more work.
    EXPECT_LE(semi_stats.firings, naive_stats.firings);
  }
}

TEST(SemiNaiveTest, FactsOnlyProgramIsNoOp) {
  SymbolTable symbols;
  Database db = EvalOrDie("p(a).\np(b).\n", &symbols);
  EXPECT_EQ(Dump(db, symbols, "p"), "(a)\n(b)\n");
}

TEST(SemiNaiveTest, ConstantsInRules) {
  SymbolTable symbols;
  Database db = EvalOrDie(
      "par(a, b).\npar(b, c).\npar(c, d).\n"
      "reach_from_a(Y) :- par(a, Y).\n"
      "reach_from_a(Y) :- reach_from_a(X), par(X, Y).\n",
      &symbols);
  EXPECT_EQ(Dump(db, symbols, "reach_from_a"), "(b)\n(c)\n(d)\n");
}

TEST(SemiNaiveTest, LongChainRoundsEqualDepth) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  GenChain(&symbols, &db, "par", 50);
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("anc"))->size(), 50u * 51u / 2u);
  EXPECT_GE(stats.rounds, 50);
}

}  // namespace
}  // namespace pdatalog
