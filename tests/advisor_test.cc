#include "core/advisor.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::MakeAncestorSetup;

TEST(AdvisorTest, AncestorEnumeratesAllFamilies) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 5);
  AdvisorOptions options;
  options.cost = {1.0, 1.0, 0.0};
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::vector<std::string> names;
  for (const SchemeCandidate& c : report->candidates) names.push_back(c.name);
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("theorem3<Y>"));
  EXPECT_TRUE(has("hash<Z>"));
  EXPECT_TRUE(has("hash<Y>"));
  EXPECT_TRUE(has("hash<Z,Y>"));
  EXPECT_TRUE(has("fragmented"));
  EXPECT_TRUE(has("tradeoff(1.00)"));
}

TEST(AdvisorTest, ExpensiveCommunicationPrefersCommFree) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 5);
  AdvisorOptions options;
  options.cost = {1.0, 1000.0, 0.0};  // messages are ruinous
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->best().communication_free)
      << "picked " << report->best().name;
}

TEST(AdvisorTest, RankedByMakespan) {
  auto setup = MakeAncestorSetup();
  GenTree(&setup->symbols, &setup->edb, "par", 2, 6);
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, {});
  ASSERT_TRUE(report.ok());
  for (size_t i = 1; i < report->candidates.size(); ++i) {
    EXPECT_LE(report->candidates[i - 1].makespan,
              report->candidates[i].makespan);
  }
}

TEST(AdvisorTest, PropertiesConsistent) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 9);
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, {});
  ASSERT_TRUE(report.ok());
  for (const SchemeCandidate& c : report->candidates) {
    if (c.communication_free) {
      EXPECT_EQ(c.cross_messages, 0u) << c.name;
    }
    if (c.cross_messages == 0) {
      EXPECT_TRUE(c.communication_free) << c.name;
    }
    EXPECT_GE(c.load_imbalance, 1.0) << c.name;
  }
  // The Section 3 candidates are flagged non-redundant; tradeoff(1.0)
  // is not.
  for (const SchemeCandidate& c : report->candidates) {
    if (c.name.rfind("hash<", 0) == 0 || c.name.rfind("theorem3", 0) == 0) {
      EXPECT_TRUE(c.non_redundant) << c.name;
    }
    if (c.name.rfind("tradeoff", 0) == 0) {
      EXPECT_FALSE(c.non_redundant) << c.name;
    }
  }
}

TEST(AdvisorTest, AcyclicSirupHasNoTheoremThreeCandidate) {
  SymbolTable symbols;
  Program program = testing_util::ParseOrDie(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());

  Database edb;
  SplitMix64 rng(4);
  Relation& s = edb.GetOrCreate(symbols.Intern("s"), 3);
  Relation& q = edb.GetOrCreate(symbols.Intern("q"), 2);
  auto node = [&](uint64_t i) {
    return symbols.Intern("n" + std::to_string(i));
  };
  for (int i = 0; i < 30; ++i) {
    s.Insert(Tuple{node(rng.NextBelow(8)), node(rng.NextBelow(8)),
                   node(rng.NextBelow(8))});
    q.Insert(Tuple{node(rng.NextBelow(8)), node(rng.NextBelow(8))});
  }

  StatusOr<AdvisorReport> report =
      AdviseScheme(program, info, *sirup, &edb, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const SchemeCandidate& c : report->candidates) {
    EXPECT_EQ(c.name.rfind("theorem3", 0), std::string::npos) << c.name;
  }
  EXPECT_FALSE(report->candidates.empty());
}

TEST(AdvisorTest, ReportRendersTable) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, {});
  ASSERT_TRUE(report.ok());
  std::string table = report->ToString();
  EXPECT_NE(table.find("makespan"), std::string::npos);
  EXPECT_NE(table.find("theorem3"), std::string::npos);
}

TEST(AdvisorTest, EmptyDatabaseStillAdvises) {
  auto setup = MakeAncestorSetup();
  AdvisorOptions options;
  options.include_arbitrary_fragmentation = true;  // skipped: no facts
  StatusOr<AdvisorReport> report = AdviseScheme(
      setup->program, setup->info, setup->sirup, &setup->edb, options);
  ASSERT_TRUE(report.ok());
  for (const SchemeCandidate& c : report->candidates) {
    EXPECT_EQ(c.name, c.name);  // smoke: candidates exist and profiled
    EXPECT_EQ(c.firings, 0u);
  }
}

}  // namespace
}  // namespace pdatalog
