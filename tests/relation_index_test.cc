// Deeper coverage of the flat column index: incremental extension
// interleaved with inserts, probing a frozen prefix while the relation
// keeps growing (the worker pattern: scan bounds frozen per round), and
// a randomized differential check against a naive scan.
#include <random>
#include <set>

#include "gtest/gtest.h"
#include "storage/relation.h"

namespace pdatalog {
namespace {

std::vector<uint32_t> Probe(const ColumnIndex& index,
                            const std::vector<Value>& key, size_t begin,
                            size_t end) {
  ColumnIndex::Probe probe = index.ProbeRange(
      key.data(), static_cast<int>(key.size()), begin, end);
  std::vector<uint32_t> out;
  uint32_t id = 0;
  while (probe.Next(&id)) out.push_back(id);
  return out;
}

TEST(RelationIndexTest, ExtensionInterleavedWithInserts) {
  Relation rel(2);
  // Repeated EnsureIndex calls as the relation grows must each index
  // exactly the new suffix, never duplicating earlier rows.
  for (int round = 0; round < 10; ++round) {
    for (Value i = 0; i < 50; ++i) {
      rel.Insert(Tuple{i % 5, static_cast<Value>(round * 50 + i)});
    }
    const ColumnIndex& index = rel.EnsureIndex(0b01);
    EXPECT_EQ(index.built_upto(), rel.size());
  }
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  size_t total = 0;
  for (Value k = 0; k < 5; ++k) {
    std::vector<uint32_t> ids = Probe(index, {k}, 0, rel.size());
    // Each key appears once per (round, i) pair with i % 5 == k.
    EXPECT_EQ(ids.size(), 100u) << "key " << k;
    // Ascending, no duplicates.
    for (size_t j = 1; j < ids.size(); ++j) EXPECT_LT(ids[j - 1], ids[j]);
    total += ids.size();
  }
  EXPECT_EQ(total, rel.size());
}

TEST(RelationIndexTest, ProbeFrozenPrefixWhileRelationGrows) {
  Relation rel(2);
  for (Value i = 0; i < 100; ++i) rel.Insert(Tuple{i % 3, i});
  rel.EnsureIndex(0b01);
  size_t frozen = rel.size();

  // The round's scan bounds are frozen; new arrivals land beyond them.
  for (Value i = 100; i < 200; ++i) rel.Insert(Tuple{i % 3, i});

  const ColumnIndex* index = rel.GetIndex(0b01);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->built_upto(), frozen);
  for (Value k = 0; k < 3; ++k) {
    std::vector<uint32_t> ids = Probe(*index, {k}, 0, frozen);
    for (uint32_t id : ids) {
      EXPECT_LT(id, frozen);
      EXPECT_EQ(rel.row(id)[0], k);
    }
  }
  // After re-extension the suffix becomes visible too.
  const ColumnIndex& extended = rel.EnsureIndex(0b01);
  std::vector<uint32_t> suffix = Probe(extended, {1}, frozen, rel.size());
  for (uint32_t id : suffix) EXPECT_GE(id, frozen);
  EXPECT_FALSE(suffix.empty());
}

TEST(RelationIndexTest, RandomizedDifferentialAgainstScan) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 20; ++trial) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    Relation rel(arity);
    std::uniform_int_distribution<Value> val(0, 12);
    const int n = 200 + static_cast<int>(rng() % 300);
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row(arity);
      for (Value& v : row) v = val(rng);
      rel.InsertView(row.data(), arity);
    }
    // Random nonempty column mask.
    uint32_t full = (1u << arity) - 1;
    uint32_t mask = 1 + rng() % full;
    const ColumnIndex& index = rel.EnsureIndex(mask);

    for (int probe = 0; probe < 50; ++probe) {
      std::vector<Value> key;
      for (int c = 0; c < arity; ++c) {
        if (mask & (1u << c)) key.push_back(val(rng));
      }
      size_t begin = rng() % (rel.size() + 1);
      size_t end = begin + rng() % (rel.size() - begin + 1);

      std::vector<uint32_t> expected;
      for (size_t r = begin; r < end; ++r) {
        const Tuple& row = rel.row(r);
        bool match = true;
        size_t k = 0;
        for (int c = 0; c < arity; ++c) {
          if (!(mask & (1u << c))) continue;
          if (row[c] != key[k++]) match = false;
        }
        if (match) expected.push_back(static_cast<uint32_t>(r));
      }
      EXPECT_EQ(Probe(index, key, begin, end), expected)
          << "trial " << trial << " probe " << probe << " mask " << mask
          << " range [" << begin << ", " << end << ")";
    }
  }
}

TEST(RelationIndexTest, ManyDistinctKeysSurviveSlotGrowth) {
  Relation rel(2);
  for (Value i = 0; i < 20000; ++i) rel.Insert(Tuple{i, i + 1});
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  EXPECT_EQ(index.num_keys(), 20000u);
  for (Value i = 0; i < 20000; i += 997) {
    std::vector<uint32_t> ids = Probe(index, {i}, 0, rel.size());
    ASSERT_EQ(ids.size(), 1u) << "key " << i;
    EXPECT_EQ(ids[0], static_cast<uint32_t>(i));
  }
}

TEST(RelationIndexTest, SkewedKeyLongChains) {
  // One hot key spanning many pool chunks, probed over sub-ranges.
  Relation rel(2);
  for (Value i = 0; i < 5000; ++i) rel.Insert(Tuple{42, i});
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  std::vector<uint32_t> all = Probe(index, {42}, 0, rel.size());
  ASSERT_EQ(all.size(), 5000u);
  std::vector<uint32_t> mid = Probe(index, {42}, 2000, 3000);
  ASSERT_EQ(mid.size(), 1000u);
  EXPECT_EQ(mid.front(), 2000u);
  EXPECT_EQ(mid.back(), 2999u);
}

}  // namespace
}  // namespace pdatalog
