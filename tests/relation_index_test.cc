// Deeper coverage of the flat column index: incremental extension
// interleaved with inserts, probing a frozen prefix while the relation
// keeps growing (the worker pattern: scan bounds frozen per round), and
// a randomized differential check against a naive scan.
#include <random>
#include <set>

#include "gtest/gtest.h"
#include "storage/relation.h"

namespace pdatalog {
namespace {

std::vector<uint32_t> Probe(const ColumnIndex& index,
                            const std::vector<Value>& key, size_t begin,
                            size_t end) {
  ColumnIndex::Probe probe = index.ProbeRange(
      key.data(), static_cast<int>(key.size()), begin, end);
  std::vector<uint32_t> out;
  uint32_t id = 0;
  while (probe.Next(&id)) out.push_back(id);
  return out;
}

TEST(RelationIndexTest, ExtensionInterleavedWithInserts) {
  Relation rel(2);
  // Repeated EnsureIndex calls as the relation grows must each index
  // exactly the new suffix, never duplicating earlier rows.
  for (int round = 0; round < 10; ++round) {
    for (Value i = 0; i < 50; ++i) {
      rel.Insert(Tuple{i % 5, static_cast<Value>(round * 50 + i)});
    }
    const ColumnIndex& index = rel.EnsureIndex(0b01);
    EXPECT_EQ(index.built_upto(), rel.size());
  }
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  size_t total = 0;
  for (Value k = 0; k < 5; ++k) {
    std::vector<uint32_t> ids = Probe(index, {k}, 0, rel.size());
    // Each key appears once per (round, i) pair with i % 5 == k.
    EXPECT_EQ(ids.size(), 100u) << "key " << k;
    // Ascending, no duplicates.
    for (size_t j = 1; j < ids.size(); ++j) EXPECT_LT(ids[j - 1], ids[j]);
    total += ids.size();
  }
  EXPECT_EQ(total, rel.size());
}

TEST(RelationIndexTest, ProbeFrozenPrefixWhileRelationGrows) {
  Relation rel(2);
  for (Value i = 0; i < 100; ++i) rel.Insert(Tuple{i % 3, i});
  rel.EnsureIndex(0b01);
  size_t frozen = rel.size();

  // The round's scan bounds are frozen; new arrivals land beyond them.
  for (Value i = 100; i < 200; ++i) rel.Insert(Tuple{i % 3, i});

  const ColumnIndex* index = rel.GetIndex(0b01);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->built_upto(), frozen);
  for (Value k = 0; k < 3; ++k) {
    std::vector<uint32_t> ids = Probe(*index, {k}, 0, frozen);
    for (uint32_t id : ids) {
      EXPECT_LT(id, frozen);
      EXPECT_EQ(rel.row(id)[0], k);
    }
  }
  // After re-extension the suffix becomes visible too.
  const ColumnIndex& extended = rel.EnsureIndex(0b01);
  std::vector<uint32_t> suffix = Probe(extended, {1}, frozen, rel.size());
  for (uint32_t id : suffix) EXPECT_GE(id, frozen);
  EXPECT_FALSE(suffix.empty());
}

TEST(RelationIndexTest, RandomizedDifferentialAgainstScan) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 20; ++trial) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    Relation rel(arity);
    std::uniform_int_distribution<Value> val(0, 12);
    const int n = 200 + static_cast<int>(rng() % 300);
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row(arity);
      for (Value& v : row) v = val(rng);
      rel.InsertView(row.data(), arity);
    }
    // Random nonempty column mask.
    uint32_t full = (1u << arity) - 1;
    uint32_t mask = 1 + rng() % full;
    const ColumnIndex& index = rel.EnsureIndex(mask);

    for (int probe = 0; probe < 50; ++probe) {
      std::vector<Value> key;
      for (int c = 0; c < arity; ++c) {
        if (mask & (1u << c)) key.push_back(val(rng));
      }
      size_t begin = rng() % (rel.size() + 1);
      size_t end = begin + rng() % (rel.size() - begin + 1);

      std::vector<uint32_t> expected;
      for (size_t r = begin; r < end; ++r) {
        const Tuple& row = rel.row(r);
        bool match = true;
        size_t k = 0;
        for (int c = 0; c < arity; ++c) {
          if (!(mask & (1u << c))) continue;
          if (row[c] != key[k++]) match = false;
        }
        if (match) expected.push_back(static_cast<uint32_t>(r));
      }
      EXPECT_EQ(Probe(index, key, begin, end), expected)
          << "trial " << trial << " probe " << probe << " mask " << mask
          << " range [" << begin << ", " << end << ")";
    }
  }
}

TEST(RelationIndexTest, ManyDistinctKeysSurviveSlotGrowth) {
  Relation rel(2);
  for (Value i = 0; i < 20000; ++i) rel.Insert(Tuple{i, i + 1});
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  EXPECT_EQ(index.num_keys(), 20000u);
  for (Value i = 0; i < 20000; i += 997) {
    std::vector<uint32_t> ids = Probe(index, {i}, 0, rel.size());
    ASSERT_EQ(ids.size(), 1u) << "key " << i;
    EXPECT_EQ(ids[0], static_cast<uint32_t>(i));
  }
}

TEST(RelationIndexTest, InsertsStraddleChunkBoundaries) {
  // Rows live in fixed 4096-row chunks; cell reads, dedup, and index
  // probes must be seamless across the chunk edges.
  constexpr size_t kEdge = ColumnStore::kChunkRows;
  Relation rel(2);
  const size_t n = 2 * kEdge + kEdge / 2;  // spans three chunks
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple{static_cast<Value>(i % 7),
                                 static_cast<Value>(i)}));
  }
  ASSERT_EQ(rel.size(), n);
  for (size_t r : {kEdge - 1, kEdge, kEdge + 1, 2 * kEdge - 1, 2 * kEdge}) {
    EXPECT_EQ(rel.row(r), (Tuple{static_cast<Value>(r % 7),
                                 static_cast<Value>(r)}))
        << "row " << r;
  }
  // Duplicates of rows on both sides of an edge still dedup.
  EXPECT_FALSE(rel.Insert(Tuple{static_cast<Value>((kEdge - 1) % 7),
                                static_cast<Value>(kEdge - 1)}));
  EXPECT_FALSE(rel.Insert(Tuple{static_cast<Value>(kEdge % 7),
                                static_cast<Value>(kEdge)}));
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  // Probe a window centered on the first chunk edge.
  std::vector<uint32_t> ids =
      Probe(index, {static_cast<Value>(kEdge % 7)}, kEdge - 7, kEdge + 7);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], static_cast<uint32_t>(kEdge - 7));
  EXPECT_EQ(ids[1], static_cast<uint32_t>(kEdge));
}

TEST(RelationIndexTest, InsertBlockStraddlesChunkEdge) {
  // A bulk columnar append whose keep-list crosses a chunk edge must
  // split the copy into per-chunk runs without dropping or mangling
  // rows. Pre-fill to just below the edge, then append a block that
  // crosses it.
  constexpr size_t kEdge = ColumnStore::kChunkRows;
  Relation rel(2);
  for (size_t i = 0; i < kEdge - 100; ++i) {
    rel.Insert(Tuple{static_cast<Value>(i), static_cast<Value>(i + 1)});
  }
  const uint32_t count = 300;
  std::vector<Value> cols(2 * count);  // column-major payload
  for (uint32_t r = 0; r < count; ++r) {
    cols[r] = static_cast<Value>(1000000 + r);
    cols[count + r] = static_cast<Value>(2000000 + r);
  }
  size_t added = rel.InsertBlock(cols.data(), 2, count, /*columnar=*/true);
  EXPECT_EQ(added, count);
  ASSERT_EQ(rel.size(), kEdge - 100 + count);
  for (uint32_t r = 0; r < count; ++r) {
    size_t row = kEdge - 100 + r;
    EXPECT_EQ(rel.row(row), (Tuple{static_cast<Value>(1000000 + r),
                                   static_cast<Value>(2000000 + r)}))
        << "appended row " << r;
  }
  // Re-sending the same block dedups entirely, across the edge.
  EXPECT_EQ(rel.InsertBlock(cols.data(), 2, count, /*columnar=*/true), 0u);
}

TEST(RelationIndexTest, ProbeRangeOverBlockBuiltRelation) {
  // A relation built purely from columnar InsertBlock appends (the
  // worker receive path) must index and probe identically to one built
  // from per-tuple inserts.
  constexpr uint32_t kBlock = 512;
  Relation from_blocks(2), from_inserts(2);
  std::mt19937 rng(20260808);
  // Wide first column keeps tuples mostly distinct (so the relation
  // grows past two chunk edges); narrow second column gives every
  // probe key a long posting list.
  std::uniform_int_distribution<Value> wide(0, 1 << 20);
  std::uniform_int_distribution<Value> val(0, 40);
  std::vector<Value> cols(2 * kBlock);
  for (int b = 0; b < 24; ++b) {  // 12288 candidate rows: crosses 2 edges
    for (uint32_t r = 0; r < kBlock; ++r) {
      cols[r] = wide(rng);
      cols[kBlock + r] = val(rng);
    }
    from_blocks.InsertBlock(cols.data(), 2, kBlock, /*columnar=*/true);
    for (uint32_t r = 0; r < kBlock; ++r) {
      from_inserts.Insert(Tuple{cols[r], cols[kBlock + r]});
    }
  }
  ASSERT_EQ(from_blocks.size(), from_inserts.size());
  ASSERT_GT(from_blocks.size(), 2 * ColumnStore::kChunkRows);
  const ColumnIndex& bi = from_blocks.EnsureIndex(0b10);
  const ColumnIndex& ii = from_inserts.EnsureIndex(0b10);
  for (Value k = 0; k <= 40; ++k) {
    EXPECT_EQ(Probe(bi, {k}, 0, from_blocks.size()),
              Probe(ii, {k}, 0, from_inserts.size()))
        << "key " << k;
  }
  // Sub-range probes spanning a chunk edge agree too.
  constexpr size_t kEdge = ColumnStore::kChunkRows;
  for (Value k = 0; k <= 40; k += 5) {
    EXPECT_EQ(Probe(bi, {k}, kEdge - 200, kEdge + 200),
              Probe(ii, {k}, kEdge - 200, kEdge + 200))
        << "key " << k;
  }
}

TEST(RelationIndexTest, SkewedKeyLongChains) {
  // One hot key spanning many pool chunks, probed over sub-ranges.
  Relation rel(2);
  for (Value i = 0; i < 5000; ++i) rel.Insert(Tuple{42, i});
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  std::vector<uint32_t> all = Probe(index, {42}, 0, rel.size());
  ASSERT_EQ(all.size(), 5000u);
  std::vector<uint32_t> mid = Probe(index, {42}, 2000, 3000);
  ASSERT_EQ(mid.size(), 1000u);
  EXPECT_EQ(mid.front(), 2000u);
  EXPECT_EQ(mid.back(), 2999u);
}

}  // namespace
}  // namespace pdatalog
