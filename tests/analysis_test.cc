#include "datalog/analysis.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

TEST(DependencyGraphTest, DirectAndTransitiveDerives) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "b(X) :- a(X).\n"
      "c(X) :- b(X).\n",
      &symbols);
  DependencyGraph graph = DependencyGraph::Build(program);
  Symbol a = symbols.Lookup("a");
  Symbol b = symbols.Lookup("b");
  Symbol c = symbols.Lookup("c");
  EXPECT_TRUE(graph.Derives(a, b));
  EXPECT_TRUE(graph.Derives(b, c));
  EXPECT_TRUE(graph.Derives(a, c));  // transitive
  EXPECT_FALSE(graph.Derives(c, a));
}

TEST(DependencyGraphTest, RecursiveRuleDetection) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  DependencyGraph graph = DependencyGraph::Build(program);
  EXPECT_FALSE(graph.IsRecursiveRule(program.rules[0]));  // exit rule
  EXPECT_TRUE(graph.IsRecursiveRule(program.rules[1]));
  EXPECT_TRUE(graph.HasRecursion(program));
}

TEST(DependencyGraphTest, MutualRecursion) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X) :- e(X).\n"
      "p(X) :- q(X).\n"
      "q(X) :- p(X), f(X).\n",
      &symbols);
  DependencyGraph graph = DependencyGraph::Build(program);
  EXPECT_TRUE(graph.IsRecursiveRule(program.rules[1]));
  EXPECT_TRUE(graph.IsRecursiveRule(program.rules[2]));
  EXPECT_FALSE(graph.IsRecursiveRule(program.rules[0]));
}

TEST(DependencyGraphTest, NonRecursiveProgram) {
  SymbolTable symbols;
  Program program = ParseOrDie("view(X, Y) :- base(X, Y).\n", &symbols);
  DependencyGraph graph = DependencyGraph::Build(program);
  EXPECT_FALSE(graph.HasRecursion(program));
}

TEST(LinearSirupTest, ExtractAncestor) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok()) << sirup.status().ToString();
  EXPECT_EQ(symbols.Name(sirup->t), "anc");
  EXPECT_EQ(symbols.Name(sirup->s), "par");
  EXPECT_EQ(sirup->arity(), 2);
  EXPECT_EQ(sirup->rec_atom_index, 1);
  ASSERT_EQ(sirup->base_atoms.size(), 1u);
  EXPECT_EQ(ToString(sirup->base_atoms[0], symbols), "par(X, Z)");
}

TEST(LinearSirupTest, VariableSequences) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok()) << sirup.status().ToString();

  std::vector<Symbol> x = sirup->HeadVarsX();
  std::vector<Symbol> y = sirup->BodyVarsY();
  ASSERT_EQ(x.size(), 3u);
  EXPECT_EQ(symbols.Name(x[0]), "U");
  EXPECT_EQ(symbols.Name(y[0]), "V");
  EXPECT_EQ(symbols.Name(y[2]), "Z");
}

TEST(LinearSirupTest, NonLinearRejected) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  EXPECT_FALSE(sirup.ok());
  EXPECT_NE(sirup.status().message().find("exactly one occurrence"),
            std::string::npos);
}

TEST(LinearSirupTest, TwoDerivedPredicatesRejected) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X) :- e(X).\n"
      "q(X) :- p(X).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  EXPECT_FALSE(ExtractLinearSirup(program, info).ok());
}

TEST(LinearSirupTest, ThreeRulesRejected) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X) :- e(X).\n"
      "p(X) :- f(X).\n"
      "p(X) :- p(Y), g(Y, X).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  EXPECT_FALSE(ExtractLinearSirup(program, info).ok());
}

TEST(LinearSirupTest, ConstantInHeadGivesInvalidVarEntry) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X, Y) :- s(X, Y).\n"
      "p(X, c) :- p(X, Y), q(Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok()) << sirup.status().ToString();
  std::vector<Symbol> x = sirup->HeadVarsX();
  EXPECT_EQ(x[1], kInvalidSymbol);
}

TEST(RecursiveAtomTest, ByProgramInfo) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  EXPECT_FALSE(IsRecursiveAtom(program.rules[1].body[0], info));  // par
  EXPECT_TRUE(IsRecursiveAtom(program.rules[1].body[1], info));   // anc
}

}  // namespace
}  // namespace pdatalog
