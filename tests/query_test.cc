#include "datalog/query.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

Database MakeAncDb(SymbolTable* symbols) {
  return testing_util::EvalOrDie(
      "par(a, b).\npar(b, c).\npar(b, d).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      symbols);
}

TEST(QueryTest, BoundFirstArgument) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> result = EvaluateQuery("anc(a, X)", &symbols, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToString(symbols), "X = b\nX = c\nX = d\n");
}

TEST(QueryTest, BoundSecondArgument) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> result = EvaluateQuery("anc(X, d)", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(symbols), "X = a\nX = b\n");
}

TEST(QueryTest, AllFree) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> result = EvaluateQuery("anc(X, Y)", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bindings.size(), 5u);  // ab ac ad bc bd
  EXPECT_EQ(result->variables.size(), 2u);
}

TEST(QueryTest, GroundQueryIsBoolean) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> yes = EvaluateQuery("anc(a, c)", &symbols, db);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->IsBoolean());
  EXPECT_TRUE(yes->Holds());
  EXPECT_EQ(yes->ToString(symbols), "true\n");

  StatusOr<QueryResult> no = EvaluateQuery("anc(c, a)", &symbols, db);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->Holds());
  EXPECT_EQ(no->ToString(symbols), "false\n");
}

TEST(QueryTest, RepeatedVariableSelectsDiagonal) {
  SymbolTable symbols;
  Database db;
  Relation& rel = db.GetOrCreate(symbols.Intern("e"), 2);
  Value a = symbols.Intern("a");
  Value b = symbols.Intern("b");
  rel.Insert(Tuple{a, a});
  rel.Insert(Tuple{a, b});
  rel.Insert(Tuple{b, b});
  StatusOr<QueryResult> result = EvaluateQuery("e(X, X)", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(symbols), "X = a\nX = b\n");
}

TEST(QueryTest, ProjectionDeduplicates) {
  SymbolTable symbols;
  Database db;
  Relation& rel = db.GetOrCreate(symbols.Intern("e"), 2);
  rel.Insert(Tuple{symbols.Intern("a"), symbols.Intern("x")});
  rel.Insert(Tuple{symbols.Intern("a"), symbols.Intern("y")});
  StatusOr<QueryResult> result = EvaluateQuery("e(V, W)", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bindings.size(), 2u);
  StatusOr<QueryResult> first = EvaluateQuery("e(V, Q)", &symbols, db);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->bindings.size(), 2u);
}

TEST(QueryTest, UnknownPredicateIsEmpty) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> result = EvaluateQuery("ghost(X)", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->bindings.empty());
}

TEST(QueryTest, TrailingPeriodAccepted) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  StatusOr<QueryResult> result =
      EvaluateQuery("anc(a, X).", &symbols, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bindings.size(), 3u);
}

TEST(QueryTest, ArityMismatchRejected) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  EXPECT_FALSE(EvaluateQuery("anc(X)", &symbols, db).ok());
}

TEST(QueryTest, MalformedQueryRejected) {
  SymbolTable symbols;
  Database db = MakeAncDb(&symbols);
  EXPECT_FALSE(EvaluateQuery("anc(X,", &symbols, db).ok());
  EXPECT_FALSE(EvaluateQuery("anc(X), anc(Y)", &symbols, db).ok());
}

}  // namespace
}  // namespace pdatalog
