#include "cli/driver.h"

#include <sstream>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

constexpr char kAncestor[] =
    "par(a, b).  par(b, c).  par(c, d).\n"
    "anc(X, Y) :- par(X, Y).\n"
    "anc(X, Y) :- par(X, Z), anc(Z, Y).\n";

TEST(CliParseTest, Defaults) {
  StatusOr<CliOptions> options = ParseCliArgs({"prog.dl"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->mode, CliOptions::Mode::kParallel);
  EXPECT_EQ(options->scheme, CliOptions::Scheme::kAuto);
  EXPECT_EQ(options->processors, 4);
  EXPECT_EQ(options->program_path, "prog.dl");
}

TEST(CliParseTest, AllFlags) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--mode=seq", "--processors=7", "--scheme=example2", "--rho=0.25",
       "--seed=0x10", "--dump=anc", "--print-programs", "--stats", "p.dl"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->mode, CliOptions::Mode::kSequential);
  EXPECT_EQ(options->processors, 7);
  EXPECT_EQ(options->scheme, CliOptions::Scheme::kExample2);
  EXPECT_DOUBLE_EQ(options->rho, 0.25);
  EXPECT_EQ(options->seed, 0x10u);
  EXPECT_EQ(options->dump_predicate, "anc");
  EXPECT_TRUE(options->print_programs);
  EXPECT_TRUE(options->print_stats);
}

TEST(CliParseTest, Rejections) {
  EXPECT_FALSE(ParseCliArgs({}).ok());                      // no file
  EXPECT_FALSE(ParseCliArgs({"--mode=warp", "p.dl"}).ok()); // bad mode
  EXPECT_FALSE(ParseCliArgs({"--processors=0", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--scheme=magic", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--rho=1.5", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--nonsense", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"a.dl", "b.dl"}).ok());  // two files
}

TEST(CliParseTest, FaultsFlag) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--faults=drop:0.1,dup:0.05,reorder:0.2,corrupt:0.15,delay:0.1,"
       "polls:5",
       "--retransmit", "p.dl"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_DOUBLE_EQ(options->faults.drop, 0.1);
  EXPECT_DOUBLE_EQ(options->faults.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(options->faults.reorder, 0.2);
  EXPECT_DOUBLE_EQ(options->faults.corrupt, 0.15);
  EXPECT_DOUBLE_EQ(options->faults.delay, 0.1);
  EXPECT_EQ(options->faults.delay_polls, 5);
  EXPECT_TRUE(options->retransmit);
  EXPECT_FALSE(ParseCliArgs({"--faults=drop", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--faults=jitter:0.1", "p.dl"}).ok());
}

TEST(CliRunTest, FaultyRunWithRetransmitStaysExact) {
  // --scheme=example3 forces real cross-processor traffic (auto would
  // pick the communication-free scheme, leaving nothing to inject on).
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--scheme=example3", "--faults=drop:0.2,corrupt:0.2",
       "--retransmit", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, FaultyRunWithoutRetransmitReportsTheFault) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--scheme=example3", "--faults=drop:0.4", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("channel fault"),
            std::string::npos)
      << report.status().ToString();
}

TEST(CliRunTest, SequentialReport) {
  StatusOr<CliOptions> options = ParseCliArgs({"--mode=seq", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("sequential semi-naive"), std::string::npos);
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, NaiveReport) {
  StatusOr<CliOptions> options = ParseCliArgs({"--mode=naive", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("sequential naive"), std::string::npos);
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, AutoPicksTheoremThreeForAncestor) {
  StatusOr<CliOptions> options = ParseCliArgs({"p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("Theorem 3"), std::string::npos);
  EXPECT_NE(report->find("cross messages: 0"), std::string::npos);
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, AutoFallsBackToGeneralForNonLinear) {
  StatusOr<CliOptions> options = ParseCliArgs({"p.dl"});
  ASSERT_TRUE(options.ok());
  const char* source =
      "par(a, b).  par(b, c).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n";
  StatusOr<std::string> report = RunCli(*options, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("general scheme"), std::string::npos);
  EXPECT_NE(report->find("anc: 3 tuples"), std::string::npos);
}

TEST(CliRunTest, DumpPredicate) {
  StatusOr<CliOptions> options = ParseCliArgs({"--dump=anc", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("(a, d)"), std::string::npos);
}

TEST(CliRunTest, DumpUnknownPredicate) {
  StatusOr<CliOptions> options = ParseCliArgs({"--dump=ghost", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("no such relation"), std::string::npos);
}

TEST(CliRunTest, PrintProgramsShowsConstraints) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--scheme=example3", "--processors=2", "--print-programs", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("-- processor 1 --"), std::string::npos);
  EXPECT_NE(report->find("anc_in"), std::string::npos);
  EXPECT_NE(report->find("= 1."), std::string::npos);
}

TEST(CliRunTest, TradeoffSchemeRuns) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--scheme=tradeoff", "--rho=1.0", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("cross messages: 0"), std::string::npos);
}

TEST(CliRunTest, Example2SchemeRuns) {
  StatusOr<CliOptions> options = ParseCliArgs({"--scheme=example2", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, ParseErrorPropagates) {
  StatusOr<CliOptions> options = ParseCliArgs({"p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, "anc(X :-");
  EXPECT_FALSE(report.ok());
}

TEST(CliRunTest, UnsafeProgramRejected) {
  StatusOr<CliOptions> options = ParseCliArgs({"p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, "p(X, Y) :- q(X).\n");
  EXPECT_FALSE(report.ok());
}

TEST(CliRunTest, StatsTableShown) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--stats", "--processors=2", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("proc"), std::string::npos);
  EXPECT_NE(report->find("rounds"), std::string::npos);
}

TEST(CliParseTest, BuiltinProgramFlag) {
  StatusOr<CliOptions> options = ParseCliArgs({"--program=ancestor"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->builtin, "ancestor");
  EXPECT_TRUE(options->program_path.empty());
}

TEST(CliParseTest, FileAndBuiltinConflict) {
  EXPECT_FALSE(ParseCliArgs({"--program=ancestor", "p.dl"}).ok());
}

TEST(CliParseTest, FactsFlag) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--facts=edge:/tmp/e.tsv", "--facts=w:x.tsv", "p.dl"});
  ASSERT_TRUE(options.ok());
  ASSERT_EQ(options->fact_files.size(), 2u);
  EXPECT_EQ(options->fact_files[0].first, "edge");
  EXPECT_EQ(options->fact_files[0].second, "/tmp/e.tsv");
  EXPECT_FALSE(ParseCliArgs({"--facts=broken", "p.dl"}).ok());
}

TEST(CliRunTest, BuiltinProgramWithInlineFacts) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--program=ancestor", "--mode=seq"});
  ASSERT_TRUE(options.ok());
  // Extra source (facts) is appended after the built-in rules.
  StatusOr<std::string> report =
      RunCli(*options, "par(a, b).\npar(b, c).\n");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("anc: 3 tuples"), std::string::npos);
}

TEST(CliRunTest, UnknownBuiltinFails) {
  StatusOr<CliOptions> options = ParseCliArgs({"--program=zzz"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(CliRunTest, MissingFactFileFails) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--program=ancestor", "--facts=par:/nonexistent/x.tsv"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, "");
  EXPECT_FALSE(report.ok());
}

TEST(CliRunTest, ExplainPrintsPlans) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--explain", "--program=ancestor"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("probe par(X, Z)"), std::string::npos) << *report;
  EXPECT_NE(report->find("delta on body atom 1"), std::string::npos);
}

TEST(CliRunTest, StratifiedSequentialMode) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--mode=seq", "--stratified", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("(stratified)"), std::string::npos);
  EXPECT_NE(report->find("anc: 6 tuples"), std::string::npos);
}

TEST(CliRunTest, AdviseRanking) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--advise", "--net=8", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("advice:"), std::string::npos);
  EXPECT_NE(report->find("theorem3"), std::string::npos);
}

TEST(CliRunTest, AdviseRejectsNonLinear) {
  StatusOr<CliOptions> options = ParseCliArgs({"--advise", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(
      *options,
      "anc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).\n");
  EXPECT_FALSE(report.ok());
}

TEST(CliInteractiveTest, QueryLoopAnswersAndQuits) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--interactive", "--mode=seq", "p.dl"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->interactive);
  std::istringstream in("anc(a, X)\nanc(zzz, W)\n\n");
  std::ostringstream out;
  Status status = RunInteractive(*options, kAncestor, in, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::string text = out.str();
  EXPECT_NE(text.find("X = d"), std::string::npos) << text;
  // Unknown constant: no bindings, loop continues to next prompt.
  EXPECT_GE(std::count(text.begin(), text.end(), '?'), 3);
}

TEST(CliInteractiveTest, MalformedQueryKeepsLooping) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--interactive", "--mode=seq", "p.dl"});
  ASSERT_TRUE(options.ok());
  std::istringstream in("anc(a,\nanc(a, X)\n");
  std::ostringstream out;
  ASSERT_TRUE(RunInteractive(*options, kAncestor, in, out).ok());
  EXPECT_NE(out.str().find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(out.str().find("X = b"), std::string::npos);
}

TEST(CliInteractiveTest, EofEndsLoop) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--interactive", "--mode=seq", "p.dl"});
  ASSERT_TRUE(options.ok());
  std::istringstream in("");
  std::ostringstream out;
  EXPECT_TRUE(RunInteractive(*options, kAncestor, in, out).ok());
}

TEST(CliRunTest, ListPrograms) {
  StatusOr<CliOptions> options = ParseCliArgs({"--list-programs"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  StatusOr<std::string> report = RunCli(*options, "");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("ancestor"), std::string::npos);
  EXPECT_NE(report->find("points_to"), std::string::npos);
  EXPECT_NE(report->find("[linear sirup]"), std::string::npos);
}

TEST(CliParseTest, VarsFlag) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--vars=0:Y,1:Z", "p.dl"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->rule_vars.size(), 2u);
  EXPECT_EQ(options->rule_vars[0].first, 0);
  EXPECT_EQ(options->rule_vars[0].second, "Y");
  EXPECT_EQ(options->rule_vars[1].second, "Z");
  EXPECT_FALSE(ParseCliArgs({"--vars=broken", "p.dl"}).ok());
}

TEST(CliRunTest, VarsOverrideGeneralScheme) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--scheme=general", "--vars=1:Z", "--print-programs",
       "--processors=2", "p.dl"});
  ASSERT_TRUE(options.ok());
  const char* source =
      "par(a, b).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n";
  StatusOr<std::string> report = RunCli(*options, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("h2(Z) = 0"), std::string::npos) << *report;
}

TEST(CliRunTest, EmbeddedQueriesAnswered) {
  StatusOr<CliOptions> options = ParseCliArgs({"--mode=seq", "p.dl"});
  ASSERT_TRUE(options.ok());
  std::string source = std::string(kAncestor) + "?- anc(a, X).\n";
  StatusOr<std::string> report = RunCli(*options, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("?- anc(a, X)"), std::string::npos);
  EXPECT_NE(report->find("X = d"), std::string::npos);
}

TEST(CliRunTest, EmbeddedQueriesAnsweredInParallelMode) {
  StatusOr<CliOptions> options = ParseCliArgs({"p.dl"});
  ASSERT_TRUE(options.ok());
  std::string source = std::string(kAncestor) + "?- anc(b, d).\n";
  StatusOr<std::string> report = RunCli(*options, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("true"), std::string::npos);
}

TEST(CliParseTest, ProfileAndRingFlags) {
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--profile", "--trace-ring-kb=8", "p.dl"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_TRUE(options->profile);
  EXPECT_TRUE(options->profile_file.empty());
  EXPECT_EQ(options->trace_ring_kb, 8);

  options = ParseCliArgs({"--profile=out.json", "p.dl"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->profile);
  EXPECT_EQ(options->profile_file, "out.json");

  EXPECT_FALSE(ParseCliArgs({"--profile=", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--trace-ring-kb=0", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--trace-ring-kb=-4", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--trace-ring-kb=2000000", "p.dl"}).ok());
}

TEST(CliRunTest, ProfilePrintsAnalysisWithoutTraceFile) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--profile", "--processors=2", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("profile:"), std::string::npos) << *report;
  EXPECT_NE(report->find("overall skew"), std::string::npos);
  EXPECT_NE(report->find("per-worker busy/idle"), std::string::npos);
  EXPECT_NE(report->find("communication matrix"), std::string::npos);
  EXPECT_NE(report->find("critical path"), std::string::npos);
  EXPECT_NE(report->find("percentiles"), std::string::npos);
}

TEST(CliRunTest, ProfileSequentialMode) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--mode=seq", "--profile", "p.dl"});
  ASSERT_TRUE(options.ok());
  StatusOr<std::string> report = RunCli(*options, kAncestor);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("profile:"), std::string::npos) << *report;
  EXPECT_NE(report->find("1 workers"), std::string::npos);
}

TEST(CliRunTest, TinyRingWarnsAboutDrops) {
  // 1 KiB = 64 events per ring: a parallel run overflows immediately
  // and must say so instead of silently truncating the analysis.
  StatusOr<CliOptions> options = ParseCliArgs(
      {"--profile", "--trace-ring-kb=1", "--processors=4", "p.dl"});
  ASSERT_TRUE(options.ok());
  // A 40-edge chain runs ~40 rounds: far more than 64 events per ring.
  std::string source =
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n";
  for (int i = 0; i < 40; ++i) {
    source += "par(n" + std::to_string(i) + ", n" +
              std::to_string(i + 1) + ").\n";
  }
  StatusOr<std::string> report = RunCli(*options, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("warning: trace ring overflow dropped"),
            std::string::npos)
      << *report;
}

}  // namespace
}  // namespace pdatalog
