// A walkthrough of every numbered example in the paper, as tests. Each
// test cites the section it reproduces and checks the exact artifacts
// the paper states (rewritten rules, communication patterns, graphs).
#include "core/dataflow_graph.h"
#include "core/network_graph.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::ParseOrDie;
using testing_util::SequentialAncestor;
using testing_util::ValidateOrDie;

// --- Section 4.1, Example 1: v(r) = v(e) = <Y> ---------------------------

TEST(PaperExample1, RewrittenProgramMatchesPaper) {
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 3);
  // "Initialization: anc_out(X,Y) :- par(X,Y), h(Y) = i"
  // "Processing:     anc_out(X,Y) :- par(X,Z), anc(Z,Y), h(Y) = i"
  EXPECT_EQ(ToString(bundle.per_processor[2].rules[0], setup->symbols),
            "anc_out(X, Y) :- par(X, Y), h'(Y) = 2.");
  EXPECT_EQ(ToString(bundle.per_processor[2].rules[1], setup->symbols),
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Y) = 2.");
}

TEST(PaperExample1, SendingRulesYieldNoTuples) {
  // "if i != j, then evaluating the sending rule from processor i to
  //  processor j does not yield any tuple. That is, anc_ij = empty."
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 60, 11);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 3);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_EQ(result->channel_matrix[i][j], 0u);
      }
    }
  }
}

TEST(PaperExample1, ParMustBeSharedForTheProcessingRule) {
  // "Since v(r) = <Y>, and Y does not appear in par(X,Z), it follows
  //  that par^i = par."
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 3);
  EXPECT_EQ(bundle.base_occurrences[1].access,
            BaseOccurrence::Access::kReplicated);
}

// --- Section 4.2, Example 2: arbitrary fragmentation ---------------------

TEST(PaperExample2, ProcessingReadsOnlyTheLocalFragment) {
  // "the execution of Q_i needs access to only a given fragment par^i
  //  of the par relation"
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 60, 12);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, 3);
  for (const BaseOccurrence& occ : bundle.base_occurrences) {
    EXPECT_EQ(occ.access, BaseOccurrence::Access::kFragment);
  }
}

TEST(PaperExample2, AllTuplesCommunicatedToEveryProcessor) {
  // "Since the relation par^j is not available at processor i ... all
  //  tuples in anc_out^i are communicated to processor j."
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 60, 12);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, 3);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cross_tuples + result->self_tuples,
            3 * result->out_tuples_total);
  // "the extra communication does not make the parallel execution
  //  either incorrect or redundant"
  EvalStats seq;
  std::string expected = SequentialAncestor(setup.get(), &seq);
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_EQ(result->total_firings, seq.firings);
}

// --- Section 4.3, Example 3: v(e) = <X>, v(r) = <Z> ----------------------

TEST(PaperExample3, EveryTupleProcessedByAUniqueProcessor) {
  // "every tuple is sent to, and processed by a unique processor."
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 60, 13);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cross_tuples + result->self_tuples,
            result->out_tuples_total);
}

TEST(PaperExample3, DisjointParAccess) {
  // "the accesses to the par relation by different processors do not
  //  overlap": both occurrences fragment (on different columns).
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  ASSERT_EQ(bundle.base_occurrences.size(), 2u);
  EXPECT_EQ(bundle.base_occurrences[0].access,
            BaseOccurrence::Access::kFragment);
  EXPECT_EQ(bundle.base_occurrences[0].positions, (std::vector<int>{0}));
  EXPECT_EQ(bundle.base_occurrences[1].access,
            BaseOccurrence::Access::kFragment);
  EXPECT_EQ(bundle.base_occurrences[1].positions, (std::vector<int>{1}));
}

// --- Section 5, Example 4 / Figure 1 --------------------------------------

TEST(PaperExample4, DataflowGraphIsTheChain) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  DataflowGraph graph = DataflowGraph::Build(*sirup);
  // "The edge 1 -> 2 is in the graph because the variable V appears in
  //  the first attribute position ... the edge 2 -> 3 because W ..."
  EXPECT_EQ(graph.ToString(), "1 -> 2, 2 -> 3");
}

// --- Section 5, Example 5 / Figure 2 --------------------------------------

TEST(PaperExample5, AncestorCycleMeansNoCommunication) {
  auto setup = MakeAncestorSetup();
  DataflowGraph graph = DataflowGraph::Build(setup->sirup);
  EXPECT_EQ(graph.ToString(), "2 -> 2");
  // "there is no requirement for communication between the processors
  //  when the discriminating variable is Z" [the body atom's second
  //  position variable, our Y].
  StatusOr<LinearSchemeOptions> scheme =
      CommunicationFreeScheme(setup->sirup, 4);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(setup->symbols.Name(scheme->v_r[0]), "Y");
}

// --- Section 5, Example 6 / Figure 3 --------------------------------------

TEST(PaperExample6, NoCommunicationFromP00ToP01OrP11) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X, Y) :- q(X, Y).\n"
      "p(X, Y) :- p(Y, Z), r(X, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  // h(a,b) = (g(a), g(b)) encoded as 2 g(a) + g(b): (00)=0, (01)=1,
  // (10)=2, (11)=3.
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(
      *sirup, {symbols.Intern("Y"), symbols.Intern("Z")},
      {symbols.Intern("X"), symbols.Intern("Y")}, {2, 1}, {2, 1});
  ASSERT_TRUE(graph.ok());
  // "there is no communication from processor (00) to processor (01)
  //  ... By the same argument, there is no communication from (00) to
  //  (11). On the other hand ... there is the possibility of
  //  communication from processor (00) to processor (10)."
  auto rec_edge = [&](int from, int to) {
    return std::count(graph->rec_edges.begin(), graph->rec_edges.end(),
                      std::make_pair(from, to)) > 0;
  };
  EXPECT_FALSE(rec_edge(0, 1));
  EXPECT_FALSE(rec_edge(0, 3));
  EXPECT_TRUE(rec_edge(0, 2));
}

// --- Section 5, Example 7 / Figure 4 --------------------------------------

TEST(PaperExample7, ExitSystemOnlySolvesTrivially) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(
      *sirup,
      {symbols.Intern("V"), symbols.Intern("W"), symbols.Intern("Z")},
      {symbols.Intern("U"), symbols.Intern("V"), symbols.Intern("W")},
      {1, -1, 1}, {1, -1, 1});
  ASSERT_TRUE(graph.ok());
  // "The only solutions of equations (1) and (2) above are when i = j."
  for (const auto& [from, to] : graph->exit_edges) EXPECT_EQ(from, to);
  // "the range of h is {0, 1, -1, 2} and thus P = {0, 1, -1, 2}".
  EXPECT_EQ(graph->processors, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(PaperExample7, RecursiveSystemMatchesEquations4And5) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(
      *sirup,
      {symbols.Intern("V"), symbols.Intern("W"), symbols.Intern("Z")},
      {symbols.Intern("U"), symbols.Intern("V"), symbols.Intern("W")},
      {1, -1, 1}, {1, -1, 1});
  ASSERT_TRUE(graph.ok());
  // "x1 - x2 + x3 = v, x2 - x3 + x4 = u subject to x in {0,1}":
  // solutions (u, v) are the recursive edges.
  std::vector<std::pair<int, int>> expected;
  for (int bits = 0; bits < 16; ++bits) {
    int x1 = bits & 1, x2 = (bits >> 1) & 1, x3 = (bits >> 2) & 1,
        x4 = (bits >> 3) & 1;
    expected.emplace_back(x2 - x3 + x4, x1 - x2 + x3);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(graph->rec_edges, expected);
}

// --- Section 7, Example 8: non-linear ancestor ----------------------------

TEST(PaperExample8, RewrittenProgramMatchesPaper) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  // "Suppose v(r1) = <Y>, and v(r2) = <Z>, and h1 = h2 = h."
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(2);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 2, specs);
  ASSERT_TRUE(bundle.ok());
  // "Processing: anc_out(X,Y) :- par(X,Y), h(Y) = i
  //              anc_out(X,Y) :- anc_in(X,Z), anc_in(Z,Y), h(Z) = i"
  EXPECT_EQ(ToString(bundle->per_processor[1].rules[0], symbols),
            "anc_out(X, Y) :- par(X, Y), h1(Y) = 1.");
  EXPECT_EQ(ToString(bundle->per_processor[1].rules[1], symbols),
            "anc_out(X, Y) :- anc_in(X, Z), anc_in(Z, Y), h2(Z) = 1.");
  // "Sending: anc_ij(X,Z) :- anc_out(X,Z), h(Z) = j
  //           anc_ij(Z,Y) :- anc_out(Z,Y), h(Z) = j"
  ASSERT_EQ(bundle->sends[0].size(), 2u);
  EXPECT_EQ(bundle->sends[0][0].var_positions, (std::vector<int>{1}));
  EXPECT_EQ(bundle->sends[0][1].var_positions, (std::vector<int>{0}));
}

TEST(PaperExample8, EachTupleSentToAtMostTwoProcessors) {
  // A tuple (a, b) is routed to h(b) (as anc(X,Z)) and h(a) (as
  // anc(Z,Y)): at most two destinations, deduplicated when equal.
  SymbolTable symbols;
  Program program = ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(4);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 4, specs);
  ASSERT_TRUE(bundle.ok());
  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 30, 60, 8);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok());
  uint64_t messages = result->cross_tuples + result->self_tuples;
  EXPECT_LE(messages, 2 * result->out_tuples_total);
  EXPECT_GE(messages, result->out_tuples_total);
}

// --- Section 6: both special cases of the R_i scheme ----------------------

TEST(PaperSection6, KeepLocalEqualsScheme18) {
  // "Let h_i(...) = i for every tuple ... the parallel execution does
  //  not require any communication."
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 55, 14);
  TradeoffOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(3);
  for (int i = 0; i < 3; ++i) {
    options.h_i.push_back(DiscriminatingFunction::Constant(i));
  }
  StatusOr<RewriteBundle> bundle = RewriteTradeoff(
      setup->program, setup->info, setup->sirup, 3, options);
  ASSERT_TRUE(bundle.ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cross_tuples, 0u);
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
            SequentialAncestor(setup.get(), nullptr));
}

TEST(PaperSection6, SharedHEqualsSection3Scheme) {
  // "Suppose that h_i = h for every i in P ... this program is
  //  identical to the program Q_i presented in section 3": same
  //  answers, same firings, same per-channel traffic.
  auto setup3 = MakeAncestorSetup();
  auto setup6 = MakeAncestorSetup();
  for (auto* s : {setup3.get(), setup6.get()}) {
    GenRandomGraph(&s->symbols, &s->edb, "par", 25, 55, 15);
  }
  RewriteBundle q =
      MakeAncestorBundle(setup3.get(), AncestorScheme::kExample3, 3, 99);
  StatusOr<ParallelResult> rq = RunParallel(q, &setup3->edb);
  ASSERT_TRUE(rq.ok());

  TradeoffOptions options;
  options.v_r = {setup6->symbols.Intern("Z")};
  options.v_e = {setup6->symbols.Intern("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(3, 99);
  for (int i = 0; i < 3; ++i) {
    options.h_i.push_back(DiscriminatingFunction::UniformHash(3, 99));
  }
  StatusOr<RewriteBundle> r = RewriteTradeoff(
      setup6->program, setup6->info, setup6->sirup, 3, options);
  ASSERT_TRUE(r.ok());
  StatusOr<ParallelResult> rr = RunParallel(*r, &setup6->edb);
  ASSERT_TRUE(rr.ok());

  EXPECT_EQ(rr->total_firings, rq->total_firings);
  EXPECT_EQ(rr->channel_matrix, rq->channel_matrix);
  EXPECT_EQ(DumpOutput(*rr, setup6->symbols, setup6->anc()),
            DumpOutput(*rq, setup3->symbols, setup3->anc()));
}

}  // namespace
}  // namespace pdatalog
