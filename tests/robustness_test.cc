// Robustness and limit tests across the frontend and evaluators: large
// programs, deep recursion, long identifiers, adversarial input.
#include <string>

#include "datalog/parser.h"
#include "core/rewrite.h"
#include "datalog/query.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

TEST(RobustnessTest, ThousandRuleProgramParsesAndValidates) {
  std::string source;
  for (int i = 0; i < 1000; ++i) {
    source += "p" + std::to_string(i) + "(X) :- base(X).\n";
  }
  SymbolTable symbols;
  Program program = ParseOrDie(source, &symbols);
  EXPECT_EQ(program.rules.size(), 1000u);
  ProgramInfo info;
  EXPECT_TRUE(Validate(program, &info).ok());
  EXPECT_EQ(info.derived.size(), 1000u);
}

TEST(RobustnessTest, DeepDerivationChainEvaluates) {
  // p999 <- p998 <- ... <- p0 <- base: 1000 strata deep.
  std::string source = "p0(X) :- base(X).\n";
  for (int i = 1; i < 1000; ++i) {
    source += "p" + std::to_string(i) + "(X) :- p" +
              std::to_string(i - 1) + "(X).\n";
  }
  source += "base(k).\n";
  SymbolTable symbols;
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("p999"))->size(), 1u);
  // Stratified mode must survive the same depth (iterative Tarjan).
  Database db2;
  ASSERT_TRUE(db2.LoadFacts(program).ok());
  EvalOptions options;
  options.stratified = true;
  EvalStats stats2;
  ASSERT_TRUE(
      SemiNaiveEvaluate(program, info, &db2, &stats2, nullptr, options)
          .ok());
  EXPECT_EQ(db2.Find(symbols.Lookup("p999"))->size(), 1u);
}

TEST(RobustnessTest, VeryLongIdentifiers) {
  std::string long_pred(2000, 'p');
  std::string long_const(2000, 'c');
  std::string source =
      long_pred + "(" + long_const + ").\n" +
      "q(X) :- " + long_pred + "(X).\n";
  SymbolTable symbols;
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("q"))->size(), 1u);
}

TEST(RobustnessTest, ManyArgumentsUpToLimit) {
  // Arity 32 is the compiled-rule limit; it must work end to end.
  std::string args;
  std::string vars;
  for (int i = 0; i < 32; ++i) {
    if (i > 0) {
      args += ", ";
      vars += ", ";
    }
    args += "c" + std::to_string(i);
    vars += "V" + std::to_string(i);
  }
  std::string source =
      "wide(" + args + ").\n" + "copy(" + vars + ") :- wide(" + vars +
      ").\n";
  SymbolTable symbols;
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  ASSERT_TRUE(db.LoadFacts(program).ok());
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_EQ(db.Find(symbols.Lookup("copy"))->size(), 1u);
}

TEST(RobustnessTest, ArityAbove32RejectedCleanly) {
  std::string vars;
  for (int i = 0; i < 33; ++i) {
    if (i > 0) vars += ", ";
    vars += "V" + std::to_string(i);
  }
  std::string source =
      "copy(" + vars + ") :- wide(" + vars + ").\n";
  SymbolTable symbols;
  Program program = ParseOrDie(source, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  EvalStats stats;
  Status status = SemiNaiveEvaluate(program, info, &db, &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("arity"), std::string::npos);
}

TEST(RobustnessTest, GarbageInputsNeverCrashTheParser) {
  SymbolTable symbols;
  const char* cases[] = {
      "((((((((",       ":-:-:-",        "p(",
      "p(a,)",          ").",            "p(a) :- .",
      "p(a)q(b)",       "'unterminated", "p(a). 123abc(",
      "%only a comment", "\n\n\n",       "p(a) :- q(a), .",
  };
  for (const char* bad : cases) {
    StatusOr<Program> result = ParseProgram(bad, &symbols);
    // Some inputs are legal (comments/whitespace); none may crash, and
    // the illegal ones must produce a Status.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << bad;
    }
  }
}

TEST(RobustnessTest, SelfLoopEdgeTerminates) {
  SymbolTable symbols;
  Database db = testing_util::EvalOrDie(
      "par(a, a).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  EXPECT_EQ(db.Find(symbols.Lookup("anc"))->size(), 1u);
}

TEST(RobustnessTest, LargeClosureStress) {
  // 400-node random graph, ~2.5 edges/node: tens of thousands of
  // closure tuples through the full engine stack.
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database db;
  GenRandomGraph(&symbols, &db, "par", 400, 1000, 5);
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &db, &stats).ok());
  EXPECT_GT(db.Find(symbols.Lookup("anc"))->size(), 10000u);
}

TEST(RobustnessTest, OversizedDiscriminatingSequenceRejected) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  // 33 repeats of Z: sequences are ordered lists, so this is legal
  // syntax but over the engine's 32-position limit.
  for (int i = 0; i < 33; ++i) {
    options.v_r.push_back(symbols.Intern("Z"));
    options.v_e.push_back(symbols.Intern("X"));
  }
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  EXPECT_FALSE(bundle.ok());
}

TEST(RobustnessTest, OversizedQueryRejected) {
  SymbolTable symbols;
  Database db;
  std::string query = "wide(";
  for (int i = 0; i < 33; ++i) {
    if (i > 0) query += ", ";
    query += "V" + std::to_string(i);
  }
  query += ")";
  EXPECT_FALSE(EvaluateQuery(query, &symbols, db).ok());
}

}  // namespace
}  // namespace pdatalog
