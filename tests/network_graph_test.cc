#include "core/network_graph.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "parallel_test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

LinearSirup MakeSirup(const char* source, SymbolTable* symbols) {
  Program program = ParseOrDie(source, symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  EXPECT_TRUE(sirup.ok()) << sirup.status().ToString();
  return std::move(*sirup);
}

// --- Example 6 / Figure 3 ------------------------------------------------
//
// p(X,Y) :- p(Y,Z), r(X,Z); v(e) = <X,Y>, v(r) = <Y,Z>,
// h(a,b) = (g(a), g(b)) encoded as the linear form 2*g(a) + g(b), so
// processors 0..3 are the paper's (00), (01), (10), (11).

TEST(NetworkGraphTest, Figure3Example6) {
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(X, Y) :- q(X, Y).\n"
      "p(X, Y) :- p(Y, Z), r(X, Z).\n",
      &symbols);
  std::vector<Symbol> v_r = {symbols.Intern("Y"), symbols.Intern("Z")};
  std::vector<Symbol> v_e = {symbols.Intern("X"), symbols.Intern("Y")};
  StatusOr<NetworkGraph> graph =
      DeriveNetworkGraph(sirup, v_r, v_e, {2, 1}, {2, 1});
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  EXPECT_EQ(graph->processors, (std::vector<int>{0, 1, 2, 3}));

  // Figure 3: writing processors in binary (ab), the recursive edges are
  // exactly (b, w) -> (a, b): the de Bruijn condition
  // "second bit of target == first bit of source".
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      bool expected = (to & 1) == (from >> 1);
      bool has = std::count(graph->rec_edges.begin(),
                            graph->rec_edges.end(),
                            std::make_pair(from, to)) > 0;
      EXPECT_EQ(has, expected) << from << " -> " << to;
    }
  }

  // The paper's two worked facts: (00) never sends to (01) or (11), but
  // may send to (10).
  EXPECT_FALSE(std::count(graph->rec_edges.begin(), graph->rec_edges.end(),
                          std::make_pair(0, 1)));
  EXPECT_FALSE(std::count(graph->rec_edges.begin(), graph->rec_edges.end(),
                          std::make_pair(0, 3)));
  EXPECT_TRUE(std::count(graph->rec_edges.begin(), graph->rec_edges.end(),
                         std::make_pair(0, 2)));

  // Exit-rule production only ever feeds the same processor.
  for (const auto& [from, to] : graph->exit_edges) {
    EXPECT_EQ(from, to);
  }
}

// --- Example 7 / Figure 4 ------------------------------------------------
//
// p(U,V,W) :- p(V,W,Z), q(U,Z); v(r) = <V,W,Z>, v(e) = <U,V,W>,
// h(a1,a2,a3) = g(a1) - g(a2) + g(a3); P = {-1, 0, 1, 2}.

TEST(NetworkGraphTest, Figure4Example7) {
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  std::vector<Symbol> v_r = {symbols.Intern("V"), symbols.Intern("W"),
                             symbols.Intern("Z")};
  std::vector<Symbol> v_e = {symbols.Intern("U"), symbols.Intern("V"),
                             symbols.Intern("W")};
  StatusOr<NetworkGraph> graph =
      DeriveNetworkGraph(sirup, v_r, v_e, {1, -1, 1}, {1, -1, 1});
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  EXPECT_EQ(graph->processors, (std::vector<int>{-1, 0, 1, 2}));

  // The paper's equations (4)-(5): v = x1 - x2 + x3, u = x2 - x3 + x4
  // over x in {0,1}^4; edge u -> v. Brute-force the expected set.
  std::vector<std::pair<int, int>> expected;
  for (int bits = 0; bits < 16; ++bits) {
    int x1 = bits & 1, x2 = (bits >> 1) & 1, x3 = (bits >> 2) & 1,
        x4 = (bits >> 3) & 1;
    expected.emplace_back(x2 - x3 + x4, x1 - x2 + x3);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(graph->rec_edges, expected);

  // The paper notes the exit-rule system (equations (1)-(2)) only has
  // i = j solutions.
  for (const auto& [from, to] : graph->exit_edges) {
    EXPECT_EQ(from, to);
  }
}

TEST(NetworkGraphTest, AncestorExample1SelfLoopsOnly) {
  // v(r) = v(e) = <Y> with h = g(Y): the derived network graph must
  // contain only self-loops — the compile-time proof that Example 1
  // needs no communication.
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  std::vector<Symbol> v = {symbols.Intern("Y")};
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(sirup, v, v, {1}, {1});
  ASSERT_TRUE(graph.ok());
  for (const auto& [from, to] : graph->edges) {
    EXPECT_EQ(from, to);
  }
}

TEST(NetworkGraphTest, AncestorExample3IsComplete) {
  // v(r) = <Z>, v(e) = <X> with h = g: tuples may travel anywhere — the
  // price Example 3 pays for disjoint fragments.
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(
      sirup, {symbols.Intern("Z")}, {symbols.Intern("X")}, {1}, {1});
  ASSERT_TRUE(graph.ok());
  // 2 processors, all 4 directed pairs possible.
  EXPECT_EQ(graph->edges.size(), 4u);
}

TEST(NetworkGraphTest, CoefficientArityMismatchRejected) {
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  EXPECT_FALSE(
      DeriveNetworkGraph(sirup, {symbols.Intern("Z")},
                         {symbols.Intern("X")}, {1, 1}, {1})
          .ok());
}

TEST(NetworkGraphTest, StatsHelpers) {
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  // Example 1 choice: self-loops only.
  StatusOr<NetworkGraph> self = DeriveNetworkGraph(
      sirup, {symbols.Intern("Y")}, {symbols.Intern("Y")}, {1}, {1});
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->SelfLoopsOnly());
  EXPECT_FALSE(self->IsComplete());
  EXPECT_EQ(self->MaxOutDegree(), 1);

  // Example 3 choice: complete 2x2 crossbar.
  StatusOr<NetworkGraph> full = DeriveNetworkGraph(
      sirup, {symbols.Intern("Z")}, {symbols.Intern("X")}, {1}, {1});
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->SelfLoopsOnly());
  EXPECT_TRUE(full->IsComplete());
  EXPECT_EQ(full->MaxOutDegree(), 2);
}

TEST(NetworkGraphTest, ToStringListsAdjacency) {
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  StatusOr<NetworkGraph> graph = DeriveNetworkGraph(
      sirup, {symbols.Intern("Y")}, {symbols.Intern("Y")}, {1}, {1});
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->ToString(), "0 -> {0}\n1 -> {1}\n");
}

// Minimality (the [9] claim): every derived recursive edge is realized
// by some concrete database. For Example 6's h we pick witness
// databases per edge and check the engine actually uses the channel.
TEST(NetworkGraphTest, DerivedEdgesAreRealizable) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "p(X, Y) :- q(X, Y).\n"
      "p(X, Y) :- p(Y, Z), r(X, Z).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());

  std::vector<Symbol> v_r = {symbols.Intern("Y"), symbols.Intern("Z")};
  std::vector<Symbol> v_e = {symbols.Intern("X"), symbols.Intern("Y")};
  StatusOr<NetworkGraph> graph =
      DeriveNetworkGraph(*sirup, v_r, v_e, {2, 1}, {2, 1});
  ASSERT_TRUE(graph.ok());

  // Run the engine on data wide enough to hit every g-value pattern:
  // constants hashed by the engine's linear g cover both bits.
  LinearSchemeOptions options;
  options.v_r = v_r;
  options.v_e = v_e;
  options.h = WithDenseRemap(DiscriminatingFunction::Linear({2, 1}));
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 4, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  SplitMix64 rng(99);
  Relation& q = edb.GetOrCreate(symbols.Intern("q"), 2);
  Relation& r = edb.GetOrCreate(symbols.Intern("r"), 2);
  std::vector<Value> nodes;
  for (int i = 0; i < 16; ++i) {
    nodes.push_back(symbols.Intern("n" + std::to_string(i)));
  }
  for (int i = 0; i < 80; ++i) {
    q.Insert(Tuple{nodes[rng.NextBelow(16)], nodes[rng.NextBelow(16)]});
    r.Insert(Tuple{nodes[rng.NextBelow(16)], nodes[rng.NextBelow(16)]});
  }

  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Soundness of the derivation: traffic only on derived edges. (The
  // raw ids 0..3 coincide with the dense remap of the linear values.)
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (result->channel_matrix[i][j] > 0) {
        EXPECT_TRUE(graph->HasEdge(i, j))
            << "undeclared traffic " << i << " -> " << j << ": "
            << result->channel_matrix[i][j];
      }
    }
  }
  // Minimality: with this much data every recursive edge fires.
  for (const auto& [from, to] : graph->rec_edges) {
    EXPECT_GT(result->channel_matrix[from][to], 0u)
        << "derived edge " << from << " -> " << to << " never used";
  }
}

}  // namespace
}  // namespace pdatalog
