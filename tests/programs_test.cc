// Every built-in program must parse, validate, classify as advertised,
// and (for the recursive ones) evaluate correctly on small data.
#include "workload/programs.h"

#include "core/dataflow_graph.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

TEST(ProgramsTest, AllBuiltinsParseAndValidate) {
  for (const NamedProgram& named : BuiltinPrograms()) {
    SymbolTable symbols;
    Program program = ParseOrDie(named.source, &symbols);
    ProgramInfo info;
    Status status = Validate(program, &info);
    EXPECT_TRUE(status.ok()) << named.name << ": " << status.ToString();
    EXPECT_FALSE(info.derived.empty()) << named.name;
  }
}

TEST(ProgramsTest, LinearSirupFlagMatchesExtraction) {
  for (const NamedProgram& named : BuiltinPrograms()) {
    SymbolTable symbols;
    Program program = ParseOrDie(named.source, &symbols);
    ProgramInfo info = ValidateOrDie(program);
    StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
    EXPECT_EQ(sirup.ok(), named.linear_sirup)
        << named.name << ": "
        << (sirup.ok() ? "extracted" : sirup.status().ToString());
  }
}

TEST(ProgramsTest, FindProgramByName) {
  StatusOr<NamedProgram> found = FindProgram("ancestor");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->name, "ancestor");
  EXPECT_TRUE(found->linear_sirup);
}

TEST(ProgramsTest, FindUnknownListsChoices) {
  StatusOr<NamedProgram> missing = FindProgram("nonsense");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("ancestor"),
            std::string::npos);
}

TEST(ProgramsTest, PointsToEvaluates) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("points_to");
  ASSERT_TRUE(named.ok());
  // v1 = new o1; v2 = v1; store *v2 = v1; v3 = load *v2.
  std::string source = named->source +
                       "new(v1, o1).\n"
                       "assign(v2, v1).\n"
                       "store(v2, v1).\n"
                       "load(v3, v2).\n";
  Database db = testing_util::EvalOrDie(source, &symbols);
  const Relation* pt = db.Find(symbols.Lookup("pt"));
  ASSERT_NE(pt, nullptr);
  // v2 points to o1 (copy), o1's heap slot holds o1 (store), and v3
  // picks it up through the load.
  EXPECT_TRUE(pt->Contains(
      Tuple{symbols.Lookup("v2"), symbols.Lookup("o1")}));
  EXPECT_TRUE(pt->Contains(
      Tuple{symbols.Lookup("v3"), symbols.Lookup("o1")}));
  const Relation* heap = db.Find(symbols.Lookup("heap_pt"));
  EXPECT_TRUE(heap->Contains(
      Tuple{symbols.Lookup("o1"), symbols.Lookup("o1")}));
}

TEST(ProgramsTest, ReachabilityUsesConstant) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("reachability");
  ASSERT_TRUE(named.ok());
  std::string source = named->source +
                       "edge(n0, n1).\nedge(n1, n2).\nedge(n9, n5).\n";
  Database db = testing_util::EvalOrDie(source, &symbols);
  EXPECT_EQ(testing_util::Dump(db, symbols, "reach"), "(n1)\n(n2)\n");
}

TEST(ProgramsTest, SwapSirupHasCyclicDataflow) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("swap");
  ASSERT_TRUE(named.ok());
  Program program = ParseOrDie(named->source, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  DataflowGraph graph = DataflowGraph::Build(*sirup);
  EXPECT_TRUE(graph.HasCycle());
  EXPECT_EQ(graph.CyclePositions(), (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace pdatalog
