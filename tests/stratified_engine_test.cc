// Stratified parallel evaluation: one parallel run per SCC stratum,
// completed strata becoming extensional inputs of later ones.
#include "core/engine.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

std::vector<GeneralRuleSpec> FirstBodyVarSpecs(const Program& program,
                                               int P, uint64_t seed) {
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    std::vector<Symbol> vars;
    for (const Atom& atom : program.rules[r].body) {
      CollectVariables(atom, &vars);
    }
    if (!vars.empty()) specs[r].vars = {vars[0]};
    specs[r].h = DiscriminatingFunction::UniformHash(P, seed);
  }
  return specs;
}

TEST(StratifiedEngineTest, LayeredClosuresMatchSequential) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "r1(X, Y) :- e(X, Y).\n"
      "r1(X, Y) :- e(X, Z), r1(Z, Y).\n"
      "r2(X, Y) :- r1(X, Y).\n"
      "r2(X, Y) :- r1(X, Z), r2(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);

  Database seq_db;
  GenChain(&symbols, &seq_db, "e", 15);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());

  Database edb;
  GenChain(&symbols, &edb, "e", 15);
  StatusOr<ParallelResult> result = RunParallelStratified(
      program, info, 3, FirstBodyVarSpecs(program, 3, 1), &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const char* pred : {"r1", "r2"}) {
    EXPECT_EQ(result->output.Find(symbols.Lookup(pred))
                  ->ToSortedString(symbols),
              seq_db.Find(symbols.Lookup(pred))->ToSortedString(symbols))
        << pred;
  }
  EXPECT_EQ(result->total_firings, seq.firings);
}

TEST(StratifiedEngineTest, SingleStratumEquivalentToRunParallel) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[1].vars = {symbols.Intern("Z")};
  for (auto& s : specs) s.h = DiscriminatingFunction::UniformHash(3, 7);

  Database edb1;
  GenTree(&symbols, &edb1, "par", 2, 5);
  StatusOr<ParallelResult> strat = RunParallelStratified(
      program, info, 3, specs, &edb1);
  ASSERT_TRUE(strat.ok());

  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok());
  Database edb2;
  GenTree(&symbols, &edb2, "par", 2, 5);
  StatusOr<ParallelResult> flat = RunParallel(*bundle, &edb2);
  ASSERT_TRUE(flat.ok());

  EXPECT_EQ(strat->total_firings, flat->total_firings);
  EXPECT_EQ(strat->pooled_tuples, flat->pooled_tuples);
  Symbol anc = symbols.Lookup("anc");
  EXPECT_EQ(strat->output.Find(anc)->ToSortedString(symbols),
            flat->output.Find(anc)->ToSortedString(symbols));
}

TEST(StratifiedEngineTest, RandomProgramsMatchSequential) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SymbolTable symbols;
    RandomProgramOptions gen;
    gen.seed = seed;
    gen.num_derived = 3;
    StatusOr<Program> program = GenerateRandomProgram(&symbols, gen);
    ASSERT_TRUE(program.ok());
    ProgramInfo info = ValidateOrDie(*program);

    Database seq_db;
    ASSERT_TRUE(seq_db.LoadFacts(*program).ok());
    EvalStats seq;
    ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &seq_db, &seq).ok());

    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    StatusOr<ParallelResult> result = RunParallelStratified(
        *program, info, 3, FirstBodyVarSpecs(*program, 3, seed), &edb);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    for (Symbol p : info.derived) {
      EXPECT_EQ(result->output.Find(p)->ToSortedString(symbols),
                seq_db.Find(p)->ToSortedString(symbols))
          << "seed " << seed << " pred " << symbols.Name(p);
    }
    EXPECT_LE(result->total_firings, seq.firings) << "seed " << seed;
  }
}

TEST(StratifiedEngineTest, SpecCountValidated) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database edb;
  EXPECT_FALSE(RunParallelStratified(program, info, 2, {}, &edb).ok());
}

TEST(StratifiedEngineTest, AggregatedStatsConsistent) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "r1(X, Y) :- e(X, Y).\n"
      "r1(X, Y) :- e(X, Z), r1(Z, Y).\n"
      "r2(X, Y) :- r1(X, Y).\n"
      "r2(X, Y) :- r1(X, Z), r2(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  Database edb;
  GenChain(&symbols, &edb, "e", 12);
  StatusOr<ParallelResult> result = RunParallelStratified(
      program, info, 4, FirstBodyVarSpecs(program, 4, 3), &edb);
  ASSERT_TRUE(result.ok());

  uint64_t worker_firings = 0;
  for (const WorkerStats& w : result->workers) worker_firings += w.firings;
  EXPECT_EQ(worker_firings, result->total_firings);

  uint64_t log_firings = 0;
  for (const auto& rounds : result->worker_rounds) {
    for (const RoundLog& log : rounds) log_firings += log.firings;
  }
  EXPECT_EQ(log_firings, result->total_firings);
}

}  // namespace
}  // namespace pdatalog
