#include "datalog/ast.h"

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(TermTest, MakeTermClassifiesByCase) {
  SymbolTable symbols;
  EXPECT_TRUE(MakeTerm(symbols, "X").is_var());
  EXPECT_TRUE(MakeTerm(symbols, "Foo").is_var());
  EXPECT_TRUE(MakeTerm(symbols, "_tmp").is_var());
  EXPECT_TRUE(MakeTerm(symbols, "alice").is_const());
  EXPECT_TRUE(MakeTerm(symbols, "42").is_const());
}

TEST(AtomTest, MakeAtomAndPrint) {
  SymbolTable symbols;
  Atom atom = MakeAtom(symbols, "par", {"X", "bob"});
  EXPECT_EQ(atom.arity(), 2);
  EXPECT_FALSE(atom.IsGround());
  EXPECT_EQ(ToString(atom, symbols), "par(X, bob)");
}

TEST(AtomTest, GroundAtom) {
  SymbolTable symbols;
  Atom atom = MakeAtom(symbols, "par", {"alice", "bob"});
  EXPECT_TRUE(atom.IsGround());
}

TEST(AtomTest, ZeroArity) {
  SymbolTable symbols;
  Atom atom = MakeAtom(symbols, "flag", {});
  EXPECT_EQ(atom.arity(), 0);
  EXPECT_TRUE(atom.IsGround());
  EXPECT_EQ(ToString(atom, symbols), "flag()");
}

TEST(RuleTest, VariablesInFirstOccurrenceOrder) {
  SymbolTable symbols;
  Rule rule;
  rule.head = MakeAtom(symbols, "anc", {"X", "Y"});
  rule.body = {MakeAtom(symbols, "par", {"X", "Z"}),
               MakeAtom(symbols, "anc", {"Z", "Y"})};
  std::vector<Symbol> vars = rule.Variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(symbols.Name(vars[0]), "X");
  EXPECT_EQ(symbols.Name(vars[1]), "Y");
  EXPECT_EQ(symbols.Name(vars[2]), "Z");
}

TEST(RuleTest, RangeRestriction) {
  SymbolTable symbols;
  Rule safe;
  safe.head = MakeAtom(symbols, "p", {"X"});
  safe.body = {MakeAtom(symbols, "q", {"X", "Y"})};
  EXPECT_TRUE(safe.IsRangeRestricted());

  Rule unsafe;
  unsafe.head = MakeAtom(symbols, "p", {"W"});
  unsafe.body = {MakeAtom(symbols, "q", {"X", "Y"})};
  EXPECT_FALSE(unsafe.IsRangeRestricted());
}

TEST(RuleTest, ConstantHeadIsRangeRestricted) {
  SymbolTable symbols;
  Rule rule;
  rule.head = MakeAtom(symbols, "p", {"c"});
  rule.body = {MakeAtom(symbols, "q", {"X"})};
  EXPECT_TRUE(rule.IsRangeRestricted());
}

TEST(RuleTest, PrintFactAndRule) {
  SymbolTable symbols;
  Rule fact;
  fact.head = MakeAtom(symbols, "par", {"a", "b"});
  EXPECT_EQ(ToString(fact, symbols), "par(a, b).");

  Rule rule;
  rule.head = MakeAtom(symbols, "anc", {"X", "Y"});
  rule.body = {MakeAtom(symbols, "par", {"X", "Z"}),
               MakeAtom(symbols, "anc", {"Z", "Y"})};
  EXPECT_EQ(ToString(rule, symbols), "anc(X, Y) :- par(X, Z), anc(Z, Y).");
}

TEST(RuleTest, PrintWithHashConstraint) {
  SymbolTable symbols;
  Rule rule;
  rule.head = MakeAtom(symbols, "anc_out", {"X", "Y"});
  rule.body = {MakeAtom(symbols, "par", {"X", "Z"}),
               MakeAtom(symbols, "anc_in", {"Z", "Y"})};
  HashConstraint c;
  c.function = 0;
  c.label = symbols.Intern("h");
  c.vars = {symbols.Intern("Z")};
  c.target = 3;
  rule.constraints.push_back(c);
  EXPECT_EQ(ToString(rule, symbols),
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 3.");
}

TEST(ProgramTest, PrintWholeProgram) {
  SymbolTable symbols;
  Program program;
  program.symbols = &symbols;
  Rule rule;
  rule.head = MakeAtom(symbols, "anc", {"X", "Y"});
  rule.body = {MakeAtom(symbols, "par", {"X", "Y"})};
  program.rules.push_back(rule);
  program.facts.push_back(MakeAtom(symbols, "par", {"a", "b"}));
  EXPECT_EQ(ToString(program), "anc(X, Y) :- par(X, Y).\npar(a, b).\n");
}

TEST(CollectVariablesTest, DeduplicatesAcrossCalls) {
  SymbolTable symbols;
  Atom a1 = MakeAtom(symbols, "p", {"X", "Y"});
  Atom a2 = MakeAtom(symbols, "q", {"Y", "Z"});
  std::vector<Symbol> vars;
  CollectVariables(a1, &vars);
  CollectVariables(a2, &vars);
  EXPECT_EQ(vars.size(), 3u);
}

}  // namespace
}  // namespace pdatalog
