#include "gtest/gtest.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/table.h"

namespace pdatalog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(StatusOrTest, ImplicitConstructionFromReturn) {
  EXPECT_TRUE(Half(4).ok());
  EXPECT_EQ(*Half(4), 2);
  EXPECT_FALSE(Half(3).ok());
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Sequential inputs should not collide in the low bits.
  EXPECT_NE(Mix64(100) % 16, Mix64(101) % 16 + 16);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, SplitMix64Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(HashTest, NextBelowInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(HashTest, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(TableTest, AlignsColumns) {
  TextTable table({"name", "count"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "12345"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("count"), std::string::npos);
  // Header row, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, DoubleCellPrecision) {
  EXPECT_EQ(TextTable::Cell(1.5, 2), "1.50");
  EXPECT_EQ(TextTable::Cell(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace pdatalog
