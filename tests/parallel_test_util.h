// Helpers shared by the parallel-engine test suites.
#ifndef PDATALOG_TESTS_PARALLEL_TEST_UTIL_H_
#define PDATALOG_TESTS_PARALLEL_TEST_UTIL_H_

#include <string>

#include "core/engine.h"
#include "core/partition.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace testing_util {

// The three ancestor parallelizations of Section 4.
enum class AncestorScheme {
  kExample1,  // v(r) = v(e) = <Y>: no communication, par shared
  kExample2,  // v(r) = <X,Z>, h = fragmentation lookup: broadcast
  kExample3,  // v(e) = <X>, v(r) = <Z>: point-to-point
};

struct AncestorSetup {
  SymbolTable symbols;
  Program program;
  ProgramInfo info;
  LinearSirup sirup;
  Database edb;

  Symbol anc() const { return symbols.Lookup("anc"); }
};

// Parses the ancestor program; the caller then fills `edb` with a
// generator before building a bundle.
inline std::unique_ptr<AncestorSetup> MakeAncestorSetup() {
  auto setup = std::make_unique<AncestorSetup>();
  setup->program = ParseOrDie(kAncestorProgram, &setup->symbols);
  setup->info = ValidateOrDie(setup->program);
  StatusOr<LinearSirup> sirup =
      ExtractLinearSirup(setup->program, setup->info);
  EXPECT_TRUE(sirup.ok());
  setup->sirup = std::move(*sirup);
  return setup;
}

// Builds the Section 4 scheme bundle. For Example 2 the fragmentation
// function is derived from the current contents of setup->edb["par"].
inline RewriteBundle MakeAncestorBundle(AncestorSetup* setup,
                                        AncestorScheme scheme, int P,
                                        uint64_t seed = 0x5eed) {
  LinearSchemeOptions options;
  SymbolTable& symbols = setup->symbols;
  switch (scheme) {
    case AncestorScheme::kExample1:
      options.v_r = {symbols.Intern("Y")};
      options.v_e = {symbols.Intern("Y")};
      options.h = DiscriminatingFunction::UniformHash(P, seed);
      break;
    case AncestorScheme::kExample2: {
      options.v_r = {symbols.Intern("X"), symbols.Intern("Z")};
      options.v_e = {symbols.Intern("X"), symbols.Intern("Y")};
      Relation& par = setup->edb.GetOrCreate(symbols.Intern("par"), 2);
      options.h = MakeArbitraryFragmentation(par, P, seed);
      break;
    }
    case AncestorScheme::kExample3:
      options.v_r = {symbols.Intern("Z")};
      options.v_e = {symbols.Intern("X")};
      options.h = DiscriminatingFunction::UniformHash(P, seed);
      break;
  }
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, P, options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  return std::move(*bundle);
}

// Sequential reference run over a copy of the EDB facts in `setup`.
// Returns the sorted anc dump and fills `stats`.
inline std::string SequentialAncestor(AncestorSetup* setup,
                                      EvalStats* stats) {
  Database db;
  const Relation* par = setup->edb.Find(setup->symbols.Lookup("par"));
  if (par != nullptr) {
    Relation& copy = db.GetOrCreate(setup->symbols.Lookup("par"), 2);
    for (size_t row = 0; row < par->size(); ++row) {
      copy.Insert(par->row(row));
    }
  }
  EvalStats local;
  Status status = SemiNaiveEvaluate(setup->program, setup->info, &db,
                                    stats ? stats : &local);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return Dump(db, setup->symbols, "anc");
}

inline std::string DumpOutput(const ParallelResult& result,
                              const SymbolTable& symbols, Symbol pred) {
  const Relation* rel = result.output.Find(pred);
  return rel == nullptr ? "" : rel->ToSortedString(symbols);
}

}  // namespace testing_util
}  // namespace pdatalog

#endif  // PDATALOG_TESTS_PARALLEL_TEST_UTIL_H_
