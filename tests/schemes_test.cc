// Tests reproducing the paper's Section 4 and Section 6 claims as exact
// program properties: communication patterns, fragmentation, and the
// non-redundancy theorems.
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

// --- Example 1 (Wolfson-Silberschatz): no communication ----------------

TEST(Example1Test, NoCrossChannelTrafficEver) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, seed);
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 4, seed);
    StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
    ASSERT_TRUE(result.ok());
    // "no communication is incurred during the recursive computation"
    EXPECT_EQ(result->cross_tuples, 0u) << "seed " << seed;
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
              SequentialAncestor(setup.get(), nullptr));
  }
}

TEST(Example1Test, RecursiveParOccurrenceIsReplicated) {
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 4);
  // par(X, Z) in the recursive rule: Y does not occur, so it must be
  // shared/replicated (Section 4.1).
  EXPECT_EQ(bundle.base_occurrences[1].access,
            BaseOccurrence::Access::kReplicated);
}

// --- Example 2 (Valduriez-Khoshafian): arbitrary fragments, broadcast --

TEST(Example2Test, EveryOutputTupleIsBroadcast) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 7);
  const int P = 4;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, P, 7);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());

  // "all tuples in anc_out^i are communicated to processor j": each
  // distinct output tuple of each worker goes to all P processors.
  EXPECT_EQ(result->cross_tuples + result->self_tuples,
            result->out_tuples_total * P);
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
            SequentialAncestor(setup.get(), nullptr));
}

TEST(Example2Test, WorksOnAnyFragmentationSeed) {
  for (uint64_t frag_seed : {11u, 22u, 33u}) {
    auto setup = MakeAncestorSetup();
    GenTree(&setup->symbols, &setup->edb, "par", 2, 5);
    RewriteBundle bundle = MakeAncestorBundle(
        setup.get(), AncestorScheme::kExample2, 3, frag_seed);
    StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
              SequentialAncestor(setup.get(), nullptr))
        << "fragmentation seed " << frag_seed;
  }
}

TEST(Example2Test, BaseRelationFullyFragmented) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 20);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample2, 4);
  // v(r) = <X, Z> occurs fully in par(X, Z); v(e) = <X, Y> in par(X, Y):
  // both occurrences fragment, nothing is replicated.
  for (const BaseOccurrence& occ : bundle.base_occurrences) {
    EXPECT_EQ(occ.access, BaseOccurrence::Access::kFragment);
  }
}

// --- Example 3 (the paper's new scheme): point-to-point -----------------

TEST(Example3Test, EveryTupleSentToExactlyOneProcessor) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 13);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  // "every tuple is sent to, and processed by, a unique processor."
  EXPECT_EQ(result->cross_tuples + result->self_tuples,
            result->out_tuples_total);
  uint64_t broadcasts = 0;
  for (const WorkerStats& w : result->workers) broadcasts += w.broadcasts;
  EXPECT_EQ(broadcasts, 0u);
}

TEST(Example3Test, CommunicationBetweenExtremes) {
  // comm(Ex1) = 0 <= comm(Ex3) <= comm(Ex2), strict on non-trivial data.
  auto setup1 = MakeAncestorSetup();
  auto setup2 = MakeAncestorSetup();
  auto setup3 = MakeAncestorSetup();
  for (auto* s : {setup1.get(), setup2.get(), setup3.get()}) {
    GenRandomGraph(&s->symbols, &s->edb, "par", 30, 60, 21);
  }
  const int P = 4;
  RewriteBundle b1 =
      MakeAncestorBundle(setup1.get(), AncestorScheme::kExample1, P);
  RewriteBundle b2 =
      MakeAncestorBundle(setup2.get(), AncestorScheme::kExample2, P);
  RewriteBundle b3 =
      MakeAncestorBundle(setup3.get(), AncestorScheme::kExample3, P);
  StatusOr<ParallelResult> r1 = RunParallel(b1, &setup1->edb);
  StatusOr<ParallelResult> r2 = RunParallel(b2, &setup2->edb);
  StatusOr<ParallelResult> r3 = RunParallel(b3, &setup3->edb);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->cross_tuples, 0u);
  EXPECT_GT(r3->cross_tuples, 0u);
  EXPECT_LT(r3->cross_tuples, r2->cross_tuples);
}

// --- Theorem 2: semi-naive non-redundancy -------------------------------

TEST(NonRedundancyTest, AllSection4SchemesMatchSequentialFirings) {
  for (AncestorScheme scheme :
       {AncestorScheme::kExample1, AncestorScheme::kExample2,
        AncestorScheme::kExample3}) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 70, 31);
    EvalStats seq_stats;
    SequentialAncestor(setup.get(), &seq_stats);
    RewriteBundle bundle = MakeAncestorBundle(setup.get(), scheme, 4);
    StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
    ASSERT_TRUE(result.ok());
    // Theorem 2 guarantees <=; partitioning the substitution space in
    // fact gives exact equality.
    EXPECT_EQ(result->total_firings, seq_stats.firings)
        << "scheme " << static_cast<int>(scheme);
  }
}

TEST(NonRedundancyTest, HoldsAcrossProcessorCounts) {
  for (int P : {1, 2, 3, 5, 8}) {
    auto setup = MakeAncestorSetup();
    GenTree(&setup->symbols, &setup->edb, "par", 3, 4);
    EvalStats seq_stats;
    SequentialAncestor(setup.get(), &seq_stats);
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);
    StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->total_firings, seq_stats.firings) << "P=" << P;
  }
}

// --- Section 6: the redundancy / communication trade-off ----------------

struct TradeoffPoint {
  double rho;
  uint64_t firings;
  uint64_t cross;
  std::string output;
};

TradeoffPoint RunTradeoff(double rho, int P, uint64_t data_seed) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, data_seed);
  TradeoffOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(P);
  for (int i = 0; i < P; ++i) {
    options.h_i.push_back(DiscriminatingFunction::KeepOrHash(i, rho, P));
  }
  StatusOr<RewriteBundle> bundle = RewriteTradeoff(
      setup->program, setup->info, setup->sirup, P, options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  TradeoffPoint point;
  point.rho = rho;
  point.firings = result->total_firings;
  point.cross = result->cross_tuples;
  point.output = DumpOutput(*result, setup->symbols, setup->anc());
  return point;
}

TEST(TradeoffTest, KeepAllLocalIsCommunicationFree) {
  // rho = 1 is the scheme of [18]: no communication, redundancy allowed.
  TradeoffPoint p = RunTradeoff(1.0, 4, 41);
  EXPECT_EQ(p.cross, 0u);

  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 41);
  EvalStats seq_stats;
  std::string expected = SequentialAncestor(setup.get(), &seq_stats);
  EXPECT_EQ(p.output, expected);
  EXPECT_GE(p.firings, seq_stats.firings);  // redundancy permitted
}

TEST(TradeoffTest, FullHashingIsNonRedundant) {
  // rho = 0 coincides with the Section 3 scheme: shared h everywhere.
  TradeoffPoint p = RunTradeoff(0.0, 4, 41);
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 41);
  EvalStats seq_stats;
  std::string expected = SequentialAncestor(setup.get(), &seq_stats);
  EXPECT_EQ(p.output, expected);
  EXPECT_EQ(p.firings, seq_stats.firings);
  EXPECT_GT(p.cross, 0u);
}

TEST(TradeoffTest, SpectrumTradesCommunicationForRedundancy) {
  // "more communication would lead to lesser redundancy, and
  // vice-versa": across rho, communication decreases while firings
  // (redundancy) do not decrease.
  TradeoffPoint p0 = RunTradeoff(0.0, 4, 55);
  TradeoffPoint p5 = RunTradeoff(0.5, 4, 55);
  TradeoffPoint p10 = RunTradeoff(1.0, 4, 55);

  EXPECT_EQ(p0.output, p5.output);
  EXPECT_EQ(p5.output, p10.output);

  EXPECT_GT(p0.cross, p5.cross);
  EXPECT_GT(p5.cross, p10.cross);
  EXPECT_EQ(p10.cross, 0u);

  EXPECT_LE(p0.firings, p5.firings);
  EXPECT_LE(p5.firings, p10.firings);
}

// --- Section 7 / Theorem 6 on the general scheme -------------------------

TEST(GeneralSchemeTest, NonLinearFiringsDoNotExceedSequential) {
  SymbolTable symbols;
  Program program = testing_util::ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);

  Database seq_db;
  GenRandomGraph(&symbols, &seq_db, "par", 20, 40, 61);
  EvalStats seq_stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq_stats).ok());

  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(4);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 4, specs);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 20, 40, 61);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok());
  // Theorem 6: parallel processing-rule firings never exceed the
  // sequential count.
  EXPECT_LE(result->total_firings, seq_stats.firings);
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("anc"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols));
}

TEST(GeneralSchemeTest, MutualRecursionParallelMatchesSequential) {
  SymbolTable symbols;
  const char* source =
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n";
  Program program = testing_util::ParseOrDie(source, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);

  Database seq_db;
  GenChain(&symbols, &seq_db, "edge", 20);
  seq_db.Insert(symbols.Intern("zero"), Tuple{symbols.Intern("n0")}, 1);
  EvalStats seq_stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq_stats).ok());

  std::vector<GeneralRuleSpec> specs(3);
  specs[0].vars = {symbols.Intern("X")};
  specs[1].vars = {symbols.Intern("Y")};
  specs[2].vars = {symbols.Intern("Y")};
  for (auto& s : specs) s.h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  GenChain(&symbols, &edb, "edge", 20);
  edb.Insert(symbols.Intern("zero"), Tuple{symbols.Intern("n0")}, 1);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const char* pred : {"even", "odd"}) {
    EXPECT_EQ(result->output.Find(symbols.Lookup(pred))
                  ->ToSortedString(symbols),
              seq_db.Find(symbols.Lookup(pred))->ToSortedString(symbols))
        << pred;
  }
  EXPECT_LE(result->total_firings, seq_stats.firings);
}

}  // namespace
}  // namespace pdatalog
