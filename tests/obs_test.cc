// Tests for the observability subsystem (src/obs/): trace ring
// overflow semantics, span nesting, Chrome-trace and metrics JSON
// exporters, and the registry-is-source-of-truth contract against the
// parallel engine.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;

// Minimal recursive-descent JSON syntax validator: enough to assert the
// exporters emit parseable documents without an external dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
    }
    return true;
  }

  bool Expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceRingTest, OverflowDropsCountedNotCrashed) {
  TraceRing ring(0, 8);
  for (int i = 0; i < 20; ++i) {
    ring.Instant(TracePhase::kRound, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  // The surviving events are the oldest eight, in order.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.event(i).arg, static_cast<uint32_t>(i));
    EXPECT_EQ(ring.event(i).kind, TraceEventKind::kInstant);
  }
}

TEST(TraceRingTest, SpanNestingIsWellFormed) {
  TraceRing ring(0, 64);
  {
    TraceScope outer(&ring, TracePhase::kProbe, 1);
    ring.Instant(TracePhase::kRound, 1);
    {
      TraceScope inner(&ring, TracePhase::kInsert, 7);
    }
    TraceScope flush(&ring, TracePhase::kFlush);
  }
  ASSERT_EQ(ring.dropped(), 0u);
  // Walk the events with a stack: every End must match the open Begin.
  std::vector<TracePhase> open;
  for (size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.event(i);
    if (e.kind == TraceEventKind::kBegin) {
      open.push_back(e.phase);
    } else if (e.kind == TraceEventKind::kEnd) {
      ASSERT_FALSE(open.empty());
      EXPECT_EQ(open.back(), e.phase);
      open.pop_back();
    }
  }
  EXPECT_TRUE(open.empty());
  // Timestamps never go backwards within one ring.
  for (size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring.event(i).ts, ring.event(i - 1).ts);
  }
}

TEST(TraceRingTest, NullScopeEmitsNothing) {
  // The disabled configuration: a null ring must be a no-op.
  TraceScope scope(nullptr, TracePhase::kProbe, 3);
  SUCCEED();
}

TEST(TracerTest, RingLayoutHasEngineRingLast) {
  Tracer tracer(3, 16);
  EXPECT_EQ(tracer.num_workers(), 3);
  EXPECT_EQ(tracer.num_rings(), 4);
  EXPECT_EQ(tracer.engine_ring(), tracer.ring(3));
  for (int i = 0; i < tracer.num_rings(); ++i) {
    EXPECT_EQ(tracer.ring(i)->id(), i);
    EXPECT_EQ(tracer.ring(i)->capacity(), 16u);
  }
  EXPECT_EQ(tracer.total_events(), 0u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

TEST(ExportTest, ClosesUnbalancedSpansAndStaysParseable) {
  Tracer tracer(1, 8);
  TraceRing* ring = tracer.ring(0);
  ring->Begin(TracePhase::kProbe, 1);
  ring->Begin(TracePhase::kInsert, 2);
  ring->Instant(TracePhase::kRound, 1);
  // Both Begins are left open (a mid-span abort or tail drop).
  std::string json = ChromeTraceJson(tracer);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  // The exporter synthesizes the missing Ends: B and E counts balance.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
}

TEST(ExportTest, EmptyTracerExportsValidJson) {
  Tracer tracer(2, 8);
  std::string json = ChromeTraceJson(tracer);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  // Thread-name metadata is present even with no events.
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("engine"), std::string::npos);
}

TEST(ExportTest, ParallelAncestorTraceParsesAndIsMonotone) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 16);
  const int P = 3;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);

  Tracer tracer(P);
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(tracer.total_events(), 0u);
  EXPECT_EQ(tracer.total_dropped(), 0u);

  // Per-worker timestamps never go backwards (single-writer rings).
  for (int i = 0; i < tracer.num_rings(); ++i) {
    const TraceRing& ring = *tracer.ring(i);
    for (size_t k = 1; k < ring.size(); ++k) {
      EXPECT_GE(ring.event(k).ts, ring.event(k - 1).ts)
          << "ring " << i << " event " << k;
    }
  }

  std::string json = ChromeTraceJson(tracer);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());
  // The run exercises init, drain, probe spans and round instants on
  // every worker, plus the engine's pooling span.
  EXPECT_NE(json.find("\"name\":\"init\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"drain\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pool\""), std::string::npos);
}

TEST(ExportTest, UndersizedTracerIsRejected) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  Tracer tracer(2);  // bundle needs 3
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  EXPECT_FALSE(result.ok());
}

TEST(MetricsTest, CountersAddAndGaugesOverwrite) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.AddCounter("run.firings", 3);
  m.AddCounter("run.firings", 4);
  m.SetGauge("run.wall_seconds", 1.5);
  m.SetGauge("run.wall_seconds", 2.5);
  EXPECT_EQ(m.counter("run.firings"), 7u);
  EXPECT_EQ(m.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("run.wall_seconds"), 2.5);
  EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
  EXPECT_EQ(m.size(), 2u);

  MetricsRegistry other;
  other.AddCounter("run.firings", 10);
  other.AddCounter("run.rounds", 2);
  other.SetGauge("run.wall_seconds", 9.0);
  m.Merge(other);
  EXPECT_EQ(m.counter("run.firings"), 17u);
  EXPECT_EQ(m.counter("run.rounds"), 2u);
  EXPECT_DOUBLE_EQ(m.gauge("run.wall_seconds"), 9.0);
}

TEST(MetricsTest, JsonExportParses) {
  MetricsRegistry m;
  m.AddCounter("run.firings", 42);
  m.AddCounter("worker.0.rounds", 5);
  m.SetGauge("run.wall_seconds", 0.125);
  std::string json = MetricsJson(m);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"run.firings\": 42"), std::string::npos);

  MetricsRegistry empty;
  std::string empty_json = MetricsJson(empty);
  JsonValidator empty_validator(empty_json);
  EXPECT_TRUE(empty_validator.Valid()) << empty_json;
}

TEST(MetricsTest, RegistryAgreesWithParallelResultScalars) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 12);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MetricsRegistry& m = result->metrics;
  EXPECT_EQ(m.counter("run.firings"), result->total_firings);
  EXPECT_EQ(m.counter("run.cross_tuples"), result->cross_tuples);
  EXPECT_EQ(m.counter("run.self_tuples"), result->self_tuples);
  EXPECT_EQ(m.counter("run.cross_bytes"), result->cross_bytes);
  EXPECT_EQ(m.counter("run.cross_frames"), result->cross_frames);
  EXPECT_EQ(m.counter("run.out_tuples_total"), result->out_tuples_total);
  EXPECT_EQ(m.counter("run.pooled_tuples"), result->pooled_tuples);
  EXPECT_EQ(m.counter("run.pooling_messages"), result->pooling_messages);
  EXPECT_EQ(m.counter("run.pooling_bytes"), result->pooling_bytes);
  EXPECT_GT(result->total_firings, 0u);

  // Per-worker entries sum to the run totals.
  uint64_t worker_firings = 0;
  for (size_t i = 0; i < result->workers.size(); ++i) {
    worker_firings +=
        m.counter("worker." + std::to_string(i) + ".firings");
    EXPECT_EQ(m.counter("worker." + std::to_string(i) + ".rounds"),
              static_cast<uint64_t>(result->workers[i].rounds));
  }
  EXPECT_EQ(worker_firings, result->total_firings);
}

TEST(HistogramTest, RecordTracksExactScalars) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull}) h.Record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1106.0 / 6.0);
  // Bucket geometry: 0 -> 0, v -> floor(log2 v) + 1.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketLow(0), 0u);
  EXPECT_EQ(Histogram::BucketLow(1), 1u);
  EXPECT_EQ(Histogram::BucketLow(5), 16u);
  EXPECT_EQ(h.bucket(0), 1u);  // the recorded 0
  EXPECT_EQ(h.bucket(2), 2u);  // 2 and 3
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1024; ++v) h.Record(v);
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_LE(v, static_cast<double>(h.max())) << "p" << p;
    prev = v;
  }
  // log2 buckets are within a factor of two of the order statistic.
  EXPECT_GE(h.Percentile(50), 256.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1024.0);
  // Oversized p clamps instead of reading past the buckets.
  EXPECT_DOUBLE_EQ(h.Percentile(250), h.Percentile(100));
}

TEST(HistogramTest, MergeAddsBucketwise) {
  Histogram a, b;
  for (uint64_t v = 0; v < 16; ++v) a.Record(v);
  for (uint64_t v = 100; v < 200; ++v) b.Record(v);
  uint64_t sum_a = a.sum();
  a.Merge(b);
  EXPECT_EQ(a.count(), 116u);
  EXPECT_EQ(a.sum(), sum_a + b.sum());
  EXPECT_EQ(a.max(), 199u);
  for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
    uint64_t expected = 0;
    for (uint64_t v = 0; v < 16; ++v) {
      if (Histogram::BucketOf(v) == bucket) ++expected;
    }
    for (uint64_t v = 100; v < 200; ++v) {
      if (Histogram::BucketOf(v) == bucket) ++expected;
    }
    EXPECT_EQ(a.bucket(bucket), expected) << "bucket " << bucket;
  }
}

TEST(MetricsTest, MergeCombinesHistogramsAcrossStrata) {
  // The stratified driver evaluates one stratum at a time and folds
  // each stratum's registry into the run total: counters must add,
  // gauges must keep the last stratum's value, histograms must merge
  // bucket-wise — never overwrite.
  MetricsRegistry stratum0;
  Histogram h0;
  h0.Record(10);
  h0.Record(20);
  stratum0.MergeHistogram("hist.probe_ns", h0);
  stratum0.AddCounter("run.firings", 5);
  stratum0.SetGauge("run.wall_seconds", 0.5);

  MetricsRegistry stratum1;
  Histogram h1;
  h1.Record(1000);
  stratum1.MergeHistogram("hist.probe_ns", h1);
  stratum1.MergeHistogram("hist.drain_ns", h1);
  stratum1.AddCounter("run.firings", 7);
  stratum1.SetGauge("run.wall_seconds", 0.25);

  MetricsRegistry total;
  total.Merge(stratum0);
  total.Merge(stratum1);
  EXPECT_EQ(total.counter("run.firings"), 12u);
  EXPECT_DOUBLE_EQ(total.gauge("run.wall_seconds"), 0.25);

  const Histogram* probe = total.FindHistogram("hist.probe_ns");
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->count(), 3u);
  EXPECT_EQ(probe->sum(), 1030u);
  EXPECT_EQ(probe->max(), 1000u);
  const Histogram* drain = total.FindHistogram("hist.drain_ns");
  ASSERT_NE(drain, nullptr);
  EXPECT_EQ(drain->count(), 1u);
  EXPECT_EQ(total.FindHistogram("absent"), nullptr);
  // Histograms count toward size and non-emptiness.
  EXPECT_EQ(total.histograms().size(), 2u);
  EXPECT_FALSE(total.empty());
}

TEST(MetricsTest, JsonExportIncludesHistogramPercentiles) {
  MetricsRegistry m;
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  m.MergeHistogram("hist.probe_ns", h);
  m.AddCounter("run.firings", 1);
  std::string json = MetricsJson(m);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"hist.probe_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// Extracts the integer after every `"id":` in objects whose "ph" is
// `phase`, in document order.
std::vector<long> FlowIds(const std::string& json, char phase) {
  std::vector<long> ids;
  std::string marker = std::string("\"ph\":\"") + phase + "\"";
  for (size_t pos = json.find(marker); pos != std::string::npos;
       pos = json.find(marker, pos + 1)) {
    size_t close = json.find('}', pos);
    size_t id = json.find("\"id\":", pos);
    if (id == std::string::npos || id > close) continue;
    ids.push_back(std::strtol(json.c_str() + id + 5, nullptr, 10));
  }
  return ids;
}

TEST(ExportTest, FlowEventsPairSendsWithReceives) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 20);
  const int P = 3;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);

  Tracer tracer(P);
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->cross_frames, 0u);

  std::string json = ChromeTraceJson(tracer);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());

  // Every emitted flow-start has exactly one flow-finish with the same
  // id, and at least one cross-worker frame produced an arrow.
  std::vector<long> starts = FlowIds(json, 's');
  std::vector<long> finishes = FlowIds(json, 'f');
  ASSERT_GT(starts.size(), 0u);
  EXPECT_EQ(starts.size(), finishes.size());
  std::sort(starts.begin(), starts.end());
  std::sort(finishes.begin(), finishes.end());
  EXPECT_EQ(starts, finishes);
  EXPECT_EQ(std::adjacent_find(starts.begin(), starts.end()), starts.end())
      << "duplicate flow ids";
  // Chrome requires bp:e on the finish to bind at the enclosing slice.
  EXPECT_EQ(CountOccurrences(json, "\"bp\":\"e\""), finishes.size());
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"flow\""),
            starts.size() + finishes.size());
}

TEST(MetricsTest, TracedParallelRunRecordsHistograms) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 16);
  const int P = 3;
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);

  Tracer tracer(P);
  ParallelOptions options;
  options.tracer = &tracer;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MetricsRegistry& m = result->metrics;
  for (const char* name :
       {"hist.probe_ns", "hist.drain_ns", "hist.block_tuples",
        "hist.queue_frames_at_drain"}) {
    const Histogram* h = m.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count(), 0u) << name;
  }

  // An untraced run records none: the hot path must not pay for
  // distributions nobody asked for.
  auto setup2 = MakeAncestorSetup();
  GenChain(&setup2->symbols, &setup2->edb, "par", 16);
  RewriteBundle bundle2 =
      MakeAncestorBundle(setup2.get(), AncestorScheme::kExample3, P);
  StatusOr<ParallelResult> untraced = RunParallel(bundle2, &setup2->edb);
  ASSERT_TRUE(untraced.ok());
  EXPECT_TRUE(untraced->metrics.histograms().empty());
}

TEST(SequentialTraceTest, EvaluatorEmitsInitAndRounds) {
  SymbolTable symbols;
  Program program =
      testing_util::ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  Database db;
  GenChain(&symbols, &db, "par", 10);

  Tracer tracer(1);
  EvalStats stats;
  EvalOptions options;
  options.trace = tracer.ring(0);
  ASSERT_TRUE(
      SemiNaiveEvaluate(program, info, &db, &stats, nullptr, options).ok());
  EXPECT_GT(stats.rounds, 1);

  const TraceRing& ring = *tracer.ring(0);
  size_t init_spans = 0, round_instants = 0, probe_spans = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.event(i);
    if (e.phase == TracePhase::kInit &&
        e.kind == TraceEventKind::kBegin) {
      ++init_spans;
    }
    if (e.phase == TracePhase::kRound) ++round_instants;
    if (e.phase == TracePhase::kProbe &&
        e.kind == TraceEventKind::kBegin) {
      ++probe_spans;
    }
  }
  EXPECT_EQ(init_spans, 1u);
  EXPECT_EQ(round_instants, static_cast<size_t>(stats.rounds - 1));
  EXPECT_EQ(probe_spans, static_cast<size_t>(stats.rounds - 1));
}

}  // namespace
}  // namespace pdatalog
