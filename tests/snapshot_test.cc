#include "storage/snapshot.h"

#include <cstdio>

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/pdatalog_snapshot_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)!std::system(cmd.c_str());
  }
  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesRelations) {
  SymbolTable symbols;
  Database db;
  GenRandomGraph(&symbols, &db, "edge", 20, 40, 3);
  GenChain(&symbols, &db, "chain", 5);
  StatusOr<size_t> saved = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(*saved, 2u);

  SymbolTable symbols2;
  Database loaded;
  StatusOr<size_t> n = LoadDatabase(dir_, &symbols2, &loaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  for (const char* pred : {"edge", "chain"}) {
    EXPECT_EQ(loaded.Find(symbols2.Lookup(pred))->ToSortedString(symbols2),
              db.Find(symbols.Lookup(pred))->ToSortedString(symbols))
        << pred;
  }
}

TEST_F(SnapshotTest, EvaluatedResultsRoundTrip) {
  SymbolTable symbols;
  Database db = testing_util::EvalOrDie(
      "par(a, b).\npar(b, c).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());

  SymbolTable symbols2;
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &symbols2, &loaded).ok());
  EXPECT_EQ(loaded.Find(symbols2.Lookup("anc"))->size(), 3u);
}

TEST_F(SnapshotTest, MissingDirectoryFails) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadDatabase("/nonexistent/snapshot/dir", &symbols, &db);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, SaveIntoExistingDirectory) {
  SymbolTable symbols;
  Database db;
  GenChain(&symbols, &db, "e", 3);
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());
  // Saving again over the same directory succeeds (overwrites).
  GenChain(&symbols, &db, "f", 2);
  StatusOr<size_t> again = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 2u);
}

TEST_F(SnapshotTest, EmptyDatabaseSavesNothing) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> saved = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(*saved, 0u);
  SymbolTable symbols2;
  Database loaded;
  StatusOr<size_t> n = LoadDatabase(dir_, &symbols2, &loaded);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

}  // namespace
}  // namespace pdatalog
