#include "storage/snapshot.h"

#include <cstdio>

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/pdatalog_snapshot_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)!std::system(cmd.c_str());
  }
  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesRelations) {
  SymbolTable symbols;
  Database db;
  GenRandomGraph(&symbols, &db, "edge", 20, 40, 3);
  GenChain(&symbols, &db, "chain", 5);
  StatusOr<size_t> saved = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(*saved, 2u);

  SymbolTable symbols2;
  Database loaded;
  StatusOr<size_t> n = LoadDatabase(dir_, &symbols2, &loaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  for (const char* pred : {"edge", "chain"}) {
    EXPECT_EQ(loaded.Find(symbols2.Lookup(pred))->ToSortedString(symbols2),
              db.Find(symbols.Lookup(pred))->ToSortedString(symbols))
        << pred;
  }
}

TEST_F(SnapshotTest, EvaluatedResultsRoundTrip) {
  SymbolTable symbols;
  Database db = testing_util::EvalOrDie(
      "par(a, b).\npar(b, c).\n"
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());

  SymbolTable symbols2;
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &symbols2, &loaded).ok());
  EXPECT_EQ(loaded.Find(symbols2.Lookup("anc"))->size(), 3u);
}

TEST_F(SnapshotTest, MissingDirectoryFails) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> n =
      LoadDatabase("/nonexistent/snapshot/dir", &symbols, &db);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, SaveIntoExistingDirectory) {
  SymbolTable symbols;
  Database db;
  GenChain(&symbols, &db, "e", 3);
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());
  // Saving again over the same directory succeeds (overwrites).
  GenChain(&symbols, &db, "f", 2);
  StatusOr<size_t> again = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 2u);
}

TEST_F(SnapshotTest, EmptyDatabaseSavesNothing) {
  SymbolTable symbols;
  Database db;
  StatusOr<size_t> saved = SaveDatabase(db, symbols, dir_);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(*saved, 0u);
  SymbolTable symbols2;
  Database loaded;
  StatusOr<size_t> n = LoadDatabase(dir_, &symbols2, &loaded);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(TsvEscapeTest, EscapeUnescapeRoundTrip) {
  for (const std::string& name :
       {std::string("plain"), std::string("has\ttab"),
        std::string("has\nnewline"), std::string("has\rcr"),
        std::string("back\\slash"), std::string("\t\n\r\\"),
        std::string("")}) {
    std::string escaped = EscapeTsvField(name);
    // Escaped fields never contain raw separators.
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << name;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << name;
    std::string back;
    ASSERT_TRUE(UnescapeTsvField(escaped, &back)) << name;
    EXPECT_EQ(back, name);
  }
}

TEST(TsvEscapeTest, MalformedEscapesRejected) {
  std::string out;
  EXPECT_FALSE(UnescapeTsvField("trailing\\", &out));
  EXPECT_FALSE(UnescapeTsvField("bad\\x", &out));
  // Unescaped legacy fields (no backslashes) pass through.
  ASSERT_TRUE(UnescapeTsvField("plain_old", &out));
  EXPECT_EQ(out, "plain_old");
}

TEST_F(SnapshotTest, RoundTripPreservesSeparatorCharacters) {
  // The regression this escaping fixes: constant names containing the
  // TSV separators themselves used to corrupt the file.
  SymbolTable symbols;
  Database db;
  Relation& rel = db.GetOrCreate(symbols.Intern("odd"), 2);
  rel.Insert(Tuple{symbols.Intern("a\tb"), symbols.Intern("c\nd")});
  rel.Insert(Tuple{symbols.Intern("e\\f"), symbols.Intern("g\rh")});
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());

  SymbolTable symbols2;
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &symbols2, &loaded).ok());
  const Relation* back = loaded.Find(symbols2.Lookup("odd"));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->ToSortedString(symbols2),
            rel.ToSortedString(symbols));
}

TEST_F(SnapshotTest, MalformedRowsFailTheLoad) {
  SymbolTable symbols;
  Database db;
  GenChain(&symbols, &db, "e", 2);
  ASSERT_TRUE(SaveDatabase(db, symbols, dir_).ok());

  // Ragged row: three fields in an arity-2 relation.
  {
    FILE* f = fopen((dir_ + "/e.tsv").c_str(), "a");
    ASSERT_NE(f, nullptr);
    fputs("x\ty\tz\n", f);
    fclose(f);
    SymbolTable s;
    Database d;
    StatusOr<size_t> n = LoadDatabase(dir_, &s, &d);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(n.status().message().find("e.tsv"), std::string::npos);
  }
  // Bad escape sequence.
  {
    FILE* f = fopen((dir_ + "/e.tsv").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("ok\\tfield\tbad\\qescape\n", f);
    fclose(f);
    SymbolTable s;
    Database d;
    StatusOr<size_t> n = LoadDatabase(dir_, &s, &d);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(DatabaseViewTest, FrozenViewMatchesAndStaysConstant) {
  SymbolTable symbols;
  Database db;
  Relation& rel = db.GetOrCreate(symbols.Intern("edge"), 2);
  // Span multiple chunks so the chunk-pointer walk is exercised.
  const size_t kRows = ColumnStore::kChunkRows * 2 + 17;
  for (size_t i = 0; i < kRows; ++i) {
    rel.Insert(Tuple{symbols.Intern("a" + std::to_string(i)),
                     symbols.Intern("b" + std::to_string(i))});
  }
  DatabaseView view = DatabaseView::Freeze(db);
  ASSERT_EQ(view.relation_count(), 1u);
  const RelationView* frozen = view.Find(symbols.Lookup("edge"));
  ASSERT_NE(frozen, nullptr);
  EXPECT_EQ(frozen->size(), kRows);
  EXPECT_EQ(view.total_rows(), kRows);
  EXPECT_EQ(frozen->ToSortedString(symbols), rel.ToSortedString(symbols));
  for (size_t i = 0; i < kRows; i += 997) {
    EXPECT_EQ(frozen->row(i), rel.row(i)) << i;
    EXPECT_EQ(frozen->cell(i, 0), rel.row(i)[0]) << i;
  }

  // Growing the relation does not move the view.
  std::string before = frozen->ToSortedString(symbols);
  for (size_t i = 0; i < ColumnStore::kChunkRows + 5; ++i) {
    rel.Insert(Tuple{symbols.Intern("x" + std::to_string(i)),
                     symbols.Intern("y" + std::to_string(i))});
  }
  EXPECT_EQ(frozen->size(), kRows);
  EXPECT_EQ(frozen->ToSortedString(symbols), before);

  // An absent predicate is null, not a crash.
  EXPECT_EQ(view.Find(symbols.Intern("nosuch")), nullptr);
}

TEST_F(SnapshotTest, SaveFromViewEqualsSaveFromDatabase) {
  SymbolTable symbols;
  Database db;
  GenRandomGraph(&symbols, &db, "edge", 12, 30, 7);
  DatabaseView view = DatabaseView::Freeze(db);
  ASSERT_TRUE(SaveDatabase(view, symbols, dir_).ok());

  SymbolTable symbols2;
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &symbols2, &loaded).ok());
  EXPECT_EQ(loaded.Find(symbols2.Lookup("edge"))->ToSortedString(symbols2),
            db.Find(symbols.Lookup("edge"))->ToSortedString(symbols));
}

}  // namespace
}  // namespace pdatalog
