#include "core/cost_model.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;

RoundLog MakeLog(uint64_t firings, std::vector<uint64_t> sent_to) {
  RoundLog log;
  log.firings = firings;
  log.sent_to = std::move(sent_to);
  return log;
}

TEST(CostModelTest, SingleWorkerIsPureCompute) {
  std::vector<std::vector<RoundLog>> rounds(1);
  rounds[0].push_back(MakeLog(10, {0}));
  rounds[0].push_back(MakeLog(5, {0}));
  CostBreakdown cost = BspCost(rounds, {1.0, 100.0, 0.0});
  EXPECT_DOUBLE_EQ(cost.makespan, 15.0);  // self messages are free
  EXPECT_EQ(cost.supersteps, 2);
}

TEST(CostModelTest, MaxAcrossWorkersPerSuperstep) {
  std::vector<std::vector<RoundLog>> rounds(2);
  rounds[0].push_back(MakeLog(10, {0, 0}));
  rounds[1].push_back(MakeLog(3, {0, 0}));
  rounds[0].push_back(MakeLog(2, {0, 0}));
  rounds[1].push_back(MakeLog(7, {0, 0}));
  CostBreakdown cost = BspCost(rounds, {1.0, 0.0, 0.0});
  // Superstep 0: max(10, 3); superstep 1: max(2, 7).
  EXPECT_DOUBLE_EQ(cost.makespan, 17.0);
}

TEST(CostModelTest, CrossMessagesChargedToReceiver) {
  std::vector<std::vector<RoundLog>> rounds(2);
  // Worker 0 sends 4 messages to worker 1; nobody computes.
  rounds[0].push_back(MakeLog(0, {0, 4}));
  rounds[1].push_back(MakeLog(0, {0, 0}));
  CostBreakdown cost = BspCost(rounds, {1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(cost.makespan, 8.0);
  EXPECT_DOUBLE_EQ(cost.network, 8.0);
  EXPECT_DOUBLE_EQ(cost.compute, 0.0);
}

TEST(CostModelTest, RoundLatencyPerSuperstep) {
  std::vector<std::vector<RoundLog>> rounds(1);
  rounds[0].push_back(MakeLog(1, {0}));
  rounds[0].push_back(MakeLog(1, {0}));
  rounds[0].push_back(MakeLog(1, {0}));
  CostBreakdown cost = BspCost(rounds, {1.0, 0.0, 10.0});
  EXPECT_DOUBLE_EQ(cost.makespan, 33.0);
}

TEST(CostModelTest, UnevenRoundCountsHandled) {
  std::vector<std::vector<RoundLog>> rounds(2);
  rounds[0].push_back(MakeLog(5, {0, 0}));
  // Worker 1 has no rounds at all.
  CostBreakdown cost = BspCost(rounds, {1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(cost.makespan, 5.0);
  EXPECT_EQ(cost.supersteps, 1);
}

TEST(CostModelTest, EmptyRunCostsNothing) {
  std::vector<std::vector<RoundLog>> rounds(3);
  CostBreakdown cost = BspCost(rounds, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(cost.makespan, 0.0);
  EXPECT_EQ(cost.supersteps, 0);
}

TEST(CostModelTest, RoundLogsAccountForAllWork) {
  // The engine's per-round logs must sum to the aggregate statistics.
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 40, 90, 3);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  ParallelOptions options;
  options.use_threads = false;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok());

  for (size_t i = 0; i < result->workers.size(); ++i) {
    uint64_t firings = 0;
    uint64_t sent = 0;
    for (const RoundLog& log : result->worker_rounds[i]) {
      firings += log.firings;
      for (uint64_t n : log.sent_to) sent += n;
    }
    EXPECT_EQ(firings, result->workers[i].firings) << "worker " << i;
    EXPECT_EQ(sent, result->workers[i].sent_cross +
                        result->workers[i].sent_self)
        << "worker " << i;
  }
}

TEST(CostModelTest, ZeroNetCostMatchesWorkPartition) {
  // With free communication, the BSP makespan across N workers is at
  // least total/N and at most the sequential total.
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 40, 90, 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = false;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok());
  CostBreakdown cost = BspCost(result->worker_rounds, {1.0, 0.0, 0.0});
  double total = static_cast<double>(result->total_firings);
  EXPECT_GE(cost.makespan, total / 4);
  EXPECT_LE(cost.makespan, total);
}

TEST(CostModelTest, CommunicationFreeSchemeInsensitiveToNetCost) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 40, 90, 5);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample1, 4);
  ParallelOptions options;
  options.use_threads = false;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok());
  double cheap = BspCost(result->worker_rounds, {1.0, 0.0, 0.0}).makespan;
  double costly =
      BspCost(result->worker_rounds, {1.0, 100.0, 0.0}).makespan;
  EXPECT_DOUBLE_EQ(cheap, costly);  // zero cross messages
}

}  // namespace
}  // namespace pdatalog
