// Skew-adaptive repartitioning (core/rebalance.h): control-frame wire
// format, kRemapped overlay semantics, the satellite regressions of
// PR 7 (PartitionBases buffer guard, kLinear remap miss), and — the
// load-bearing property — differential fixpoint tests: rebalancing on
// must produce a bit-identical fixpoint to rebalancing off, under both
// schedulers and under channel faults with retransmission.
#include "core/rebalance.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/engine.h"
#include "core/partition.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"
#include "workload/programs.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorSetup;
using testing_util::ParseOrDie;
using testing_util::SequentialAncestor;
using testing_util::ValidateOrDie;

// Aggressive knobs that force decisions on tiny test workloads.
RebalanceOptions EagerRebalance() {
  RebalanceOptions o;
  o.skew_threshold = 1.0;  // any imbalance triggers
  o.min_window_busy_ns = 0;
  o.min_bucket_tuples = 1;
  o.cooldown_windows = 2;
  return o;
}

// ---------------------------------------------------------------------
// Control frame wire format
// ---------------------------------------------------------------------

TEST(ControlFrameTest, RoundTrips) {
  RemapControlFrame frame;
  frame.epoch = 7;
  frame.function = 3;
  frame.num_buckets = 128;
  frame.overrides = {{5, 2}, {77, DiscriminatingFunction::kKeepLocalDest}};

  std::vector<uint8_t> bytes;
  EncodeControlFrame(frame, &bytes);
  RemapControlFrame decoded;
  ASSERT_TRUE(DecodeControlFrame(bytes.data(), bytes.size(), &decoded).ok());
  EXPECT_EQ(decoded.epoch, 7u);
  EXPECT_EQ(decoded.function, 3);
  EXPECT_EQ(decoded.num_buckets, 128u);
  ASSERT_EQ(decoded.overrides.size(), 2u);
  EXPECT_EQ(decoded.overrides[0], (std::pair<uint32_t, int32_t>{5, 2}));
  EXPECT_EQ(decoded.overrides[1].second,
            DiscriminatingFunction::kKeepLocalDest);
}

TEST(ControlFrameTest, RejectsTruncationCorruptionAndBadMagic) {
  RemapControlFrame frame;
  frame.epoch = 1;
  frame.function = 0;
  frame.num_buckets = 64;
  frame.overrides = {{9, 1}};
  std::vector<uint8_t> bytes;
  EncodeControlFrame(frame, &bytes);

  RemapControlFrame decoded;
  // Truncated at every length short of the full frame.
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(DecodeControlFrame(bytes.data(), n, &decoded).ok())
        << "length " << n;
  }
  // Any single flipped byte fails the checksum (or the magic).
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_FALSE(DecodeControlFrame(bad.data(), bad.size(), &decoded).ok())
        << "byte " << i;
  }
}

// ---------------------------------------------------------------------
// kRemapped overlay semantics
// ---------------------------------------------------------------------

TEST(RemappedFunctionTest, UnmovedBucketsMatchTheBaseHash) {
  DiscriminatingFunction base = DiscriminatingFunction::UniformHash(4, 42);
  DiscriminatingFunction overlay =
      DiscriminatingFunction::Remapped(base, 128, /*local_owner=*/1);
  for (Value v = 0; v < 200; ++v) {
    Value vals[2] = {v, v * 3 + 1};
    EXPECT_EQ(overlay.Evaluate(vals, 2), base.Evaluate(vals, 2));
  }
}

TEST(RemappedFunctionTest, OverridesRedirectAndKeepLocalUsesOwner) {
  DiscriminatingFunction base = DiscriminatingFunction::SymmetricHash(4, 7);
  DiscriminatingFunction overlay =
      DiscriminatingFunction::Remapped(base, 64, /*local_owner=*/3);
  Value v = 11;
  uint32_t bucket = overlay.BucketOf(&v, 1);

  overlay.bucket_overrides[bucket] = 2;
  EXPECT_EQ(overlay.Evaluate(&v, 1), 2);
  overlay.bucket_overrides[bucket] = DiscriminatingFunction::kKeepLocalDest;
  EXPECT_EQ(overlay.Evaluate(&v, 1), 3);
}

// ---------------------------------------------------------------------
// Satellite regressions
// ---------------------------------------------------------------------

TEST(SatelliteRegressionTest, LinearRemapMissReturnsZeroNotUb) {
  DiscriminatingFunction fn = DiscriminatingFunction::Linear({1, 1});
  // A remap that does not cover every achievable raw value: values that
  // miss must map to processor 0 instead of dereferencing remap.end().
  fn.remap = {{0, 0}};
  Value vals[2] = {1, 2};
  int result = fn.Evaluate(vals, 2);
  EXPECT_GE(result, 0);
  EXPECT_LE(result, 0);
}

TEST(SatelliteRegressionTest, ZeroProcessorHashKindsReturnZero) {
  DiscriminatingFunction uniform = DiscriminatingFunction::UniformHash(0);
  DiscriminatingFunction symmetric =
      DiscriminatingFunction::SymmetricHash(0);
  Value v = 99;
  EXPECT_EQ(uniform.Evaluate(&v, 1), 0);
  EXPECT_EQ(symmetric.Evaluate(&v, 1), 0);
}

TEST(SatelliteRegressionTest, PartitionBasesRejectsOversizedSequence) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Z")};
  options.v_e = {symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  GenChain(&symbols, &edb, "par", 5);
  // Grow the fragmented occurrences' discriminating sequences past the
  // 32-value gather buffer; PartitionBases must refuse, not overflow.
  int fragmented = 0;
  for (BaseOccurrence& occ : bundle->base_occurrences) {
    if (occ.access != BaseOccurrence::Access::kFragment) continue;
    occ.positions.assign(33, 0);
    ++fragmented;
  }
  ASSERT_GT(fragmented, 0);
  StatusOr<PartitionResult> result = PartitionBases(*bundle, edb);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at most"), std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------
// Cost-model hook
// ---------------------------------------------------------------------

TEST(PreferReplicationTest, SingleSenderForwardsThereIsNothingToSpread) {
  EXPECT_FALSE(PreferReplication(100, 1000, 1, 1.0, 1.0));
  EXPECT_FALSE(PreferReplication(100, 10, 1, 1.0, 100.0));
  EXPECT_FALSE(PreferReplication(0, 1000, 3, 1.0, 100.0));
}

TEST(PreferReplicationTest, BucketAboveFairShareReplicates) {
  // 100 tuples against a fair share of 60: no worker can absorb it, so
  // forwarding would only relocate the straggler.
  EXPECT_TRUE(PreferReplication(100, 60, 3, 1.0, 1.0));
  EXPECT_FALSE(PreferReplication(50, 60, 3, 1.0, 1.0));
}

TEST(PreferReplicationTest, ManySendersForwardUnlessNetworkIsCostly) {
  // net == cpu, 3 senders, bucket fits: forwarding wins.
  EXPECT_FALSE(PreferReplication(100, 1000, 3, 1.0, 1.0));
  // Network 5x the firing cost beats re-firing on 3 senders.
  EXPECT_TRUE(PreferReplication(100, 1000, 3, 1.0, 5.0));
}

// ---------------------------------------------------------------------
// Engine preconditions
// ---------------------------------------------------------------------

TEST(RebalanceEngineTest, RejectsFragmentedBases) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  // Default Example 3 bundle fragments par; rebalancing must refuse.
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  ParallelOptions options;
  options.use_threads = false;
  options.rebalance = EagerRebalance();
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("replicated base"),
            std::string::npos)
      << result.status().ToString();
}

TEST(RebalanceEngineTest, RejectsThresholdBelowOne) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  ParallelOptions options;
  options.use_threads = false;
  options.rebalance.skew_threshold = 0.5;
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_FALSE(result.ok());
}

// ---------------------------------------------------------------------
// Differential fixpoint tests
// ---------------------------------------------------------------------

// Example-3-style ancestor bundle with replicated bases (the rebalancer
// precondition): hash on the recursive join variable Z.
RewriteBundle MakeRebalancableAncestorBundle(
    testing_util::AncestorSetup* setup, int P, uint64_t seed = 0x5eed) {
  LinearSchemeOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(P, seed);
  options.fragment_bases = false;
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, P, options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  return std::move(*bundle);
}

class RebalanceDifferentialTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(RoundRobinAndThreads, RebalanceDifferentialTest,
                         ::testing::Values(false, true));

TEST_P(RebalanceDifferentialTest, AncestorFixpointIdenticalOnAndOff) {
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 120, 360, 1.4, 7);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle = MakeRebalancableAncestorBundle(setup.get(), 4);
  ParallelOptions off;
  off.use_threads = GetParam();
  StatusOr<ParallelResult> base = RunParallel(bundle, &setup->edb, off);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(DumpOutput(*base, setup->symbols, setup->anc()), expected);

  ParallelOptions on = off;
  on.rebalance = EagerRebalance();
  StatusOr<ParallelResult> adapted = RunParallel(bundle, &setup->edb, on);
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  EXPECT_EQ(DumpOutput(*adapted, setup->symbols, setup->anc()), expected);
}

TEST_P(RebalanceDifferentialTest, AncestorFixpointExactUnderFaults) {
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 80, 240, 1.4, 13);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle = MakeRebalancableAncestorBundle(setup.get(), 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.serialize_messages = true;
  options.retransmit = true;
  options.faults.drop = 0.15;
  options.faults.duplicate = 0.1;
  options.faults.reorder = 0.1;
  options.rebalance = EagerRebalance();
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
}

TEST_P(RebalanceDifferentialTest, PointsToFixpointIdenticalOnAndOff) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("points_to");
  ASSERT_TRUE(named.ok());
  Program program = ParseOrDie(named->source, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  auto gen_facts = [&symbols](Database* db) {
    SplitMix64 rng(21);
    Relation& new_rel = db->GetOrCreate(symbols.Intern("new"), 2);
    Relation& assign = db->GetOrCreate(symbols.Intern("assign"), 2);
    Relation& load = db->GetOrCreate(symbols.Intern("load"), 2);
    Relation& store = db->GetOrCreate(symbols.Intern("store"), 2);
    auto var = [&symbols](uint64_t i) {
      return symbols.Intern("v" + std::to_string(i));
    };
    auto obj = [&symbols](uint64_t i) {
      return symbols.Intern("o" + std::to_string(i));
    };
    for (int i = 0; i < 30; ++i) {
      // Zipf-ish: half of everything lands on object/variable 0.
      uint64_t hot = rng.NextBelow(2);
      new_rel.Insert(
          Tuple{var(rng.NextBelow(14)), obj(hot ? 0 : rng.NextBelow(6))});
      assign.Insert(
          Tuple{var(rng.NextBelow(14)), var(hot ? 0 : rng.NextBelow(14))});
      load.Insert(Tuple{var(rng.NextBelow(14)), var(rng.NextBelow(14))});
      store.Insert(Tuple{var(rng.NextBelow(14)), var(rng.NextBelow(14))});
    }
  };

  Database seq_db;
  gen_facts(&seq_db);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());
  std::string expected_pt =
      seq_db.Find(symbols.Lookup("pt"))->ToSortedString(symbols);

  Symbol o = symbols.Intern("O");
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (GeneralRuleSpec& spec : specs) {
    spec.vars = {o};
    spec.h = DiscriminatingFunction::UniformHash(3);
  }
  StatusOr<RewriteBundle> bundle = RewriteGeneral(
      program, info, 3, specs, /*fragment_bases=*/false);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  for (bool rebalance_on : {false, true}) {
    Database edb;
    gen_facts(&edb);
    ParallelOptions options;
    options.use_threads = GetParam();
    if (rebalance_on) options.rebalance = EagerRebalance();
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(
        result->output.Find(symbols.Lookup("pt"))->ToSortedString(symbols),
        expected_pt)
        << "rebalance " << (rebalance_on ? "on" : "off");
  }
}

// ---------------------------------------------------------------------
// The rebalancer actually acts on a skewed workload
// ---------------------------------------------------------------------

double FiringsSkew(const ParallelResult& result) {
  uint64_t max = 0;
  uint64_t total = 0;
  for (const WorkerStats& w : result.workers) {
    max = std::max(max, w.firings);
    total += w.firings;
  }
  if (total == 0) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(result.workers.size());
  return static_cast<double>(max) / mean;
}

TEST(RebalanceZipfTest, MovesBucketsAndReducesFiringsSkew) {
  auto setup = MakeAncestorSetup();
  GenZipfGraph(&setup->symbols, &setup->edb, "par", 300, 900, 1.6, 3);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  RewriteBundle bundle = MakeRebalancableAncestorBundle(setup.get(), 4);
  ParallelOptions off;
  off.use_threads = false;  // deterministic round-robin schedule
  StatusOr<ParallelResult> before = RunParallel(bundle, &setup->edb, off);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  ParallelOptions on = off;
  on.rebalance = EagerRebalance();
  StatusOr<ParallelResult> after = RunParallel(bundle, &setup->edb, on);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // Identical fixpoint...
  EXPECT_EQ(DumpOutput(*before, setup->symbols, setup->anc()), expected);
  EXPECT_EQ(DumpOutput(*after, setup->symbols, setup->anc()), expected);

  // ...but the coordinator acted: decisions were published, logged, and
  // the firings concentration dropped.
  uint64_t acted = after->metrics.counter("rebalance.moves") +
                   after->metrics.counter("rebalance.replications");
  EXPECT_GT(acted, 0u);
  EXPECT_EQ(after->metrics.counter("rebalance.rounds"), acted);
  EXPECT_EQ(after->rebalance_log.size(), acted);
  EXPECT_LT(FiringsSkew(*after), FiringsSkew(*before));
}

}  // namespace
}  // namespace pdatalog
