// Verifies the hot path's allocation contract: once scratch buffers are
// warm, a JoinExecutor::Execute pass (index probes, bindings, firings
// into a raw-values sink) and duplicate-rejecting InsertView calls
// perform zero heap allocations. Guards against regressions that
// reintroduce per-probe key `Tuple`s or per-call binding vectors.
#include <atomic>
#include <cstdlib>
#include <new>

#include "eval/plan.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "storage/relation.h"
#include "test_util.h"

namespace {
std::atomic<uint64_t> g_news{0};
}  // namespace

// Count every global allocation in this binary. Deallocation paths are
// left untouched (free is allocation-free by definition).
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;

uint64_t AllocCount() { return g_news.load(std::memory_order_relaxed); }

TEST(HotPathAllocTest, JoinExecuteAllocatesNothingWhenWarm) {
  SymbolTable symbols;
  Program program = ParseOrDie("anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
                               &symbols);
  StatusOr<CompiledRule> compiled = CompiledRule::Compile(program.rules[0]);
  ASSERT_TRUE(compiled.ok());

  Relation par(2), anc(2);
  for (Value i = 0; i < 200; ++i) {
    par.Insert(Tuple{i % 40, i % 50});
    anc.Insert(Tuple{i % 50, i});
  }
  for (const auto& [pred, mask] : compiled->required_indexes()) {
    (void)pred;
    anc.EnsureIndex(mask);
    par.EnsureIndex(mask);
  }

  std::vector<AtomInput> inputs = {{&par, 0, par.size()},
                                   {&anc, 0, anc.size()}};
  JoinScratch scratch;
  uint64_t firings = 0;
  auto sink = [&firings](const Value* values, int n) {
    (void)values;
    (void)n;
    ++firings;
  };
  ExecStats stats;
  // Warm-up: sizes the scratch binding buffer.
  JoinExecutor::Execute(*compiled, inputs, nullptr, sink, &stats, &scratch);
  ASSERT_GT(firings, 0u);

  uint64_t before = AllocCount();
  JoinExecutor::Execute(*compiled, inputs, nullptr, sink, &stats, &scratch);
  uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations on the warm join path";
}

TEST(HotPathAllocTest, DuplicateInsertViewAllocatesNothing) {
  Relation rel(3);
  std::vector<Tuple> rows;
  for (Value i = 0; i < 500; ++i) {
    Tuple t{i, i % 7, i % 13};
    rel.Insert(t);
    rows.push_back(t);
  }
  uint64_t before = AllocCount();
  for (const Tuple& t : rows) {
    ASSERT_FALSE(rel.InsertView(t.data(), t.arity()));
  }
  uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations while rejecting duplicates";
}

TEST(HotPathAllocTest, DisabledTracerAllocatesNothing) {
  // A null ring is the tracer-off configuration: spans and guarded
  // instants must cost one branch each and never touch the heap.
  uint64_t before = AllocCount();
  TraceRing* ring = nullptr;
  for (int i = 0; i < 10000; ++i) {
    TraceScope span(ring, TracePhase::kProbe,
                    static_cast<uint32_t>(i));
    if (ring != nullptr) ring->Instant(TracePhase::kRound);
  }
  uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations with tracing disabled";
}

TEST(HotPathAllocTest, EnabledRingEmitIsAllocationFree) {
  // All ring storage is allocated at construction; emitting events —
  // including past capacity, where they drop — must not allocate.
  TraceRing ring(0, 1024);
  uint64_t before = AllocCount();
  for (int i = 0; i < 2000; ++i) {
    TraceScope span(&ring, TracePhase::kInsert,
                    static_cast<uint32_t>(i));
    ring.Instant(TracePhase::kRound, static_cast<uint32_t>(i));
  }
  uint64_t after = AllocCount();
  EXPECT_EQ(ring.size(), 1024u);
  EXPECT_GT(ring.dropped(), 0u);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations while emitting events";
}

TEST(HotPathAllocTest, HistogramRecordAllocatesNothing) {
  // WorkerProfile histograms sit on the enabled-tracing hot path:
  // Record is a bucket increment plus three scalar updates, with all
  // storage inline in the instance.
  Histogram h;
  uint64_t before = AllocCount();
  for (uint64_t i = 0; i < 10000; ++i) h.Record(i * 37);
  h.Record(~uint64_t{0});  // clamp path: lands in the last bucket
  uint64_t after = AllocCount();
  EXPECT_EQ(h.count(), 10001u);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations while recording";
}

TEST(HotPathAllocTest, ScopeWithHistogramAndFlowInstantsAllocatesNothing) {
  // The full enabled-tracing span cost: ring Begin/End, span-duration
  // histogram Record, and the channel's flow-send/recv instants.
  TraceRing ring(0, 4096);
  Histogram durations;
  uint64_t before = AllocCount();
  for (int i = 0; i < 1000; ++i) {
    TraceScope span(&ring, TracePhase::kDrain, 0, &durations);
    ring.Instant(TracePhase::kFlowSend,
                 PackFlowArg(3, static_cast<uint64_t>(i)));
    ring.Instant(TracePhase::kFlowRecv,
                 PackFlowArg(1, static_cast<uint64_t>(i)));
  }
  uint64_t after = AllocCount();
  EXPECT_EQ(durations.count(), 1000u);
  EXPECT_EQ(after - before, 0u)
      << (after - before)
      << " heap allocations on the traced span + flow path";
}

TEST(HotPathAllocTest, IndexProbeAllocatesNothing) {
  Relation rel(2);
  for (Value i = 0; i < 1000; ++i) rel.Insert(Tuple{i % 31, i});
  const ColumnIndex& index = rel.EnsureIndex(0b01);

  uint64_t hits = 0;
  uint64_t before = AllocCount();
  for (Value k = 0; k < 31; ++k) {
    ColumnIndex::Probe probe = index.ProbeRange(&k, 1, 0, rel.size());
    uint32_t id = 0;
    while (probe.Next(&id)) ++hits;
  }
  uint64_t after = AllocCount();
  EXPECT_EQ(hits, 1000u);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across 31 index probes";
}

}  // namespace
}  // namespace pdatalog
