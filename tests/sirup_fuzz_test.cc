// Differential fuzzing of the linear-sirup rewriters: random canonical
// sirups (repeated variables, constants in heads, partial variable
// overlap) run under every applicable Section 3/5/6 scheme and compared
// against the sequential evaluation.
#include "core/dataflow_graph.h"
#include "eval/naive.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/random_program.h"

namespace pdatalog {
namespace {

class SirupFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SirupFuzzTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST_P(SirupFuzzTest, AllApplicableSchemesMatchSequential) {
  uint64_t seed = GetParam();
  SymbolTable symbols;
  RandomSirupOptions options;
  options.seed = seed;
  StatusOr<Program> program = GenerateRandomSirup(&symbols, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ProgramInfo info;
  ASSERT_TRUE(Validate(*program, &info).ok());
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
  ASSERT_TRUE(sirup.ok()) << "seed " << seed << ": "
                          << sirup.status().ToString();

  // Sequential reference.
  Database seq_db;
  ASSERT_TRUE(seq_db.LoadFacts(*program).ok());
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(*program, info, &seq_db, &seq).ok());
  std::string expected =
      seq_db.Find(sirup->t)->ToSortedString(symbols);

  int schemes_run = 0;

  // Hash partitioning on each single recursive-atom variable, v(e)
  // chosen at the matching exit-head column.
  std::vector<Symbol> y = sirup->BodyVarsY();
  std::vector<Symbol> z = sirup->ExitVarsZ();
  for (int pos = 0; pos < sirup->arity(); ++pos) {
    if (y[pos] == kInvalidSymbol) continue;  // constant position
    LinearSchemeOptions scheme;
    scheme.v_r = {y[pos]};
    scheme.v_e = {z[pos]};
    scheme.h = DiscriminatingFunction::UniformHash(3, seed);
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(*program, info, *sirup, 3, scheme);
    ASSERT_TRUE(bundle.ok()) << "seed " << seed << " pos " << pos << ": "
                             << bundle.status().ToString();
    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
    ASSERT_TRUE(result.ok()) << "seed " << seed << " pos " << pos << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->output.Find(sirup->t)->ToSortedString(symbols),
              expected)
        << "seed " << seed << " v(r)=<" << symbols.Name(y[pos]) << ">";
    EXPECT_LE(result->total_firings, seq.firings) << "seed " << seed;
    ++schemes_run;
  }

  // Theorem 3 scheme, when the dataflow graph has a cycle; must be
  // communication-free.
  StatusOr<LinearSchemeOptions> free_scheme =
      CommunicationFreeScheme(*sirup, 3, seed);
  if (free_scheme.ok()) {
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(*program, info, *sirup, 3, *free_scheme);
    ASSERT_TRUE(bundle.ok()) << "seed " << seed;
    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_EQ(result->output.Find(sirup->t)->ToSortedString(symbols),
              expected)
        << "seed " << seed << " (theorem3)";
    EXPECT_EQ(result->cross_tuples, 0u) << "seed " << seed;
    ++schemes_run;
  }

  // Section 6 keep-local scheme (requires every v(r) variable in Y;
  // pick the first variable position).
  for (int pos = 0; pos < sirup->arity(); ++pos) {
    if (y[pos] == kInvalidSymbol) continue;
    TradeoffOptions scheme;
    scheme.v_r = {y[pos]};
    scheme.v_e = {z[pos]};
    scheme.h_prime = DiscriminatingFunction::UniformHash(3, seed);
    for (int i = 0; i < 3; ++i) {
      scheme.h_i.push_back(DiscriminatingFunction::Constant(i));
    }
    StatusOr<RewriteBundle> bundle =
        RewriteTradeoff(*program, info, *sirup, 3, scheme);
    ASSERT_TRUE(bundle.ok()) << "seed " << seed;
    Database edb;
    ASSERT_TRUE(edb.LoadFacts(*program).ok());
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_EQ(result->output.Find(sirup->t)->ToSortedString(symbols),
              expected)
        << "seed " << seed << " (keep-local)";
    EXPECT_EQ(result->cross_tuples, 0u) << "seed " << seed;
    EXPECT_GE(result->total_firings, seq.firings) << "seed " << seed;
    ++schemes_run;
    break;  // one position suffices for the keep-local family
  }

  // Every generated sirup admits at least one scheme (the safety
  // repair guarantees at least one variable in the recursive atom
  // whenever the head has variables; fully-constant sirups may not).
  if (schemes_run == 0) {
    GTEST_SKIP() << "seed " << seed
                 << ": recursive atom has no variable positions";
  }
}

TEST(SirupFuzzStructureTest, GeneratorsProduceCanonicalSirups) {
  int extracted = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SymbolTable symbols;
    RandomSirupOptions options;
    options.seed = seed;
    StatusOr<Program> program = GenerateRandomSirup(&symbols, options);
    ASSERT_TRUE(program.ok());
    ProgramInfo info;
    ASSERT_TRUE(Validate(*program, &info).ok());
    if (ExtractLinearSirup(*program, info).ok()) ++extracted;
  }
  EXPECT_EQ(extracted, 30);
}

}  // namespace
}  // namespace pdatalog
