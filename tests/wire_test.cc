#include "core/wire.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

TEST(WireTest, MessageRoundTrip) {
  Message in{42, Tuple{1, 2, 3}};
  std::vector<uint8_t> bytes;
  EncodeMessage(in, &bytes);
  EXPECT_EQ(bytes.size(), in.WireBytes());
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->predicate, 42u);
  EXPECT_EQ(out->tuple, (Tuple{1, 2, 3}));
  EXPECT_EQ(offset, bytes.size());
}

TEST(WireTest, ZeroArityMessage) {
  Message in{7, Tuple{}};
  std::vector<uint8_t> bytes;
  EncodeMessage(in, &bytes);
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuple.arity(), 0);
}

TEST(WireTest, LargeValuesSurvive) {
  Message in{0xffffffffu, Tuple{0xdeadbeefu, 0, 0x7fffffffu}};
  std::vector<uint8_t> bytes;
  EncodeMessage(in, &bytes);
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->predicate, 0xffffffffu);
  EXPECT_EQ(out->tuple[0], 0xdeadbeefu);
}

TEST(WireTest, BatchRoundTrip) {
  std::vector<Message> batch;
  for (Value i = 0; i < 50; ++i) {
    batch.push_back(Message{i % 3, Tuple{i, i + 1}});
  }
  std::vector<uint8_t> bytes = EncodeBatch(batch);
  StatusOr<std::vector<Message>> out = DecodeBatch(bytes);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*out)[i].predicate, batch[i].predicate);
    EXPECT_EQ((*out)[i].tuple, batch[i].tuple);
  }
}

TEST(WireTest, TruncatedInputRejected) {
  Message in{1, Tuple{9, 8, 7}};
  std::vector<uint8_t> bytes;
  EncodeMessage(in, &bytes);
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(DecodeMessage(truncated, &offset).ok()) << "cut " << cut;
  }
}

TEST(WireTest, GarbageArityRejected) {
  std::vector<uint8_t> bytes = {0, 0, 0, 0, 0xff, 0xff};  // arity 65535
  size_t offset = 0;
  EXPECT_FALSE(DecodeMessage(bytes, &offset).ok());
}

TEST(WireTest, SerializedChannelRoundTrip) {
  Channel channel;
  std::vector<uint8_t> bytes;
  EncodeMessage(Message{5, Tuple{1, 2}}, &bytes);
  channel.SendBytes(bytes);
  EXPECT_TRUE(channel.HasPending());
  EXPECT_EQ(channel.total_sent(), 1u);
  EXPECT_EQ(channel.total_bytes(), bytes.size());
  std::vector<std::vector<uint8_t>> out;
  EXPECT_EQ(channel.DrainBytes(&out), 1u);
  EXPECT_FALSE(channel.HasPending());
}

class SerializedEngineTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(ThreadsAndRoundRobin, SerializedEngineTest,
                         ::testing::Values(false, true));

TEST_P(SerializedEngineTest, MessagePassingModeMatchesSharedMemory) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  for (AncestorScheme scheme :
       {AncestorScheme::kExample2, AncestorScheme::kExample3}) {
    RewriteBundle bundle = MakeAncestorBundle(setup.get(), scheme, 4);
    ParallelOptions options;
    options.use_threads = GetParam();
    options.serialize_messages = true;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << "scheme " << static_cast<int>(scheme);
  }
}

TEST(SerializedEngineTest, GeneralSchemeUnderMessagePassing) {
  SymbolTable symbols;
  Program program = testing_util::ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(3);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok());

  Database seq_db;
  GenRandomGraph(&symbols, &seq_db, "par", 20, 40, 10);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());

  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 20, 40, 10);
  ParallelOptions options;
  options.serialize_messages = true;
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("anc"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols));
}

}  // namespace
}  // namespace pdatalog
