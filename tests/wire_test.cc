#include "core/wire.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

TEST(WireTest, MessageRoundTrip) {
  Message in{42, Tuple{1, 2, 3}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  EXPECT_EQ(bytes.size(), in.WireBytes());
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->predicate, 42u);
  EXPECT_EQ(out->tuple, (Tuple{1, 2, 3}));
  EXPECT_EQ(offset, bytes.size());
}

TEST(WireTest, ZeroArityMessage) {
  Message in{7, Tuple{}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuple.arity(), 0);
}

TEST(WireTest, LargeValuesSurvive) {
  Message in{0xffffffffu, Tuple{0xdeadbeefu, 0, 0x7fffffffu}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  size_t offset = 0;
  StatusOr<Message> out = DecodeMessage(bytes, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->predicate, 0xffffffffu);
  EXPECT_EQ(out->tuple[0], 0xdeadbeefu);
}

TEST(WireTest, BatchRoundTrip) {
  std::vector<Message> batch;
  for (Value i = 0; i < 50; ++i) {
    batch.push_back(Message{i % 3, Tuple{i, i + 1}});
  }
  StatusOr<std::vector<uint8_t>> bytes = EncodeBatch(batch);
  ASSERT_TRUE(bytes.ok());
  StatusOr<std::vector<Message>> out = DecodeBatch(*bytes);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*out)[i].predicate, batch[i].predicate);
    EXPECT_EQ((*out)[i].tuple, batch[i].tuple);
  }
}

TEST(WireTest, WireBytesMatchesEncodedSizeForEveryArity) {
  // Message::WireBytes and EncodeMessage must agree byte for byte —
  // the formula lives only in MessageWireBytes (core/channel.h).
  for (int arity = 0; arity <= kMaxWireArity; ++arity) {
    std::vector<Value> values(arity, 7);
    Message m{1, Tuple(values.data(), arity)};
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(EncodeMessage(m, &bytes).ok());
    EXPECT_EQ(bytes.size(), m.WireBytes()) << "arity " << arity;
    EXPECT_EQ(bytes.size(), MessageWireBytes(arity)) << "arity " << arity;
  }
}

TEST(WireTest, EncodeRejectsOversizedArity) {
  // Encode and decode are symmetric: both reject arity > kMaxWireArity,
  // so an unencodable message can never be produced on the wire.
  std::vector<Value> values(kMaxWireArity + 1, 0);
  Message m{1, Tuple(values.data(), kMaxWireArity + 1)};
  std::vector<uint8_t> bytes;
  Status status = EncodeMessage(m, &bytes);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(bytes.empty());  // nothing appended on failure
}

TEST(WireTest, TruncatedInputRejected) {
  Message in{1, Tuple{9, 8, 7}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  // Every prefix shorter than the full frame must fail: cuts inside the
  // header, the body, and the checksum each exercise a distinct
  // early-return branch of DecodeMessage.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(DecodeMessage(truncated, &offset).ok()) << "cut " << cut;
  }
}

TEST(WireTest, TruncationBranchesAreDistinct) {
  Message in{1, Tuple{9, 8, 7}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  auto error_at = [&](size_t cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    size_t offset = 0;
    return DecodeMessage(truncated, &offset).status().message();
  };
  EXPECT_NE(error_at(3).find("header"), std::string::npos);
  EXPECT_NE(error_at(kWireHeaderBytes + 2).find("body"), std::string::npos);
  EXPECT_NE(error_at(bytes.size() - 1).find("checksum"), std::string::npos);
}

TEST(WireTest, GarbageArityRejected) {
  std::vector<uint8_t> bytes = {0, 0, 0, 0, 0xff, 0xff};  // arity 65535
  size_t offset = 0;
  EXPECT_FALSE(DecodeMessage(bytes, &offset).ok());
}

TEST(WireTest, EveryByteFlipIsDetected) {
  // Flip each byte of the frame in turn: wherever the flip lands —
  // predicate, arity, value, or the checksum itself — the trailing
  // FNV-1a checksum makes the decode fail instead of yielding a
  // plausible wrong tuple.
  Message in{42, Tuple{1, 2, 3}};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(in, &bytes).ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0xa5;
    size_t offset = 0;
    EXPECT_FALSE(DecodeMessage(corrupt, &offset).ok()) << "byte " << i;
    EXPECT_FALSE(FrameChecksumOk(corrupt.data(), corrupt.size()))
        << "byte " << i;
  }
  EXPECT_TRUE(FrameChecksumOk(bytes.data(), bytes.size()));
}

TEST(WireTest, FrameChecksumRejectsShortFrames) {
  std::vector<uint8_t> bytes(kWireHeaderBytes + kWireChecksumBytes - 1, 0);
  EXPECT_FALSE(FrameChecksumOk(bytes.data(), bytes.size()));
}

TEST(WireTest, BatchRejectsCorruptMember) {
  std::vector<Message> batch = {Message{1, Tuple{1, 2}},
                                Message{2, Tuple{3, 4}}};
  StatusOr<std::vector<uint8_t>> bytes = EncodeBatch(batch);
  ASSERT_TRUE(bytes.ok());
  // Corrupt a byte of the *second* message: DecodeBatch must reject the
  // whole batch, not return a prefix.
  std::vector<uint8_t> corrupt = *bytes;
  corrupt[MessageWireBytes(2) + 6] ^= 0x10;
  EXPECT_FALSE(DecodeBatch(corrupt).ok());
  // Truncating mid-message is likewise an error, not a short batch.
  std::vector<uint8_t> truncated(*bytes);
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(DecodeBatch(truncated).ok());
}

TEST(WireTest, SerializedChannelRoundTrip) {
  Channel channel;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(Message{5, Tuple{1, 2}}, &bytes).ok());
  channel.SendBytes(bytes);
  EXPECT_TRUE(channel.HasPending());
  EXPECT_EQ(channel.total_sent(), 1u);
  EXPECT_EQ(channel.total_bytes(), bytes.size());
  std::vector<std::vector<uint8_t>> out;
  EXPECT_EQ(channel.DrainBytes(&out), 1u);
  EXPECT_FALSE(channel.HasPending());
}

class SerializedEngineTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(ThreadsAndRoundRobin, SerializedEngineTest,
                         ::testing::Values(false, true));

TEST_P(SerializedEngineTest, MessagePassingModeMatchesSharedMemory) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  for (AncestorScheme scheme :
       {AncestorScheme::kExample2, AncestorScheme::kExample3}) {
    RewriteBundle bundle = MakeAncestorBundle(setup.get(), scheme, 4);
    ParallelOptions options;
    options.use_threads = GetParam();
    options.serialize_messages = true;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << "scheme " << static_cast<int>(scheme);
  }
}

TEST(SerializedEngineTest, GeneralSchemeUnderMessagePassing) {
  SymbolTable symbols;
  Program program = testing_util::ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(3);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok());

  Database seq_db;
  GenRandomGraph(&symbols, &seq_db, "par", 20, 40, 10);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());

  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 20, 40, 10);
  ParallelOptions options;
  options.serialize_messages = true;
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("anc"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols));
}

}  // namespace
}  // namespace pdatalog
