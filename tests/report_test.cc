#include "core/report.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;

ParallelResult RunAncestor(int P) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 8);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, P);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(ReportTest, TotalsLine) {
  ParallelResult result = RunAncestor(3);
  ReportOptions options;
  options.per_worker = false;
  options.channel_matrix = false;
  std::string report = RenderReport(result, options);
  EXPECT_NE(report.find("totals:"), std::string::npos);
  EXPECT_NE(report.find("36 output tuples"), std::string::npos);  // 8*9/2
  EXPECT_NE(report.find("bytes"), std::string::npos);
}

TEST(ReportTest, PerWorkerTableHasOneRowPerProcessor) {
  ParallelResult result = RunAncestor(4);
  ReportOptions options;
  options.totals = false;
  std::string report = RenderReport(result, options);
  // Header + separator + 4 rows.
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 6);
  EXPECT_NE(report.find("rows examined"), std::string::npos);
}

TEST(ReportTest, PerWorkerRatiosPresent) {
  ParallelResult result = RunAncestor(3);
  ReportOptions options;
  options.totals = false;
  std::string report = RenderReport(result, options);
  EXPECT_NE(report.find("tup/frame"), std::string::npos);
  EXPECT_NE(report.find("rows/round"), std::string::npos);
}

TEST(ReportTest, RatioCellsAreZeroSafe) {
  // A hand-built result with every denominator at zero: no frames, no
  // rounds, no cross frames. Every ratio cell must render as 0.0, never
  // inf or nan.
  ParallelResult result;
  WorkerStats idle;
  idle.rounds = 0;
  idle.frames = 0;
  idle.rows_examined = 123;  // nonzero numerator over a zero denominator
  idle.sent_cross = 7;
  result.workers = {idle, WorkerStats{}};
  result.channel_matrix.assign(2, std::vector<uint64_t>(2, 0));
  result.cross_tuples = 5;  // nonzero tuples but zero frames
  result.cross_frames = 0;
  ReportOptions options;
  options.channel_matrix = true;
  std::string report = RenderReport(result, options);
  EXPECT_EQ(report.find("inf"), std::string::npos) << report;
  EXPECT_EQ(report.find("nan"), std::string::npos) << report;
  EXPECT_NE(report.find("0.0 tuples/frame"), std::string::npos) << report;
}

TEST(ReportTest, ChannelMatrix) {
  ParallelResult result = RunAncestor(2);
  ReportOptions options;
  options.totals = false;
  options.per_worker = false;
  options.channel_matrix = true;
  std::string report = RenderReport(result, options);
  EXPECT_NE(report.find("from\\to"), std::string::npos);
  EXPECT_NE(report.find("p1"), std::string::npos);
}

TEST(ReportTest, BytesAccounting) {
  // Block framing: one header + count + checksum per frame, then 2
  // columns of 4 bytes per tuple.
  ParallelResult result = RunAncestor(4);
  EXPECT_GT(result.cross_frames, 0u);
  EXPECT_LE(result.cross_frames, result.cross_tuples);
  EXPECT_EQ(result.cross_bytes,
            result.cross_frames * (kBlockHeaderBytes + kWireChecksumBytes) +
                result.cross_tuples * 2 * kWireValueBytes);
}

TEST(ReportTest, ByteMatrixConsistentWithTupleMatrix) {
  ParallelResult result = RunAncestor(4);
  for (size_t i = 0; i < result.workers.size(); ++i) {
    for (size_t j = 0; j < result.workers.size(); ++j) {
      EXPECT_EQ(
          result.bytes_matrix[i][j],
          result.frames_matrix[i][j] *
                  (kBlockHeaderBytes + kWireChecksumBytes) +
              result.channel_matrix[i][j] * 2 * kWireValueBytes);
    }
  }
}

TEST(ReportTest, FramesMatrixConsistentWithWorkerFrames) {
  ParallelResult result = RunAncestor(4);
  for (size_t i = 0; i < result.workers.size(); ++i) {
    uint64_t row_frames = 0;
    for (size_t j = 0; j < result.workers.size(); ++j) {
      row_frames += result.frames_matrix[i][j];
    }
    EXPECT_EQ(row_frames, result.workers[i].frames);
  }
}

TEST(ReportTest, PercentileTableRendersOnlyWhenHistogramsPresent) {
  ParallelResult result = RunAncestor(3);  // untraced: no histograms
  EXPECT_EQ(RenderReport(result).find("percentiles"), std::string::npos);

  Histogram h;
  for (uint64_t v = 1; v <= 64; ++v) h.Record(v);
  result.metrics.MergeHistogram("hist.probe_ns", h);
  std::string report = RenderReport(result);
  EXPECT_NE(report.find("percentiles"), std::string::npos);
  EXPECT_NE(report.find("hist.probe_ns"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);

  ReportOptions off;
  off.histograms = false;
  EXPECT_EQ(RenderReport(result, off).find("percentiles"),
            std::string::npos);
}

TEST(ReportTest, TraceDropWarningAppearsInTotals) {
  ParallelResult result = RunAncestor(2);
  EXPECT_EQ(RenderReport(result).find("warning:"), std::string::npos);
  result.metrics.AddCounter("trace.dropped", 5);
  std::string report = RenderReport(result);
  EXPECT_NE(report.find("warning: trace ring overflow dropped 5 events"),
            std::string::npos);
  EXPECT_NE(report.find("--trace-ring-kb"), std::string::npos);
}

TEST(ReportTest, MakeProfileContextMirrorsResult) {
  ParallelResult result = RunAncestor(3);
  ProfileContext ctx = MakeProfileContext(result);
  EXPECT_EQ(ctx.tuples_matrix, result.channel_matrix);
  EXPECT_EQ(ctx.frames_matrix, result.frames_matrix);
  EXPECT_EQ(ctx.metrics, &result.metrics);
  ASSERT_EQ(ctx.sent_by_round.size(), result.worker_rounds.size());
  for (size_t i = 0; i < ctx.sent_by_round.size(); ++i) {
    ASSERT_EQ(ctx.sent_by_round[i].size(), result.worker_rounds[i].size());
    for (size_t r = 0; r < ctx.sent_by_round[i].size(); ++r) {
      EXPECT_EQ(ctx.sent_by_round[i][r],
                result.worker_rounds[i][r].sent_to);
    }
  }
}

TEST(TimelineTest, RendersOneRowPerProcessor) {
  ParallelResult result = RunAncestor(3);
  std::string timeline = RenderBspTimeline(result, 1.0, 0.0);
  EXPECT_NE(timeline.find("p0 |"), std::string::npos);
  EXPECT_NE(timeline.find("p2 |"), std::string::npos);
  EXPECT_EQ(std::count(timeline.begin(), timeline.end(), '\n'), 4);
}

TEST(TimelineTest, EmptyRunHandled) {
  ParallelResult result;
  EXPECT_EQ(RenderBspTimeline(result, 1.0, 1.0), "(no rounds)\n");
}

TEST(TimelineTest, WidthCapAggregates) {
  ParallelResult result = RunAncestor(2);
  std::string narrow = RenderBspTimeline(result, 1.0, 1.0, 5);
  // "pN |" + at most 5 columns + "|".
  size_t line_end = narrow.find('\n', narrow.find("p0 |"));
  size_t line_start = narrow.find("p0 |");
  EXPECT_LE(line_end - line_start, 4u + 5u + 1u);
}

}  // namespace
}  // namespace pdatalog
