// Additional engine coverage: wider arities, multi-variable and
// repeated-variable discriminating sequences, custom functions, skew,
// and pooling-cost accounting.
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::ParseOrDie;
using testing_util::SequentialAncestor;
using testing_util::ValidateOrDie;

// The arity-3 sirup of the paper's Examples 4/7, with random data.
struct Arity3Fixture {
  SymbolTable symbols;
  Program program;
  ProgramInfo info;
  LinearSirup sirup;

  Arity3Fixture() {
    program = ParseOrDie(
        "p(U, V, W) :- s(U, V, W).\n"
        "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
        &symbols);
    info = ValidateOrDie(program);
    StatusOr<LinearSirup> s = ExtractLinearSirup(program, info);
    EXPECT_TRUE(s.ok());
    sirup = std::move(*s);
  }

  Database MakeEdb(uint64_t seed) {
    Database edb;
    SplitMix64 rng(seed);
    Relation& s = edb.GetOrCreate(symbols.Intern("s"), 3);
    Relation& q = edb.GetOrCreate(symbols.Intern("q"), 2);
    auto node = [&](uint64_t i) {
      return symbols.Intern("n" + std::to_string(i));
    };
    for (int i = 0; i < 40; ++i) {
      s.Insert(Tuple{node(rng.NextBelow(10)), node(rng.NextBelow(10)),
                     node(rng.NextBelow(10))});
      q.Insert(Tuple{node(rng.NextBelow(10)), node(rng.NextBelow(10))});
    }
    return edb;
  }

  std::string Sequential(uint64_t seed, EvalStats* stats) {
    Database db = MakeEdb(seed);
    EvalStats local;
    EXPECT_TRUE(SemiNaiveEvaluate(program, info, &db,
                                  stats ? stats : &local)
                    .ok());
    return db.Find(symbols.Lookup("p"))->ToSortedString(symbols);
  }
};

TEST(Arity3EngineTest, MultiVariableSequenceMatchesSequential) {
  Arity3Fixture fx;
  EvalStats seq;
  std::string expected = fx.Sequential(3, &seq);

  LinearSchemeOptions options;
  // Full recursive-atom sequence <V, W, Z>; exit sequence <U, V, W>.
  options.v_r = {fx.symbols.Intern("V"), fx.symbols.Intern("W"),
                 fx.symbols.Intern("Z")};
  options.v_e = {fx.symbols.Intern("U"), fx.symbols.Intern("V"),
                 fx.symbols.Intern("W")};
  options.h = DiscriminatingFunction::UniformHash(5);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 5, options);
  ASSERT_TRUE(bundle.ok());

  Database edb = fx.MakeEdb(3);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      result->output.Find(fx.symbols.Lookup("p"))->ToSortedString(fx.symbols),
      expected);
  EXPECT_EQ(result->total_firings, seq.firings);
}

TEST(Arity3EngineTest, LinearRemappedFunctionMatchesSequential) {
  Arity3Fixture fx;
  std::string expected = fx.Sequential(4, nullptr);

  LinearSchemeOptions options;
  options.v_r = {fx.symbols.Intern("V"), fx.symbols.Intern("W"),
                 fx.symbols.Intern("Z")};
  options.v_e = {fx.symbols.Intern("U"), fx.symbols.Intern("V"),
                 fx.symbols.Intern("W")};
  // The paper's Example 7 function g(a1) - g(a2) + g(a3), remapped onto
  // processors {0..3}.
  options.h = WithDenseRemap(DiscriminatingFunction::Linear({1, -1, 1}));
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 4, options);
  ASSERT_TRUE(bundle.ok());

  Database edb = fx.MakeEdb(4);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(
      result->output.Find(fx.symbols.Lookup("p"))->ToSortedString(fx.symbols),
      expected);
}

TEST(EngineExtraTest, RepeatedVariableInSequence) {
  // v(r) = <Z, Z>: legal (a sequence, not a set); must behave like a
  // function of Z alone.
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 7);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  LinearSchemeOptions options;
  Symbol z = setup->symbols.Intern("Z");
  options.v_r = {z, z};
  options.v_e = {setup->symbols.Intern("X"), setup->symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, 3, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
}

TEST(EngineExtraTest, CustomDiscriminatingFunction) {
  // A user-supplied routing policy: odd-length constant names to
  // processor 0, others to 1 (pure and in-range, as required).
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 20, 40, 8);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  LinearSchemeOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h = DiscriminatingFunction::Custom(
      [](const Value* values, int n) {
        return static_cast<int>(values[n - 1] % 2);
      },
      2);
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, 2, options);
  ASSERT_TRUE(bundle.ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
}

TEST(EngineExtraTest, MaximallySkewedFunctionStillCorrect) {
  // Constant(0) used as the shared h of the Section 3 scheme: all work
  // lands on processor 0, others stay idle; the answer is unchanged.
  auto setup = MakeAncestorSetup();
  GenTree(&setup->symbols, &setup->edb, "par", 2, 5);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  LinearSchemeOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h = DiscriminatingFunction::Constant(0);
  StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
      setup->program, setup->info, setup->sirup, 4, options);
  ASSERT_TRUE(bundle.ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_EQ(result->workers[1].firings, 0u);
  EXPECT_EQ(result->workers[2].firings, 0u);
}

TEST(EngineExtraTest, PoolingCostAccounted) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  uint64_t remote_out =
      result->out_tuples_total - result->workers[0].out_inserted;
  EXPECT_EQ(result->pooling_messages, remote_out);
  EXPECT_EQ(result->pooling_bytes,
            remote_out * MessageWireBytes(2));  // arity-2 tuples
}

TEST(EngineExtraTest, SingleProcessorPoolingIsFree) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 10);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 1);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pooling_messages, 0u);
}

TEST(EngineExtraTest, SameGenerationAsLinearSirup) {
  // same_generation is itself a canonical linear sirup; run it under
  // the Section 3 scheme partitioned on the join variable V.
  SymbolTable symbols;
  Program program = ParseOrDie(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());

  auto fill = [&](Database* db) {
    GenFlat(&symbols, db, "up", 50, 10, 3);
    SplitMix64 rng(4);
    Relation& flat = db->GetOrCreate(symbols.Intern("flat"), 2);
    Relation& down = db->GetOrCreate(symbols.Intern("down"), 2);
    for (int i = 0; i < 20; ++i) {
      flat.Insert(
          Tuple{symbols.Intern("p" + std::to_string(rng.NextBelow(10))),
                symbols.Intern("p" + std::to_string(rng.NextBelow(10)))});
      down.Insert(
          Tuple{symbols.Intern("p" + std::to_string(rng.NextBelow(10))),
                symbols.Intern("c" + std::to_string(rng.NextBelow(50)))});
    }
  };

  Database seq_db;
  fill(&seq_db);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());

  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("U"), symbols.Intern("V")};
  options.v_e = {symbols.Intern("X"), symbols.Intern("Y")};
  options.h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 4, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  fill(&edb);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("sg"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("sg"))->ToSortedString(symbols));
  EXPECT_EQ(result->total_firings, seq.firings);
}

}  // namespace
}  // namespace pdatalog
