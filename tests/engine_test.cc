#include "core/engine.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

class EngineModeTest : public ::testing::TestWithParam<bool> {
 protected:
  ParallelOptions Options() const {
    ParallelOptions options;
    options.use_threads = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(ThreadsAndRoundRobin, EngineModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Threads" : "RoundRobin";
                         });

TEST_P(EngineModeTest, AncestorChainMatchesSequential) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 12);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, Options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
            SequentialAncestor(setup.get(), nullptr));
}

TEST_P(EngineModeTest, EmptyInputTerminatesImmediately) {
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pooled_tuples, 0u);
  EXPECT_EQ(result->total_firings, 0u);
}

TEST_P(EngineModeTest, SingleProcessorDegeneratesToSequential) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 3);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 1);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, Options());
  ASSERT_TRUE(result.ok());
  EvalStats seq_stats;
  std::string expected = SequentialAncestor(setup.get(), &seq_stats);
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_EQ(result->total_firings, seq_stats.firings);
  EXPECT_EQ(result->cross_tuples, 0u);
}

TEST_P(EngineModeTest, AllSchemesProduceTheSameAnswer) {
  for (AncestorScheme scheme :
       {AncestorScheme::kExample1, AncestorScheme::kExample2,
        AncestorScheme::kExample3}) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 55, 17);
    std::string expected = SequentialAncestor(setup.get(), nullptr);
    RewriteBundle bundle = MakeAncestorBundle(setup.get(), scheme, 4);
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, Options());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << "scheme " << static_cast<int>(scheme);
  }
}

TEST_P(EngineModeTest, CyclicDataTerminates) {
  auto setup = MakeAncestorSetup();
  GenCycle(&setup->symbols, &setup->edb, "par", 12);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pooled_tuples, 144u);  // complete relation
}

TEST_P(EngineModeTest, ChannelMatrixConsistentWithWorkerStats) {
  auto setup = MakeAncestorSetup();
  GenTree(&setup->symbols, &setup->edb, "par", 2, 6);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, Options());
  ASSERT_TRUE(result.ok());

  uint64_t matrix_cross = 0;
  uint64_t matrix_self = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        matrix_self += result->channel_matrix[i][j];
      } else {
        matrix_cross += result->channel_matrix[i][j];
      }
    }
  }
  EXPECT_EQ(matrix_cross, result->cross_tuples);
  EXPECT_EQ(matrix_self, result->self_tuples);

  uint64_t received = 0;
  uint64_t sent = 0;
  for (const WorkerStats& w : result->workers) {
    received += w.received;
    sent += w.sent_cross + w.sent_self;
  }
  EXPECT_EQ(received, sent);  // all channels drained at termination
}

TEST(EngineTest, MalformedBundleRejected) {
  RewriteBundle bundle;
  bundle.num_processors = 2;  // but no per-processor programs
  Database edb;
  EXPECT_FALSE(RunParallel(bundle, &edb).ok());
}

TEST(EngineTest, ConstantFunctionOutOfRangeRejected) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 3);
  StatusOr<LinearSirup> sirup =
      ExtractLinearSirup(setup->program, setup->info);
  ASSERT_TRUE(sirup.ok());
  TradeoffOptions options;
  options.v_r = {setup->symbols.Intern("Z")};
  options.v_e = {setup->symbols.Intern("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(2);
  options.h_i = {DiscriminatingFunction::Constant(0),
                 DiscriminatingFunction::Constant(7)};  // out of range
  StatusOr<RewriteBundle> bundle = RewriteTradeoff(
      setup->program, setup->info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineTest, ModeledMakespanUsesWorstWorker) {
  ParallelResult result;
  result.workers.resize(2);
  result.workers[0].firings = 100;
  result.workers[1].firings = 10;
  result.channel_matrix = {{0, 5}, {7, 0}};
  // cpu=1, net=0: max(100, 10) = 100.
  EXPECT_DOUBLE_EQ(result.ModeledMakespan(1.0, 0.0), 100.0);
  // cpu=0, net=1: worker0 receives 7, worker1 receives 5 -> 7.
  EXPECT_DOUBLE_EQ(result.ModeledMakespan(0.0, 1.0), 7.0);
}

TEST_P(EngineModeTest, GeneralSchemeNonLinearAncestor) {
  SymbolTable symbols;
  Program program = testing_util::ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(3);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 20, 40, 2);

  // Sequential reference.
  Database seq_db;
  const Relation* par = edb.Find(symbols.Lookup("par"));
  Relation& copy = seq_db.GetOrCreate(symbols.Lookup("par"), 2);
  for (size_t r = 0; r < par->size(); ++r) copy.Insert(par->row(r));
  EvalStats seq_stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq_stats).ok());

  StatusOr<ParallelResult> result =
      RunParallel(*bundle, &edb, Options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("anc"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols));
}

}  // namespace
}  // namespace pdatalog
