#include "storage/tuple.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(TupleTest, InlineStorage) {
  Tuple t{1, 2, 3};
  EXPECT_EQ(t.arity(), 3);
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[2], 3u);
}

TEST(TupleTest, EmptyTuple) {
  Tuple t;
  EXPECT_EQ(t.arity(), 0);
  EXPECT_EQ(t, Tuple{});
}

TEST(TupleTest, HeapSpillForLargeArity) {
  Value data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Tuple t(data, 10);
  EXPECT_EQ(t.arity(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t[i], static_cast<Value>(i));
}

TEST(TupleTest, CopySemantics) {
  Value data[10] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  Tuple a(data, 10);
  Tuple b = a;  // copy
  EXPECT_EQ(a, b);
  Tuple c{1, 2};
  c = a;  // copy-assign, inline -> heap
  EXPECT_EQ(c, a);
  Tuple d(data, 10);
  d = Tuple{5, 6};  // copy-assign, heap -> inline
  EXPECT_EQ(d, (Tuple{5, 6}));
}

TEST(TupleTest, MoveSemantics) {
  Value data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Tuple a(data, 10);
  Tuple b = std::move(a);
  EXPECT_EQ(b.arity(), 10);
  EXPECT_EQ(b[9], 9u);

  Tuple c{1, 2, 3};
  Tuple d = std::move(c);
  EXPECT_EQ(d, (Tuple{1, 2, 3}));
}

TEST(TupleTest, SelfAssignment) {
  Tuple a{1, 2, 3};
  Tuple& ref = a;
  a = ref;
  EXPECT_EQ(a, (Tuple{1, 2, 3}));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{1, 2};
  Tuple b{1, 2};
  Tuple c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());  // order matters
}

TEST(TupleTest, ArityDistinguishes) {
  Tuple a{1, 2};
  Tuple b{1, 2, 0};
  EXPECT_NE(a, b);
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_LT((Tuple{1, 9}), (Tuple{2, 0}));
  EXPECT_LT((Tuple{5}), (Tuple{1, 1}));  // shorter arity first
}

TEST(TupleTest, WorksInUnorderedSet) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(Tuple{1, 2});
  set.insert(Tuple{1, 2});
  set.insert(Tuple{2, 1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Tuple{1, 2}));
}

TEST(TupleTest, ToStringUsesSymbolNames) {
  SymbolTable symbols;
  Value a = symbols.Intern("alice");
  Value b = symbols.Intern("bob");
  EXPECT_EQ((Tuple{a, b}).ToString(symbols), "(alice, bob)");
}

TEST(TupleTest, ManyHeapTuplesNoLeakOrCorruption) {
  // Exercised under the dedup/copy churn a relation produces.
  std::vector<Tuple> tuples;
  Value data[6];
  for (int i = 0; i < 1000; ++i) {
    for (int k = 0; k < 6; ++k) data[k] = static_cast<Value>(i + k);
    tuples.emplace_back(data, 6);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tuples[i][0], static_cast<Value>(i));
    EXPECT_EQ(tuples[i][5], static_cast<Value>(i + 5));
  }
}

}  // namespace
}  // namespace pdatalog
