#include "workload/generators.h"

#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(GeneratorsTest, ChainEdgeCount) {
  SymbolTable symbols;
  Database db;
  EXPECT_EQ(GenChain(&symbols, &db, "par", 10), 10u);
  EXPECT_EQ(db.Find(symbols.Lookup("par"))->size(), 10u);
}

TEST(GeneratorsTest, TreeEdgeCount) {
  SymbolTable symbols;
  Database db;
  // Binary tree of depth 3: 2 + 4 + 8 = 14 edges.
  EXPECT_EQ(GenTree(&symbols, &db, "par", 2, 3), 14u);
}

TEST(GeneratorsTest, RandomGraphDeterministicInSeed) {
  SymbolTable s1, s2;
  Database d1, d2;
  GenRandomGraph(&s1, &d1, "e", 20, 40, 7);
  GenRandomGraph(&s2, &d2, "e", 20, 40, 7);
  EXPECT_EQ(d1.Find(s1.Lookup("e"))->ToSortedString(s1),
            d2.Find(s2.Lookup("e"))->ToSortedString(s2));
}

TEST(GeneratorsTest, RandomGraphDiffersAcrossSeeds) {
  SymbolTable s1, s2;
  Database d1, d2;
  GenRandomGraph(&s1, &d1, "e", 20, 40, 7);
  GenRandomGraph(&s2, &d2, "e", 20, 40, 8);
  EXPECT_NE(d1.Find(s1.Lookup("e"))->ToSortedString(s1),
            d2.Find(s2.Lookup("e"))->ToSortedString(s2));
}

TEST(GeneratorsTest, RandomGraphNoSelfLoops) {
  SymbolTable symbols;
  Database db;
  GenRandomGraph(&symbols, &db, "e", 10, 30, 3);
  const Relation* rel = db.Find(symbols.Lookup("e"));
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_NE(rel->row(i)[0], rel->row(i)[1]);
  }
}

TEST(GeneratorsTest, CycleWrapsAround) {
  SymbolTable symbols;
  Database db;
  EXPECT_EQ(GenCycle(&symbols, &db, "e", 5), 5u);
  const Relation* rel = db.Find(symbols.Lookup("e"));
  EXPECT_TRUE(rel->Contains(
      Tuple{symbols.Lookup("n4"), symbols.Lookup("n0")}));
}

TEST(GeneratorsTest, GridEdgeCount) {
  SymbolTable symbols;
  Database db;
  // 3x3 grid: 2*3 horizontal + 3*2 vertical = 12.
  EXPECT_EQ(GenGrid(&symbols, &db, "e", 3, 3), 12u);
}

TEST(GeneratorsTest, FlatAssignsParents) {
  SymbolTable symbols;
  Database db;
  size_t n = GenFlat(&symbols, &db, "par", 50, 5, 11);
  EXPECT_EQ(n, 50u);
  const Relation* rel = db.Find(symbols.Lookup("par"));
  EXPECT_EQ(rel->size(), 50u);
}

}  // namespace
}  // namespace pdatalog
