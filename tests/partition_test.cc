#include "core/partition.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

// Builds an Example-3-style bundle (both par occurrences fragmented).
RewriteBundle MakeFragmentingBundle(SymbolTable* symbols, int P) {
  Program program = ParseOrDie(testing_util::kAncestorProgram, symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  EXPECT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  options.v_r = {symbols->Intern("Z")};
  options.v_e = {symbols->Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(P);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, P, options);
  EXPECT_TRUE(bundle.ok());
  return std::move(*bundle);
}

TEST(PartitionTest, FragmentsPartitionTheRelation) {
  SymbolTable symbols;
  RewriteBundle bundle = MakeFragmentingBundle(&symbols, 4);
  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 40, 120, 5);
  size_t total = edb.Find(symbols.Lookup("par"))->size();

  StatusOr<PartitionResult> result = PartitionBases(bundle, edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Two fragmented occurrences: rows split across workers twice.
  uint64_t frag_rows = 0;
  for (uint64_t n : result->fragment_rows) frag_rows += n;
  EXPECT_EQ(frag_rows, 2 * total);
  EXPECT_EQ(result->replicated_rows, 0u);

  // Per occurrence, fragments are disjoint and cover the relation.
  for (int occ = 0; occ < 2; ++occ) {
    size_t covered = 0;
    for (int w = 0; w < 4; ++w) {
      covered += result->fragments[w].at(occ)->size();
    }
    EXPECT_EQ(covered, total) << "occurrence " << occ;
  }
}

TEST(PartitionTest, FragmentRoutingMatchesFunction) {
  SymbolTable symbols;
  RewriteBundle bundle = MakeFragmentingBundle(&symbols, 3);
  Database edb;
  GenChain(&symbols, &edb, "par", 20);
  StatusOr<PartitionResult> result = PartitionBases(bundle, edb);
  ASSERT_TRUE(result.ok());

  // Occurrence 1 is the recursive rule's par(X, Z), fragmented on
  // column 1 with the rule's function.
  const BaseOccurrence& occ = bundle.base_occurrences[1];
  ASSERT_EQ(occ.access, BaseOccurrence::Access::kFragment);
  for (int w = 0; w < 3; ++w) {
    const Relation& frag = *result->fragments[w].at(1);
    for (size_t row = 0; row < frag.size(); ++row) {
      Value key = frag.row(row)[occ.positions[0]];
      EXPECT_EQ(bundle.registry->Evaluate(occ.function, &key, 1), w);
    }
  }
}

TEST(PartitionTest, ReplicatedOccurrencesGetNoFragments) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;  // Example 1: rec par replicated
  options.v_r = {symbols.Intern("Y")};
  options.v_e = {symbols.Intern("Y")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  GenChain(&symbols, &edb, "par", 10);
  StatusOr<PartitionResult> result = PartitionBases(*bundle, edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replicated_rows, 10u);
  // Occurrence 1 (recursive par) has no fragment entries.
  for (int w = 0; w < 2; ++w) {
    EXPECT_EQ(result->fragments[w].count(1), 0u);
  }
}

TEST(PartitionTest, ArbitraryFragmentationRoundTrips) {
  SymbolTable symbols;
  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 30, 80, 9);
  const Relation& par = *edb.Find(symbols.Lookup("par"));

  DiscriminatingFunction fn = MakeArbitraryFragmentation(par, 4, 123);
  // Every tuple maps into range, deterministically.
  for (size_t row = 0; row < par.size(); ++row) {
    const Tuple& t = par.row(row);
    int d1 = fn.Evaluate(t.data(), t.arity());
    int d2 = fn.Evaluate(t.data(), t.arity());
    EXPECT_EQ(d1, d2);
    EXPECT_GE(d1, 0);
    EXPECT_LT(d1, 4);
  }
  EXPECT_EQ(fn.table.size(), par.size());
}

TEST(PartitionTest, MissingBaseRelationYieldsEmptyFragments) {
  SymbolTable symbols;
  RewriteBundle bundle = MakeFragmentingBundle(&symbols, 2);
  Database edb;  // no par facts at all
  StatusOr<PartitionResult> result = PartitionBases(bundle, edb);
  ASSERT_TRUE(result.ok());
  for (int w = 0; w < 2; ++w) {
    EXPECT_EQ(result->fragments[w].at(0)->size(), 0u);
    EXPECT_EQ(result->fragments[w].at(1)->size(), 0u);
  }
}

}  // namespace
}  // namespace pdatalog
