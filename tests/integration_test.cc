// End-to-end scenarios across modules: text program -> parse ->
// analyze -> rewrite -> parallel run -> pooled output, at a scale that
// exercises many rounds and real thread interleavings.
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

TEST(IntegrationTest, LargeChainManyRounds) {
  // A 300-edge chain forces ~300 asynchronous rounds through the
  // channels — a stress test for termination detection.
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 300);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->pooled_tuples, 300u * 301u / 2u);
}

TEST(IntegrationTest, DenseGraphLargeClosure) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 120, 360, 99);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 8);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
}

TEST(IntegrationTest, ManyProcessorsMoreThanWork) {
  // More processors than tuples: most workers stay idle, termination
  // must still fire.
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 3);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 16);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pooled_tuples, 6u);
}

TEST(IntegrationTest, RepeatedRunsIndependent) {
  // Bundles and engines carry no hidden global state: running two
  // different schemes back to back gives self-consistent results.
  auto setup = MakeAncestorSetup();
  GenTree(&setup->symbols, &setup->edb, "par", 2, 7);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  for (int round = 0; round < 2; ++round) {
    for (AncestorScheme scheme :
         {AncestorScheme::kExample1, AncestorScheme::kExample3}) {
      RewriteBundle bundle = MakeAncestorBundle(setup.get(), scheme, 4);
      StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
                expected);
    }
  }
}

TEST(IntegrationTest, SameGenerationEndToEndFromText) {
  SymbolTable symbols;
  const char* source =
      "% same generation over a small family tree\n"
      "up(c1, p1).  up(c2, p1).  up(c3, p2).\n"
      "up(g1, c1).  up(g2, c2).  up(g3, c3).\n"
      "flat(p1, p2).\n"
      "down(p1, c1). down(p1, c2). down(p2, c3).\n"
      "down(c1, g1). down(c2, g2). down(c3, g3).\n"
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
  Program program = testing_util::ParseOrDie(source, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);

  Database seq_db;
  ASSERT_TRUE(seq_db.LoadFacts(program).ok());
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &stats).ok());

  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(3);
  specs[1].vars = {symbols.Intern("V")};
  specs[1].h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok());

  Database edb;
  ASSERT_TRUE(edb.LoadFacts(program).ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::string expected =
      seq_db.Find(symbols.Lookup("sg"))->ToSortedString(symbols);
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("sg"))->ToSortedString(symbols),
      expected);
  // sg(c1, c3) should hold (same generation via p1 -- p2).
  EXPECT_NE(expected.find("(c1, c3)"), std::string::npos);
}

TEST(IntegrationTest, PrintedLocalProgramsMatchPaperShape) {
  // The whole Q_i program for the ancestor Example 3 rewrite, printed.
  auto setup = MakeAncestorSetup();
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  EXPECT_EQ(ToString(bundle.per_processor[0]),
            "anc_out(X, Y) :- par(X, Y), h'(X) = 0.\n"
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 0.\n");
  EXPECT_EQ(ToString(bundle.per_processor[1]),
            "anc_out(X, Y) :- par(X, Y), h'(X) = 1.\n"
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 1.\n");
}

TEST(IntegrationTest, WorkDistributesAcrossProcessors) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 100, 260, 77);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
  ASSERT_TRUE(result.ok());
  // Hash partitioning should give every worker a nontrivial share.
  for (const WorkerStats& w : result->workers) {
    EXPECT_GT(w.firings, result->total_firings / 20);
  }
}

TEST(IntegrationTest, ZeroArityPredicateParallel) {
  SymbolTable symbols;
  const char* source =
      "go.\n"
      "step(n0, n1). step(n1, n2).\n"
      "reach(X, Y) :- step(X, Y), go.\n"
      "reach(X, Y) :- step(X, Z), reach(Z, Y).\n";
  Program program = testing_util::ParseOrDie(source, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(2);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 2, specs);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  ASSERT_TRUE(edb.LoadFacts(program).ok());
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.Find(symbols.Lookup("reach"))->size(), 3u);
}

}  // namespace
}  // namespace pdatalog
