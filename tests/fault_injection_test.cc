// Fault-injection suite: the paper assumes reliable channels; these
// tests violate that assumption on purpose and check the two promises
// the runtime makes about it:
//   1. with retransmit enabled, the parallel fixpoint equals the serial
//      semi-naive result under every injected fault mode;
//   2. with retransmit disabled, injected drops/duplicates/corruption
//      surface as a non-OK Status from RunParallel — never a silent
//      wrong answer.
#include "core/fault.h"

#include <string>
#include <vector>

#include "core/wire.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"
#include "workload/programs.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::ParseOrDie;
using testing_util::SequentialAncestor;
using testing_util::ValidateOrDie;

// ---------------------------------------------------------------------
// FaultInjector unit behavior
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameChannelSameDecisions) {
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.2;
  spec.reorder = 0.2;
  spec.delay = 0.2;
  FaultInjector a(spec, 1, 2);
  FaultInjector b(spec, 1, 2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "decision " << i;
  }
}

TEST(FaultInjectorTest, DifferentChannelsDifferentStreams) {
  FaultSpec spec;
  spec.drop = 0.5;
  FaultInjector a(spec, 0, 1);
  FaultInjector b(spec, 1, 0);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ZeroSpecAlwaysDelivers) {
  FaultInjector injector(FaultSpec{}, 0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Next(), FaultInjector::Action::kDeliver);
  }
}

// ---------------------------------------------------------------------
// Channel-level injection semantics (probability-1 specs make every
// action deterministic without relying on the seed).
// ---------------------------------------------------------------------

TEST(FaultChannelTest, DropLosesEveryMessage) {
  Channel channel;
  FaultSpec spec;
  spec.drop = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  for (Value i = 0; i < 5; ++i) channel.Send(Message{1, Tuple{i, i}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 0u);
  EXPECT_FALSE(channel.HasPending());
  // Logical sends still count (the termination detector must see the
  // imbalance a loss creates).
  EXPECT_EQ(channel.total_sent(), 5u);
  EXPECT_EQ(channel.fault_counters().dropped, 5u);
}

TEST(FaultChannelTest, DuplicateDeliversTwiceWithoutRetransmit) {
  Channel channel;
  FaultSpec spec;
  spec.duplicate = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.Send(Message{1, Tuple{7, 8}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 2u);
  EXPECT_EQ(channel.fault_counters().duplicated, 1u);
}

TEST(FaultChannelTest, ReliableChannelDiscardsDuplicates) {
  Channel channel;
  FaultSpec spec;
  spec.duplicate = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  channel.Send(Message{1, Tuple{7, 8}});
  channel.Send(Message{1, Tuple{9, 10}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 2u);  // one logical delivery each
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(channel.fault_counters().duplicates_discarded, 2u);
}

TEST(FaultChannelTest, ReorderFlipsDeliveryOrder) {
  Channel channel;
  FaultSpec spec;
  spec.reorder = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.Send(Message{1, Tuple{1, 0}});
  channel.Send(Message{1, Tuple{2, 0}});
  channel.Send(Message{1, Tuple{3, 0}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  // Every message jumped the queue, so arrival order is reversed.
  EXPECT_EQ(out[0].tuple[0], 3u);
  EXPECT_EQ(out[2].tuple[0], 1u);
}

TEST(FaultChannelTest, ReliableChannelReordersBackInOrder) {
  Channel channel;
  FaultSpec spec;
  spec.reorder = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  channel.Send(Message{1, Tuple{1, 0}});
  channel.Send(Message{1, Tuple{2, 0}});
  channel.Send(Message{1, Tuple{3, 0}});
  std::vector<Message> out;
  size_t delivered = channel.Drain(&out);
  while (delivered < 3) {
    channel.RetransmitUnacked();
    delivered += channel.Drain(&out);
  }
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].tuple[0], static_cast<Value>(i + 1));
  }
}

TEST(FaultChannelTest, DelayedFrameStaysPendingThenMatures) {
  Channel channel;
  FaultSpec spec;
  spec.delay = 1.0;
  spec.delay_polls = 2;
  channel.ConfigureFaults(spec, 0, 1);
  channel.Send(Message{1, Tuple{4, 5}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 0u);
  // A delayed frame is in transit, not lost: the channel must still
  // report pending so the receiver keeps polling instead of declaring
  // quiescence.
  EXPECT_TRUE(channel.HasPending());
  EXPECT_EQ(channel.Drain(&out), 1u);  // matured after delay_polls drains
  EXPECT_FALSE(channel.HasPending());
  EXPECT_EQ(channel.fault_counters().delayed, 1u);
}

TEST(FaultChannelTest, CorruptByteModeBreaksChecksum) {
  Channel channel;
  FaultSpec spec;
  spec.corrupt = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(Message{5, Tuple{1, 2}}, &bytes).ok());
  channel.SendBytes(bytes);
  std::vector<std::vector<uint8_t>> out;
  ASSERT_EQ(channel.DrainBytes(&out), 1u);
  EXPECT_FALSE(FrameChecksumOk(out[0].data(), out[0].size()));
  EXPECT_EQ(channel.fault_counters().corrupted, 1u);
}

TEST(FaultChannelTest, ReliableChannelRecoversCorruptViaRetransmit) {
  Channel channel;
  FaultSpec spec;
  spec.corrupt = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeMessage(Message{5, Tuple{1, 2}}, &bytes).ok());
  channel.SendBytes(bytes);
  std::vector<std::vector<uint8_t>> out;
  // The receiver discards the corrupt frame without acknowledging it...
  EXPECT_EQ(channel.DrainBytes(&out), 0u);
  EXPECT_EQ(channel.fault_counters().corrupt_discarded, 1u);
  // ...and the sender's retransmission (which bypasses injection)
  // delivers the intact copy.
  EXPECT_EQ(channel.RetransmitUnacked(), 1u);
  ASSERT_EQ(channel.DrainBytes(&out), 1u);
  EXPECT_TRUE(FrameChecksumOk(out[0].data(), out[0].size()));
}

TEST(FaultChannelTest, RetransmitStopsOnceAcknowledged) {
  Channel channel;
  FaultSpec spec;
  spec.drop = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  channel.Send(Message{1, Tuple{1, 2}});
  std::vector<Message> out;
  EXPECT_EQ(channel.Drain(&out), 0u);  // first transmission dropped
  EXPECT_EQ(channel.RetransmitUnacked(), 1u);
  EXPECT_EQ(channel.Drain(&out), 1u);  // recovered
  // Delivered frames are acknowledged; nothing left to resend.
  EXPECT_EQ(channel.RetransmitUnacked(), 0u);
  EXPECT_EQ(channel.fault_counters().retransmitted, 1u);
}

// ---------------------------------------------------------------------
// End-to-end fault matrix: ancestor (Example 3 scheme) and points_to
// (general scheme) under every fault mode, against the serial result.
// ---------------------------------------------------------------------

struct FaultMode {
  const char* name;
  FaultSpec spec;
};

std::vector<FaultMode> FaultModes() {
  std::vector<FaultMode> modes;
  FaultSpec drop;
  drop.drop = 0.3;
  modes.push_back({"drop", drop});
  FaultSpec duplicate;
  duplicate.duplicate = 0.3;
  modes.push_back({"duplicate", duplicate});
  FaultSpec reorder;
  reorder.reorder = 0.5;
  modes.push_back({"reorder", reorder});
  FaultSpec corrupt;
  corrupt.corrupt = 0.25;
  modes.push_back({"corrupt", corrupt});
  FaultSpec delay;
  delay.delay = 0.4;
  delay.delay_polls = 2;
  modes.push_back({"delay", delay});
  FaultSpec mixed;
  mixed.drop = 0.1;
  mixed.duplicate = 0.1;
  mixed.reorder = 0.1;
  mixed.corrupt = 0.1;
  mixed.delay = 0.1;
  modes.push_back({"mixed", mixed});
  return modes;
}

class FaultMatrixTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(RoundRobinAndThreads, FaultMatrixTest,
                         ::testing::Values(false, true));

TEST_P(FaultMatrixTest, AncestorExactUnderEveryFaultModeWithRetransmit) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  std::string expected = SequentialAncestor(setup.get(), nullptr);

  for (const FaultMode& mode : FaultModes()) {
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
    ParallelOptions options;
    options.use_threads = GetParam();
    options.serialize_messages = true;  // corruption needs wire bytes
    options.faults = mode.spec;
    options.retransmit = true;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok())
        << mode.name << ": " << result.status().ToString();
    EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected)
        << mode.name;
    EXPECT_TRUE(result->faults.any()) << mode.name << ": injector idle";
  }
}

// Synthetic points-to input: assignments and heap operations over
// `vars` variables and `objs` abstract objects.
void GenPointsToFacts(SymbolTable* symbols, Database* db, int vars,
                      int objs, int facts, uint64_t seed) {
  SplitMix64 rng(seed);
  Relation& new_rel = db->GetOrCreate(symbols->Intern("new"), 2);
  Relation& assign = db->GetOrCreate(symbols->Intern("assign"), 2);
  Relation& load = db->GetOrCreate(symbols->Intern("load"), 2);
  Relation& store = db->GetOrCreate(symbols->Intern("store"), 2);
  auto var = [&](uint64_t i) {
    return symbols->Intern("v" + std::to_string(i));
  };
  auto obj = [&](uint64_t i) {
    return symbols->Intern("o" + std::to_string(i));
  };
  for (int i = 0; i < facts; ++i) {
    new_rel.Insert(Tuple{var(rng.NextBelow(vars)), obj(rng.NextBelow(objs))});
    assign.Insert(Tuple{var(rng.NextBelow(vars)), var(rng.NextBelow(vars))});
    load.Insert(Tuple{var(rng.NextBelow(vars)), var(rng.NextBelow(vars))});
    store.Insert(Tuple{var(rng.NextBelow(vars)), var(rng.NextBelow(vars))});
  }
}

TEST_P(FaultMatrixTest, PointsToExactUnderEveryFaultModeWithRetransmit) {
  SymbolTable symbols;
  StatusOr<NamedProgram> named = FindProgram("points_to");
  ASSERT_TRUE(named.ok());
  Program program = ParseOrDie(named->source, &symbols);
  ProgramInfo info = ValidateOrDie(program);

  // Serial reference.
  Database seq_db;
  GenPointsToFacts(&symbols, &seq_db, 12, 6, 25, 11);
  EvalStats seq;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq).ok());
  std::string expected_pt =
      seq_db.Find(symbols.Lookup("pt"))->ToSortedString(symbols);
  std::string expected_heap =
      seq_db.Find(symbols.Lookup("heap_pt"))->ToSortedString(symbols);

  // General-scheme rewrite: partition every rule on its object column.
  Symbol o = symbols.Intern("O");
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (GeneralRuleSpec& spec : specs) {
    spec.vars = {o};
    spec.h = DiscriminatingFunction::UniformHash(3);
  }
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 3, specs);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  for (const FaultMode& mode : FaultModes()) {
    Database edb;
    GenPointsToFacts(&symbols, &edb, 12, 6, 25, 11);
    ParallelOptions options;
    options.use_threads = GetParam();
    options.serialize_messages = true;
    options.faults = mode.spec;
    options.retransmit = true;
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
    ASSERT_TRUE(result.ok())
        << mode.name << ": " << result.status().ToString();
    EXPECT_EQ(
        result->output.Find(symbols.Lookup("pt"))->ToSortedString(symbols),
        expected_pt)
        << mode.name;
    EXPECT_EQ(result->output.Find(symbols.Lookup("heap_pt"))
                  ->ToSortedString(symbols),
              expected_heap)
        << mode.name;
  }
}

// ---------------------------------------------------------------------
// Without retransmit, faults are *detected*, not repaired: RunParallel
// must return a non-OK Status — never a silently wrong fixpoint.
// ---------------------------------------------------------------------

TEST_P(FaultMatrixTest, DropsWithoutRetransmitFailTheRun) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.faults.drop = 0.3;
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("channel fault"),
            std::string::npos)
      << result.status().ToString();
}

TEST_P(FaultMatrixTest, DuplicatesWithoutRetransmitFailTheRun) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.faults.duplicate = 0.4;
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  // Duplicated deliveries unbalance the counters the other way; the
  // detector reports them just like losses. (The fixpoint itself would
  // survive duplicates — t_in relations are sets — but an undetected
  // counter imbalance would livelock the threaded run.)
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("channel fault"),
            std::string::npos)
      << result.status().ToString();
}

TEST_P(FaultMatrixTest, CorruptionWithoutRetransmitFailTheRun) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.serialize_messages = true;
  options.faults.corrupt = 0.3;
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  // A corrupted frame fails its checksum at decode; the worker's Status
  // propagates out of RunParallel (the tentpole path: DrainChannels ->
  // Step -> RunLoop -> RunParallel).
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad frame"), std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------
// Termination detection under injected delays: quiescence must not be
// declared while frames are still in transit.
// ---------------------------------------------------------------------

TEST_P(FaultMatrixTest, DelaysAloneNeverCauseFalseQuiescence) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 30, 60, 9);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  ParallelOptions options;
  options.use_threads = GetParam();
  options.faults.delay = 0.6;
  options.faults.delay_polls = 4;
  // No retransmit: delayed frames arrive late but are never lost, so
  // the run must still terminate with the exact answer. If the detector
  // ever declared quiescence with a frame still delayed, tuples would
  // be missing from the output.
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_GT(result->faults.delayed, 0u);
}

// ---------------------------------------------------------------------
// Options plumbing and validation.
// ---------------------------------------------------------------------

TEST(FaultOptionsTest, RetransmitWithoutFaultsIsExact) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 3);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
  ParallelOptions options;
  options.retransmit = true;
  StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_EQ(result->faults.dropped, 0u);
  EXPECT_EQ(result->faults.corrupted, 0u);
}

TEST(FaultOptionsTest, InvalidSpecsAreRejected) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);

  ParallelOptions negative;
  negative.faults.drop = -0.1;
  EXPECT_FALSE(RunParallel(bundle, &setup->edb, negative).ok());

  ParallelOptions oversum;
  oversum.faults.drop = 0.7;
  oversum.faults.delay = 0.7;
  EXPECT_FALSE(RunParallel(bundle, &setup->edb, oversum).ok());

  ParallelOptions corrupt_shared;
  corrupt_shared.faults.corrupt = 0.5;  // but serialize_messages = false
  EXPECT_FALSE(RunParallel(bundle, &setup->edb, corrupt_shared).ok());

  ParallelOptions bad_delay;
  bad_delay.faults.delay = 0.5;
  bad_delay.faults.delay_polls = 0;
  EXPECT_FALSE(RunParallel(bundle, &setup->edb, bad_delay).ok());
}

TEST(FaultOptionsTest, DeterministicModeReproducesFaultCounters) {
  // Round-robin scheduling + seeded per-channel injectors: two
  // identical runs inject exactly the same faults.
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 50, 5);
  FaultCounters first;
  for (int run = 0; run < 2; ++run) {
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
    ParallelOptions options;
    options.use_threads = false;
    options.serialize_messages = true;
    options.faults.drop = 0.2;
    options.faults.corrupt = 0.2;
    options.retransmit = true;
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (run == 0) {
      first = result->faults;
      EXPECT_TRUE(first.any());
    } else {
      EXPECT_EQ(result->faults.dropped, first.dropped);
      EXPECT_EQ(result->faults.corrupted, first.corrupted);
      EXPECT_EQ(result->faults.retransmitted, first.retransmitted);
    }
  }
}

}  // namespace
}  // namespace pdatalog
