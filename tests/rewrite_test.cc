#include "core/rewrite.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

struct AncestorFixture {
  SymbolTable symbols;
  Program program;
  ProgramInfo info;
  LinearSirup sirup;

  AncestorFixture() {
    program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
    info = ValidateOrDie(program);
    StatusOr<LinearSirup> s = ExtractLinearSirup(program, info);
    EXPECT_TRUE(s.ok());
    sirup = std::move(*s);
  }

  Symbol Var(const char* name) { return symbols.Intern(name); }
};

TEST(RewriteLinearTest, Example1Structure) {
  // Paper Section 4.1: v(r) = v(e) = <Y>.
  AncestorFixture fx;
  LinearSchemeOptions options;
  options.v_r = {fx.Var("Y")};
  options.v_e = {fx.Var("Y")};
  options.h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 3, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  EXPECT_EQ(bundle->num_processors, 3);
  EXPECT_TRUE(bundle->non_redundant);
  ASSERT_EQ(bundle->per_processor.size(), 3u);

  // Processor 1's program printed exactly like the paper's Q_i.
  const Program& q1 = bundle->per_processor[1];
  ASSERT_EQ(q1.rules.size(), 2u);
  EXPECT_EQ(ToString(q1.rules[0], fx.symbols),
            "anc_out(X, Y) :- par(X, Y), h'(Y) = 1.");
  EXPECT_EQ(ToString(q1.rules[1], fx.symbols),
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Y) = 1.");

  // Y does not occur in par(X, Z): par must be shared (Section 4.1), and
  // so must the exit-rule occurrence (its sequence is also <Y>)... the
  // exit rule par(X, Y) does contain Y, so it fragments.
  ASSERT_EQ(bundle->base_occurrences.size(), 2u);
  EXPECT_EQ(bundle->base_occurrences[0].access,
            BaseOccurrence::Access::kFragment);  // exit par(X, Y) on Y
  EXPECT_EQ(bundle->base_occurrences[1].access,
            BaseOccurrence::Access::kReplicated);  // rec par(X, Z)

  // One send spec per processor (one recursive atom), fully determined:
  // Y occurs in anc(Z, Y) at position 1.
  ASSERT_EQ(bundle->sends[0].size(), 1u);
  const SendSpec& send = bundle->sends[0][0];
  EXPECT_TRUE(send.determined);
  EXPECT_EQ(send.var_positions, (std::vector<int>{1}));
  EXPECT_EQ(send.predicate, fx.symbols.Lookup("anc"));
}

TEST(RewriteLinearTest, Example3Structure) {
  // Paper Section 4.3: v(e) = <X>, v(r) = <Z>.
  AncestorFixture fx;
  LinearSchemeOptions options;
  options.v_r = {fx.Var("Z")};
  options.v_e = {fx.Var("X")};
  options.h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 4, options);
  ASSERT_TRUE(bundle.ok());

  const Program& q2 = bundle->per_processor[2];
  EXPECT_EQ(ToString(q2.rules[0], fx.symbols),
            "anc_out(X, Y) :- par(X, Y), h'(X) = 2.");
  EXPECT_EQ(ToString(q2.rules[1], fx.symbols),
            "anc_out(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 2.");

  // Both par occurrences fragment: exit on column 0 (X), rec on column 1
  // (Z). Disjoint access, as Section 4.3 observes.
  ASSERT_EQ(bundle->base_occurrences.size(), 2u);
  EXPECT_EQ(bundle->base_occurrences[0].access,
            BaseOccurrence::Access::kFragment);
  EXPECT_EQ(bundle->base_occurrences[0].positions, (std::vector<int>{0}));
  EXPECT_EQ(bundle->base_occurrences[1].access,
            BaseOccurrence::Access::kFragment);
  EXPECT_EQ(bundle->base_occurrences[1].positions, (std::vector<int>{1}));

  // Sending is determined: Z is position 0 of anc(Z, Y).
  EXPECT_TRUE(bundle->sends[0][0].determined);
  EXPECT_EQ(bundle->sends[0][0].var_positions, (std::vector<int>{0}));
}

TEST(RewriteLinearTest, Example2BroadcastWhenUndetermined) {
  // Paper Section 4.2: v(r) = <X, Z>; X does not occur in anc(Z, Y), so
  // the sender cannot evaluate h and must broadcast.
  AncestorFixture fx;
  LinearSchemeOptions options;
  options.v_r = {fx.Var("X"), fx.Var("Z")};
  options.v_e = {fx.Var("X"), fx.Var("Y")};
  options.h = DiscriminatingFunction::UniformHash(3);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 3, options);
  ASSERT_TRUE(bundle.ok());
  EXPECT_FALSE(bundle->sends[0][0].determined);
}

TEST(RewriteLinearTest, RejectsSequenceVarNotInRule) {
  AncestorFixture fx;
  LinearSchemeOptions options;
  options.v_r = {fx.Var("W")};  // not in the recursive rule
  options.v_e = {fx.Var("Y")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 2, options);
  EXPECT_FALSE(bundle.ok());
}

TEST(RewriteLinearTest, DecoratedNamesAvoidCollisions) {
  SymbolTable symbols;
  // A user predicate already named anc_out.
  Program program = ParseOrDie(
      "anc(X, Y) :- anc_out(X, Y).\n"
      "anc(X, Y) :- anc_out(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());
  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Y")};
  options.v_e = {symbols.Intern("Y")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 2, options);
  ASSERT_TRUE(bundle.ok());
  Symbol anc = symbols.Lookup("anc");
  EXPECT_NE(bundle->out_name.at(anc), symbols.Lookup("anc_out"));
  EXPECT_EQ(symbols.Name(bundle->out_name.at(anc)), "anc_out_");
}

TEST(RewriteGeneralTest, Example8NonLinearAncestor) {
  // Paper Section 7, Example 8.
  SymbolTable symbols;
  Program program = ParseOrDie(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info = ValidateOrDie(program);
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(2);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(2);

  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 2, specs);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_TRUE(bundle->non_redundant);

  const Program& t0 = bundle->per_processor[0];
  EXPECT_EQ(ToString(t0.rules[0], symbols),
            "anc_out(X, Y) :- par(X, Y), h1(Y) = 0.");
  EXPECT_EQ(ToString(t0.rules[1], symbols),
            "anc_out(X, Y) :- anc_in(X, Z), anc_in(Z, Y), h2(Z) = 0.");

  // Two send specs (one per recursive atom of rule 2): anc(X, Z) routes
  // on column 1, anc(Z, Y) on column 0.
  ASSERT_EQ(bundle->sends[0].size(), 2u);
  EXPECT_EQ(bundle->sends[0][0].var_positions, (std::vector<int>{1}));
  EXPECT_EQ(bundle->sends[0][1].var_positions, (std::vector<int>{0}));
}

TEST(RewriteGeneralTest, SpecCountMustMatchRules) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info = ValidateOrDie(program);
  EXPECT_FALSE(RewriteGeneral(program, info, 2, {}).ok());
}

TEST(RewriteTradeoffTest, ProcessingRulesUnconstrained) {
  AncestorFixture fx;
  TradeoffOptions options;
  options.v_r = {fx.Var("Z")};
  options.v_e = {fx.Var("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(2);
  options.h_i = {DiscriminatingFunction::Constant(0),
                 DiscriminatingFunction::Constant(1)};
  StatusOr<RewriteBundle> bundle =
      RewriteTradeoff(fx.program, fx.info, fx.sirup, 2, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_FALSE(bundle->non_redundant);

  // Init rule keeps the h' constraint; processing rule has none.
  const Program& r0 = bundle->per_processor[0];
  EXPECT_EQ(r0.rules[0].constraints.size(), 1u);
  EXPECT_TRUE(r0.rules[1].constraints.empty());

  // Each processor routes with its own function.
  EXPECT_NE(bundle->sends[0][0].function, bundle->sends[1][0].function);
}

TEST(RewriteTradeoffTest, RequiresVrInY) {
  AncestorFixture fx;
  TradeoffOptions options;
  options.v_r = {fx.Var("X")};  // X not in anc(Z, Y)
  options.v_e = {fx.Var("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(2);
  options.h_i = {DiscriminatingFunction::Constant(0),
                 DiscriminatingFunction::Constant(1)};
  EXPECT_FALSE(
      RewriteTradeoff(fx.program, fx.info, fx.sirup, 2, options).ok());
}

TEST(RewriteTradeoffTest, RequiresOneFunctionPerProcessor) {
  AncestorFixture fx;
  TradeoffOptions options;
  options.v_r = {fx.Var("Z")};
  options.v_e = {fx.Var("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(2);
  options.h_i = {DiscriminatingFunction::Constant(0)};
  EXPECT_FALSE(
      RewriteTradeoff(fx.program, fx.info, fx.sirup, 2, options).ok());
}

TEST(RewriteLinearTest, LocalProgramsValidate) {
  AncestorFixture fx;
  LinearSchemeOptions options;
  options.v_r = {fx.Var("Z")};
  options.v_e = {fx.Var("X")};
  options.h = DiscriminatingFunction::UniformHash(2);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(fx.program, fx.info, fx.sirup, 2, options);
  ASSERT_TRUE(bundle.ok());
  for (const Program& local : bundle->per_processor) {
    ProgramInfo local_info;
    EXPECT_TRUE(Validate(local, &local_info).ok());
  }
}

}  // namespace
}  // namespace pdatalog
