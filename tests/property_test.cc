// Property-based suites: randomized data, processor counts and scheme
// choices, with the paper's theorems as the checked invariants:
//   * Theorems 1/4/5: the parallel least model equals the sequential one.
//   * Theorems 2/6:   parallel firings never exceed sequential firings.
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

struct PropertyCase {
  uint64_t seed;
  int processors;
  AncestorScheme scheme;
};

class AncestorPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (int P : {2, 4, 7}) {
      for (AncestorScheme scheme :
           {AncestorScheme::kExample1, AncestorScheme::kExample2,
            AncestorScheme::kExample3}) {
        cases.push_back({seed, P, scheme});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AncestorPropertyTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      const PropertyCase& c = info.param;
      return "seed" + std::to_string(c.seed) + "p" +
             std::to_string(c.processors) + "scheme" +
             std::to_string(static_cast<int>(c.scheme));
    });

TEST_P(AncestorPropertyTest, ParallelEqualsSequentialAndNonRedundant) {
  const PropertyCase& c = GetParam();
  // Exercise the message-passing (serialized) channel realization on a
  // third of the sweep.
  ParallelOptions popts;
  popts.serialize_messages = (c.seed % 3 == 0);
  auto setup = MakeAncestorSetup();
  // Mix of topologies per seed.
  switch (c.seed % 3) {
    case 0:
      GenRandomGraph(&setup->symbols, &setup->edb, "par", 25, 45, c.seed);
      break;
    case 1:
      GenTree(&setup->symbols, &setup->edb, "par", 2, 5);
      break;
    default:
      GenGrid(&setup->symbols, &setup->edb, "par", 4, 4);
      break;
  }
  EvalStats seq_stats;
  std::string expected = SequentialAncestor(setup.get(), &seq_stats);

  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), c.scheme, c.processors, c.seed);
  StatusOr<ParallelResult> result =
      RunParallel(bundle, &setup->edb, popts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()), expected);
  EXPECT_LE(result->total_firings, seq_stats.firings);  // Theorem 2
  // For the Section 3 scheme the partition is exact.
  EXPECT_EQ(result->total_firings, seq_stats.firings);
}

// Same-generation with the general scheme, sweeping seeds.
class SameGenPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SameGenPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(SameGenPropertyTest, GeneralSchemeMatchesSequential) {
  uint64_t seed = GetParam();
  SymbolTable symbols;
  const char* source =
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
  Program program = testing_util::ParseOrDie(source, &symbols);
  ProgramInfo info = testing_util::ValidateOrDie(program);

  auto fill = [&](Database* db) {
    GenFlat(&symbols, db, "up", 40, 12, seed);
    GenFlat(&symbols, db, "flat", 15, 12, seed + 100);
    // down = inverted up-style edges.
    SplitMix64 rng(seed + 200);
    Relation& down = db->GetOrCreate(symbols.Intern("down"), 2);
    for (int i = 0; i < 40; ++i) {
      Value parent = symbols.Intern("p" + std::to_string(rng.NextBelow(12)));
      Value child = symbols.Intern("c" + std::to_string(rng.NextBelow(40)));
      down.Insert(Tuple{parent, child});
    }
  };

  Database seq_db;
  fill(&seq_db);
  EvalStats seq_stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &seq_stats).ok());

  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(4, seed);
  specs[1].vars = {symbols.Intern("V")};
  specs[1].h = DiscriminatingFunction::UniformHash(4, seed);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(program, info, 4, specs);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  fill(&edb);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(
      result->output.Find(symbols.Lookup("sg"))->ToSortedString(symbols),
      seq_db.Find(symbols.Lookup("sg"))->ToSortedString(symbols));
  EXPECT_LE(result->total_firings, seq_stats.firings);
}

// The trade-off spectrum, swept over rho and seeds: output invariant,
// communication monotone non-increasing in rho.
class TradeoffSweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, TradeoffSweepTest,
                         ::testing::Combine(::testing::Values(7u, 8u),
                                            ::testing::Values(2, 4)));

TEST_P(TradeoffSweepTest, OutputInvariantAcrossRho) {
  auto [seed, P] = GetParam();
  std::string reference;
  uint64_t last_cross = ~0ull;
  for (double rho : {0.0, 0.3, 0.7, 1.0}) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 24, 48, seed);
    TradeoffOptions options;
    options.v_r = {setup->symbols.Intern("Z")};
    options.v_e = {setup->symbols.Intern("X")};
    options.h_prime = DiscriminatingFunction::UniformHash(P, seed);
    for (int i = 0; i < P; ++i) {
      options.h_i.push_back(
          DiscriminatingFunction::KeepOrHash(i, rho, P, seed));
    }
    StatusOr<RewriteBundle> bundle = RewriteTradeoff(
        setup->program, setup->info, setup->sirup, P, options);
    ASSERT_TRUE(bundle.ok());
    StatusOr<ParallelResult> result = RunParallel(*bundle, &setup->edb);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    std::string output = DumpOutput(*result, setup->symbols, setup->anc());
    if (reference.empty()) {
      reference = output;
    } else {
      EXPECT_EQ(output, reference) << "rho=" << rho;
    }
    EXPECT_LE(result->cross_tuples, last_cross) << "rho=" << rho;
    last_cross = result->cross_tuples;
  }
  EXPECT_EQ(last_cross, 0u);  // rho = 1 end of the spectrum
}

// Determinism: the engine must produce identical stats across repeated
// runs in round-robin mode, and identical *outputs* in threaded mode.
TEST(DeterminismTest, RoundRobinStatsStable) {
  ParallelOptions options;
  options.use_threads = false;
  std::vector<uint64_t> firings;
  std::vector<uint64_t> cross;
  for (int run = 0; run < 3; ++run) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 20, 40, 5);
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 3);
    StatusOr<ParallelResult> result =
        RunParallel(bundle, &setup->edb, options);
    ASSERT_TRUE(result.ok());
    firings.push_back(result->total_firings);
    cross.push_back(result->cross_tuples);
  }
  EXPECT_EQ(firings[0], firings[1]);
  EXPECT_EQ(firings[1], firings[2]);
  EXPECT_EQ(cross[0], cross[1]);
  EXPECT_EQ(cross[1], cross[2]);
}

TEST(DeterminismTest, ThreadedOutputStable) {
  std::string reference;
  for (int run = 0; run < 5; ++run) {
    auto setup = MakeAncestorSetup();
    GenRandomGraph(&setup->symbols, &setup->edb, "par", 20, 40, 6);
    RewriteBundle bundle =
        MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
    StatusOr<ParallelResult> result = RunParallel(bundle, &setup->edb);
    ASSERT_TRUE(result.ok());
    std::string output = DumpOutput(*result, setup->symbols, setup->anc());
    if (reference.empty()) {
      reference = output;
    } else {
      EXPECT_EQ(output, reference) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace pdatalog
