#include "datalog/validate.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;

TEST(ValidateTest, ClassifiesBaseAndDerived) {
  SymbolTable symbols;
  Program program = ParseOrDie(testing_util::kAncestorProgram, &symbols);
  ProgramInfo info;
  ASSERT_TRUE(Validate(program, &info).ok());
  EXPECT_TRUE(info.IsDerived(symbols.Lookup("anc")));
  EXPECT_TRUE(info.IsBase(symbols.Lookup("par")));
  EXPECT_EQ(info.arity.at(symbols.Lookup("anc")), 2);
}

TEST(ValidateTest, ArityMismatchRejected) {
  SymbolTable symbols;
  Program program =
      ParseOrDie("p(X) :- q(X).\np(X, Y) :- q(X), q(Y).\n", &symbols);
  ProgramInfo info;
  Status status = Validate(program, &info);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("arities"), std::string::npos);
}

TEST(ValidateTest, UnsafeRuleRejected) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X, Y) :- q(X).\n", &symbols);
  ProgramInfo info;
  Status status = Validate(program, &info);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("range-restricted"), std::string::npos);
}

TEST(ValidateTest, BasePredicateInHeadRejected) {
  // The paper forbids base predicates (fact predicates) in rule heads.
  SymbolTable symbols;
  Program program = ParseOrDie("p(a, b).\np(X, Y) :- q(X, Y).\n", &symbols);
  ProgramInfo info;
  EXPECT_FALSE(Validate(program, &info).ok());
}

TEST(ValidateTest, ConstraintVarMustBeInBody) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  HashConstraint c;
  c.function = 0;
  c.vars = {symbols.Intern("W")};  // not a body variable
  c.target = 0;
  program.rules[0].constraints.push_back(c);
  ProgramInfo info;
  EXPECT_FALSE(Validate(program, &info).ok());
}

TEST(ValidateTest, ValidConstraintAccepted) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(X) :- q(X).\n", &symbols);
  HashConstraint c;
  c.function = 0;
  c.vars = {symbols.Lookup("X")};
  c.target = 0;
  program.rules[0].constraints.push_back(c);
  ProgramInfo info;
  EXPECT_TRUE(Validate(program, &info).ok());
}

TEST(ValidateTest, MissingSymbolTableRejected) {
  Program program;
  ProgramInfo info;
  EXPECT_FALSE(Validate(program, &info).ok());
}

TEST(ValidateTest, PredicatesListedInFirstAppearanceOrder) {
  SymbolTable symbols;
  Program program = ParseOrDie(
      "a(X) :- b(X), c(X).\n"
      "d(x0).\n",
      &symbols);
  ProgramInfo info;
  ASSERT_TRUE(Validate(program, &info).ok());
  ASSERT_EQ(info.predicates.size(), 4u);
  EXPECT_EQ(symbols.Name(info.predicates[0]), "a");
  EXPECT_EQ(symbols.Name(info.predicates[1]), "b");
  EXPECT_EQ(symbols.Name(info.predicates[2]), "c");
  EXPECT_EQ(symbols.Name(info.predicates[3]), "d");
}

TEST(ValidateTest, PurelyExtensionalProgram) {
  SymbolTable symbols;
  Program program = ParseOrDie("p(a).\np(b).\n", &symbols);
  ProgramInfo info;
  ASSERT_TRUE(Validate(program, &info).ok());
  EXPECT_TRUE(info.derived.empty());
  EXPECT_EQ(info.base.size(), 1u);
}

}  // namespace
}  // namespace pdatalog
