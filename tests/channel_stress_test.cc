// Concurrency stress for the channel substrate: many senders racing one
// drainer must lose no messages, and the monotone total_sent /
// total_bytes counters must come out exact — the termination detector
// (Mattern counting) relies on exactly this agreement. The first tests
// run on the default mutex transport (the only backend that tolerates
// multiple senders); the Spsc* tests install the lock-free ring and
// stress its single-producer/single-consumer contract: wraparound far
// past capacity, full-ring backpressure that blocks without dropping,
// and frame integrity under TSan (a torn frame would surface as a data
// race on the slot, because publication is a single release store).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/channel.h"
#include "core/transport.h"
#include "gtest/gtest.h"

namespace pdatalog {
namespace {

// A recognizable block: `arity` columns, `count` rows, every cell
// derived from (seq, row, col) so a torn or reordered frame cannot
// validate.
TupleBlock PatternBlock(uint32_t seq, int arity, uint32_t count) {
  TupleBlock block;
  block.predicate = 7;
  block.arity = arity;
  std::vector<Value> row(arity);
  for (uint32_t r = 0; r < count; ++r) {
    for (int c = 0; c < arity; ++c) {
      row[c] = static_cast<Value>(seq * 31 + r * 7 + c);
    }
    block.Append(row.data(), arity);
  }
  return block;
}

void CheckPatternBlock(const TupleBlock& block, uint32_t seq, int arity,
                       uint32_t count) {
  ASSERT_EQ(block.arity, arity);
  ASSERT_EQ(block.count, count);
  for (uint32_t r = 0; r < count; ++r) {
    for (int c = 0; c < arity; ++c) {
      ASSERT_EQ(block.value(r, c), static_cast<Value>(seq * 31 + r * 7 + c))
          << "seq " << seq << " row " << r << " col " << c;
    }
  }
}

TEST(ChannelStressTest, ManySendersOneDrainerLosesNothing) {
  constexpr int kSenders = 8;
  constexpr int kPerSender = 5000;
  Channel channel;

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.predicate = static_cast<Symbol>(s);
        m.tuple = Tuple{static_cast<Value>(s), static_cast<Value>(i)};
        channel.Send(std::move(m));
      }
    });
  }

  // Drain concurrently with the senders, like a worker's round loop.
  std::vector<Message> received;
  while (received.size() < static_cast<size_t>(kSenders) * kPerSender) {
    channel.Drain(&received);
  }
  for (std::thread& t : senders) t.join();
  channel.Drain(&received);  // nothing should be left
  ASSERT_EQ(received.size(), static_cast<size_t>(kSenders) * kPerSender);

  // Every (sender, sequence) pair arrives exactly once, in per-sender
  // FIFO order (each channel is a reliable ordered link).
  std::vector<std::vector<bool>> seen(kSenders,
                                      std::vector<bool>(kPerSender, false));
  std::vector<int> last(kSenders, -1);
  uint64_t wire_bytes = 0;
  for (const Message& m : received) {
    int s = static_cast<int>(m.predicate);
    int i = static_cast<int>(m.tuple[1]);
    EXPECT_FALSE(seen[s][i]) << "duplicate (" << s << ", " << i << ")";
    seen[s][i] = true;
    EXPECT_GT(i, last[s]) << "reordered within sender " << s;
    last[s] = i;
    wire_bytes += m.WireBytes();
  }
  EXPECT_EQ(channel.total_sent(),
            static_cast<uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(channel.total_bytes(), wire_bytes);
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, BatchedSendersCountExactly) {
  constexpr int kSenders = 6;
  constexpr int kBatches = 200;
  constexpr int kBatchSize = 25;
  Channel channel;

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      std::vector<Message> batch;
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kBatchSize; ++i) {
          Message m;
          m.predicate = static_cast<Symbol>(s);
          m.tuple = Tuple{static_cast<Value>(b), static_cast<Value>(i)};
          batch.push_back(std::move(m));
        }
        channel.SendBatch(&batch);
        EXPECT_TRUE(batch.empty());  // flushed, capacity retained
      }
    });
  }

  std::vector<Message> received;
  const size_t expect =
      static_cast<size_t>(kSenders) * kBatches * kBatchSize;
  while (received.size() < expect) channel.Drain(&received);
  for (std::thread& t : senders) t.join();
  channel.Drain(&received);
  ASSERT_EQ(received.size(), expect);

  uint64_t wire_bytes = 0;
  for (const Message& m : received) wire_bytes += m.WireBytes();
  EXPECT_EQ(channel.total_sent(), expect);
  EXPECT_EQ(channel.total_bytes(), wire_bytes);
}

TEST(ChannelStressTest, ReliableChannelRecoversUnderConcurrentFaults) {
  // One sender races one drainer over a lossy reliable channel. The
  // sender interleaves retransmits of unacknowledged frames; the
  // receiver must still see every message exactly once and in order.
  constexpr int kMessages = 4000;
  Channel channel;
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.1;
  spec.reorder = 0.1;
  spec.delay = 0.1;
  spec.delay_polls = 2;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();

  std::thread sender([&channel] {
    for (int i = 0; i < kMessages; ++i) {
      channel.Send(Message{1, Tuple{static_cast<Value>(i), 0}});
      if ((i & 63) == 0) channel.RetransmitUnacked();
    }
  });

  std::vector<Message> received;
  while (received.size() < kMessages) {
    if (channel.Drain(&received) == 0) channel.RetransmitUnacked();
  }
  sender.join();
  channel.Drain(&received);
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[i].tuple[0], static_cast<Value>(i)) << "at " << i;
  }
  EXPECT_EQ(channel.total_sent(), static_cast<uint64_t>(kMessages));
  EXPECT_TRUE(channel.fault_counters().any());
  EXPECT_EQ(channel.RetransmitUnacked(), 0u);  // everything acknowledged
}

TEST(ChannelStressTest, SerializedModeCountsDecodedMessages) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 2000;
  Channel channel;

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      for (int i = 0; i < kPerSender; ++i) {
        // Encoding is irrelevant here; each byte vector is one message.
        std::vector<uint8_t> bytes(6 + 8, static_cast<uint8_t>(s));
        channel.SendBytes(std::move(bytes));
      }
    });
  }

  std::vector<std::vector<uint8_t>> received;
  const size_t expect = static_cast<size_t>(kSenders) * kPerSender;
  while (received.size() < expect) channel.DrainBytes(&received);
  for (std::thread& t : senders) t.join();
  channel.DrainBytes(&received);
  ASSERT_EQ(received.size(), expect);

  uint64_t bytes = 0;
  for (const auto& b : received) bytes += b.size();
  EXPECT_EQ(channel.total_sent(), expect);
  EXPECT_EQ(channel.total_bytes(), bytes);
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, SpscRingWrapsAroundAtCapacity) {
  // A tiny ring forces the indices to wrap hundreds of times; per-frame
  // FIFO order and content must survive every wrap.
  constexpr int kFrames = 5000;
  Channel channel;
  TransportOptions opts;
  opts.ring_frames = 8;
  channel.set_transport(MakeTransport(TransportKind::kSpsc, opts));

  std::thread producer([&channel] {
    for (int seq = 0; seq < kFrames; ++seq) {
      channel.SendBlock(
          PatternBlock(seq, /*arity=*/3, /*count=*/(seq % 5) + 1));
    }
  });

  std::vector<TupleBlock> received;
  while (received.size() < kFrames) channel.DrainBlocks(&received);
  producer.join();
  channel.DrainBlocks(&received);
  ASSERT_EQ(received.size(), static_cast<size_t>(kFrames));

  uint64_t tuples = 0;
  uint64_t wire_bytes = 0;
  for (int seq = 0; seq < kFrames; ++seq) {
    CheckPatternBlock(received[seq], seq, 3, (seq % 5) + 1);
    tuples += received[seq].count;
    wire_bytes += received[seq].WireBytes();
  }
  EXPECT_EQ(channel.total_frames(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(channel.total_sent(), tuples);
  EXPECT_EQ(channel.total_bytes(), wire_bytes);
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, SpscFullRingBackpressureBlocksWithoutDropping) {
  // With no consumer, the producer must fill the ring and then *block*
  // — progress plateaus exactly at capacity, nothing is dropped — and
  // resume the moment draining starts.
  constexpr int kCapacity = 16;
  constexpr int kFrames = 64;
  Channel channel;
  TransportOptions opts;
  opts.ring_frames = kCapacity;
  opts.max_sleep_us = 64;  // keep the blocked producer responsive
  channel.set_transport(MakeTransport(TransportKind::kSpsc, opts));

  std::atomic<int> sent{0};
  std::thread producer([&channel, &sent] {
    for (int seq = 0; seq < kFrames; ++seq) {
      channel.SendBlock(PatternBlock(seq, /*arity=*/2, /*count=*/1));
      sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // The producer completes exactly kCapacity sends, then blocks inside
  // send kCapacity+1. Give it real time to (wrongly) run ahead.
  while (sent.load(std::memory_order_relaxed) < kCapacity) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(sent.load(std::memory_order_relaxed), kCapacity)
      << "producer ran past a full ring";

  // Release the backpressure; every frame must come out, in order.
  std::vector<TupleBlock> received;
  while (received.size() < kFrames) channel.DrainBlocks(&received);
  producer.join();
  channel.DrainBlocks(&received);
  ASSERT_EQ(received.size(), static_cast<size_t>(kFrames));
  for (int seq = 0; seq < kFrames; ++seq) {
    CheckPatternBlock(received[seq], seq, 2, 1);
  }
  EXPECT_EQ(channel.total_frames(), static_cast<uint64_t>(kFrames));
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, SpscFramesAreNeverTorn) {
  // Torn-frame check, designed for TSan: the consumer validates every
  // cell of every frame while the producer races around a 4-slot ring.
  // Publication is a single release store of the tail index, so a
  // consumer reading a half-written slot would be a data race TSan
  // reports; without TSan this still catches value-level tearing.
  constexpr int kFrames = 3000;
  Channel channel;
  TransportOptions opts;
  opts.ring_frames = 4;
  channel.set_transport(MakeTransport(TransportKind::kSpsc, opts));

  std::thread producer([&channel] {
    for (int seq = 0; seq < kFrames; ++seq) {
      channel.SendBlock(
          PatternBlock(seq, /*arity=*/4, /*count=*/(seq % 8) + 1));
    }
  });

  size_t validated = 0;
  std::vector<TupleBlock> scratch;
  while (validated < kFrames) {
    scratch.clear();
    channel.DrainBlocks(&scratch);
    for (const TupleBlock& block : scratch) {
      const uint32_t seq = static_cast<uint32_t>(validated);
      CheckPatternBlock(block, seq, 4, (seq % 8) + 1);
      ++validated;
    }
  }
  producer.join();
  EXPECT_EQ(validated, static_cast<size_t>(kFrames));
  EXPECT_EQ(channel.total_frames(), static_cast<uint64_t>(kFrames));
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, SpscSerializedBytesPathKeepsOrder) {
  // The byte-frame ring (serialized channels) has the same contract as
  // the block ring: FIFO, lossless, exact frame accounting.
  constexpr int kFrames = 4000;
  Channel channel;
  TransportOptions opts;
  opts.ring_frames = 8;
  channel.set_transport(MakeTransport(TransportKind::kSpsc, opts));

  std::thread producer([&channel] {
    for (int seq = 0; seq < kFrames; ++seq) {
      std::vector<uint8_t> bytes(6 + (seq % 32),
                                 static_cast<uint8_t>(seq & 0xFF));
      channel.SendBytes(std::move(bytes));
    }
  });

  std::vector<std::vector<uint8_t>> received;
  while (received.size() < kFrames) channel.DrainBytes(&received);
  producer.join();
  channel.DrainBytes(&received);
  ASSERT_EQ(received.size(), static_cast<size_t>(kFrames));

  uint64_t bytes = 0;
  for (int seq = 0; seq < kFrames; ++seq) {
    ASSERT_EQ(received[seq].size(), static_cast<size_t>(6 + (seq % 32)));
    for (uint8_t b : received[seq]) {
      ASSERT_EQ(b, static_cast<uint8_t>(seq & 0xFF)) << "torn at " << seq;
    }
    bytes += received[seq].size();
  }
  EXPECT_EQ(channel.total_frames(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(channel.total_bytes(), bytes);
  EXPECT_FALSE(channel.HasPending());
}

}  // namespace
}  // namespace pdatalog
