// Concurrency stress for the channel substrate: many senders racing one
// drainer must lose no messages, and the monotone total_sent /
// total_bytes counters must come out exact — the termination detector
// (Mattern counting) relies on exactly this agreement.
#include <cstdint>
#include <thread>
#include <vector>

#include "core/channel.h"
#include "gtest/gtest.h"

namespace pdatalog {
namespace {

TEST(ChannelStressTest, ManySendersOneDrainerLosesNothing) {
  constexpr int kSenders = 8;
  constexpr int kPerSender = 5000;
  Channel channel;

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.predicate = static_cast<Symbol>(s);
        m.tuple = Tuple{static_cast<Value>(s), static_cast<Value>(i)};
        channel.Send(std::move(m));
      }
    });
  }

  // Drain concurrently with the senders, like a worker's round loop.
  std::vector<Message> received;
  while (received.size() < static_cast<size_t>(kSenders) * kPerSender) {
    channel.Drain(&received);
  }
  for (std::thread& t : senders) t.join();
  channel.Drain(&received);  // nothing should be left
  ASSERT_EQ(received.size(), static_cast<size_t>(kSenders) * kPerSender);

  // Every (sender, sequence) pair arrives exactly once, in per-sender
  // FIFO order (each channel is a reliable ordered link).
  std::vector<std::vector<bool>> seen(kSenders,
                                      std::vector<bool>(kPerSender, false));
  std::vector<int> last(kSenders, -1);
  uint64_t wire_bytes = 0;
  for (const Message& m : received) {
    int s = static_cast<int>(m.predicate);
    int i = static_cast<int>(m.tuple[1]);
    EXPECT_FALSE(seen[s][i]) << "duplicate (" << s << ", " << i << ")";
    seen[s][i] = true;
    EXPECT_GT(i, last[s]) << "reordered within sender " << s;
    last[s] = i;
    wire_bytes += m.WireBytes();
  }
  EXPECT_EQ(channel.total_sent(),
            static_cast<uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(channel.total_bytes(), wire_bytes);
  EXPECT_FALSE(channel.HasPending());
}

TEST(ChannelStressTest, BatchedSendersCountExactly) {
  constexpr int kSenders = 6;
  constexpr int kBatches = 200;
  constexpr int kBatchSize = 25;
  Channel channel;

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      std::vector<Message> batch;
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kBatchSize; ++i) {
          Message m;
          m.predicate = static_cast<Symbol>(s);
          m.tuple = Tuple{static_cast<Value>(b), static_cast<Value>(i)};
          batch.push_back(std::move(m));
        }
        channel.SendBatch(&batch);
        EXPECT_TRUE(batch.empty());  // flushed, capacity retained
      }
    });
  }

  std::vector<Message> received;
  const size_t expect =
      static_cast<size_t>(kSenders) * kBatches * kBatchSize;
  while (received.size() < expect) channel.Drain(&received);
  for (std::thread& t : senders) t.join();
  channel.Drain(&received);
  ASSERT_EQ(received.size(), expect);

  uint64_t wire_bytes = 0;
  for (const Message& m : received) wire_bytes += m.WireBytes();
  EXPECT_EQ(channel.total_sent(), expect);
  EXPECT_EQ(channel.total_bytes(), wire_bytes);
}

TEST(ChannelStressTest, ReliableChannelRecoversUnderConcurrentFaults) {
  // One sender races one drainer over a lossy reliable channel. The
  // sender interleaves retransmits of unacknowledged frames; the
  // receiver must still see every message exactly once and in order.
  constexpr int kMessages = 4000;
  Channel channel;
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.1;
  spec.reorder = 0.1;
  spec.delay = 0.1;
  spec.delay_polls = 2;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();

  std::thread sender([&channel] {
    for (int i = 0; i < kMessages; ++i) {
      channel.Send(Message{1, Tuple{static_cast<Value>(i), 0}});
      if ((i & 63) == 0) channel.RetransmitUnacked();
    }
  });

  std::vector<Message> received;
  while (received.size() < kMessages) {
    if (channel.Drain(&received) == 0) channel.RetransmitUnacked();
  }
  sender.join();
  channel.Drain(&received);
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[i].tuple[0], static_cast<Value>(i)) << "at " << i;
  }
  EXPECT_EQ(channel.total_sent(), static_cast<uint64_t>(kMessages));
  EXPECT_TRUE(channel.fault_counters().any());
  EXPECT_EQ(channel.RetransmitUnacked(), 0u);  // everything acknowledged
}

TEST(ChannelStressTest, SerializedModeCountsDecodedMessages) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 2000;
  Channel channel;

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&channel, s] {
      for (int i = 0; i < kPerSender; ++i) {
        // Encoding is irrelevant here; each byte vector is one message.
        std::vector<uint8_t> bytes(6 + 8, static_cast<uint8_t>(s));
        channel.SendBytes(std::move(bytes));
      }
    });
  }

  std::vector<std::vector<uint8_t>> received;
  const size_t expect = static_cast<size_t>(kSenders) * kPerSender;
  while (received.size() < expect) channel.DrainBytes(&received);
  for (std::thread& t : senders) t.join();
  channel.DrainBytes(&received);
  ASSERT_EQ(received.size(), expect);

  uint64_t bytes = 0;
  for (const auto& b : received) bytes += b.size();
  EXPECT_EQ(channel.total_sent(), expect);
  EXPECT_EQ(channel.total_bytes(), bytes);
  EXPECT_FALSE(channel.HasPending());
}

}  // namespace
}  // namespace pdatalog
