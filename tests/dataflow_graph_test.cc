#include "core/dataflow_graph.h"

#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::ParseOrDie;
using testing_util::ValidateOrDie;

LinearSirup MakeSirup(const char* source, SymbolTable* symbols) {
  Program program = ParseOrDie(source, symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  EXPECT_TRUE(sirup.ok()) << sirup.status().ToString();
  return std::move(*sirup);
}

TEST(DataflowGraphTest, Figure1ChainGraph) {
  // Example 4 / Figure 1: p(U,V,W) :- p(V,W,Z), q(U,Z) gives 1 -> 2 -> 3.
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  DataflowGraph graph = DataflowGraph::Build(sirup);
  EXPECT_EQ(graph.ToString(), "1 -> 2, 2 -> 3");
  EXPECT_FALSE(graph.HasCycle());
  EXPECT_EQ(graph.vertices, (std::vector<int>{0, 1, 2}));
}

TEST(DataflowGraphTest, Figure2AncestorSelfLoop) {
  // Example 5 / Figure 2: the ancestor rule has the self-loop 2 -> 2.
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  DataflowGraph graph = DataflowGraph::Build(sirup);
  EXPECT_EQ(graph.ToString(), "2 -> 2");
  EXPECT_TRUE(graph.HasCycle());
  EXPECT_EQ(graph.CyclePositions(), (std::vector<int>{1}));
}

TEST(DataflowGraphTest, LongerCycleDetected) {
  // p(X, Y) :- p(Y, X), ...: positions swap, a 2-cycle.
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(X, Y) :- s(X, Y).\n"
      "p(X, Y) :- p(Y, X), q(X, Y).\n",
      &symbols);
  DataflowGraph graph = DataflowGraph::Build(sirup);
  EXPECT_TRUE(graph.HasCycle());
  EXPECT_EQ(graph.CyclePositions(), (std::vector<int>{0, 1}));
}

TEST(DataflowGraphTest, ConstantPositionsIgnored) {
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(X, Y) :- s(X, Y).\n"
      "p(X, c) :- p(c, X), q(X).\n",
      &symbols);
  DataflowGraph graph = DataflowGraph::Build(sirup);
  // Y_1 = c (constant), Y_2 = X = X_1: edge 2 -> 1 only.
  EXPECT_EQ(graph.ToString(), "2 -> 1");
  EXPECT_FALSE(graph.HasCycle());
}

TEST(CommunicationFreeTest, AcyclicGraphFails) {
  SymbolTable symbols;
  LinearSirup sirup = MakeSirup(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  StatusOr<LinearSchemeOptions> scheme =
      CommunicationFreeScheme(sirup, 4);
  EXPECT_FALSE(scheme.ok());
  EXPECT_EQ(scheme.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CommunicationFreeTest, AncestorRecoversExample1) {
  // Theorem 3 on the ancestor program must rediscover v(r) = v(e) = <Y>.
  SymbolTable symbols;
  LinearSirup sirup =
      MakeSirup(testing_util::kAncestorProgram, &symbols);
  StatusOr<LinearSchemeOptions> scheme =
      CommunicationFreeScheme(sirup, 4);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  ASSERT_EQ(scheme->v_r.size(), 1u);
  EXPECT_EQ(symbols.Name(scheme->v_r[0]), "Y");
  EXPECT_EQ(symbols.Name(scheme->v_e[0]), "Y");
}

// The constructive guarantee of Theorem 3, executed: for cyclic dataflow
// graphs the derived scheme produces zero cross-processor traffic.
class TheoremThreeTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

INSTANTIATE_TEST_SUITE_P(
    CyclicSirups, TheoremThreeTest,
    ::testing::Values(
        std::make_tuple("ancestor",
                        "anc(X, Y) :- par(X, Y).\n"
                        "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"),
        std::make_tuple("swap",
                        "p(X, Y) :- par(X, Y).\n"
                        "p(X, Y) :- p(Y, X), par(X, Y).\n"),
        std::make_tuple("rotate3",
                        "p(X, Y, Z) :- s(X, Y, Z).\n"
                        "p(X, Y, Z) :- p(Y, Z, X), q(X).\n")),
    [](const auto& info) { return std::get<0>(info.param); });

TEST_P(TheoremThreeTest, DerivedSchemeIsCommunicationFree) {
  SymbolTable symbols;
  Program program = ParseOrDie(std::get<1>(GetParam()), &symbols);
  ProgramInfo info = ValidateOrDie(program);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);
  ASSERT_TRUE(sirup.ok());

  StatusOr<LinearSchemeOptions> scheme = CommunicationFreeScheme(*sirup, 4);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(program, info, *sirup, 4, *scheme);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Database edb;
  // Populate every base predicate of the program with random binary or
  // unary data.
  for (Symbol p : info.predicates) {
    if (!info.IsBase(p)) continue;
    int arity = info.arity.at(p);
    SplitMix64 rng(7 + p);
    Relation& rel = edb.GetOrCreate(p, arity);
    for (int i = 0; i < 60; ++i) {
      Value vals[3];
      for (int c = 0; c < arity; ++c) {
        vals[c] = symbols.Intern("n" + std::to_string(rng.NextBelow(12)));
      }
      rel.Insert(Tuple(vals, arity));
    }
  }

  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cross_tuples, 0u);

  // And the answer still matches the sequential evaluation.
  Database seq_db;
  for (const auto& [pred, rel] : edb.relations()) {
    if (!info.IsBase(pred)) continue;
    Relation& copy = seq_db.GetOrCreate(pred, rel->arity());
    for (size_t r = 0; r < rel->size(); ++r) copy.Insert(rel->row(r));
  }
  EvalStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(program, info, &seq_db, &stats).ok());
  Symbol out = *info.derived.begin();
  EXPECT_EQ(result->output.Find(out)->ToSortedString(symbols),
            seq_db.Find(out)->ToSortedString(symbols));
}

}  // namespace
}  // namespace pdatalog
