// Block wire protocol suite: the columnar TupleBlock frame
// (core/wire.h), the bulk Relation ingest it feeds (InsertBlock), the
// per-block channel fault/retransmit semantics, and the end-to-end
// promise that the flush threshold is invisible in the fixpoint —
// --block-tuples=1 (per-tuple frames) and large blocks must produce
// identical results on every scheme and channel realization.
#include <algorithm>
#include <string>
#include <vector>

#include "cli/driver.h"
#include "core/wire.h"
#include "gtest/gtest.h"
#include "parallel_test_util.h"
#include "storage/relation.h"
#include "workload/generators.h"

namespace pdatalog {
namespace {

using testing_util::AncestorScheme;
using testing_util::DumpOutput;
using testing_util::MakeAncestorBundle;
using testing_util::MakeAncestorSetup;
using testing_util::SequentialAncestor;

TupleBlock MakeBlock(Symbol predicate, int arity, uint32_t count) {
  TupleBlock block;
  block.predicate = predicate;
  block.arity = arity;
  for (uint32_t r = 0; r < count; ++r) {
    std::vector<Value> row(arity);
    for (int c = 0; c < arity; ++c) {
      row[c] = r * 31 + static_cast<uint32_t>(c) * 7 + 1;
    }
    block.Append(row.data(), arity);
  }
  return block;
}

// Layout-blind tuple comparison: decoded blocks keep the wire's
// columnar layout while send-side blocks are row-major, so equality is
// checked cell by cell through the layout-aware accessor.
void ExpectSameTuples(const TupleBlock& got, const TupleBlock& want) {
  ASSERT_EQ(got.arity, want.arity);
  ASSERT_EQ(got.count, want.count);
  for (uint32_t r = 0; r < want.count; ++r) {
    for (int c = 0; c < want.arity; ++c) {
      EXPECT_EQ(got.value(r, c), want.value(r, c))
          << "row " << r << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

TEST(BlockWireTest, RoundTripAcrossAritiesAndCounts) {
  for (int arity : {0, 1, 2, 3, 5, kMaxWireArity}) {
    for (uint32_t count : {1u, 2u, 7u, 300u}) {
      TupleBlock block = MakeBlock(42, arity, count);
      std::vector<uint8_t> bytes;
      ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
      EXPECT_EQ(bytes.size(), block.WireBytes());
      size_t offset = 0;
      TupleBlock decoded;
      Status status = DecodeBlockInto(bytes, &offset, &decoded);
      ASSERT_TRUE(status.ok())
          << status.ToString() << " arity=" << arity << " count=" << count;
      EXPECT_EQ(offset, bytes.size());
      EXPECT_EQ(decoded.predicate, block.predicate);
      EXPECT_TRUE(decoded.columnar) << "decode must keep the wire layout";
      ExpectSameTuples(decoded, block);
    }
  }
}

TEST(BlockWireTest, DecodedBlocksKeepColumnarLayout) {
  // Decoding must not transpose: the value buffer is the wire body
  // verbatim — all of column 0, then column 1.
  TupleBlock block;
  block.predicate = 9;
  block.arity = 2;
  for (Value v : {1u, 2u, 3u}) {
    Value row[2] = {v, v * 100};
    block.Append(row, 2);
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
  size_t offset = 0;
  TupleBlock decoded;
  ASSERT_TRUE(DecodeBlockInto(bytes, &offset, &decoded).ok());
  EXPECT_TRUE(decoded.columnar);
  EXPECT_EQ(decoded.values, (std::vector<Value>{1, 2, 3, 100, 200, 300}));
  // Re-encoding a columnar block reproduces the identical frame.
  std::vector<uint8_t> reencoded;
  ASSERT_TRUE(EncodeBlock(decoded, &reencoded).ok());
  EXPECT_EQ(reencoded, bytes);
}

TEST(BlockWireTest, WireLayoutIsColumnar) {
  // Rows (1,100), (2,200), (3,300): the wire body must hold column 0
  // first (1,2,3) and then column 1 (100,200,300), little-endian u32s.
  TupleBlock block;
  block.predicate = 9;
  block.arity = 2;
  for (Value v : {1u, 2u, 3u}) {
    Value row[2] = {v, v * 100};
    block.Append(row, 2);
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
  ASSERT_EQ(bytes.size(), BlockWireBytes(2, 3));
  auto u32_at = [&](size_t i) {
    size_t p = kBlockHeaderBytes + i * kWireValueBytes;
    return static_cast<uint32_t>(bytes[p]) |
           static_cast<uint32_t>(bytes[p + 1]) << 8 |
           static_cast<uint32_t>(bytes[p + 2]) << 16 |
           static_cast<uint32_t>(bytes[p + 3]) << 24;
  };
  EXPECT_EQ(u32_at(0), 1u);
  EXPECT_EQ(u32_at(1), 2u);
  EXPECT_EQ(u32_at(2), 3u);
  EXPECT_EQ(u32_at(3), 100u);
  EXPECT_EQ(u32_at(4), 200u);
  EXPECT_EQ(u32_at(5), 300u);
}

TEST(BlockWireTest, FramesConcatenate) {
  // The receive loop decodes frames back to back from one buffer.
  std::vector<uint8_t> bytes;
  TupleBlock a = MakeBlock(1, 2, 5);
  TupleBlock b = MakeBlock(2, 3, 1);
  ASSERT_TRUE(EncodeBlock(a, &bytes).ok());
  ASSERT_TRUE(EncodeBlock(b, &bytes).ok());
  size_t offset = 0;
  TupleBlock decoded;
  ASSERT_TRUE(DecodeBlockInto(bytes, &offset, &decoded).ok());
  ExpectSameTuples(decoded, a);
  ASSERT_TRUE(DecodeBlockInto(bytes, &offset, &decoded).ok());
  ExpectSameTuples(decoded, b);
  EXPECT_EQ(offset, bytes.size());
}

TEST(BlockWireTest, TruncationRejectedAtEveryCut) {
  TupleBlock block = MakeBlock(3, 2, 4);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    size_t offset = 0;
    TupleBlock decoded;
    EXPECT_FALSE(DecodeBlockInto(truncated, &offset, &decoded).ok())
        << "cut=" << cut;
    EXPECT_EQ(offset, 0u) << "offset must not advance past a bad frame";
  }
}

TEST(BlockWireTest, EveryBitFlipDetected) {
  TupleBlock block = MakeBlock(7, 3, 6);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = bytes;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t offset = 0;
      TupleBlock decoded;
      EXPECT_FALSE(DecodeBlockInto(corrupted, &offset, &decoded).ok())
          << "byte=" << byte << " bit=" << bit;
      EXPECT_EQ(offset, 0u);
    }
  }
}

TEST(BlockWireTest, FormatsAreMutuallyUnintelligible) {
  // A legacy frame has no block marker; a block frame's flagged arity
  // exceeds the legacy limit. Neither decoder misreads the other.
  std::vector<uint8_t> legacy;
  ASSERT_TRUE(EncodeMessage(Message{5, Tuple{1, 2}}, &legacy).ok());
  size_t offset = 0;
  TupleBlock decoded;
  Status status = DecodeBlockInto(legacy, &offset, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not a tuple block"), std::string::npos);

  std::vector<uint8_t> framed;
  ASSERT_TRUE(EncodeBlock(MakeBlock(5, 2, 3), &framed).ok());
  offset = 0;
  EXPECT_FALSE(DecodeMessage(framed, &offset).ok());
}

TEST(BlockWireTest, EncodeRejectsMalformedBlocks) {
  std::vector<uint8_t> bytes;
  TupleBlock empty = MakeBlock(1, 2, 1);
  empty.count = 0;
  empty.values.clear();
  EXPECT_FALSE(EncodeBlock(empty, &bytes).ok());

  TupleBlock wide = MakeBlock(1, kMaxWireArity, 1);
  wide.arity = kMaxWireArity + 1;
  EXPECT_FALSE(EncodeBlock(wide, &bytes).ok());

  TupleBlock mismatched = MakeBlock(1, 2, 3);
  mismatched.values.pop_back();
  EXPECT_FALSE(EncodeBlock(mismatched, &bytes).ok());
  EXPECT_TRUE(bytes.empty()) << "failed encodes must append nothing";
}

TEST(BlockWireTest, OversizedCountFieldRejected) {
  // A corrupted count that dodged nothing else must be capped before
  // the decoder sizes any buffer from it.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(MakeBlock(1, 1, 1), &bytes).ok());
  for (int i = 0; i < 4; ++i) bytes[6 + i] = 0xff;  // count = 2^32 - 1
  size_t offset = 0;
  TupleBlock decoded;
  Status status = DecodeBlockInto(bytes, &offset, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count exceeds"), std::string::npos);
}

// ---------------------------------------------------------------------
// Bulk relation ingest
// ---------------------------------------------------------------------

TEST(InsertBlockTest, MatchesPerTupleInsert) {
  TupleBlock block = MakeBlock(1, 2, 500);
  Relation bulk(2);
  Relation reference(2);
  size_t inserted =
      bulk.InsertBlock(block.values.data(), block.arity, block.count);
  size_t ref_inserted = 0;
  for (uint32_t r = 0; r < block.count; ++r) {
    ref_inserted += reference.InsertView(block.row(r), block.arity);
  }
  EXPECT_EQ(inserted, ref_inserted);
  ASSERT_EQ(bulk.size(), reference.size());
  for (size_t r = 0; r < reference.size(); ++r) {
    EXPECT_TRUE(bulk.Contains(reference.row(r)));
  }
}

TEST(InsertBlockTest, DedupsWithinAndAcrossBlocks) {
  TupleBlock block;
  block.arity = 2;
  Value rows[][2] = {{1, 2}, {3, 4}, {1, 2}, {5, 6}};  // internal dup
  for (const Value* row : {rows[0], rows[1], rows[2], rows[3]}) {
    block.Append(row, 2);
  }
  Relation rel(2);
  EXPECT_EQ(rel.InsertBlock(block.values.data(), 2, block.count), 3u);
  EXPECT_EQ(rel.size(), 3u);
  // A second ingest of the same block inserts nothing new.
  EXPECT_EQ(rel.InsertBlock(block.values.data(), 2, block.count), 0u);
  EXPECT_EQ(rel.size(), 3u);
}

TEST(InsertBlockTest, LargeBlockAfterSmallInserts) {
  // Exercises the single up-front dedup growth across several doublings.
  Relation rel(1);
  Value seed = 9999999;
  rel.InsertView(&seed, 1);
  TupleBlock block = MakeBlock(1, 1, 20000);
  EXPECT_EQ(rel.InsertBlock(block.values.data(), 1, block.count),
            block.count);
  EXPECT_EQ(rel.size(), block.count + 1);
}

TEST(InsertBlockTest, ColumnarIngestMatchesRowMajor) {
  // The worker receive path hands InsertBlock a decoded (columnar)
  // block; ingesting it must produce the same relation as ingesting
  // the original row-major block, row ids included.
  TupleBlock sent = MakeBlock(1, 3, 700);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(sent, &bytes).ok());
  TupleBlock received;
  size_t offset = 0;
  ASSERT_TRUE(DecodeBlockInto(bytes, &offset, &received).ok());
  ASSERT_TRUE(received.columnar);

  Relation from_rows(3), from_cols(3);
  size_t a = from_rows.InsertBlock(sent.values.data(), sent.arity,
                                   sent.count, /*columnar=*/false);
  size_t b = from_cols.InsertBlock(received.values.data(), received.arity,
                                   received.count, /*columnar=*/true);
  EXPECT_EQ(a, b);
  ASSERT_EQ(from_rows.size(), from_cols.size());
  for (size_t r = 0; r < from_rows.size(); ++r) {
    EXPECT_EQ(from_rows.row(r), from_cols.row(r)) << "row " << r;
  }
}

TEST(InsertBlockTest, DuplicatesSplitAcrossTwoReceivedBlocks) {
  // Exactly-once under retransmission overlap: two received blocks
  // share a run of tuples (e.g. a conservative resend); the second
  // ingest must add only the genuinely new suffix.
  auto columnar = [](const TupleBlock& b) {
    std::vector<uint8_t> bytes;
    Status s = EncodeBlock(b, &bytes);
    EXPECT_TRUE(s.ok());
    TupleBlock out;
    size_t offset = 0;
    s = DecodeBlockInto(bytes, &offset, &out);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(out.columnar);
    return out;
  };
  TupleBlock first, second;
  first.predicate = second.predicate = 1;
  first.arity = second.arity = 2;
  for (Value i = 0; i < 40; ++i) {
    Value row[2] = {i, i + 100};
    first.Append(row, 2);
  }
  for (Value i = 25; i < 70; ++i) {  // rows 25..39 overlap the first
    Value row[2] = {i, i + 100};
    second.Append(row, 2);
  }
  TupleBlock c1 = columnar(first), c2 = columnar(second);
  Relation rel(2);
  EXPECT_EQ(rel.InsertBlock(c1.values.data(), 2, c1.count, true), 40u);
  EXPECT_EQ(rel.InsertBlock(c2.values.data(), 2, c2.count, true), 30u);
  EXPECT_EQ(rel.size(), 70u);
  for (Value i = 0; i < 70; ++i) {
    EXPECT_TRUE(rel.Contains(Tuple{i, i + 100})) << "tuple " << i;
  }
  // A full duplicate resend of either block is a no-op.
  EXPECT_EQ(rel.InsertBlock(c2.values.data(), 2, c2.count, true), 0u);
  EXPECT_EQ(rel.size(), 70u);
}

// ---------------------------------------------------------------------
// Per-block channel semantics under faults
// ---------------------------------------------------------------------

TEST(BlockChannelTest, BlockIsOneFrameManyTuples) {
  Channel channel;
  channel.SendBlock(MakeBlock(1, 2, 10));
  EXPECT_EQ(channel.total_sent(), 10u);
  EXPECT_EQ(channel.total_frames(), 1u);
  EXPECT_EQ(channel.total_bytes(), BlockWireBytes(2, 10));
  std::vector<TupleBlock> out;
  EXPECT_EQ(channel.DrainBlocks(&out), 10u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].count, 10u);
}

TEST(BlockChannelTest, DropLosesTheWholeBlock) {
  Channel channel;
  FaultSpec spec;
  spec.drop = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.SendBlock(MakeBlock(1, 2, 8));
  std::vector<TupleBlock> out;
  EXPECT_EQ(channel.DrainBlocks(&out), 0u);
  // One injector decision per frame: 8 tuples lost, 1 drop counted.
  EXPECT_EQ(channel.fault_counters().dropped, 1u);
  // Logical sends stay tuple-granular for the termination detector.
  EXPECT_EQ(channel.total_sent(), 8u);
}

TEST(BlockChannelTest, OneRetransmitRecoversTheWholeBlock) {
  Channel channel;
  FaultSpec spec;
  spec.drop = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  TupleBlock block = MakeBlock(1, 2, 8);
  channel.SendBlock(block);
  std::vector<TupleBlock> out;
  EXPECT_EQ(channel.DrainBlocks(&out), 0u);
  EXPECT_EQ(channel.RetransmitUnacked(), 1u);
  EXPECT_EQ(channel.DrainBlocks(&out), 8u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values, block.values);
}

TEST(BlockChannelTest, DuplicatedBlockDiscardedOnceReliable) {
  Channel channel;
  FaultSpec spec;
  spec.duplicate = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  channel.SendBlock(MakeBlock(1, 2, 4));
  channel.SendBlock(MakeBlock(1, 2, 3));
  std::vector<TupleBlock> out;
  EXPECT_EQ(channel.DrainBlocks(&out), 7u);  // each block delivered once
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(channel.fault_counters().duplicates_discarded, 2u);
}

TEST(BlockChannelTest, CorruptedSerializedBlockDiscardedThenRecovered) {
  Channel channel;
  FaultSpec spec;
  spec.corrupt = 1.0;
  channel.ConfigureFaults(spec, 0, 1);
  channel.EnableRetransmit();
  TupleBlock block = MakeBlock(1, 2, 6);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeBlock(block, &bytes).ok());
  channel.SendBytes(bytes, block.count);
  EXPECT_EQ(channel.total_sent(), 6u);
  std::vector<std::vector<uint8_t>> frames;
  // The injector flipped a byte; the reliable receiver discards the
  // frame instead of surfacing it.
  EXPECT_EQ(channel.DrainBytes(&frames), 0u);
  EXPECT_EQ(channel.fault_counters().corrupt_discarded, 1u);
  // The resend bypasses injection and arrives intact.
  EXPECT_EQ(channel.RetransmitUnacked(), 1u);
  ASSERT_EQ(channel.DrainBytes(&frames), 1u);
  size_t offset = 0;
  TupleBlock decoded;
  ASSERT_TRUE(DecodeBlockInto(frames[0], &offset, &decoded).ok());
  ExpectSameTuples(decoded, block);
}

// ---------------------------------------------------------------------
// End-to-end exactness: the flush threshold must be invisible
// ---------------------------------------------------------------------

TEST(BlockExactnessTest, AncestorFixpointInvariantAcrossBlockSizes) {
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 60, 180, 11);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);
  for (int block_tuples : {1, 3, 256, 4096}) {
    for (bool use_threads : {true, false}) {
      for (bool serialize : {false, true}) {
        ParallelOptions options;
        options.block_tuples = block_tuples;
        options.use_threads = use_threads;
        options.serialize_messages = serialize;
        StatusOr<ParallelResult> result =
            RunParallel(bundle, &setup->edb, options);
        ASSERT_TRUE(result.ok())
            << result.status().ToString() << " block=" << block_tuples;
        EXPECT_EQ(DumpOutput(*result, setup->symbols, setup->anc()),
                  expected)
            << "block=" << block_tuples << " threads=" << use_threads
            << " serialized=" << serialize;
      }
    }
  }
}

TEST(BlockExactnessTest, PerTupleAndLargeBlocksAgreeOnPointsTo) {
  // Driver-level check on a multi-rule, mutually recursive program
  // (general scheme): --block-tuples=1 and a large threshold must print
  // the identical pt/heap_pt dump.
  const char* source =
      "new(v1, o1). new(v4, o2).\n"
      "assign(v2, v1). assign(v5, v4). assign(v6, v5).\n"
      "store(v2, v1). store(v5, v6).\n"
      "load(v3, v2). load(v7, v5).\n"
      "pt(V, O) :- new(V, O).\n"
      "pt(V, O) :- assign(V, W), pt(W, O).\n"
      "pt(V, O) :- load(V, P), pt(P, A), heap_pt(A, O).\n"
      "heap_pt(A, O) :- store(P, W), pt(P, A), pt(W, O).\n";
  std::string reference;
  for (const char* block_flag :
       {"--block-tuples=1", "--block-tuples=8", "--block-tuples=65536"}) {
    StatusOr<CliOptions> options = ParseCliArgs(
        {"--scheme=general", block_flag, "--dump=pt", "p.dl"});
    ASSERT_TRUE(options.ok()) << options.status().ToString();
    StatusOr<std::string> report = RunCli(*options, source);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    std::string dump = report->substr(report->find("pt:"));
    if (reference.empty()) {
      reference = dump;
      EXPECT_NE(dump.find("(v3, o1)"), std::string::npos);
    } else {
      EXPECT_EQ(dump, reference) << block_flag;
    }
  }
}

TEST(BlockExactnessTest, FaultMatrixStaysExactInBlockMode) {
  // Every single-fault mode, with retransmit: the block-mode fixpoint
  // must equal the serial result; without retransmit, a lossy mode must
  // surface a diagnostic, never a silently wrong answer.
  auto setup = MakeAncestorSetup();
  GenRandomGraph(&setup->symbols, &setup->edb, "par", 40, 120, 23);
  std::string expected = SequentialAncestor(setup.get(), nullptr);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 4);

  struct Mode {
    const char* name;
    FaultSpec spec;
    bool lossy;  // without retransmit, drops tuples outright
  };
  std::vector<Mode> modes;
  modes.push_back({"drop", {}, true});
  modes.back().spec.drop = 0.3;
  modes.push_back({"duplicate", {}, false});
  modes.back().spec.duplicate = 0.3;
  modes.push_back({"reorder", {}, false});
  modes.back().spec.reorder = 0.5;
  modes.push_back({"delay", {}, false});
  modes.back().spec.delay = 0.3;
  modes.back().spec.delay_polls = 2;
  modes.push_back({"corrupt", {}, true});
  modes.back().spec.corrupt = 0.3;

  for (const Mode& mode : modes) {
    for (int block_tuples : {1, 64}) {
      ParallelOptions options;
      options.block_tuples = block_tuples;
      options.faults = mode.spec;
      options.serialize_messages = mode.spec.corrupt > 0;
      options.retransmit = true;
      StatusOr<ParallelResult> reliable =
          RunParallel(bundle, &setup->edb, options);
      ASSERT_TRUE(reliable.ok())
          << mode.name << " block=" << block_tuples << ": "
          << reliable.status().ToString();
      EXPECT_EQ(DumpOutput(*reliable, setup->symbols, setup->anc()),
                expected)
          << mode.name << " block=" << block_tuples;

      if (!mode.lossy) continue;
      options.retransmit = false;
      StatusOr<ParallelResult> lossy =
          RunParallel(bundle, &setup->edb, options);
      EXPECT_FALSE(lossy.ok())
          << mode.name << " block=" << block_tuples
          << " must detect its losses";
    }
  }
}

TEST(BlockExactnessTest, RejectsOutOfRangeThreshold) {
  auto setup = MakeAncestorSetup();
  GenChain(&setup->symbols, &setup->edb, "par", 4);
  RewriteBundle bundle =
      MakeAncestorBundle(setup.get(), AncestorScheme::kExample3, 2);
  for (int bad : {0, -1, static_cast<int>(kMaxBlockTuples) + 1}) {
    ParallelOptions options;
    options.block_tuples = bad;
    EXPECT_FALSE(RunParallel(bundle, &setup->edb, options).ok()) << bad;
  }
}

TEST(BlockCliTest, BlockTuplesFlagParsedAndValidated) {
  StatusOr<CliOptions> options =
      ParseCliArgs({"--block-tuples=512", "p.dl"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->block_tuples, 512);
  EXPECT_FALSE(ParseCliArgs({"--block-tuples=0", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--block-tuples=-3", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--block-tuples=9999999", "p.dl"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--block-tuples=abc", "p.dl"}).ok());
}

}  // namespace
}  // namespace pdatalog
