// Synthetic EDB generators for tests, examples and benches.
//
// All generators intern constants like "n17" into the given symbol
// table and insert tuples into a relation of the given database, so the
// data composes directly with parsed programs.
#ifndef PDATALOG_WORKLOAD_GENERATORS_H_
#define PDATALOG_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "datalog/symbol_table.h"
#include "storage/database.h"

namespace pdatalog {

// Binary-relation graph generators. Each returns the number of edges
// inserted into `db[predicate]` (arity 2).

// Path n0 -> n1 -> ... -> n_{length}. Worst case for parallel depth.
size_t GenChain(SymbolTable* symbols, Database* db,
                const std::string& predicate, int length);

// Complete `branching`-ary tree of the given depth, edges parent->child.
size_t GenTree(SymbolTable* symbols, Database* db,
               const std::string& predicate, int branching, int depth);

// Random digraph: `num_edges` distinct edges over `num_nodes` vertices
// (no self-loops). Deterministic in `seed`.
size_t GenRandomGraph(SymbolTable* symbols, Database* db,
                      const std::string& predicate, int num_nodes,
                      int num_edges, uint64_t seed);

// Directed cycle over n vertices: closure is the complete relation.
size_t GenCycle(SymbolTable* symbols, Database* db,
                const std::string& predicate, int n);

// 2-D grid, edges right and down. Many equal-length parallel paths.
size_t GenGrid(SymbolTable* symbols, Database* db,
               const std::string& predicate, int width, int height);

// Zipf-skewed digraph: `num_edges` distinct edges whose sources are
// uniform over the `num_nodes` vertices but whose targets follow a
// Zipf(exponent) rank distribution — node n0 is the hottest, n1 next,
// and so on. High in-degree concentrates recursive join work on the
// hash bucket of the hot join keys, making this the canonical skewed
// input for the rebalancer (larger exponent = sharper skew; ~1.0 is
// classic Zipf). Deterministic in `seed`.
size_t GenZipfGraph(SymbolTable* symbols, Database* db,
                    const std::string& predicate, int num_nodes,
                    int num_edges, double exponent, uint64_t seed);

// "flat" relation: arity-2 tuples (x, f(x)) pairing each of n children
// with one of `num_parents` parents at random. With GenFlat twice one
// gets classic same-generation inputs.
size_t GenFlat(SymbolTable* symbols, Database* db,
               const std::string& predicate, int n, int num_parents,
               uint64_t seed);

}  // namespace pdatalog

#endif  // PDATALOG_WORKLOAD_GENERATORS_H_
