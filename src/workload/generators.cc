#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

namespace pdatalog {

namespace {

Value Node(SymbolTable* symbols, int i) {
  return symbols->Intern("n" + std::to_string(i));
}

size_t InsertEdge(Relation* rel, Value a, Value b) {
  return rel->Insert(Tuple{a, b}) ? 1 : 0;
}

}  // namespace

size_t GenChain(SymbolTable* symbols, Database* db,
                const std::string& predicate, int length) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  size_t added = 0;
  for (int i = 0; i < length; ++i) {
    added += InsertEdge(&rel, Node(symbols, i), Node(symbols, i + 1));
  }
  return added;
}

size_t GenTree(SymbolTable* symbols, Database* db,
               const std::string& predicate, int branching, int depth) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  size_t added = 0;
  // Nodes are numbered level by level; node k's children are
  // k*branching+1 .. k*branching+branching.
  int level_start = 0;
  int level_size = 1;
  for (int d = 0; d < depth; ++d) {
    for (int k = level_start; k < level_start + level_size; ++k) {
      for (int c = 1; c <= branching; ++c) {
        added += InsertEdge(&rel, Node(symbols, k),
                            Node(symbols, k * branching + c));
      }
    }
    level_start = level_start * branching + 1;
    level_size *= branching;
  }
  return added;
}

size_t GenRandomGraph(SymbolTable* symbols, Database* db,
                      const std::string& predicate, int num_nodes,
                      int num_edges, uint64_t seed) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  SplitMix64 rng(seed);
  size_t added = 0;
  int attempts = 0;
  while (added < static_cast<size_t>(num_edges) &&
         attempts < num_edges * 20) {
    ++attempts;
    int a = static_cast<int>(rng.NextBelow(num_nodes));
    int b = static_cast<int>(rng.NextBelow(num_nodes));
    if (a == b) continue;
    added += InsertEdge(&rel, Node(symbols, a), Node(symbols, b));
  }
  return added;
}

size_t GenCycle(SymbolTable* symbols, Database* db,
                const std::string& predicate, int n) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  size_t added = 0;
  for (int i = 0; i < n; ++i) {
    added += InsertEdge(&rel, Node(symbols, i), Node(symbols, (i + 1) % n));
  }
  return added;
}

size_t GenGrid(SymbolTable* symbols, Database* db,
               const std::string& predicate, int width, int height) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  auto id = [&](int x, int y) { return Node(symbols, y * width + x); };
  size_t added = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) added += InsertEdge(&rel, id(x, y), id(x + 1, y));
      if (y + 1 < height) added += InsertEdge(&rel, id(x, y), id(x, y + 1));
    }
  }
  return added;
}

size_t GenZipfGraph(SymbolTable* symbols, Database* db,
                    const std::string& predicate, int num_nodes,
                    int num_edges, double exponent, uint64_t seed) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  SplitMix64 rng(seed);
  // Cumulative Zipf weights over target ranks: node k has weight
  // 1 / (k+1)^exponent, so n0 is the hottest target.
  std::vector<double> cdf(static_cast<size_t>(num_nodes));
  double total = 0.0;
  for (int k = 0; k < num_nodes; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf[static_cast<size_t>(k)] = total;
  }
  size_t added = 0;
  int attempts = 0;
  while (added < static_cast<size_t>(num_edges) &&
         attempts < num_edges * 20) {
    ++attempts;
    int a = static_cast<int>(rng.NextBelow(num_nodes));
    double u = static_cast<double>(rng.Next() >> 11) *
               (1.0 / 9007199254740992.0) * total;
    int b = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (b >= num_nodes) b = num_nodes - 1;
    if (a == b) continue;
    added += InsertEdge(&rel, Node(symbols, a), Node(symbols, b));
  }
  return added;
}

size_t GenFlat(SymbolTable* symbols, Database* db,
               const std::string& predicate, int n, int num_parents,
               uint64_t seed) {
  Relation& rel = db->GetOrCreate(symbols->Intern(predicate), 2);
  SplitMix64 rng(seed);
  size_t added = 0;
  for (int i = 0; i < n; ++i) {
    Value child = symbols->Intern("c" + std::to_string(i));
    Value parent = symbols->Intern(
        "p" + std::to_string(rng.NextBelow(num_parents)));
    added += rel.Insert(Tuple{child, parent}) ? 1 : 0;
  }
  return added;
}

}  // namespace pdatalog
