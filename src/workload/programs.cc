#include "workload/programs.h"

namespace pdatalog {

const std::vector<NamedProgram>& BuiltinPrograms() {
  static const std::vector<NamedProgram>* const kPrograms =
      new std::vector<NamedProgram>{
          {"ancestor",
           "transitive closure of par (the paper's running example)",
           "anc(X, Y) :- par(X, Y).\n"
           "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
           true},
          {"ancestor_nonlinear",
           "non-linear ancestor (the paper's Example 8)",
           "anc(X, Y) :- par(X, Y).\n"
           "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
           false},
          {"same_generation",
           "classic same-generation over up/flat/down",
           "sg(X, Y) :- flat(X, Y).\n"
           "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
           true},
          {"reachability",
           "vertices reachable from the constant source 'n0'",
           "reach(Y) :- edge(n0, Y).\n"
           "reach(Y) :- reach(X), edge(X, Y).\n",
           true},
          {"example6",
           "Section 5, Example 6: p(X,Y) :- p(Y,Z), r(X,Z)",
           "p(X, Y) :- q(X, Y).\n"
           "p(X, Y) :- p(Y, Z), r(X, Z).\n",
           true},
          {"example7",
           "Section 5, Examples 4/7: p(U,V,W) :- p(V,W,Z), q(U,Z)",
           "p(U, V, W) :- s(U, V, W).\n"
           "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
           true},
          {"swap",
           "argument-swapping sirup: 2-cycle dataflow graph",
           "p(X, Y) :- base(X, Y).\n"
           "p(X, Y) :- p(Y, X), base(X, Y).\n",
           true},
          {"even_odd",
           "mutual recursion: parity of path length from marked starts",
           "even(X) :- zero(X).\n"
           "even(Y) :- odd(X), edge(X, Y).\n"
           "odd(Y) :- even(X), edge(X, Y).\n",
           false},
          {"points_to",
           "Andersen-style field-insensitive points-to analysis: "
           "new(v,o), assign(v,w), load(v,p) for v = *p, store(p,w) for "
           "*p = w",
           "pt(V, O) :- new(V, O).\n"
           "pt(V, O) :- assign(V, W), pt(W, O).\n"
           "pt(V, O) :- load(V, P), pt(P, A), heap_pt(A, O).\n"
           "heap_pt(A, O) :- store(P, W), pt(P, A), pt(W, O).\n",
           false},
      };
  return *kPrograms;
}

StatusOr<NamedProgram> FindProgram(const std::string& name) {
  for (const NamedProgram& program : BuiltinPrograms()) {
    if (program.name == name) return program;
  }
  std::string known;
  for (const NamedProgram& program : BuiltinPrograms()) {
    if (!known.empty()) known += ", ";
    known += program.name;
  }
  return Status::NotFound("no built-in program named '" + name +
                          "'; known programs: " + known);
}

}  // namespace pdatalog
