#include "workload/random_program.h"

#include <algorithm>
#include <string>
#include <vector>

#include "datalog/validate.h"
#include "util/hash.h"

namespace pdatalog {

namespace {

struct PredInfo {
  Symbol sym;
  int arity;
};

}  // namespace

StatusOr<Program> GenerateRandomProgram(SymbolTable* symbols,
                                        const RandomProgramOptions& options) {
  SplitMix64 rng(options.seed);
  Program program;
  program.symbols = symbols;

  auto arity = [&] {
    return 1 + static_cast<int>(rng.NextBelow(options.max_arity));
  };

  std::string tag = std::to_string(options.seed);
  std::vector<PredInfo> base;
  for (int i = 0; i < options.num_base; ++i) {
    base.push_back(
        {symbols->Intern("b" + tag + "_" + std::to_string(i)), arity()});
  }
  Symbol dom = symbols->Intern("dom" + tag);
  std::vector<PredInfo> derived;
  for (int i = 0; i < options.num_derived; ++i) {
    derived.push_back(
        {symbols->Intern("d" + tag + "_" + std::to_string(i)), arity()});
  }

  std::vector<Symbol> constants;
  for (int i = 0; i < options.num_constants; ++i) {
    constants.push_back(symbols->Intern("k" + std::to_string(i)));
  }
  std::vector<Symbol> var_pool;
  for (int i = 0; i < 6; ++i) {
    var_pool.push_back(symbols->Intern("V" + std::to_string(i)));
  }

  // Rules. The first rule of each derived predicate uses only base (and
  // previously declared derived) predicates so something is derivable;
  // later rules may be recursive.
  for (int d = 0; d < options.num_derived; ++d) {
    for (int r = 0; r < options.rules_per_derived; ++r) {
      Rule rule;
      rule.head.predicate = derived[d].sym;
      for (int c = 0; c < derived[d].arity; ++c) {
        rule.head.args.push_back(
            Term::Var(var_pool[rng.NextBelow(var_pool.size())]));
      }

      int body_atoms =
          1 + static_cast<int>(rng.NextBelow(options.max_body_atoms));
      for (int a = 0; a < body_atoms; ++a) {
        // First rule of a predicate: only base atoms and strictly
        // earlier derived predicates (keeps a derivable bottom layer).
        bool allow_recursion = r > 0;
        PredInfo pick;
        uint64_t coin = rng.NextBelow(100);
        if (allow_recursion && coin < 40) {
          pick = derived[rng.NextBelow(derived.size())];
        } else if (d > 0 && coin < 55) {
          pick = derived[rng.NextBelow(d)];
        } else {
          pick = base[rng.NextBelow(base.size())];
        }
        Atom atom;
        atom.predicate = pick.sym;
        for (int c = 0; c < pick.arity; ++c) {
          if (rng.NextBelow(100) < 15) {
            atom.args.push_back(
                Term::Const(constants[rng.NextBelow(constants.size())]));
          } else {
            atom.args.push_back(
                Term::Var(var_pool[rng.NextBelow(var_pool.size())]));
          }
        }
        rule.body.push_back(std::move(atom));
      }

      // Safety repair: bind head variables missing from the body with
      // the universal domain predicate.
      std::vector<Symbol> body_vars;
      for (const Atom& atom : rule.body) CollectVariables(atom, &body_vars);
      for (const Term& t : rule.head.args) {
        if (!t.is_var()) continue;
        if (std::find(body_vars.begin(), body_vars.end(), t.sym) ==
            body_vars.end()) {
          Atom atom;
          atom.predicate = dom;
          atom.args.push_back(Term::Var(t.sym));
          rule.body.push_back(std::move(atom));
          body_vars.push_back(t.sym);
        }
      }
      program.rules.push_back(std::move(rule));
    }
  }

  // Facts: random tuples per base predicate; dom covers every constant.
  for (const PredInfo& pred : base) {
    for (int f = 0; f < options.facts_per_base; ++f) {
      Atom fact;
      fact.predicate = pred.sym;
      for (int c = 0; c < pred.arity; ++c) {
        fact.args.push_back(
            Term::Const(constants[rng.NextBelow(constants.size())]));
      }
      program.facts.push_back(std::move(fact));
    }
  }
  for (Symbol k : constants) {
    Atom fact;
    fact.predicate = dom;
    fact.args.push_back(Term::Const(k));
    program.facts.push_back(std::move(fact));
  }

  // The construction guarantees validity; verify anyway.
  ProgramInfo info;
  PDATALOG_RETURN_IF_ERROR(Validate(program, &info));
  return program;
}

StatusOr<Program> GenerateRandomSirup(SymbolTable* symbols,
                                      const RandomSirupOptions& options) {
  SplitMix64 rng(options.seed);
  Program program;
  program.symbols = symbols;

  std::string tag = std::to_string(options.seed);
  const int m = 1 + static_cast<int>(rng.NextBelow(options.max_arity));
  Symbol t = symbols->Intern("t" + tag);
  Symbol s = symbols->Intern("s" + tag);
  Symbol dom = symbols->Intern("domv" + tag);

  std::vector<Symbol> constants;
  for (int i = 0; i < options.num_constants; ++i) {
    constants.push_back(symbols->Intern("c" + std::to_string(i)));
  }
  std::vector<Symbol> var_pool;
  for (int i = 0; i < m + 3; ++i) {
    var_pool.push_back(symbols->Intern("V" + std::to_string(i)));
  }
  auto random_term = [&]() {
    if (rng.NextDouble() < options.constant_probability) {
      return Term::Const(constants[rng.NextBelow(constants.size())]);
    }
    return Term::Var(var_pool[rng.NextBelow(var_pool.size())]);
  };

  // Exit rule: t(Z0..Zm-1) :- s(Z0..Zm-1).
  Rule exit;
  exit.head.predicate = t;
  Atom s_atom;
  s_atom.predicate = s;
  for (int c = 0; c < m; ++c) {
    Term z = Term::Var(symbols->Intern("Z" + std::to_string(c)));
    exit.head.args.push_back(z);
    s_atom.args.push_back(z);
  }
  exit.body.push_back(s_atom);
  program.rules.push_back(std::move(exit));

  // Recursive rule.
  Rule rec;
  rec.head.predicate = t;
  Atom t_atom;
  t_atom.predicate = t;
  for (int c = 0; c < m; ++c) rec.head.args.push_back(random_term());
  for (int c = 0; c < m; ++c) t_atom.args.push_back(random_term());
  rec.body.push_back(t_atom);
  int num_base = 1 + static_cast<int>(rng.NextBelow(options.max_base_atoms));
  std::vector<std::pair<Symbol, int>> base_preds;
  for (int b = 0; b < num_base; ++b) {
    int arity = 1 + static_cast<int>(rng.NextBelow(2));
    Symbol pred =
        symbols->Intern("b" + tag + "_" + std::to_string(b));
    base_preds.emplace_back(pred, arity);
    Atom atom;
    atom.predicate = pred;
    for (int c = 0; c < arity; ++c) atom.args.push_back(random_term());
    rec.body.push_back(std::move(atom));
  }
  // Safety repair.
  std::vector<Symbol> body_vars;
  for (const Atom& atom : rec.body) CollectVariables(atom, &body_vars);
  for (const Term& term : rec.head.args) {
    if (!term.is_var()) continue;
    if (std::find(body_vars.begin(), body_vars.end(), term.sym) ==
        body_vars.end()) {
      Atom atom;
      atom.predicate = dom;
      atom.args.push_back(Term::Var(term.sym));
      rec.body.push_back(std::move(atom));
      body_vars.push_back(term.sym);
    }
  }
  program.rules.push_back(std::move(rec));

  // Facts.
  auto add_facts = [&](Symbol pred, int arity, int count) {
    for (int f = 0; f < count; ++f) {
      Atom fact;
      fact.predicate = pred;
      for (int c = 0; c < arity; ++c) {
        fact.args.push_back(
            Term::Const(constants[rng.NextBelow(constants.size())]));
      }
      program.facts.push_back(std::move(fact));
    }
  };
  add_facts(s, m, options.facts_per_base);
  for (const auto& [pred, arity] : base_preds) {
    add_facts(pred, arity, options.facts_per_base);
  }
  for (Symbol k : constants) {
    Atom fact;
    fact.predicate = dom;
    fact.args.push_back(Term::Const(k));
    program.facts.push_back(std::move(fact));
  }

  ProgramInfo info;
  PDATALOG_RETURN_IF_ERROR(Validate(program, &info));
  return program;
}

}  // namespace pdatalog
