// Random safe Datalog program generation for differential testing: the
// fuzz suites evaluate each generated program with the naive,
// semi-naive and parallel engines and require identical least models.
#ifndef PDATALOG_WORKLOAD_RANDOM_PROGRAM_H_
#define PDATALOG_WORKLOAD_RANDOM_PROGRAM_H_

#include "datalog/ast.h"
#include "util/status.h"

namespace pdatalog {

struct RandomProgramOptions {
  uint64_t seed = 1;
  int num_base = 3;      // base predicates (plus a unary domain predicate)
  int num_derived = 2;
  int max_arity = 3;     // arities drawn from [1, max_arity]
  int rules_per_derived = 2;
  int max_body_atoms = 3;
  int num_constants = 8;   // bounds every relation by num_constants^arity
  int facts_per_base = 15;
};

// Generates a validated program (rules + facts). Guarantees:
//   * every rule is range-restricted (missing head variables are bound
//     by appending dom(V) atoms over a universal domain predicate);
//   * recursion is possible (derived predicates may appear in bodies)
//     but every least model is finite and small (constants are few);
//   * deterministic in `options.seed`.
StatusOr<Program> GenerateRandomProgram(SymbolTable* symbols,
                                        const RandomProgramOptions& options);

struct RandomSirupOptions {
  uint64_t seed = 1;
  int max_arity = 3;       // t's arity drawn from [1, max_arity]
  int max_base_atoms = 2;  // extra base atoms in the recursive rule
  int num_constants = 6;
  int facts_per_base = 12;
  double constant_probability = 0.1;  // constants in rule arguments
};

// Generates a canonical linear sirup (Section 2):
//   t(Z...) :- s(Z...).
//   t(args) :- t(args'), b_1, ..., b_k [, dom(V) safety repairs].
// Head and recursive-atom arguments mix shared variables, fresh
// variables, repeats, and occasional constants, exercising every shape
// the rewriters must handle. Facts for s, the b_m and dom are included.
StatusOr<Program> GenerateRandomSirup(SymbolTable* symbols,
                                      const RandomSirupOptions& options);

}  // namespace pdatalog

#endif  // PDATALOG_WORKLOAD_RANDOM_PROGRAM_H_
