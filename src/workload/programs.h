// A library of named canonical Datalog programs: the paper's running
// examples plus classic recursive-query workloads. Used by benches,
// examples, and tests; also a convenient starting point for users.
#ifndef PDATALOG_WORKLOAD_PROGRAMS_H_
#define PDATALOG_WORKLOAD_PROGRAMS_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace pdatalog {

struct NamedProgram {
  std::string name;
  std::string description;
  std::string source;  // rules only, no facts
  bool linear_sirup;   // canonical linear sirup per Section 2
};

// All built-in programs:
//   ancestor            the paper's running example (linear)
//   ancestor_nonlinear  Example 8 (non-linear)
//   same_generation     classic up/flat/down same-generation (a linear
//                       sirup: one recursive atom among three)
//   reachability        single-source closure with a constant
//   example6            Section 5, Example 6 (linear)
//   example7            Section 5, Example 7 / Example 4 (linear)
//   swap                p(X,Y) :- p(Y,X), ... (2-cycle dataflow graph)
//   even_odd            mutual recursion
//   points_to           Andersen-style inclusion points-to analysis
const std::vector<NamedProgram>& BuiltinPrograms();

// Returns the program with `name`, or NOT_FOUND listing valid names.
StatusOr<NamedProgram> FindProgram(const std::string& name);

}  // namespace pdatalog

#endif  // PDATALOG_WORKLOAD_PROGRAMS_H_
