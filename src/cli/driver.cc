#include "cli/driver.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <memory>
#include <ostream>

#include "core/advisor.h"
#include "core/report.h"
#include "core/dataflow_graph.h"
#include "core/engine.h"
#include "core/partition.h"
#include "datalog/fact_io.h"
#include "datalog/parser.h"
#include "datalog/query.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/engine.h"
#include "server/protocol.h"
#include "storage/snapshot.h"
#include "eval/incremental.h"
#include "eval/naive.h"
#include "workload/programs.h"
#include "eval/seminaive.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pdatalog {

namespace {

bool ConsumePrefix(const std::string& arg, const char* prefix,
                   std::string* rest) {
  std::string p(prefix);
  if (arg.rfind(p, 0) != 0) return false;
  *rest = arg.substr(p.size());
  return true;
}

Status UsageError(const std::string& message) {
  return Status::InvalidArgument(
      message +
      "\nusage: pdatalog [--mode=seq|naive|par] [--processors=N]"
      " [--scheme=auto|example1|example2|example3|general|tradeoff]"
      " [--rho=R] [--seed=S] [--dump=pred] [--facts=pred:file]"
      " [--faults=drop:P,dup:P,reorder:P,corrupt:P,delay:P,polls:N]"
      " [--retransmit] [--block-tuples=N]"
      " [--transport=mutex|spsc] [--transport-ring=N]"
      " [--rebalance-skew=R] [--rebalance-buckets=N]"
      " [--trace=FILE] [--metrics=FILE] [--profile[=FILE]]"
      " [--trace-ring-kb=N] [--incremental]"
      " [--serve[=PORT]] [--serve-batch=N] [--telemetry-port=P]"
      " [--slow-query-ms=T] [--health-queue=N] [--health-lag-ms=M]"
      " [--program=name] [--print-programs] [--stats] [program.dl]");
}

std::string U64(uint64_t v) { return std::to_string(v); }

// Per-ring event capacity from --trace-ring-kb (0 = compiled default).
size_t RingCapacity(const CliOptions& options) {
  if (options.trace_ring_kb <= 0) return kDefaultTraceRingCapacity;
  size_t capacity = static_cast<size_t>(options.trace_ring_kb) * 1024 /
                    sizeof(TraceEvent);
  return capacity == 0 ? 1 : capacity;
}

// Picks default discriminating sequences for the general scheme: each
// rule is keyed on the first variable of its first derived body atom
// (the join variable in the common case), falling back to the first
// head variable for exit rules.
std::vector<GeneralRuleSpec> AutoGeneralSpecs(
    const Program& program, const ProgramInfo& info, int processors,
    uint64_t seed,
    const std::vector<std::pair<int, std::string>>& overrides) {
  std::vector<GeneralRuleSpec> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    Symbol var = kInvalidSymbol;
    for (const Atom& atom : rule.body) {
      if (!info.IsDerived(atom.predicate)) continue;
      for (const Term& t : atom.args) {
        if (t.is_var()) {
          var = t.sym;
          break;
        }
      }
      if (var != kInvalidSymbol) break;
    }
    if (var == kInvalidSymbol) {
      for (const Term& t : rule.head.args) {
        if (t.is_var()) {
          var = t.sym;
          break;
        }
      }
    }
    if (var != kInvalidSymbol) specs[r].vars = {var};
    specs[r].h = DiscriminatingFunction::UniformHash(processors, seed);
  }
  for (const auto& [idx, name] : overrides) {
    if (idx < 0 || idx >= static_cast<int>(specs.size())) continue;
    Symbol sym = program.symbols->Lookup(name);
    if (sym != kInvalidSymbol) specs[idx].vars = {sym};
  }
  return specs;
}

StatusOr<RewriteBundle> BuildBundle(const CliOptions& options,
                                    const Program& program,
                                    const ProgramInfo& info,
                                    const Database& edb,
                                    std::string* scheme_note) {
  using Scheme = CliOptions::Scheme;
  const int P = options.processors;
  // Rebalancing moves hash buckets between workers mid-run, which a
  // fragmented base cannot follow; keep bases replicated instead.
  const bool rebalancing = options.rebalance_skew > 0.0;

  // Schemes other than kGeneral need a linear sirup.
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(program, info);

  Scheme scheme = options.scheme;
  if (scheme == Scheme::kAuto) {
    if (!sirup.ok()) {
      scheme = Scheme::kGeneral;
    } else if (DataflowGraph::Build(*sirup).HasCycle()) {
      StatusOr<LinearSchemeOptions> free_scheme =
          CommunicationFreeScheme(*sirup, P, options.seed);
      if (free_scheme.ok()) {
        *scheme_note =
            "auto: dataflow cycle found; communication-free scheme "
            "(Theorem 3)";
        if (rebalancing) free_scheme->fragment_bases = false;
        return RewriteLinearSirup(program, info, *sirup, P, *free_scheme);
      }
      scheme = Scheme::kExample3;
    } else {
      scheme = Scheme::kExample3;
    }
  }

  switch (scheme) {
    case Scheme::kGeneral: {
      *scheme_note = "general scheme (Section 7), per-rule hash on the "
                     "first derived-atom variable";
      return RewriteGeneral(
          program, info, P,
          AutoGeneralSpecs(program, info, P, options.seed,
                           options.rule_vars),
          /*fragment_bases=*/!rebalancing);
    }
    case Scheme::kExample1: {
      if (!sirup.ok()) return sirup.status();
      StatusOr<LinearSchemeOptions> free_scheme =
          CommunicationFreeScheme(*sirup, P, options.seed);
      if (!free_scheme.ok()) return free_scheme.status();
      *scheme_note = "Example 1: communication-free (needs a dataflow "
                     "cycle; base relation replicated)";
      if (rebalancing) free_scheme->fragment_bases = false;
      return RewriteLinearSirup(program, info, *sirup, P, *free_scheme);
    }
    case Scheme::kExample2: {
      if (!sirup.ok()) return sirup.status();
      const Relation* base = edb.Find(sirup->s);
      if (base == nullptr) {
        return Status::FailedPrecondition(
            "example2 needs facts for the base relation to fragment");
      }
      LinearSchemeOptions o;
      // v(r) = all variables of the recursive rule's base atoms' join
      // with the head -- the paper's instantiation uses the base atom's
      // full variable list.
      const Atom& b0 = sirup->base_atoms.empty() ? sirup->exit.body[0]
                                                 : sirup->base_atoms[0];
      CollectVariables(b0, &o.v_r);
      CollectVariables(sirup->exit.body[0], &o.v_e);
      o.h = MakeArbitraryFragmentation(*base, P, options.seed);
      *scheme_note = "Example 2: arbitrary fragmentation + broadcast";
      return RewriteLinearSirup(program, info, *sirup, P, o);
    }
    case Scheme::kExample3: {
      if (!sirup.ok()) return sirup.status();
      LinearSchemeOptions o;
      // v(r) = variables of the recursive body atom; v(e) = variables
      // of the exit head (positionally complete hash partitioning).
      for (Symbol v : sirup->BodyVarsY()) {
        if (v != kInvalidSymbol) o.v_r.push_back(v);
      }
      for (Symbol v : sirup->ExitVarsZ()) {
        if (v != kInvalidSymbol) o.v_e.push_back(v);
      }
      o.h = DiscriminatingFunction::UniformHash(P, options.seed);
      if (rebalancing) o.fragment_bases = false;
      *scheme_note = "Example 3 style: hash partitioning on the recursive "
                     "atom's variables";
      return RewriteLinearSirup(program, info, *sirup, P, o);
    }
    case Scheme::kTradeoff: {
      if (!sirup.ok()) return sirup.status();
      TradeoffOptions o;
      for (Symbol v : sirup->BodyVarsY()) {
        if (v != kInvalidSymbol) o.v_r.push_back(v);
      }
      for (Symbol v : sirup->ExitVarsZ()) {
        if (v != kInvalidSymbol) o.v_e.push_back(v);
      }
      o.h_prime = DiscriminatingFunction::UniformHash(P, options.seed);
      for (int i = 0; i < P; ++i) {
        o.h_i.push_back(DiscriminatingFunction::KeepOrHash(
            i, options.rho, P, options.seed));
      }
      *scheme_note = "Section 6 trade-off scheme, rho=" +
                     TextTable::Cell(options.rho, 2);
      return RewriteTradeoff(program, info, *sirup, P, o);
    }
    case Scheme::kAuto:
      break;  // handled above
  }
  return Status::Internal("unhandled scheme");
}

}  // namespace

StatusOr<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  CliOptions options;
  std::string rest;
  for (const std::string& arg : args) {
    if (ConsumePrefix(arg, "--mode=", &rest)) {
      if (rest == "seq") {
        options.mode = CliOptions::Mode::kSequential;
      } else if (rest == "naive") {
        options.mode = CliOptions::Mode::kNaive;
      } else if (rest == "par") {
        options.mode = CliOptions::Mode::kParallel;
      } else {
        return UsageError("unknown mode '" + rest + "'");
      }
    } else if (ConsumePrefix(arg, "--processors=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 1 || value > 1024) {
        return UsageError("processors must be in [1, 1024]");
      }
      options.processors = value;
    } else if (ConsumePrefix(arg, "--scheme=", &rest)) {
      if (rest == "auto") {
        options.scheme = CliOptions::Scheme::kAuto;
      } else if (rest == "example1") {
        options.scheme = CliOptions::Scheme::kExample1;
      } else if (rest == "example2") {
        options.scheme = CliOptions::Scheme::kExample2;
      } else if (rest == "example3") {
        options.scheme = CliOptions::Scheme::kExample3;
      } else if (rest == "general") {
        options.scheme = CliOptions::Scheme::kGeneral;
      } else if (rest == "tradeoff") {
        options.scheme = CliOptions::Scheme::kTradeoff;
      } else {
        return UsageError("unknown scheme '" + rest + "'");
      }
    } else if (ConsumePrefix(arg, "--vars=", &rest)) {
      size_t pos = 0;
      while (pos < rest.size()) {
        size_t comma = rest.find(',', pos);
        std::string item = rest.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= item.size()) {
          return UsageError("--vars expects IDX:VAR[,IDX:VAR...]");
        }
        options.rule_vars.emplace_back(std::atoi(item.substr(0, colon).c_str()),
                                       item.substr(colon + 1));
        pos = comma == std::string::npos ? rest.size() : comma + 1;
      }
    } else if (ConsumePrefix(arg, "--rho=", &rest)) {
      options.rho = std::atof(rest.c_str());
      if (options.rho < 0.0 || options.rho > 1.0) {
        return UsageError("rho must be in [0, 1]");
      }
    } else if (ConsumePrefix(arg, "--seed=", &rest)) {
      options.seed = std::strtoull(rest.c_str(), nullptr, 0);
    } else if (ConsumePrefix(arg, "--dump=", &rest)) {
      options.dump_predicate = rest;
    } else if (ConsumePrefix(arg, "--query=", &rest)) {
      options.query = rest;
    } else if (ConsumePrefix(arg, "--save=", &rest)) {
      options.save_directory = rest;
    } else if (ConsumePrefix(arg, "--program=", &rest)) {
      options.builtin = rest;
    } else if (ConsumePrefix(arg, "--facts=", &rest)) {
      size_t colon = rest.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= rest.size()) {
        return UsageError("--facts expects pred:file");
      }
      options.fact_files.emplace_back(rest.substr(0, colon),
                                      rest.substr(colon + 1));
    } else if (ConsumePrefix(arg, "--faults=", &rest)) {
      size_t pos = 0;
      while (pos < rest.size()) {
        size_t comma = rest.find(',', pos);
        std::string item = rest.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t colon = item.find(':');
        if (colon == std::string::npos || colon + 1 >= item.size()) {
          return UsageError("--faults items must look like drop:0.1");
        }
        std::string key = item.substr(0, colon);
        std::string value = item.substr(colon + 1);
        if (key == "drop") {
          options.faults.drop = std::atof(value.c_str());
        } else if (key == "dup" || key == "duplicate") {
          options.faults.duplicate = std::atof(value.c_str());
        } else if (key == "reorder") {
          options.faults.reorder = std::atof(value.c_str());
        } else if (key == "corrupt") {
          options.faults.corrupt = std::atof(value.c_str());
        } else if (key == "delay") {
          options.faults.delay = std::atof(value.c_str());
        } else if (key == "polls") {
          options.faults.delay_polls = std::atoi(value.c_str());
        } else {
          return UsageError("unknown --faults key '" + key + "'");
        }
        pos = comma == std::string::npos ? rest.size() : comma + 1;
      }
    } else if (ConsumePrefix(arg, "--rebalance-skew=", &rest)) {
      options.rebalance_skew = std::atof(rest.c_str());
      if (options.rebalance_skew < 1.0) {
        return UsageError("rebalance-skew must be >= 1 (max/mean busy)");
      }
    } else if (ConsumePrefix(arg, "--rebalance-buckets=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 1 || value > 65536) {
        return UsageError("rebalance-buckets must be in [1, 65536]");
      }
      options.rebalance_buckets = value;
    } else if (ConsumePrefix(arg, "--block-tuples=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 1 || static_cast<uint32_t>(value) > kMaxBlockTuples) {
        return UsageError("block-tuples must be in [1, " +
                          std::to_string(kMaxBlockTuples) + "]");
      }
      options.block_tuples = value;
    } else if (ConsumePrefix(arg, "--transport=", &rest)) {
      TransportKind kind;
      if (!ParseTransportKind(rest, &kind)) {
        return UsageError("unknown transport '" + rest +
                          "' (mutex or spsc)");
      }
      options.transport = rest;
    } else if (ConsumePrefix(arg, "--transport-ring=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 2 || value > (1 << 20)) {
        return UsageError("transport-ring must be in [2, 1048576]");
      }
      options.transport_ring = value;
    } else if (ConsumePrefix(arg, "--trace=", &rest)) {
      if (rest.empty()) return UsageError("--trace needs a file path");
      options.trace_file = rest;
    } else if (ConsumePrefix(arg, "--metrics=", &rest)) {
      if (rest.empty()) return UsageError("--metrics needs a file path");
      options.metrics_file = rest;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (ConsumePrefix(arg, "--profile=", &rest)) {
      if (rest.empty()) return UsageError("--profile needs a file path");
      options.profile = true;
      options.profile_file = rest;
    } else if (ConsumePrefix(arg, "--trace-ring-kb=", &rest)) {
      int value = std::atoi(rest.c_str());
      // Each KiB holds 64 events; cap at 1 GiB per ring.
      if (value < 1 || value > (1 << 20)) {
        return UsageError("trace-ring-kb must be in [1, 1048576]");
      }
      options.trace_ring_kb = value;
    } else if (arg == "--retransmit") {
      options.retransmit = true;
    } else if (arg == "--advise") {
      options.advise = true;
    } else if (arg == "--interactive") {
      options.interactive = true;
    } else if (arg == "--incremental") {
      options.incremental = true;
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (ConsumePrefix(arg, "--serve=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 0 || value > 65535 ||
          rest.find_first_not_of("0123456789") != std::string::npos) {
        return UsageError("--serve port must be in [0, 65535]");
      }
      options.serve = true;
      options.serve_port = value;
    } else if (ConsumePrefix(arg, "--serve-batch=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (value < 1 || value > (1 << 20)) {
        return UsageError("serve-batch must be in [1, 1048576]");
      }
      options.serve_batch = value;
    } else if (ConsumePrefix(arg, "--telemetry-port=", &rest)) {
      int value = std::atoi(rest.c_str());
      if (rest.empty() || value < 0 || value > 65535 ||
          rest.find_first_not_of("0123456789") != std::string::npos) {
        return UsageError("--telemetry-port must be in [0, 65535]");
      }
      options.telemetry_port = value;
    } else if (ConsumePrefix(arg, "--slow-query-ms=", &rest)) {
      options.slow_query_ms = std::atof(rest.c_str());
      if (options.slow_query_ms < 0) {
        return UsageError("slow-query-ms must be >= 0");
      }
    } else if (ConsumePrefix(arg, "--health-queue=", &rest)) {
      long long value = std::atoll(rest.c_str());
      if (rest.empty() || value < 0 ||
          rest.find_first_not_of("0123456789") != std::string::npos) {
        return UsageError("health-queue must be a non-negative integer");
      }
      options.health_queue = value;
    } else if (ConsumePrefix(arg, "--health-lag-ms=", &rest)) {
      options.health_lag_ms = std::atof(rest.c_str());
      if (options.health_lag_ms < 0) {
        return UsageError("health-lag-ms must be >= 0");
      }
    } else if (arg == "--list-programs") {
      options.list_programs = true;
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--stratified") {
      options.stratified = true;
    } else if (ConsumePrefix(arg, "--net=", &rest)) {
      options.net_cost = std::atof(rest.c_str());
      if (options.net_cost < 0) return UsageError("net cost must be >= 0");
    } else if (arg == "--print-programs") {
      options.print_programs = true;
    } else if (arg == "--stats") {
      options.print_stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return UsageError("unknown flag '" + arg + "'");
    } else if (options.program_path.empty()) {
      options.program_path = arg;
    } else {
      return UsageError("multiple program files given");
    }
  }
  if (options.incremental) {
    if (options.mode == CliOptions::Mode::kNaive) {
      return UsageError("--incremental cannot combine with --mode=naive");
    }
    if (options.stratified) {
      return UsageError("--incremental cannot combine with --stratified");
    }
    // Incremental maintenance is a sequential evaluator.
    options.mode = CliOptions::Mode::kSequential;
  }
  if (options.serve && options.interactive) {
    return UsageError("--serve and --interactive are exclusive");
  }
  if (!options.serve &&
      (options.telemetry_port >= 0 || options.slow_query_ms > 0 ||
       options.health_queue >= 0 || options.health_lag_ms >= 0)) {
    return UsageError(
        "--telemetry-port, --slow-query-ms, --health-queue, and "
        "--health-lag-ms require --serve");
  }
  if (options.serve && !options.fact_files.empty()) {
    return UsageError(
        "--serve does not take --facts; put facts in the program or "
        "stream them as '+fact.' updates");
  }
  if (options.list_programs) return options;
  if (options.program_path.empty() && options.builtin.empty()) {
    return UsageError("no program file or --program given");
  }
  if (!options.program_path.empty() && !options.builtin.empty()) {
    return UsageError("give either a program file or --program, not both");
  }
  return options;
}

StatusOr<std::string> RunCli(const CliOptions& options,
                             const std::string& source) {
  if (options.list_programs) {
    std::string out;
    for (const NamedProgram& named : BuiltinPrograms()) {
      out += named.name + (named.linear_sirup ? "  [linear sirup]" : "") +
             "\n    " + named.description + "\n";
    }
    return out;
  }

  SymbolTable symbols;
  std::string effective_source = source;
  if (!options.builtin.empty()) {
    StatusOr<NamedProgram> builtin = FindProgram(options.builtin);
    if (!builtin.ok()) return builtin.status();
    effective_source = builtin->source + source;
  }
  StatusOr<Program> program = ParseProgram(effective_source, &symbols);
  if (!program.ok()) return program.status();
  ProgramInfo info;
  PDATALOG_RETURN_IF_ERROR(Validate(*program, &info));

  Database edb;
  PDATALOG_RETURN_IF_ERROR(edb.LoadFacts(*program));
  for (const auto& [pred, path] : options.fact_files) {
    StatusOr<size_t> loaded =
        LoadFactsFromFile(path, pred, &symbols, &edb);
    if (!loaded.ok()) return loaded.status();
  }

  std::string out;
  out += "program: " + std::to_string(program->rules.size()) + " rules, " +
         std::to_string(program->facts.size()) + " facts, " +
         std::to_string(info.derived.size()) + " derived predicates\n";

  if (options.explain) {
    StatusOr<CompiledProgram> compiled =
        CompiledProgram::Compile(*program, info);
    if (!compiled.ok()) return compiled.status();
    for (size_t r = 0; r < program->rules.size(); ++r) {
      const auto& variants = compiled->rules()[r];
      out += "rule " + std::to_string(r) + " (full):\n";
      out += variants.full.DebugString(symbols);
      for (const auto& [delta_idx, delta_rule] : variants.deltas) {
        out += "rule " + std::to_string(r) + " (delta on body atom " +
               std::to_string(delta_idx) + "):\n";
        out += delta_rule.DebugString(symbols);
      }
    }
    return out;
  }

  auto dump_relation = [&](const Database& db) -> Status {
    if (!options.dump_predicate.empty()) {
      Symbol pred = symbols.Lookup(options.dump_predicate);
      const Relation* rel =
          pred == kInvalidSymbol ? nullptr : db.Find(pred);
      out += options.dump_predicate + ":\n";
      out += rel == nullptr ? std::string("  (no such relation)\n")
                            : rel->ToSortedString(symbols);
    }
    if (!options.query.empty()) {
      StatusOr<QueryResult> answer =
          EvaluateQuery(options.query, &symbols, db);
      if (!answer.ok()) return answer.status();
      out += "?- " + options.query + "\n";
      out += answer->ToString(symbols);
    }
    // Embedded `?- atom.` directives from the program text.
    for (const Atom& query : program->queries) {
      StatusOr<QueryResult> answer =
          EvaluateQuery(ToString(query, symbols), &symbols, db);
      if (!answer.ok()) return answer.status();
      out += "?- " + ToString(query, symbols) + "\n";
      out += answer->ToString(symbols);
    }
    return Status::Ok();
  };

  Stopwatch watch;
  if (options.mode != CliOptions::Mode::kParallel) {
    // Sequential tracer: one worker ring for the evaluator's thread.
    // --profile implies tracing even without a --trace file.
    std::unique_ptr<Tracer> tracer;
    if (!options.trace_file.empty() || options.profile) {
      tracer = std::make_unique<Tracer>(1, RingCapacity(options));
    }
    EvalStats stats;
    if (options.incremental) {
      // One-shot run through the maintenance engine: seed its (empty)
      // database with everything loaded into edb, evaluate, and copy
      // the fixpoint back so the dump/save/query paths below see it.
      StatusOr<IncrementalEvaluator> eval =
          IncrementalEvaluator::Create(*program, info);
      if (!eval.ok()) return eval.status();
      for (const auto& [pred, rel] : edb.relations()) {
        if (info.IsDerived(pred)) continue;
        for (size_t i = 0; i < rel->size(); ++i) {
          StatusOr<bool> added = eval->AddFact(pred, rel->row(i));
          if (!added.ok()) return added.status();
        }
      }
      StatusOr<EvalStats> batch = eval->Evaluate();
      if (!batch.ok()) return batch.status();
      stats = *batch;
      for (const auto& [pred, rel] : eval->db().relations()) {
        Relation& dest = edb.GetOrCreate(pred, rel->arity());
        for (size_t i = 0; i < rel->size(); ++i) dest.Insert(rel->row(i));
      }
      out += "mode: sequential incremental\n";
    } else if (options.mode == CliOptions::Mode::kSequential) {
      EvalOptions eopts;
      eopts.stratified = options.stratified;
      if (tracer != nullptr) eopts.trace = tracer->ring(0);
      PDATALOG_RETURN_IF_ERROR(SemiNaiveEvaluate(*program, info, &edb,
                                                 &stats, nullptr, eopts));
      out += options.stratified
                 ? "mode: sequential semi-naive (stratified)\n"
                 : "mode: sequential semi-naive\n";
    } else {
      PDATALOG_RETURN_IF_ERROR(NaiveEvaluate(*program, info, &edb, &stats));
      out += "mode: sequential naive\n";
    }
    double wall_seconds = watch.ElapsedSeconds();
    out += "firings: " + U64(stats.firings) +
           ", tuples: " + U64(stats.tuples_inserted) +
           ", rounds: " + std::to_string(stats.rounds) + ", " +
           TextTable::Cell(wall_seconds * 1e3, 2) + " ms\n";
    for (Symbol p : info.predicates) {
      if (!info.IsDerived(p)) continue;
      out += "  " + symbols.Name(p) + ": " +
             std::to_string(edb.Find(p)->size()) + " tuples\n";
    }
    if (tracer != nullptr && !options.trace_file.empty()) {
      PDATALOG_RETURN_IF_ERROR(
          WriteChromeTrace(*tracer, options.trace_file));
      out += "trace: " + U64(tracer->total_events()) + " events (" +
             U64(tracer->total_dropped()) + " dropped) -> " +
             options.trace_file + "\n";
    }
    if (tracer != nullptr && tracer->total_dropped() > 0) {
      out += TraceDropWarning(tracer->total_dropped());
    }
    if (!options.metrics_file.empty()) {
      MetricsRegistry m;
      m.AddCounter("eval.rounds", static_cast<uint64_t>(stats.rounds));
      m.AddCounter("eval.firings", stats.firings);
      m.AddCounter("eval.tuples_inserted", stats.tuples_inserted);
      m.AddCounter("eval.rows_examined", stats.rows_examined);
      if (tracer != nullptr) {
        m.AddCounter("trace.events", tracer->total_events());
        m.AddCounter("trace.dropped", tracer->total_dropped());
      }
      m.SetGauge("run.wall_seconds", wall_seconds);
      PDATALOG_RETURN_IF_ERROR(
          WriteMetricsJson(m, options.metrics_file));
      out += "metrics: " + std::to_string(m.size()) + " metrics -> " +
             options.metrics_file + "\n";
    }
    if (options.profile && tracer != nullptr) {
      ProfileReport prof = AnalyzeTrace(*tracer);
      out += prof.ToText();
      if (!options.profile_file.empty()) {
        PDATALOG_RETURN_IF_ERROR(
            WriteProfileJson(prof, options.profile_file));
        out += "profile: -> " + options.profile_file + "\n";
      }
    }
    if (!options.save_directory.empty()) {
      StatusOr<size_t> saved =
          SaveDatabase(edb, symbols, options.save_directory);
      if (!saved.ok()) return saved.status();
      out += "saved " + std::to_string(*saved) + " relations to " +
             options.save_directory + "\n";
    }
    PDATALOG_RETURN_IF_ERROR(dump_relation(edb));
    return out;
  }

  if (options.advise) {
    StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
    if (!sirup.ok()) return sirup.status();
    AdvisorOptions aopts;
    aopts.num_processors = options.processors;
    aopts.seed = options.seed;
    aopts.cost = CostParams{1.0, options.net_cost, 0.0};
    aopts.tradeoff_rhos = {0.5, 1.0};
    StatusOr<AdvisorReport> report =
        AdviseScheme(*program, info, *sirup, &edb, aopts);
    if (!report.ok()) return report.status();
    out += "scheme advice (net/cpu cost ratio " +
           TextTable::Cell(options.net_cost, 2) + ", " +
           std::to_string(options.processors) + " processors):\n";
    out += report->ToString();
    out += "advice: " + report->best().name + " — " +
           report->best().description + "\n";
    return out;
  }

  std::string scheme_note;
  StatusOr<RewriteBundle> bundle =
      BuildBundle(options, *program, info, edb, &scheme_note);
  if (!bundle.ok()) return bundle.status();

  out += "mode: parallel, " + std::to_string(options.processors) +
         " processors\nscheme: " + scheme_note + "\n";
  // Non-default backend only, so existing report expectations hold.
  if (options.transport != "mutex") {
    out += "transport: " + options.transport + "\n";
  }
  if (options.print_programs) {
    for (int i = 0; i < bundle->num_processors; ++i) {
      out += "-- processor " + std::to_string(i) + " --\n";
      out += ToString(bundle->per_processor[i]);
    }
  }

  ParallelOptions popts;
  popts.faults = options.faults;
  popts.faults.seed = options.seed;
  popts.retransmit = options.retransmit;
  popts.block_tuples = options.block_tuples;
  // Parse already validated the name; default stays kMutex.
  ParseTransportKind(options.transport, &popts.transport);
  popts.transport_ring_frames = options.transport_ring;
  // Corruption flips wire bytes, so it needs the serialized channels.
  if (popts.faults.corrupt > 0) popts.serialize_messages = true;
  popts.rebalance.skew_threshold = options.rebalance_skew;
  popts.rebalance.buckets_per_processor =
      static_cast<uint32_t>(options.rebalance_buckets);
  popts.rebalance.net_per_message = options.net_cost;
  std::unique_ptr<Tracer> tracer;
  if (!options.trace_file.empty() || options.profile) {
    tracer =
        std::make_unique<Tracer>(options.processors, RingCapacity(options));
    popts.tracer = tracer.get();
  }
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
  if (!result.ok()) return result.status();

  out += "firings: " + U64(result->total_firings) +
         ", output tuples: " + U64(result->pooled_tuples) +
         ", cross messages: " + U64(result->cross_tuples) +
         " in " + U64(result->cross_frames) + " frames (" +
         U64(result->cross_bytes) + " bytes)" +
         ", self-routed: " + U64(result->self_tuples) + ", " +
         TextTable::Cell(result->wall_seconds * 1e3, 2) + " ms\n";
  if (result->faults.any()) {
    out += "faults injected: dropped " + U64(result->faults.dropped) +
           ", duplicated " + U64(result->faults.duplicated) +
           ", reordered " + U64(result->faults.reordered) +
           ", corrupted " + U64(result->faults.corrupted) + ", delayed " +
           U64(result->faults.delayed) + "; retransmitted " +
           U64(result->faults.retransmitted) + "\n";
  }
  if (options.rebalance_skew > 0.0) {
    out += "rebalance: " + U64(result->metrics.counter("rebalance.moves")) +
           " moves, " +
           U64(result->metrics.counter("rebalance.replications")) +
           " replications in " +
           U64(result->metrics.counter("rebalance.rounds")) + " epochs (" +
           U64(result->metrics.counter("rebalance.windows")) +
           " windows observed)\n";
  }
  for (Symbol p : bundle->derived) {
    out += "  " + symbols.Name(p) + ": " +
           std::to_string(result->output.Find(p)->size()) + " tuples\n";
  }
  if (tracer != nullptr) {
    result->metrics.AddCounter("trace.events", tracer->total_events());
    result->metrics.AddCounter("trace.dropped", tracer->total_dropped());
    if (!options.trace_file.empty()) {
      PDATALOG_RETURN_IF_ERROR(
          WriteChromeTrace(*tracer, options.trace_file));
      out += "trace: " + U64(tracer->total_events()) + " events (" +
             U64(tracer->total_dropped()) + " dropped) -> " +
             options.trace_file + "\n";
    }
    if (tracer->total_dropped() > 0) {
      out += TraceDropWarning(tracer->total_dropped());
    }
  }
  if (!options.metrics_file.empty()) {
    PDATALOG_RETURN_IF_ERROR(
        WriteMetricsJson(result->metrics, options.metrics_file));
    out += "metrics: " + std::to_string(result->metrics.size()) +
           " metrics -> " + options.metrics_file + "\n";
  }
  if (options.print_stats) {
    ReportOptions ropts;
    ropts.totals = false;
    ropts.channel_matrix = true;
    out += RenderReport(*result, ropts);
    out += RenderBspTimeline(*result, 1.0, options.net_cost);
  }
  if (options.profile && tracer != nullptr) {
    ProfileReport prof = AnalyzeRun(*tracer, MakeProfileContext(*result));
    out += prof.ToText();
    if (!options.profile_file.empty()) {
      PDATALOG_RETURN_IF_ERROR(WriteProfileJson(prof, options.profile_file));
      out += "profile: -> " + options.profile_file + "\n";
    }
  }
  if (!options.save_directory.empty()) {
    StatusOr<size_t> saved =
        SaveDatabase(result->output, symbols, options.save_directory);
    if (!saved.ok()) return saved.status();
    out += "saved " + std::to_string(*saved) + " relations to " +
           options.save_directory + "\n";
  }
  PDATALOG_RETURN_IF_ERROR(dump_relation(result->output));
  return out;
}

void QueryLoop(const Database& db, SymbolTable* symbols, std::istream& in,
               std::ostream& out) {
  std::string line;
  out << "?- " << std::flush;
  while (std::getline(in, line)) {
    // Trim whitespace; blank line quits.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) break;
    size_t last = line.find_last_not_of(" \t\r");
    std::string query = line.substr(first, last - first + 1);
    StatusOr<QueryResult> answer = EvaluateQuery(query, symbols, db);
    if (!answer.ok()) {
      out << answer.status().ToString() << "\n";
    } else {
      out << answer->ToString(*symbols);
    }
    out << "?- " << std::flush;
  }
  out << "\n";
}

Status RunInteractive(const CliOptions& options, const std::string& source,
                      std::istream& in, std::ostream& out) {
  // Produce the normal report first.
  StatusOr<std::string> report = RunCli(options, source);
  if (!report.ok()) return report.status();
  out << *report;

  // Re-evaluate to obtain the database for querying (RunCli returns
  // only text; evaluation here is cheap relative to an interactive
  // session). Sequential evaluation yields the same least model as any
  // scheme (Theorem 1).
  SymbolTable symbols;
  std::string effective_source = source;
  if (!options.builtin.empty()) {
    StatusOr<NamedProgram> builtin = FindProgram(options.builtin);
    if (!builtin.ok()) return builtin.status();
    effective_source = builtin->source + source;
  }
  StatusOr<Program> program = ParseProgram(effective_source, &symbols);
  if (!program.ok()) return program.status();
  ProgramInfo info;
  PDATALOG_RETURN_IF_ERROR(Validate(*program, &info));
  Database db;
  PDATALOG_RETURN_IF_ERROR(db.LoadFacts(*program));
  for (const auto& [pred, path] : options.fact_files) {
    StatusOr<size_t> loaded = LoadFactsFromFile(path, pred, &symbols, &db);
    if (!loaded.ok()) return loaded.status();
  }
  EvalStats stats;
  PDATALOG_RETURN_IF_ERROR(SemiNaiveEvaluate(*program, info, &db, &stats));
  QueryLoop(db, &symbols, in, out);
  return Status::Ok();
}

Status RunServe(const CliOptions& options, const std::string& source,
                std::istream& in, std::ostream& out) {
  std::string effective_source = source;
  if (!options.builtin.empty()) {
    StatusOr<NamedProgram> builtin = FindProgram(options.builtin);
    if (!builtin.ok()) return builtin.status();
    effective_source = builtin->source + source;
  }

  ServerOptions sopts;
  sopts.max_batch = static_cast<size_t>(options.serve_batch);
  sopts.trace = !options.trace_file.empty();
  sopts.trace_ring_capacity = RingCapacity(options);
  sopts.slow_query_ms = options.slow_query_ms;
  if (options.health_queue >= 0) {
    sopts.health.max_queue_depth =
        static_cast<uint64_t>(options.health_queue);
  }
  if (options.health_lag_ms >= 0) {
    sopts.health.max_lag_ms = options.health_lag_ms;
  }
  StatusOr<std::unique_ptr<ServerEngine>> engine =
      ServerEngine::Create(effective_source, sopts);
  if (!engine.ok()) return engine.status();
  ServerEngine* server = engine->get();

  std::shared_ptr<const ServerSnapshot> snapshot = server->snapshot();
  out << "serving: epoch " << snapshot->epoch << ", "
      << snapshot->view.relation_count() << " relations, "
      << snapshot->view.total_rows() << " rows\n";

  std::unique_ptr<SocketServer> socket;
  if (options.serve_port >= 0) {
    socket = std::make_unique<SocketServer>(server);
    PDATALOG_RETURN_IF_ERROR(socket->Start(options.serve_port));
    out << "listening on 127.0.0.1:" << socket->port() << "\n";
  }
  std::unique_ptr<TelemetryHttpServer> telemetry;
  if (options.telemetry_port >= 0) {
    telemetry = std::make_unique<TelemetryHttpServer>(server);
    PDATALOG_RETURN_IF_ERROR(telemetry->Start(options.telemetry_port));
    out << "telemetry on http://127.0.0.1:" << telemetry->port()
        << "/metrics\n";
  }
  out.flush();

  // The stdio session owns the server's lifetime: EOF or `!quit` here
  // stops the listeners and shuts the engine down.
  ServeLoop(server, in, out);
  if (telemetry != nullptr) telemetry->Stop();
  if (socket != nullptr) socket->Stop();
  server->Shutdown();

  // Post-shutdown exports, mirroring the one-shot paths: the Chrome
  // trace carries kQuery/kApply/kMaintain spans (query End events carry
  // the snapshot epoch as their arg), the metrics JSON the final
  // telemetry sample.
  Tracer* tracer = server->tracer();
  if (tracer != nullptr && !options.trace_file.empty()) {
    PDATALOG_RETURN_IF_ERROR(WriteChromeTrace(*tracer, options.trace_file));
    out << "trace: " << tracer->total_events() << " events ("
        << tracer->total_dropped() << " dropped) -> " << options.trace_file
        << "\n";
  }
  if (tracer != nullptr && tracer->total_dropped() > 0) {
    out << TraceDropWarning(tracer->total_dropped());
  }
  if (!options.metrics_file.empty()) {
    MetricsRegistry m = server->MetricsCopy();
    if (tracer != nullptr) {
      m.AddCounter("trace.events", tracer->total_events());
      m.AddCounter("trace.dropped", tracer->total_dropped());
    }
    PDATALOG_RETURN_IF_ERROR(WriteMetricsJson(m, options.metrics_file));
    out << "metrics: " << m.size() << " metrics -> " << options.metrics_file
        << "\n";
  }
  out.flush();
  return Status::Ok();
}

}  // namespace pdatalog
