// Command-line driver: everything behind the `pdatalog` tool, exposed
// as a library so it is unit-testable.
//
// Usage (see tools/pdatalog.cc):
//   pdatalog [options] [program.dl]
//     --list-programs           list the built-in programs and exit
//     --program=name            use a built-in program instead of a file
//                               (see workload/programs.h, e.g. ancestor,
//                               points_to)
//     --facts=pred:file         load extensional tuples for `pred` from a
//                               tab/comma-separated file (repeatable)
//     --mode=seq|naive|par      evaluation mode (default par)
//     --processors=N            processor count (default 4)
//     --scheme=auto|example1|example2|example3|general|tradeoff
//                               parallelization scheme (default auto)
//     --rho=R                   keep-fraction for --scheme=tradeoff
//     --vars=0:Y,1:Z            discriminating variable per rule index
//                               for --scheme=general (default: first
//                               variable of each rule's first derived
//                               body atom)
//     --seed=S                  hash seed (default 0x5eed)
//     --dump=pred               print the tuples of one predicate
//     --query='anc(a, X)'       print the bindings of a query atom
//     --interactive             after evaluation, read query atoms from
//                               stdin (one per line; blank line or EOF
//                               quits) and print their bindings
//     --incremental             sequential mode only: evaluate through
//                               the incremental maintenance engine
//                               (eval/incremental.h) instead of the
//                               batch evaluator; same least model
//     --serve[=PORT]            serving mode: materialize the fixpoint
//                               once, then answer the line protocol
//                               (docs/cli.md) on stdin/stdout until EOF
//                               or `!quit`. With =PORT, additionally
//                               listen on 127.0.0.1:PORT (0 = ephemeral)
//     --serve-batch=N           serving mode: max facts absorbed per
//                               maintenance cycle (default 256)
//     --telemetry-port=P        serving mode: HTTP scrape endpoint on
//                               127.0.0.1:P (0 = ephemeral) serving
//                               GET /metrics (Prometheus text
//                               exposition) and GET /health (200/503)
//     --slow-query-ms=T         serving mode: queries at or above T ms
//                               are captured in the slow-query ring
//                               (shown by !stats and /metrics); 0 = off
//     --health-queue=N          serving mode: !health / /health flips
//                               to degraded beyond N pending updates
//                               (default 4096; 0 disables the check)
//     --health-lag-ms=M         serving mode: degraded when the oldest
//                               pending update is older than M ms
//                               (default 5000; 0 disables the check)
//     --save=dir                save all relations (input + derived) as
//                               TSV files under dir after evaluation
//     --advise                  profile candidate schemes and print a
//                               ranking instead of running one (linear
//                               sirups only); --net sets the modeled
//                               per-message cost relative to a firing
//     --net=C                   per-message cost for --advise (default 1)
//     --explain                 print the compiled access plans (full +
//                               semi-naive delta variants) and exit
//     --faults=drop:0.1,dup:0.05,reorder:0.1,corrupt:0.05,delay:0.1,polls:3
//                               inject channel faults with the given
//                               per-message probabilities (parallel mode;
//                               keys may be omitted; corrupt implies
//                               serialized channels; seeded by --seed).
//                               Without --retransmit the run *detects*
//                               losses and fails; with it, it recovers.
//     --retransmit              enable the at-least-once channel
//                               protocol (resend unacknowledged frames)
//     --block-tuples=N          flush threshold for the block wire
//                               protocol: outgoing tuples accumulate per
//                               (destination, predicate) and ship as one
//                               frame per block, flushing mid-round at N
//                               tuples (default 256; 1 = per-tuple frames)
//     --transport=mutex|spsc    channel data-movement backend (parallel
//                               mode): the reference mutex queue
//                               (default) or a bounded lock-free SPSC
//                               ring per channel. Faults/retransmit run
//                               on the mutex slow path either way, so
//                               results are identical
//     --transport-ring=N        SPSC ring capacity in frames (default 0
//                               = auto-scale with --processors)
//     --rebalance-skew=R        parallel mode: enable skew-adaptive
//                               repartitioning — when max/mean busy time
//                               reaches R (>= 1), the hottest hash bucket
//                               of the straggler is moved to the idlest
//                               worker (or replicated, when the cost
//                               model prefers it). Keeps base relations
//                               replicated instead of fragmented. Off by
//                               default; decisions appear in --profile
//                               and as rebalance.* metrics
//     --rebalance-buckets=N     buckets per processor for the remap
//                               overlay (default 32)
//     --stratified              sequential modes only: evaluate SCC
//                               strata bottom-up
//     --trace=FILE              write a Chrome-trace (Perfetto) JSON of
//                               per-worker phase spans (init/drain/probe/
//                               insert/encode/flush/idle) and round
//                               instants; open at ui.perfetto.dev or
//                               chrome://tracing
//     --metrics=FILE            write the run's metrics registry (named
//                               counters, gauges, and latency/size
//                               histograms) as flat JSON
//     --profile[=FILE]          analyze the trace after the run: per-round
//                               busy/idle and skew ratios, straggler,
//                               communication matrix, critical path, and
//                               latency percentiles; printed as text and,
//                               with =FILE, also written as JSON
//     --trace-ring-kb=N         per-worker trace ring capacity in KiB
//                               (default 1024 = 64K events); raise it when
//                               the report warns about dropped events
//     --print-programs          print the rewritten per-processor programs
//     --stats                   print per-processor statistics
//
// `auto` picks the communication-free scheme of Theorem 3 when the
// dataflow graph of a linear sirup has a cycle, the paper's Example 3
// hash scheme for acyclic linear sirups, and a per-rule general scheme
// (Section 7) for everything else.
#ifndef PDATALOG_CLI_DRIVER_H_
#define PDATALOG_CLI_DRIVER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/fault.h"
#include "datalog/symbol_table.h"
#include "util/status.h"

namespace pdatalog {

struct CliOptions {
  enum class Mode { kSequential, kNaive, kParallel };
  enum class Scheme {
    kAuto,
    kExample1,
    kExample2,
    kExample3,
    kGeneral,
    kTradeoff,
  };

  Mode mode = Mode::kParallel;
  Scheme scheme = Scheme::kAuto;
  int processors = 4;
  double rho = 0.5;        // tradeoff keep-fraction
  // --scheme=general overrides: rule index -> variable name.
  std::vector<std::pair<int, std::string>> rule_vars;
  uint64_t seed = 0x5eed;
  std::string dump_predicate;
  std::string query;  // single-atom query, e.g. "anc(a, X)"
  std::string save_directory;
  bool interactive = false;
  // --incremental: run the sequential one-shot through the incremental
  // maintenance engine (forces Mode::kSequential).
  bool incremental = false;
  // --serve[=PORT]: resident serving mode. serve_port -1 = stdio only;
  // [0, 65535] = also listen on 127.0.0.1 (0 picks an ephemeral port).
  bool serve = false;
  int serve_port = -1;
  int serve_batch = 256;  // --serve-batch
  // --telemetry-port=P: serving-mode HTTP scrape endpoint. -1 = off;
  // [0, 65535] listens on 127.0.0.1 (0 picks an ephemeral port).
  int telemetry_port = -1;
  // --slow-query-ms: slow-query capture threshold (0 = off).
  double slow_query_ms = 0;
  // --health-queue / --health-lag-ms: degraded thresholds. -1 = engine
  // default (see obs/telemetry.h HealthThresholds); 0 disables a check.
  int64_t health_queue = -1;
  double health_lag_ms = -1;
  bool list_programs = false;
  bool print_programs = false;
  bool print_stats = false;
  bool advise = false;
  bool explain = false;
  bool stratified = false;
  // --faults / --retransmit / --block-tuples (parallel mode only).
  FaultSpec faults;
  bool retransmit = false;
  int block_tuples = 256;
  // --transport / --transport-ring (parallel mode only). Validated at
  // parse time; "mutex" or "spsc".
  std::string transport = "mutex";
  int transport_ring = 0;
  // --rebalance-skew / --rebalance-buckets (parallel mode only;
  // 0 = rebalancing off).
  double rebalance_skew = 0.0;
  int rebalance_buckets = 32;
  // --trace / --metrics observability exports (empty = disabled).
  std::string trace_file;
  std::string metrics_file;
  // --profile[=FILE]: post-run trace analysis (text; JSON when a file
  // is given). Implies tracing even without --trace.
  bool profile = false;
  std::string profile_file;
  // --trace-ring-kb: per-worker ring capacity in KiB (0 = default).
  int trace_ring_kb = 0;
  double net_cost = 1.0;  // --advise cost model
  std::string program_path;  // informational; source is passed separately
  std::string builtin;       // name of a built-in program, if chosen
  // (predicate, file path) pairs for --facts.
  std::vector<std::pair<std::string, std::string>> fact_files;
};

// Parses tool arguments (argv[1..]). Returns an error with a usage hint
// on unknown flags or malformed values.
StatusOr<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

// Runs `source` under `options` and returns the textual report the tool
// prints. Fails with the underlying error for parse/validation/engine
// problems.
StatusOr<std::string> RunCli(const CliOptions& options,
                             const std::string& source);

// The --interactive loop, separated for testability: reads one query
// atom per line from `in` and writes its bindings to `out`. A blank
// line or EOF ends the loop. Malformed queries print the error and
// continue. Needs the evaluated database; RunCli cannot return it, so
// the tool re-runs evaluation itself when --interactive is set — see
// RunInteractive below, which does parse + evaluate + loop in one call.
void QueryLoop(const class Database& db, SymbolTable* symbols,
               std::istream& in, std::ostream& out);

// Full interactive session: evaluates like RunCli (parallel or
// sequential per options), prints the RunCli report to `out`, then runs
// QueryLoop over the result.
Status RunInteractive(const CliOptions& options, const std::string& source,
                      std::istream& in, std::ostream& out);

// The --serve mode: builds a resident ServerEngine (src/server/) from
// the program, optionally starts the socket listener, then runs the
// line protocol over `in`/`out` until EOF or `!quit`. Separated from
// the tool for testability.
Status RunServe(const CliOptions& options, const std::string& source,
                std::istream& in, std::ostream& out);

}  // namespace pdatalog

#endif  // PDATALOG_CLI_DRIVER_H_
