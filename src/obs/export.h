// Exporters for the observability subsystem: a Chrome-trace JSON
// writer (loads in chrome://tracing and Perfetto's ui.perfetto.dev)
// and a flat metrics JSON writer. Both have string-returning variants
// for tests and file-writing variants for the CLI's --trace/--metrics.
#ifndef PDATALOG_OBS_EXPORT_H_
#define PDATALOG_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace pdatalog {

// Renders every ring of `tracer` in the Chrome trace-event JSON format:
// one "B"/"E" pair per span, one "i" event per instant, one metadata
// event naming each ring's thread ("worker N" / "engine"). Timestamps
// are microseconds relative to the tracer's epoch. The writer
// sanitizes rings that dropped events mid-span: an unmatched End is
// skipped and unclosed Begins are closed at the ring's last timestamp,
// so the output always has well-formed begin/end nesting.
//
// kFlowSend/kFlowRecv instants are not emitted directly; instead the
// writer pairs them by (sender, receiver, frame sequence) across rings
// and emits one Chrome flow-start ("ph":"s") on the sender's track and
// one flow-finish ("ph":"f") on the receiver's track per matched pair,
// sharing a unique numeric id — Perfetto draws these as arrows between
// the enclosing slices. Unmatched points (ring overflow dropped one
// side) are omitted, so every exported flow id appears exactly twice.
std::string ChromeTraceJson(const Tracer& tracer);

// Renders the registry as one flat JSON object:
//   {"counters": {name: integer, ...}, "gauges": {name: number, ...},
//    "histograms": {name: {count, sum, max, mean, p50, p95, p99,
//                          buckets: [...]}, ...}}
// A histogram's buckets array is trimmed after its last non-empty
// log2 bucket.
std::string MetricsJson(const MetricsRegistry& metrics);

// File-writing variants. Failures (unwritable path) return an error
// Status naming the path.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);
Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path);

// Shared helper: writes `body` to `path`, returning an error Status
// naming `what` and the path on failure. Used by the exporters above
// and by the profile-report writer (obs/analyze.h).
Status WriteTextFile(const std::string& body, const std::string& path,
                     const char* what);

}  // namespace pdatalog

#endif  // PDATALOG_OBS_EXPORT_H_
