// Exporters for the observability subsystem: a Chrome-trace JSON
// writer (loads in chrome://tracing and Perfetto's ui.perfetto.dev)
// and a flat metrics JSON writer. Both have string-returning variants
// for tests and file-writing variants for the CLI's --trace/--metrics.
#ifndef PDATALOG_OBS_EXPORT_H_
#define PDATALOG_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace pdatalog {

// Renders every ring of `tracer` in the Chrome trace-event JSON format:
// one "B"/"E" pair per span, one "i" event per instant, one metadata
// event naming each ring's thread ("worker N" / "engine"). Timestamps
// are microseconds relative to the tracer's epoch. The writer
// sanitizes rings that dropped events mid-span: an unmatched End is
// skipped and unclosed Begins are closed at the ring's last timestamp,
// so the output always has well-formed begin/end nesting.
std::string ChromeTraceJson(const Tracer& tracer);

// Renders the registry as one flat JSON object:
//   {"counters": {name: integer, ...}, "gauges": {name: number, ...}}
std::string MetricsJson(const MetricsRegistry& metrics);

// File-writing variants. Failures (unwritable path) return an error
// Status naming the path.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);
Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path);

}  // namespace pdatalog

#endif  // PDATALOG_OBS_EXPORT_H_
