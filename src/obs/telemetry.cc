#include "obs/telemetry.h"

#include <cinttypes>
#include <cstdio>

namespace pdatalog {
namespace {

// Formats a double the way the exposition format expects: plain
// decimal, no locale, enough digits to round-trip counters exactly.
std::string ExpoNumber(double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value < 1e15 && value > -1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

}  // namespace

std::string HealthVerdict::ToString() const {
  if (ok) return "ok";
  std::string out = "degraded (";
  for (size_t i = 0; i < reasons.size(); ++i) {
    if (i != 0) out += "; ";
    out += reasons[i];
  }
  out += ")";
  return out;
}

HealthVerdict EvaluateHealth(uint64_t queue_depth, double lag_ms,
                             const HealthThresholds& thresholds) {
  HealthVerdict verdict;
  if (thresholds.max_queue_depth > 0 &&
      queue_depth > thresholds.max_queue_depth) {
    verdict.ok = false;
    verdict.reasons.push_back(
        "update queue depth " + std::to_string(queue_depth) + " > " +
        std::to_string(thresholds.max_queue_depth));
  }
  if (thresholds.max_lag_ms > 0 && lag_ms > thresholds.max_lag_ms) {
    verdict.ok = false;
    verdict.reasons.push_back("maintenance lag " + ExpoNumber(lag_ms) +
                              " ms > " + ExpoNumber(thresholds.max_lag_ms) +
                              " ms");
  }
  return verdict;
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out = "pdatalog_";
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        break;  // a bare CR has no escape; drop it
      default:
        out += c;
    }
  }
  return out;
}

std::string ExpositionText(const MetricsRegistry& metrics,
                           const std::vector<SlowQueryRecord>& slow) {
  std::string out;
  for (const auto& [name, value] : metrics.counters()) {
    const std::string expo = SanitizeMetricName(name) + "_total";
    out += "# TYPE " + expo + " counter\n";
    out += expo + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string expo = SanitizeMetricName(name);
    out += "# TYPE " + expo + " gauge\n";
    out += expo + " " + ExpoNumber(value) + "\n";
  }
  for (const auto& [name, h] : metrics.histograms()) {
    const std::string expo = SanitizeMetricName(name);
    out += "# TYPE " + expo + " histogram\n";
    // Log2 buckets become cumulative `le` series. Bucket b >= 1 holds
    // integer values [2^(b-1), 2^b), so its inclusive upper bound is
    // 2^b - 1; bucket 0 holds exactly 0. Trailing empty buckets are
    // trimmed (the +Inf bucket always closes the family at count()).
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) != 0) last = b;
    }
    uint64_t cumulative = 0;
    for (int b = 0; b <= last; ++b) {
      cumulative += h.bucket(b);
      const uint64_t le = b == 0 ? 0 : (uint64_t{1} << b) - 1;
      out += expo + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += expo + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
           "\n";
    out += expo + "_sum " + std::to_string(h.sum()) + "\n";
    out += expo + "_count " + std::to_string(h.count()) + "\n";
  }
  if (!slow.empty()) {
    // Bounded label cardinality: one series per retained ring slot.
    out += "# TYPE pdatalog_slow_query_latency_ms gauge\n";
    for (size_t i = 0; i < slow.size(); ++i) {
      const SlowQueryRecord& r = slow[i];
      out += "pdatalog_slow_query_latency_ms{slot=\"" +
             std::to_string(i) + "\",atom=\"" + EscapeLabelValue(r.atom) +
             "\",epoch=\"" + std::to_string(r.epoch) + "\",scan_rows=\"" +
             std::to_string(r.scan_rows) + "\"} " +
             ExpoNumber(static_cast<double>(r.latency_ns) / 1e6) + "\n";
    }
  }
  return out;
}

}  // namespace pdatalog
