// The run-level metrics registry: named monotonic counters and gauges.
//
// The registry is the single source of truth for a run's aggregate
// statistics. The engine absorbs the ad-hoc counters kept by workers
// and channels into it once, after the workers have joined, and the
// `ParallelResult`'s legacy numeric fields are projections of registry
// entries — so the text report (which renders those fields) and the
// `--metrics` JSON export (which renders the registry) can never
// disagree. Absorption is post-run by design: the hot path keeps its
// uncontended per-worker counters and pays nothing for the registry.
//
// Naming convention: dot-separated lowercase paths —
//   run.*      aggregate totals (run.firings, run.cross_tuples, ...)
//   worker.N.* one entry per WorkerStats field per processor
//   faults.*   injected-fault and reliability counters
//   trace.*    tracer bookkeeping (events recorded / dropped)
//   eval.*     sequential-evaluator statistics (CLI seq modes)
#ifndef PDATALOG_OBS_METRICS_H_
#define PDATALOG_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/histogram.h"

namespace pdatalog {

class MetricsRegistry {
 public:
  // Adds `delta` to the named monotonic counter, creating it at zero.
  void AddCounter(const std::string& name, uint64_t delta) {
    counters_[name] += delta;
  }

  // Sets the named gauge (point-in-time double; last write wins).
  void SetGauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  // Reads a counter; an absent name reads as zero so projections of a
  // run that never touched a subsystem stay well-defined.
  uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  // Folds `histogram` into the named distribution, creating it empty.
  // Naming convention: hist.* (hist.probe_ns, hist.block_tuples, ...).
  void MergeHistogram(const std::string& name, const Histogram& histogram) {
    histograms_[name].Merge(histogram);
  }

  // Reads a distribution; nullptr when the run never recorded it.
  const Histogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  // Folds another registry in: counters add and histograms merge
  // bucket-wise (strata of a stratified run are sequential phases of
  // one computation), gauges take the later value.
  void Merge(const MetricsRegistry& other) {
    for (const auto& [name, value] : other.counters_) {
      counters_[name] += value;
    }
    for (const auto& [name, value] : other.gauges_) {
      gauges_[name] = value;
    }
    for (const auto& [name, histogram] : other.histograms_) {
      histograms_[name].Merge(histogram);
    }
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Sorted views for deterministic export.
  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pdatalog

#endif  // PDATALOG_OBS_METRICS_H_
