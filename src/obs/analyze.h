// Post-run trace analysis: turns the raw per-worker trace rings into
// the quantities the paper's scheme spectrum is judged by (Sections
// 4-6): per-round busy/idle breakdowns, the skew ratio of the
// discriminating function's partition (max/mean busy time), straggler
// identification, the empirical communication matrix (the Section 5
// network graphs), and the run's critical path — the chain of
// worker-busy segments linked by frame-flow edges that bounds any
// further speedup.
//
// The analyzer is read-only over a Tracer and deliberately knows
// nothing about the engine: AnalyzeRun takes a plain ProfileContext
// (matrices + registry pointer) that core/report.h knows how to build
// from a ParallelResult (MakeProfileContext), keeping src/obs/ free of
// core dependencies.
#ifndef PDATALOG_OBS_ANALYZE_H_
#define PDATALOG_OBS_ANALYZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace pdatalog {

// One decision of the skew rebalancer (core/rebalance.h): in report
// window `window`, bucket `bucket` of discriminating function `function`
// was taken from straggler `from` and either forwarded to worker `to` or
// replicated (`to` == -1, every sender keeps its share local). `skew`
// is the busy-time max/mean ratio that triggered the decision. Defined
// here, not in core, so the profile report can render the decision log
// without src/obs/ growing a core dependency.
struct RebalanceLogEntry {
  uint64_t window = 0;
  int function = -1;
  uint32_t bucket = 0;
  int from = -1;
  int to = -1;  // -1 = replicated (keep-local)
  uint64_t tuples = 0;
  double skew = 0.0;
};

// Optional run-level context for AnalyzeRun. Everything is borrowed or
// copied from a finished run; `metrics` (may be null) must outlive the
// call.
struct ProfileContext {
  std::vector<std::vector<uint64_t>> tuples_matrix;  // [from][to]
  std::vector<std::vector<uint64_t>> frames_matrix;  // [from][to]
  // sent_by_round[i][r][j]: tuples worker i sent to j in round r
  // (r == 0 is the initialization round).
  std::vector<std::vector<std::vector<uint64_t>>> sent_by_round;
  std::vector<RebalanceLogEntry> rebalance_log;
  const MetricsRegistry* metrics = nullptr;
};

// Number of span phases (TracePhase kInit..kMaintain); phase_ns is
// indexed by the TracePhase value.
inline constexpr int kNumSpanPhases = 11;

// Busy/idle accounting for one worker within one round (or, for
// ProfileReport::totals, across the whole run). Only top-level spans
// count — nested spans (insert inside drain, encode inside flush) are
// already covered by their parent, so the phases sum to busy + idle.
struct WorkerRoundProfile {
  uint64_t busy_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t phase_ns[kNumSpanPhases] = {};
};

struct RoundProfile {
  int round = 0;
  std::vector<WorkerRoundProfile> workers;
  // max/mean busy time over all workers; 1.0 when nobody was busy.
  // This is the direct observable for how well the scheme's
  // discriminating functions balance the load.
  double skew_ratio = 1.0;
  int straggler = -1;       // argmax busy; -1 when nobody was busy
  uint64_t tuples_sent = 0; // total cross-worker tuples (0 w/o context)
};

// One link of the critical path: worker `worker` busy from `begin_ns`
// to `end_ns` (relative to the tracer epoch). `from_worker` names the
// sender whose frame the segment consumed, -1 when the segment follows
// program order on the same worker (or starts the chain).
struct CriticalPathSegment {
  int worker = 0;
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  int from_worker = -1;
};

struct ProfileReport {
  int num_workers = 0;
  uint64_t span_ns = 0;    // epoch to the last recorded event
  uint64_t dropped = 0;    // events lost to ring overflow
  std::vector<RoundProfile> rounds;
  std::vector<WorkerRoundProfile> totals;  // per worker, whole run
  double skew_ratio = 1.0;                 // over totals
  int straggler = -1;
  std::vector<CriticalPathSegment> critical_path;
  uint64_t critical_path_ns = 0;  // sum of segment lengths
  std::vector<std::vector<uint64_t>> tuples_matrix;  // from context
  std::vector<std::vector<uint64_t>> frames_matrix;
  // Distribution snapshot (hist.* entries), copied from the context's
  // registry so the report is self-contained.
  std::vector<std::pair<std::string, Histogram>> histograms;
  // Skew-rebalancer decisions, in publish order (empty when off).
  std::vector<RebalanceLogEntry> rebalance_log;

  // Human-readable analysis section (appended after the text report by
  // --profile) and a JSON rendering (written by --profile=FILE).
  std::string ToText() const;
  std::string ToJson() const;
};

// Trace-only analysis: busy/idle/skew/critical-path from the rings.
ProfileReport AnalyzeTrace(const Tracer& tracer);

// Full analysis: adds the communication matrices, per-round sent
// tuples, and histogram snapshot from `context`.
ProfileReport AnalyzeRun(const Tracer& tracer,
                         const ProfileContext& context);

// Writes report.ToJson() to `path`.
Status WriteProfileJson(const ProfileReport& report,
                        const std::string& path);

}  // namespace pdatalog

#endif  // PDATALOG_OBS_ANALYZE_H_
