#include "obs/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/export.h"
#include "util/table.h"

namespace pdatalog {

namespace {

bool IsSpanPhase(TracePhase phase) {
  return static_cast<uint16_t>(phase) <
         static_cast<uint16_t>(kNumSpanPhases);
}

// One top-level span of a worker's ring, stamped with the round it
// belongs to. Round windows are delimited by kRound instants: a span
// belongs to the last round instant seen before it ended, so the
// window before the first instant is round 0 (initialization); the
// drain that feeds round k is attributed to the preceding window,
// which is where its wait actually happened.
struct Span {
  uint64_t begin = 0;
  uint64_t end = 0;
  TracePhase phase = TracePhase::kInit;
  int round = 0;
};

struct FlowMark {
  uint64_t ts = 0;
  int peer = 0;
  uint32_t seq = 0;
};

struct WorkerTrace {
  std::vector<Span> spans;  // top-level only, in ring (time) order
  std::vector<FlowMark> sends;
  std::vector<FlowMark> recvs;
  uint64_t last_ts = 0;
};

WorkerTrace ParseRing(const TraceRing& ring, uint64_t epoch) {
  WorkerTrace wt;
  wt.last_ts = epoch;
  std::vector<std::pair<TracePhase, uint64_t>> open;
  int round = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.event(i);
    wt.last_ts = std::max(wt.last_ts, e.ts);
    switch (e.kind) {
      case TraceEventKind::kBegin:
        open.emplace_back(e.phase, e.ts);
        break;
      case TraceEventKind::kEnd:
        if (open.empty() || open.back().first != e.phase) break;
        if (open.size() == 1) {
          wt.spans.push_back(Span{open.back().second, e.ts, e.phase, round});
        }
        open.pop_back();
        break;
      case TraceEventKind::kInstant:
        if (e.phase == TracePhase::kRound) {
          round = static_cast<int>(e.arg);
        } else if (e.phase == TracePhase::kFlowSend) {
          wt.sends.push_back(FlowMark{e.ts, FlowPeer(e.arg), FlowSeq(e.arg)});
        } else if (e.phase == TracePhase::kFlowRecv) {
          wt.recvs.push_back(FlowMark{e.ts, FlowPeer(e.arg), FlowSeq(e.arg)});
        }
        break;
    }
  }
  // A ring that overflowed can leave spans open; close them at the last
  // recorded timestamp, mirroring the exporter's sanitization.
  while (!open.empty()) {
    if (open.size() == 1) {
      wt.spans.push_back(
          Span{open.back().second, wt.last_ts, open.back().first, round});
    }
    open.pop_back();
  }
  return wt;
}

// A maximal run of consecutive busy (non-idle) top-level spans.
struct BusyInterval {
  uint64_t begin = 0;
  uint64_t end = 0;
};

std::vector<BusyInterval> BusyIntervals(const WorkerTrace& wt) {
  std::vector<BusyInterval> out;
  bool open = false;
  for (const Span& s : wt.spans) {
    if (s.phase == TracePhase::kIdle) {
      open = false;
      continue;
    }
    if (open && s.begin >= out.back().begin) {
      out.back().end = std::max(out.back().end, s.end);
    } else {
      out.push_back(BusyInterval{s.begin, s.end});
      open = true;
    }
  }
  return out;
}

// A delivery on some worker paired back to the matching send: the
// flow edges of the critical path. Pairing is positional per
// (sender, receiver, sequence) key, exactly like the Chrome exporter
// (stratified runs reuse sequences; channels are FIFO).
struct PairedRecv {
  uint64_t recv_ts = 0;
  int sender = 0;
  uint64_t send_ts = 0;
};

std::vector<std::vector<PairedRecv>> PairFlows(
    const std::vector<WorkerTrace>& traces) {
  struct Endpoints {
    std::vector<uint64_t> send_ts;
    std::vector<std::pair<int, uint64_t>> recv;  // (receiver, ts)
  };
  std::map<uint64_t, Endpoints> by_key;
  for (size_t w = 0; w < traces.size(); ++w) {
    for (const FlowMark& s : traces[w].sends) {
      uint64_t key = ((static_cast<uint64_t>(w) << 10 |
                       static_cast<uint64_t>(s.peer))
                      << kFlowSeqBits) |
                     s.seq;
      by_key[key].send_ts.push_back(s.ts);
    }
    for (const FlowMark& r : traces[w].recvs) {
      uint64_t key = ((static_cast<uint64_t>(r.peer) << 10 | w)
                      << kFlowSeqBits) |
                     r.seq;
      by_key[key].recv.push_back({static_cast<int>(w), r.ts});
    }
  }
  std::vector<std::vector<PairedRecv>> paired(traces.size());
  for (const auto& [key, ep] : by_key) {
    int sender = static_cast<int>(key >> (kFlowSeqBits + 10));
    size_t n = std::min(ep.send_ts.size(), ep.recv.size());
    for (size_t k = 0; k < n; ++k) {
      paired[static_cast<size_t>(ep.recv[k].first)].push_back(
          PairedRecv{ep.recv[k].second, sender, ep.send_ts[k]});
    }
  }
  for (auto& v : paired) {
    std::sort(v.begin(), v.end(),
              [](const PairedRecv& a, const PairedRecv& b) {
                return a.recv_ts < b.recv_ts;
              });
  }
  return paired;
}

// Greedy backward walk: start at the globally latest busy moment and
// chain backwards — within a busy interval, prefer the latest frame
// delivery (jump to its sender at the send instant); otherwise follow
// program order to the worker's previous busy interval; stop at a
// segment with neither (the start of initialization).
std::vector<CriticalPathSegment> WalkCriticalPath(
    const std::vector<std::vector<BusyInterval>>& intervals,
    const std::vector<std::vector<PairedRecv>>& paired, uint64_t epoch) {
  int w = -1;
  uint64_t t = 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (!intervals[i].empty() && intervals[i].back().end > t) {
      t = intervals[i].back().end;
      w = static_cast<int>(i);
    }
  }
  std::vector<CriticalPathSegment> path;
  // 4 segments per interval bounds the walk; the guard is belt and
  // braces against pathological traces.
  int guard = 0;
  for (const auto& ivs : intervals) guard += static_cast<int>(ivs.size());
  guard = guard * 4 + 16;
  while (w >= 0 && guard-- > 0) {
    const std::vector<BusyInterval>& ivs =
        intervals[static_cast<size_t>(w)];
    const BusyInterval* iv = nullptr;
    for (auto it = ivs.rbegin(); it != ivs.rend(); ++it) {
      if (it->begin < t) {
        iv = &*it;
        break;
      }
    }
    if (iv == nullptr) break;
    uint64_t seg_end = std::min(iv->end, t);
    const PairedRecv* jump = nullptr;
    for (auto it = paired[static_cast<size_t>(w)].rbegin();
         it != paired[static_cast<size_t>(w)].rend(); ++it) {
      if (it->recv_ts <= seg_end && it->recv_ts >= iv->begin &&
          it->send_ts < it->recv_ts) {
        jump = &*it;
        break;
      }
    }
    CriticalPathSegment seg;
    seg.worker = w;
    seg.begin_ns = iv->begin >= epoch ? iv->begin - epoch : 0;
    seg.end_ns = seg_end >= epoch ? seg_end - epoch : 0;
    if (jump != nullptr) {
      seg.from_worker = jump->sender;
      path.push_back(seg);
      w = jump->sender;
      t = jump->send_ts;
    } else {
      seg.from_worker = -1;
      path.push_back(seg);
      if (iv->begin == 0 || iv->begin <= epoch) break;
      t = iv->begin;
      bool more = false;
      for (const BusyInterval& b : ivs) {
        if (b.begin < t) {
          more = true;
          break;
        }
      }
      if (!more) break;
    }
  }
  std::reverse(path.begin(), path.end());
  // Coalesce consecutive same-worker segments linked by program order
  // (empty drains during idle polling otherwise shred the chain).
  std::vector<CriticalPathSegment> merged;
  for (const CriticalPathSegment& seg : path) {
    if (!merged.empty() && merged.back().worker == seg.worker &&
        seg.from_worker == -1) {
      merged.back().end_ns = std::max(merged.back().end_ns, seg.end_ns);
      merged.back().begin_ns = std::min(merged.back().begin_ns, seg.begin_ns);
    } else {
      merged.push_back(seg);
    }
  }
  return merged;
}

void FoldSpan(WorkerRoundProfile* p, const Span& s) {
  uint64_t dur = s.end >= s.begin ? s.end - s.begin : 0;
  if (s.phase == TracePhase::kIdle) {
    p->idle_ns += dur;
  } else {
    p->busy_ns += dur;
  }
  if (IsSpanPhase(s.phase)) {
    p->phase_ns[static_cast<size_t>(s.phase)] += dur;
  }
}

void ComputeSkew(const std::vector<WorkerRoundProfile>& workers,
                 double* skew, int* straggler) {
  uint64_t max_busy = 0;
  uint64_t sum_busy = 0;
  int arg = -1;
  for (size_t i = 0; i < workers.size(); ++i) {
    sum_busy += workers[i].busy_ns;
    if (workers[i].busy_ns > max_busy) {
      max_busy = workers[i].busy_ns;
      arg = static_cast<int>(i);
    }
  }
  double mean = workers.empty()
                    ? 0.0
                    : static_cast<double>(sum_busy) /
                          static_cast<double>(workers.size());
  *skew = mean == 0.0 ? 1.0 : static_cast<double>(max_busy) / mean;
  *straggler = arg;
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendMatrixJson(std::string* out, const char* name,
                      const std::vector<std::vector<uint64_t>>& m) {
  *out += std::string("  \"") + name + "\": [";
  for (size_t i = 0; i < m.size(); ++i) {
    *out += i == 0 ? "[" : ", [";
    for (size_t j = 0; j < m[i].size(); ++j) {
      if (j != 0) *out += ", ";
      *out += std::to_string(m[i][j]);
    }
    *out += "]";
  }
  *out += "]";
}

}  // namespace

ProfileReport AnalyzeRun(const Tracer& tracer,
                         const ProfileContext& context) {
  ProfileReport report;
  report.num_workers = tracer.num_workers();
  report.dropped = tracer.total_dropped();

  std::vector<WorkerTrace> traces;
  traces.reserve(static_cast<size_t>(tracer.num_workers()));
  int max_round = 0;
  uint64_t last_ts = tracer.epoch_ticks();
  for (int i = 0; i < tracer.num_workers(); ++i) {
    traces.push_back(ParseRing(tracer.ring(i), tracer.epoch_ticks()));
    last_ts = std::max(last_ts, traces.back().last_ts);
    for (const Span& s : traces.back().spans) {
      max_round = std::max(max_round, s.round);
    }
  }
  report.span_ns = last_ts - tracer.epoch_ticks();

  size_t num_workers = static_cast<size_t>(tracer.num_workers());
  report.rounds.resize(static_cast<size_t>(max_round) + 1);
  for (size_t r = 0; r < report.rounds.size(); ++r) {
    report.rounds[r].round = static_cast<int>(r);
    report.rounds[r].workers.resize(num_workers);
  }
  report.totals.resize(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    for (const Span& s : traces[w].spans) {
      FoldSpan(&report.rounds[static_cast<size_t>(s.round)].workers[w], s);
      FoldSpan(&report.totals[w], s);
    }
  }
  for (RoundProfile& round : report.rounds) {
    ComputeSkew(round.workers, &round.skew_ratio, &round.straggler);
    size_t r = static_cast<size_t>(round.round);
    for (size_t i = 0; i < context.sent_by_round.size(); ++i) {
      if (r >= context.sent_by_round[i].size()) continue;
      const std::vector<uint64_t>& row = context.sent_by_round[i][r];
      for (size_t j = 0; j < row.size(); ++j) {
        if (j == i) continue;  // self-routed tuples are not communication
        round.tuples_sent += row[j];
      }
    }
  }
  ComputeSkew(report.totals, &report.skew_ratio, &report.straggler);

  std::vector<std::vector<BusyInterval>> intervals;
  intervals.reserve(num_workers);
  for (const WorkerTrace& wt : traces) {
    intervals.push_back(BusyIntervals(wt));
  }
  report.critical_path =
      WalkCriticalPath(intervals, PairFlows(traces), tracer.epoch_ticks());
  for (const CriticalPathSegment& seg : report.critical_path) {
    report.critical_path_ns += seg.end_ns - seg.begin_ns;
  }

  report.tuples_matrix = context.tuples_matrix;
  report.frames_matrix = context.frames_matrix;
  report.rebalance_log = context.rebalance_log;
  if (context.metrics != nullptr) {
    for (const auto& [name, h] : context.metrics->histograms()) {
      report.histograms.emplace_back(name, h);
    }
  }
  return report;
}

ProfileReport AnalyzeTrace(const Tracer& tracer) {
  return AnalyzeRun(tracer, ProfileContext{});
}

std::string ProfileReport::ToText() const {
  std::string out = "\nprofile:\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  span %.3f ms, %d workers, %zu rounds, critical path "
                "%.3f ms (%.0f%% of span)\n",
                Ms(span_ns), num_workers, rounds.size(),
                Ms(critical_path_ns),
                span_ns == 0 ? 0.0
                             : 100.0 * static_cast<double>(critical_path_ns) /
                                   static_cast<double>(span_ns));
  out += line;
  std::snprintf(line, sizeof(line),
                "  overall skew %.2f (straggler: worker %d)\n", skew_ratio,
                straggler);
  out += line;
  if (dropped > 0) {
    std::snprintf(line, sizeof(line),
                  "  warning: %llu trace events dropped; analysis is "
                  "truncated (raise --trace-ring-kb)\n",
                  static_cast<unsigned long long>(dropped));
    out += line;
  }

  if (!totals.empty()) {
    out += "\nper-worker busy/idle (ms):\n";
    TextTable t({"worker", "busy", "idle", "init", "drain", "probe",
                 "flush", "busy-share"});
    uint64_t total_busy = 0;
    for (const WorkerRoundProfile& w : totals) total_busy += w.busy_ns;
    for (size_t i = 0; i < totals.size(); ++i) {
      const WorkerRoundProfile& w = totals[i];
      double share =
          total_busy == 0 ? 0.0
                          : 100.0 * static_cast<double>(w.busy_ns) /
                                static_cast<double>(total_busy);
      t.AddRow({TextTable::Cell(static_cast<int>(i)),
                TextTable::Cell(Ms(w.busy_ns), 3),
                TextTable::Cell(Ms(w.idle_ns), 3),
                TextTable::Cell(
                    Ms(w.phase_ns[static_cast<size_t>(TracePhase::kInit)]),
                    3),
                TextTable::Cell(
                    Ms(w.phase_ns[static_cast<size_t>(TracePhase::kDrain)]),
                    3),
                TextTable::Cell(
                    Ms(w.phase_ns[static_cast<size_t>(TracePhase::kProbe)]),
                    3),
                TextTable::Cell(
                    Ms(w.phase_ns[static_cast<size_t>(TracePhase::kFlush)]),
                    3),
                TextTable::Cell(share, 1) + "%"});
    }
    out += t.ToString();
  }

  if (!rounds.empty()) {
    out += "\nper-round skew (max/mean busy; straggler in brackets):\n";
    TextTable t({"round", "busy max ms", "busy mean ms", "skew",
                 "straggler", "tuples sent"});
    constexpr size_t kMaxRows = 32;
    for (size_t r = 0; r < rounds.size() && r < kMaxRows; ++r) {
      const RoundProfile& round = rounds[r];
      uint64_t max_busy = 0;
      uint64_t sum_busy = 0;
      for (const WorkerRoundProfile& w : round.workers) {
        max_busy = std::max(max_busy, w.busy_ns);
        sum_busy += w.busy_ns;
      }
      double mean =
          round.workers.empty()
              ? 0.0
              : static_cast<double>(sum_busy) /
                    static_cast<double>(round.workers.size());
      t.AddRow({TextTable::Cell(round.round),
                TextTable::Cell(Ms(max_busy), 3),
                TextTable::Cell(mean / 1e6, 3),
                TextTable::Cell(round.skew_ratio, 2),
                TextTable::Cell(round.straggler),
                TextTable::Cell(round.tuples_sent)});
    }
    out += t.ToString();
    if (rounds.size() > kMaxRows) {
      std::snprintf(line, sizeof(line), "  ... (%zu more rounds)\n",
                    rounds.size() - kMaxRows);
      out += line;
    }
  }

  if (!tuples_matrix.empty()) {
    out += "\ncommunication matrix (tuples/frames from row to column):\n";
    std::vector<std::string> header = {"from\\to"};
    for (size_t j = 0; j < tuples_matrix.size(); ++j) {
      header.push_back(std::to_string(j));
    }
    TextTable t(header);
    for (size_t i = 0; i < tuples_matrix.size(); ++i) {
      std::vector<std::string> row = {std::to_string(i)};
      for (size_t j = 0; j < tuples_matrix[i].size(); ++j) {
        uint64_t frames = i < frames_matrix.size() &&
                                  j < frames_matrix[i].size()
                              ? frames_matrix[i][j]
                              : 0;
        row.push_back(tuples_matrix[i][j] == 0 && frames == 0
                          ? "."
                          : std::to_string(tuples_matrix[i][j]) + "/" +
                                std::to_string(frames));
      }
      t.AddRow(row);
    }
    out += t.ToString();
  }

  if (!critical_path.empty()) {
    out += "\ncritical path:\n";
    for (const CriticalPathSegment& seg : critical_path) {
      if (seg.from_worker >= 0) {
        std::snprintf(line, sizeof(line),
                      "  worker %d: %.3f -> %.3f ms (after frame from "
                      "worker %d)\n",
                      seg.worker, Ms(seg.begin_ns), Ms(seg.end_ns),
                      seg.from_worker);
      } else {
        std::snprintf(line, sizeof(line), "  worker %d: %.3f -> %.3f ms\n",
                      seg.worker, Ms(seg.begin_ns), Ms(seg.end_ns));
      }
      out += line;
    }
  }

  if (!rebalance_log.empty()) {
    out += "\nrebalance decisions (bucket moves by the skew rebalancer):\n";
    TextTable t({"window", "function", "bucket", "from", "to", "tuples",
                 "skew"});
    for (const RebalanceLogEntry& e : rebalance_log) {
      t.AddRow({TextTable::Cell(e.window), TextTable::Cell(e.function),
                TextTable::Cell(static_cast<uint64_t>(e.bucket)),
                TextTable::Cell(e.from),
                e.to < 0 ? std::string("replicate")
                         : std::to_string(e.to),
                TextTable::Cell(e.tuples), TextTable::Cell(e.skew, 2)});
    }
    out += t.ToString();
  }

  if (!histograms.empty()) {
    out += "\nlatency/size percentiles (ns for *_ns, units otherwise):\n";
    TextTable t({"metric", "count", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : histograms) {
      t.AddRow({name, TextTable::Cell(h.count()),
                TextTable::Cell(h.Percentile(50), 0),
                TextTable::Cell(h.Percentile(95), 0),
                TextTable::Cell(h.Percentile(99), 0),
                TextTable::Cell(h.max())});
    }
    out += t.ToString();
  }
  return out;
}

std::string ProfileReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"num_workers\": " + std::to_string(num_workers) + ",\n";
  out += "  \"span_ns\": " + std::to_string(span_ns) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped) + ",\n";
  out += "  \"skew_ratio\": " + JsonNum(skew_ratio) + ",\n";
  out += "  \"straggler\": " + std::to_string(straggler) + ",\n";
  out += "  \"critical_path_ns\": " + std::to_string(critical_path_ns) +
         ",\n";

  out += "  \"totals\": [";
  for (size_t i = 0; i < totals.size(); ++i) {
    const WorkerRoundProfile& w = totals[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"worker\": " + std::to_string(i) +
           ", \"busy_ns\": " + std::to_string(w.busy_ns) +
           ", \"idle_ns\": " + std::to_string(w.idle_ns) + ", \"phases\": {";
    bool first = true;
    for (int p = 0; p < kNumSpanPhases; ++p) {
      if (w.phase_ns[p] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") +
             TracePhaseName(static_cast<TracePhase>(p)) +
             "\": " + std::to_string(w.phase_ns[p]);
    }
    out += "}}";
  }
  out += totals.empty() ? "],\n" : "\n  ],\n";

  out += "  \"rounds\": [";
  for (size_t r = 0; r < rounds.size(); ++r) {
    const RoundProfile& round = rounds[r];
    out += r == 0 ? "\n" : ",\n";
    out += "    {\"round\": " + std::to_string(round.round) +
           ", \"skew_ratio\": " + JsonNum(round.skew_ratio) +
           ", \"straggler\": " + std::to_string(round.straggler) +
           ", \"tuples_sent\": " + std::to_string(round.tuples_sent) +
           ", \"busy_ns\": [";
    for (size_t w = 0; w < round.workers.size(); ++w) {
      if (w != 0) out += ", ";
      out += std::to_string(round.workers[w].busy_ns);
    }
    out += "]}";
  }
  out += rounds.empty() ? "],\n" : "\n  ],\n";

  out += "  \"critical_path\": [";
  for (size_t i = 0; i < critical_path.size(); ++i) {
    const CriticalPathSegment& seg = critical_path[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"worker\": " + std::to_string(seg.worker) +
           ", \"begin_ns\": " + std::to_string(seg.begin_ns) +
           ", \"end_ns\": " + std::to_string(seg.end_ns) +
           ", \"from_worker\": " + std::to_string(seg.from_worker) + "}";
  }
  out += critical_path.empty() ? "],\n" : "\n  ],\n";

  AppendMatrixJson(&out, "tuples_matrix", tuples_matrix);
  out += ",\n";
  AppendMatrixJson(&out, "frames_matrix", frames_matrix);
  out += ",\n";

  out += "  \"rebalance\": [";
  for (size_t i = 0; i < rebalance_log.size(); ++i) {
    const RebalanceLogEntry& e = rebalance_log[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"window\": " + std::to_string(e.window) +
           ", \"function\": " + std::to_string(e.function) +
           ", \"bucket\": " + std::to_string(e.bucket) +
           ", \"from\": " + std::to_string(e.from) +
           ", \"to\": " + std::to_string(e.to) +
           ", \"tuples\": " + std::to_string(e.tuples) +
           ", \"skew\": " + JsonNum(e.skew) + "}";
  }
  out += rebalance_log.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& [name, h] = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count()) +
           ", \"p50\": " + JsonNum(h.Percentile(50)) +
           ", \"p95\": " + JsonNum(h.Percentile(95)) +
           ", \"p99\": " + JsonNum(h.Percentile(99)) +
           ", \"max\": " + std::to_string(h.max()) + "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status WriteProfileJson(const ProfileReport& report,
                        const std::string& path) {
  return WriteTextFile(report.ToJson(), path, "profile");
}

}  // namespace pdatalog
