// Live-serving telemetry primitives: sliding-window histograms, bounded
// rings of timestamped metric samples and slow-query records, health
// verdicts, and the Prometheus text exposition renderer.
//
// PR 4/5 built *batch-run* observability: one MetricsRegistry absorbed
// after the workers join, lifetime histograms, a post-run analyzer.
// A resident engine (src/server/) needs the continuous versions of the
// same ideas — after an hour of uptime a lifetime p99 says nothing
// about the last ten seconds, and nothing pull-based can expose
// maintenance lag or queue depth *between* requests. Everything here is
// engine-agnostic and lock-free in itself; callers provide the
// synchronization (the server engine guards these structures with its
// dedicated stats lock, off the snapshot/queue mutex, so a telemetry
// poller can never stall queries or the maintenance thread).
#ifndef PDATALOG_OBS_TELEMETRY_H_
#define PDATALOG_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace pdatalog {

// A sliding-window latency distribution: N rotating log2 `Histogram`
// buckets plus an untouched lifetime histogram. Record() lands in the
// current bucket and the lifetime; Rotate() — driven by the owner's
// sampler clock, never by a clock in here, so tests are deterministic —
// advances to the next bucket and clears what it finds there. The
// window readout merges all N buckets, so it covers the last
// N × (rotation interval) of traffic and old samples age out one
// rotation at a time. Externally synchronized, like `Histogram`.
class WindowedHistogram {
 public:
  static constexpr int kDefaultBuckets = 20;

  explicit WindowedHistogram(int num_buckets = kDefaultBuckets)
      : buckets_(static_cast<size_t>(num_buckets < 1 ? 1 : num_buckets)) {}

  void Record(uint64_t value) {
    buckets_[current_].Record(value);
    lifetime_.Record(value);
  }

  // Advances the window one bucket, dropping that bucket's previous
  // contents. After num_buckets() rotations with no Record() calls the
  // window reads empty while the lifetime keeps everything.
  void Rotate() {
    current_ = (current_ + 1) % buckets_.size();
    buckets_[current_] = Histogram();
    ++rotations_;
  }

  // The merged sliding window. Empty-window percentiles are zero-safe
  // (Histogram::Percentile returns 0 for an empty distribution).
  Histogram WindowMerged() const {
    Histogram merged;
    for (const Histogram& h : buckets_) merged.Merge(h);
    return merged;
  }

  const Histogram& lifetime() const { return lifetime_; }
  uint64_t rotations() const { return rotations_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

 private:
  std::vector<Histogram> buckets_;
  Histogram lifetime_;
  size_t current_ = 0;
  uint64_t rotations_ = 0;
};

// One slow query, captured at completion time. The atom is rendered at
// capture (the only path that touches the symbol lock, and only for
// queries already past the slowness threshold).
struct SlowQueryRecord {
  uint64_t ticks = 0;        // completion time, steady-clock ns
  uint64_t latency_ns = 0;
  uint64_t epoch = 0;        // snapshot the query ran against
  double snapshot_age_ms = 0;  // staleness of that snapshot at query time
  uint64_t scan_rows = 0;    // rows in the scanned relation
  uint64_t result_rows = 0;
  std::string atom;          // rendered query atom, e.g. anc(n3, X)
};

// Bounded ring of the most recent slow queries: drop-oldest (unlike the
// trace rings — the *latest* slow queries are the ones an operator
// asks for), with a lifetime total so drops are visible. Externally
// synchronized.
class SlowQueryRing {
 public:
  explicit SlowQueryRing(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Add(SlowQueryRecord record) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[next_] = std::move(record);
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  // Oldest-first copy of the retained records.
  std::vector<SlowQueryRecord> Snapshot() const {
    std::vector<SlowQueryRecord> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  uint64_t total() const { return total_; }
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t next_ = 0;  // overwrite cursor once full == oldest entry
  uint64_t total_ = 0;
  std::vector<SlowQueryRecord> ring_;
};

// One timestamped point-in-time view of the registry: counters,
// gauges, and merged histograms (lifetime and windowed). Published as
// shared_ptr-to-const so endpoint threads read without copying.
struct TelemetrySample {
  uint64_t ticks = 0;  // capture time, steady-clock ns
  MetricsRegistry metrics;
};

// Bounded in-memory history of samples, oldest dropped first. The
// sampler thread appends; rate gauges (window qps, update rate) come
// from the spread between the newest sample and the oldest one still
// inside the window. Externally synchronized.
class SampleRing {
 public:
  explicit SampleRing(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Add(std::shared_ptr<const TelemetrySample> sample) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[next_] = std::move(sample);
      next_ = (next_ + 1) % capacity_;
    }
  }

  std::shared_ptr<const TelemetrySample> latest() const {
    if (ring_.empty()) return nullptr;
    size_t newest = ring_.size() < capacity_
                        ? ring_.size() - 1
                        : (next_ + capacity_ - 1) % capacity_;
    return ring_[newest];
  }

  // The oldest retained sample not older than `window_ns` before `now`
  // (nullptr when none qualifies). Rate computations divide counter
  // deltas by the tick spread between this and the newest sample.
  std::shared_ptr<const TelemetrySample> OldestWithin(
      uint64_t now, uint64_t window_ns) const {
    for (size_t i = 0; i < ring_.size(); ++i) {
      const auto& s = ring_[ring_.size() < capacity_
                                ? i
                                : (next_ + i) % capacity_];
      if (s != nullptr && now - s->ticks <= window_ns) return s;
    }
    return nullptr;
  }

  // Oldest-first copy.
  std::vector<std::shared_ptr<const TelemetrySample>> Snapshot() const {
    std::vector<std::shared_ptr<const TelemetrySample>> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[ring_.size() < capacity_
                              ? i
                              : (next_ + i) % capacity_]);
    }
    return out;
  }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t next_ = 0;
  std::vector<std::shared_ptr<const TelemetrySample>> ring_;
};

// --- health ----------------------------------------------------------

// Lag/queue ceilings that separate "ok" from "degraded". Zero disables
// a check (a serve process with no updates has lag 0 forever; a
// threshold of 0 must not read that as degraded).
struct HealthThresholds {
  uint64_t max_queue_depth = 4096;  // pending update facts
  double max_lag_ms = 5000;         // age of the oldest queued update
};

struct HealthVerdict {
  bool ok = true;
  std::vector<std::string> reasons;  // empty when ok

  // "ok" or "degraded (reason; reason)".
  std::string ToString() const;
};

// Pure threshold evaluation, shared by `!health`, `/health`, and the
// watch line. `queue_depth` is the pending update count; `lag_ms` the
// age of the oldest pending update (0 when the queue is empty).
HealthVerdict EvaluateHealth(uint64_t queue_depth, double lag_ms,
                             const HealthThresholds& thresholds);

// --- Prometheus text exposition --------------------------------------

// Maps a registry name to a valid Prometheus metric name: prefixed
// "pdatalog_", dots and any other illegal characters become
// underscores ("serve.queue_depth" -> "pdatalog_serve_queue_depth").
std::string SanitizeMetricName(std::string_view name);

// Escapes a label value per the text format: backslash, double quote,
// and newline.
std::string EscapeLabelValue(std::string_view value);

// Renders the registry in the Prometheus text exposition format
// (version 0.0.4): counters as `<name>_total` with `# TYPE ... counter`,
// gauges as-is, histograms as cumulative `_bucket{le="..."}` series
// (log2 upper bounds, `+Inf` last) with `_sum`/`_count`. Slow-query
// records, when given, are appended as a bounded labeled gauge family
// (`pdatalog_slow_query_latency_ms{slot=...,atom=...,epoch=...}`) —
// the ring caps the label cardinality. The output parses back with
// tools/check_exposition.py (CI runs it against a live scrape).
std::string ExpositionText(const MetricsRegistry& metrics,
                           const std::vector<SlowQueryRecord>& slow = {});

}  // namespace pdatalog

#endif  // PDATALOG_OBS_TELEMETRY_H_
