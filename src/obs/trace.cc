#include "obs/trace.h"

namespace pdatalog {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInit:
      return "init";
    case TracePhase::kDrain:
      return "drain";
    case TracePhase::kProbe:
      return "probe";
    case TracePhase::kInsert:
      return "insert";
    case TracePhase::kEncode:
      return "encode";
    case TracePhase::kFlush:
      return "flush";
    case TracePhase::kIdle:
      return "idle";
    case TracePhase::kPool:
      return "pool";
    case TracePhase::kQuery:
      return "query";
    case TracePhase::kApply:
      return "apply";
    case TracePhase::kMaintain:
      return "maintain";
    case TracePhase::kRound:
      return "round";
    case TracePhase::kRetransmit:
      return "retransmit";
    case TracePhase::kCorruptFrame:
      return "corrupt-frame";
    case TracePhase::kDupFrame:
      return "dup-frame";
    case TracePhase::kFlowSend:
      return "flow-send";
    case TracePhase::kFlowRecv:
      return "flow-recv";
  }
  return "unknown";
}

Tracer::Tracer(int num_workers, size_t ring_capacity)
    : num_workers_(num_workers), epoch_(TraceRing::NowTicks()) {
  rings_.reserve(static_cast<size_t>(num_workers) + 1);
  for (int i = 0; i <= num_workers; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(i, ring_capacity));
  }
}

uint64_t Tracer::total_events() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  return total;
}

uint64_t Tracer::total_dropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

}  // namespace pdatalog
