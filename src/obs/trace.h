// Per-worker event tracing for the runtime (the observability layer's
// first half; src/obs/metrics.h is the second).
//
// Design constraints (docs/architecture.md, "Observability"):
//   - Compiled-in but cheap: every instrumentation site guards on one
//     pointer test. A run without a tracer pays a single predictable
//     branch per site and nothing else.
//   - Allocation- and lock-free when enabled: each worker writes into
//     its own fixed-capacity ring, pre-allocated at construction. A
//     full ring drops further events and counts the drops instead of
//     growing, locking, or overwriting earlier events (overwriting
//     would orphan begin/end pairs).
//   - Single-writer: ring i is written only by the thread running
//     worker i. Channel receive-side instants fire inside the
//     receiver's drain, which runs on the receiving worker's thread,
//     so they keep the invariant. Exporters read only after the run.
//
// Timestamps are raw steady_clock ticks (nanoseconds on the platforms
// we build for); the exporters rebase them against the tracer's
// construction epoch.
#ifndef PDATALOG_OBS_TRACE_H_
#define PDATALOG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/histogram.h"

namespace pdatalog {

// Everything a trace event can name. Span phases bracket the worker
// loop's stages with Begin/End pairs; instant phases mark point events.
enum class TracePhase : uint16_t {
  // Span phases.
  kInit = 0,  // initialization rules (Worker::Init / sequential round 0)
  kDrain,     // draining the incoming channels into t_in
  kProbe,     // the semi-naive join pass of one round
  kInsert,    // bulk t_in ingest (Relation::InsertBlock)
  kEncode,    // wire-encoding an outgoing block (serialized mode)
  kFlush,     // end-of-round flush of the accumulation blocks
  kIdle,      // idle backoff while waiting for peers or termination
  kPool,      // final pooling (engine ring)
  // Serving-engine span phases (src/server/): the maintenance thread's
  // ring brackets update absorption and incremental re-evaluation;
  // query spans are recorded by whichever thread owns the ring.
  kQuery,     // one point query answered from a snapshot
  kApply,     // one update batch absorbed into the base relations
  kMaintain,  // incremental re-evaluation to the new fixpoint
  // Instant phases.
  kRound,         // round boundary; arg = round number
  kRetransmit,    // unacked frames re-sent; arg = frames
  kCorruptFrame,  // receiver discarded a corrupt frame
  kDupFrame,      // receiver discarded a duplicate frame
  kFlowSend,      // block frame enqueued; arg = PackFlowArg(dest, seq)
  kFlowRecv,      // block frame drained; arg = PackFlowArg(source, seq)
};

// Flow instants pair each frame's send with its delivery so the
// exporter can draw sender->receiver arrows and the analyzer can chain
// critical-path segments across workers. The flow identity is the
// existing (channel, per-channel frame sequence) pair — nothing is
// added to the wire format — packed into the event's 32-bit arg:
// the peer processor id in the top 10 bits (the CLI caps processors at
// 1024) and the frame sequence in the low 22 bits. Channels stop
// emitting flow instants past 2^22 frames rather than wrapping.
inline constexpr int kFlowSeqBits = 22;
inline constexpr uint32_t kFlowMaxSeq = (uint32_t{1} << kFlowSeqBits) - 1;
inline constexpr int kFlowMaxPeer = (1 << (32 - kFlowSeqBits)) - 1;

inline uint32_t PackFlowArg(int peer, uint64_t seq) {
  return (static_cast<uint32_t>(peer) << kFlowSeqBits) |
         (static_cast<uint32_t>(seq) & kFlowMaxSeq);
}
inline int FlowPeer(uint32_t arg) {
  return static_cast<int>(arg >> kFlowSeqBits);
}
inline uint32_t FlowSeq(uint32_t arg) { return arg & kFlowMaxSeq; }

// Stable lowercase name used by the exporters and tests.
const char* TracePhaseName(TracePhase phase);

enum class TraceEventKind : uint16_t { kBegin = 0, kEnd, kInstant };

// One POD ring entry.
struct TraceEvent {
  uint64_t ts;   // steady_clock ticks (ns)
  uint32_t arg;  // phase-specific payload (round number, tuple count)
  TracePhase phase;
  TraceEventKind kind;
};
static_assert(sizeof(TraceEvent) == 16, "TraceEvent must stay compact");

// Default per-ring capacity: 64K events = 1 MiB per worker.
inline constexpr size_t kDefaultTraceRingCapacity = size_t{1} << 16;

// A fixed-capacity, single-writer event buffer. All storage is
// allocated in the constructor; Begin/End/Instant never allocate or
// lock, and a full ring counts drops instead of failing.
class TraceRing {
 public:
  TraceRing(int id, size_t capacity) : id_(id), events_(capacity) {}
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Begin(TracePhase phase, uint32_t arg = 0) {
    Append(phase, TraceEventKind::kBegin, arg);
  }
  void End(TracePhase phase) { Append(phase, TraceEventKind::kEnd, 0); }
  void Instant(TracePhase phase, uint32_t arg = 0) {
    Append(phase, TraceEventKind::kInstant, arg);
  }

  // Replay/test hook: appends a fully formed event with the caller's
  // timestamp instead of stamping the clock. Same drop-newest overflow
  // semantics as Begin/End/Instant. The analyzer tests use this to
  // build synthetic traces with known geometry.
  void Append(const TraceEvent& event) {
    const size_t used = used_.load(std::memory_order_relaxed);
    if (used == events_.size()) {
      dropped_.store(dropped_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      return;
    }
    events_[used] = event;
    used_.store(used + 1, std::memory_order_relaxed);
  }

  int id() const { return id_; }
  size_t capacity() const { return events_.size(); }
  size_t size() const { return used_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TraceEvent& event(size_t i) const { return events_[i]; }

  static uint64_t NowTicks() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  void Append(TracePhase phase, TraceEventKind kind, uint32_t arg) {
    Append(TraceEvent{NowTicks(), arg, phase, kind});
  }

  int id_;
  // Relaxed atomics, still single-writer: the serving engine's live
  // sampler reads size()/dropped() while the owning thread appends, so
  // the counters must be tear-free (the events themselves are only read
  // post-run, as before).
  std::atomic<size_t> used_{0};
  std::atomic<uint64_t> dropped_{0};
  std::vector<TraceEvent> events_;
};

// One ring per worker plus one for the engine thread (partitioning,
// pooling). ring(i) for i in [0, num_workers) is worker i's ring;
// ring(num_workers) == engine_ring().
class Tracer {
 public:
  explicit Tracer(int num_workers,
                  size_t ring_capacity = kDefaultTraceRingCapacity);

  int num_workers() const { return num_workers_; }
  int num_rings() const { return static_cast<int>(rings_.size()); }
  TraceRing* ring(int i) { return rings_[static_cast<size_t>(i)].get(); }
  const TraceRing& ring(int i) const {
    return *rings_[static_cast<size_t>(i)];
  }
  TraceRing* engine_ring() { return ring(num_workers_); }

  // Time base for exporters: ticks at construction.
  uint64_t epoch_ticks() const { return epoch_; }

  uint64_t total_events() const;
  uint64_t total_dropped() const;

 private:
  int num_workers_;
  uint64_t epoch_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

// RAII span: emits Begin on construction and End on destruction. A
// null ring disables both at the cost of one branch — this is the only
// fast-path cost of compiled-in instrumentation. An optional histogram
// additionally records the span's duration in ticks on destruction;
// like the ring it is skipped (one branch) when null.
class TraceScope {
 public:
  TraceScope(TraceRing* ring, TracePhase phase, uint32_t arg = 0,
             Histogram* histogram = nullptr)
      : ring_(ring), phase_(phase), histogram_(histogram) {
    if (ring_ != nullptr) ring_->Begin(phase, arg);
    if (histogram_ != nullptr) start_ticks_ = TraceRing::NowTicks();
  }
  ~TraceScope() {
    if (ring_ != nullptr) ring_->End(phase_);
    if (histogram_ != nullptr) {
      histogram_->Record(TraceRing::NowTicks() - start_ticks_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRing* ring_;
  TracePhase phase_;
  Histogram* histogram_;
  uint64_t start_ticks_ = 0;
};

}  // namespace pdatalog

#endif  // PDATALOG_OBS_TRACE_H_
