// Fixed-footprint log2-bucketed histogram for hot-path latency and
// size distributions.
//
// Design constraints match the trace rings (see obs/trace.h): all
// storage is inline (64 buckets, no heap), Record never allocates or
// locks, and each instance is single-writer — every worker owns its
// own set (core/worker.h WorkerProfile) and the engine merges them
// into the MetricsRegistry after the workers have joined.
//
// Bucket i holds values in [2^(i-1), 2^i) for i >= 1; bucket 0 holds
// exactly 0. Values at or above 2^62 clamp into the last bucket.
// Percentile readouts interpolate linearly inside the bucket and are
// clamped to the observed maximum, so p50/p95/p99 are within a factor
// of two of the true order statistic — plenty for the skew and tail
// questions the profiler answers, at 64*8 bytes per distribution.
#ifndef PDATALOG_OBS_HISTOGRAM_H_
#define PDATALOG_OBS_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>

namespace pdatalog {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  // Which bucket `value` lands in: 0 for 0, otherwise
  // floor(log2(value)) + 1, clamped to the last bucket.
  static int BucketOf(uint64_t value) {
    int b = 0;
    while (value != 0 && b < kBuckets - 1) {
      value >>= 1;
      ++b;
    }
    return b;
  }

  // Inclusive lower bound of bucket `b`.
  static uint64_t BucketLow(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  void Record(uint64_t value) {
    ++buckets_[BucketOf(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void Merge(const Histogram& other) {
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int b) const { return buckets_[b]; }
  bool empty() const { return count_ == 0; }

  double Mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Value at percentile `p` in [0, 100], linearly interpolated inside
  // the containing bucket and clamped to the observed maximum. Returns
  // 0 for an empty histogram.
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return 0.0;
    if (p > 100.0) p = 100.0;
    double target = p / 100.0 * static_cast<double>(count_);
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      double in_bucket = static_cast<double>(buckets_[b]);
      if (static_cast<double>(cum) + in_bucket >= target) {
        double lo = static_cast<double>(BucketLow(b));
        // Upper edge, pulled down to the observed max so the readout
        // never exceeds any recorded value.
        double hi = std::min(static_cast<double>(uint64_t{1} << b),
                             static_cast<double>(max_) + 1.0);
        if (b == kBuckets - 1) hi = static_cast<double>(max_) + 1.0;
        double frac = (target - static_cast<double>(cum)) / in_bucket;
        double v = lo + frac * (hi - lo);
        return std::min(v, static_cast<double>(max_));
      }
      cum += buckets_[b];
    }
    return static_cast<double>(max_);
  }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace pdatalog

#endif  // PDATALOG_OBS_HISTOGRAM_H_
