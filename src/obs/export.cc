#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace pdatalog {

namespace {

// Microseconds (3 decimals) relative to the tracer epoch. Events can
// only be stamped after the tracer (and thus the epoch) exists, so the
// subtraction cannot underflow; clamp anyway for safety.
std::string RelativeUs(uint64_t ts, uint64_t epoch) {
  double us = ts >= epoch ? static_cast<double>(ts - epoch) / 1e3 : 0.0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendEvent(std::string* out, const char* ph, int tid,
                 const std::string& ts, const char* name, uint32_t arg,
                 bool instant) {
  *out += "  {\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":0,\"tid\":" + std::to_string(tid) + ",\"ts\":" + ts +
          ",\"name\":\"" + name + "\"";
  if (instant) *out += ",\"s\":\"t\"";
  if (arg != 0) *out += ",\"args\":{\"v\":" + std::to_string(arg) + "}";
  *out += "},\n";
}

void AppendRing(std::string* out, const TraceRing& ring, uint64_t epoch,
                int num_workers) {
  int tid = ring.id();
  std::string thread_name =
      tid == num_workers ? "engine" : "worker " + std::to_string(tid);
  *out += "  {\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
          ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + thread_name +
          "\"}},\n";

  // Sanitize as we emit: a dropped event can only be at the tail of the
  // ring (full rings drop the newest event), so an End whose Begin was
  // recorded always finds it; unmatched Ends are skipped defensively
  // and Begins left open at the end of the ring are closed at the last
  // timestamp so the exported nesting is always well-formed.
  std::vector<TracePhase> open;
  uint64_t last_ts = epoch;
  for (size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.event(i);
    last_ts = e.ts;
    std::string ts = RelativeUs(e.ts, epoch);
    const char* name = TracePhaseName(e.phase);
    switch (e.kind) {
      case TraceEventKind::kBegin:
        open.push_back(e.phase);
        AppendEvent(out, "B", tid, ts, name, e.arg, false);
        break;
      case TraceEventKind::kEnd:
        if (open.empty() || open.back() != e.phase) break;  // unmatched
        open.pop_back();
        AppendEvent(out, "E", tid, ts, name, 0, false);
        break;
      case TraceEventKind::kInstant:
        // Flow instants are emitted by the pairing pass in
        // ChromeTraceJson, not as generic instants.
        if (e.phase == TracePhase::kFlowSend ||
            e.phase == TracePhase::kFlowRecv) {
          break;
        }
        AppendEvent(out, "i", tid, ts, name, e.arg, true);
        break;
    }
  }
  std::string close_ts = RelativeUs(last_ts, epoch);
  while (!open.empty()) {
    AppendEvent(out, "E", tid, close_ts, TracePhaseName(open.back()), 0,
                false);
    open.pop_back();
  }
}

// One endpoint of a flow (send or delivery of a block frame).
struct FlowPoint {
  uint64_t ts;
  int tid;
};

// Collects flow endpoints from every ring, keyed by the flow identity
// (sender, receiver, per-channel frame sequence). Stratified runs
// reuse the rings across strata with per-stratum channels, so one key
// can recur; endpoints are kept in ring order and paired positionally
// (channels are FIFO and sequences restart per stratum, so the k-th
// send of a key matches the k-th delivery).
void CollectFlows(
    const Tracer& tracer,
    std::map<uint64_t, std::pair<std::vector<FlowPoint>,
                                 std::vector<FlowPoint>>>* flows) {
  for (int i = 0; i < tracer.num_rings(); ++i) {
    const TraceRing& ring = tracer.ring(i);
    for (size_t k = 0; k < ring.size(); ++k) {
      const TraceEvent& e = ring.event(k);
      if (e.kind != TraceEventKind::kInstant) continue;
      if (e.phase == TracePhase::kFlowSend) {
        uint64_t key =
            ((static_cast<uint64_t>(i) << 10 |
              static_cast<uint64_t>(FlowPeer(e.arg)))
             << kFlowSeqBits) |
            FlowSeq(e.arg);
        (*flows)[key].first.push_back(FlowPoint{e.ts, i});
      } else if (e.phase == TracePhase::kFlowRecv) {
        uint64_t key =
            ((static_cast<uint64_t>(FlowPeer(e.arg)) << 10 |
              static_cast<uint64_t>(i))
             << kFlowSeqBits) |
            FlowSeq(e.arg);
        (*flows)[key].second.push_back(FlowPoint{e.ts, i});
      }
    }
  }
}

void AppendFlowEvent(std::string* out, const char* ph, const FlowPoint& p,
                     uint64_t epoch, uint64_t id) {
  *out += "  {\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":0,\"tid\":" + std::to_string(p.tid) +
          ",\"ts\":" + RelativeUs(p.ts, epoch) +
          ",\"name\":\"frame\",\"cat\":\"flow\"";
  if (ph[0] == 'f') *out += ",\"bp\":\"e\"";
  *out += ",\"id\":" + std::to_string(id) + "},\n";
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (int i = 0; i < tracer.num_rings(); ++i) {
    AppendRing(&out, tracer.ring(i), tracer.epoch_ticks(),
               tracer.num_workers());
  }
  // Emit matched send/delivery pairs as Chrome flow events. Only pairs
  // with both endpoints recorded are exported, so every flow id occurs
  // exactly once as "s" and once as "f".
  std::map<uint64_t,
           std::pair<std::vector<FlowPoint>, std::vector<FlowPoint>>>
      flows;
  CollectFlows(tracer, &flows);
  uint64_t next_id = 1;
  for (const auto& [key, points] : flows) {
    (void)key;
    size_t n = std::min(points.first.size(), points.second.size());
    for (size_t k = 0; k < n; ++k) {
      AppendFlowEvent(&out, "s", points.first[k], tracer.epoch_ticks(),
                      next_id);
      AppendFlowEvent(&out, "f", points.second[k], tracer.epoch_ticks(),
                      next_id);
      ++next_id;
    }
  }
  // Strip the trailing ",\n" left by the last event.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

std::string MetricsJson(const MetricsRegistry& metrics) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : metrics.gauges()) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + JsonNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count()) +
           ", \"sum\": " + std::to_string(h.sum()) +
           ", \"max\": " + std::to_string(h.max()) +
           ", \"mean\": " + JsonNumber(h.Mean()) +
           ", \"p50\": " + JsonNumber(h.Percentile(50)) +
           ", \"p95\": " + JsonNumber(h.Percentile(95)) +
           ", \"p99\": " + JsonNumber(h.Percentile(99)) + ", \"buckets\": [";
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) != 0) last = b;
    }
    for (int b = 0; b <= last; ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.bucket(b));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status WriteTextFile(const std::string& body, const std::string& path,
                     const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(std::string("cannot open ") + what +
                            " output file " + path);
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal(std::string("short write to ") + what +
                            " output file " + path);
  }
  return Status::Ok();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteTextFile(ChromeTraceJson(tracer), path, "trace");
}

Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path) {
  return WriteTextFile(MetricsJson(metrics), path, "metrics");
}

}  // namespace pdatalog
