#include "datalog/parser.h"

#include <vector>

#include "datalog/lexer.h"

namespace pdatalog {

namespace {

// Token-stream cursor with one-clause lookahead helpers.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  StatusOr<Program> Parse() {
    Program program;
    program.symbols = symbols_;
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().kind == TokenKind::kQuery) {
        Next();
        StatusOr<Atom> query = ParseAtom();
        if (!query.ok()) return query.status();
        if (Peek().kind != TokenKind::kPeriod) {
          return Error("expected '.' after query", Peek());
        }
        Next();
        program.queries.push_back(std::move(*query));
        continue;
      }
      StatusOr<Atom> head = ParseAtom();
      if (!head.ok()) return head.status();

      if (Peek().kind == TokenKind::kPeriod) {
        Next();
        if (!head->IsGround()) {
          return Error("fact must be ground", Peek());
        }
        program.facts.push_back(std::move(*head));
        continue;
      }
      if (Peek().kind != TokenKind::kImplies) {
        return Error("expected '.' or ':-' after atom", Peek());
      }
      Next();

      Rule rule;
      rule.head = std::move(*head);
      while (true) {
        StatusOr<Atom> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        rule.body.push_back(std::move(*atom));
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kPeriod) {
        return Error("expected '.' at end of rule", Peek());
      }
      Next();
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  static Status Error(const std::string& message, const Token& tok) {
    return Status::InvalidArgument(message + " at line " +
                                   std::to_string(tok.line) + ", column " +
                                   std::to_string(tok.column));
  }

  StatusOr<Atom> ParseAtom() {
    const Token& name = Peek();
    if (name.kind != TokenKind::kIdentifier) {
      return Error("expected predicate name", name);
    }
    Next();
    Atom atom;
    atom.predicate = symbols_->Intern(name.text);
    if (Peek().kind != TokenKind::kLParen) return atom;  // zero-arity
    Next();
    while (true) {
      StatusOr<Term> term = ParseTerm();
      if (!term.ok()) return term.status();
      atom.args.push_back(*term);
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kRParen) {
      return Error("expected ')' after atom arguments", Peek());
    }
    Next();
    return atom;
  }

  StatusOr<Term> ParseTerm() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        Next();
        return Term::Var(symbols_->Intern(tok.text));
      case TokenKind::kIdentifier:
      case TokenKind::kNumber:
      case TokenKind::kString:
        Next();
        return Term::Const(symbols_->Intern(tok.text));
      default:
        return Error("expected term", tok);
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable* symbols_;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view source, SymbolTable* symbols) {
  StatusOr<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens), symbols);
  return parser.Parse();
}

}  // namespace pdatalog
