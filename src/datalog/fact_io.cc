#include "datalog/fact_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace pdatalog {

namespace {

// Splits a line on tabs, commas, or runs of spaces.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == ',' ||
            line[i] == '\r')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != ',' && line[i] != '\r') {
      ++i;
    }
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

StatusOr<size_t> LoadFactsFromString(std::string_view content,
                                     const std::string& predicate,
                                     SymbolTable* symbols, Database* db) {
  Symbol pred = symbols->Intern(predicate);
  Relation* rel = db->Find(pred);
  int arity = rel == nullptr ? -1 : rel->arity();

  size_t inserted = 0;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    std::string_view line = content.substr(
        pos, eol == std::string_view::npos ? content.size() - pos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? content.size() + 1 : eol + 1;
    ++line_no;

    // Comments and blanks.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;

    std::vector<std::string_view> fields = SplitFields(line);
    if (fields.empty()) continue;
    if (static_cast<int>(fields.size()) > 32) {
      return Status::InvalidArgument(
          predicate + " line " + std::to_string(line_no) +
          ": arity exceeds 32");
    }
    if (arity < 0) {
      arity = static_cast<int>(fields.size());
      rel = &db->GetOrCreate(pred, arity);
    } else if (static_cast<int>(fields.size()) != arity) {
      return Status::InvalidArgument(
          predicate + " line " + std::to_string(line_no) + ": expected " +
          std::to_string(arity) + " fields, found " +
          std::to_string(fields.size()));
    }
    Value vals[32];
    for (size_t k = 0; k < fields.size(); ++k) {
      vals[k] = symbols->Intern(fields[k]);
    }
    if (rel->Insert(Tuple(vals, arity))) ++inserted;
  }
  return inserted;
}

StatusOr<size_t> LoadFactsFromFile(const std::string& path,
                                   const std::string& predicate,
                                   SymbolTable* symbols, Database* db) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open fact file '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return LoadFactsFromString(content.str(), predicate, symbols, db);
}

}  // namespace pdatalog
