// Abstract syntax for Datalog programs.
//
// A program is a set of rules `head :- body.` plus ground facts. Following
// the paper (Section 2), predicate symbols split into *base* (extensional)
// and *derived* (intensional) predicates; the split is computed by
// analysis.h rather than declared.
//
// Rules may additionally carry *hash constraints* — the paper's
// `h(v(r)) = i` conjuncts. Parsed programs never contain them; the
// rewriters in core/ produce them, so a rewritten per-processor program
// is a first-class, printable Datalog program exactly as the paper
// presents it.
#ifndef PDATALOG_DATALOG_AST_H_
#define PDATALOG_DATALOG_AST_H_

#include <string>
#include <vector>

#include "datalog/symbol_table.h"

namespace pdatalog {

// A term is a variable or a constant; both are interned symbols.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind;
  Symbol sym;

  static Term Var(Symbol s) { return Term{Kind::kVariable, s}; }
  static Term Const(Symbol s) { return Term{Kind::kConstant, s}; }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.sym == b.sym;
  }
};

// A predicate applied to terms, e.g. `anc(X, Y)` or ground `par(a, b)`.
struct Atom {
  Symbol predicate;
  std::vector<Term> args;

  int arity() const { return static_cast<int>(args.size()); }
  bool IsGround() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
};

// The paper's discriminating conjunct `h(v) = target` attached to a rule
// body. `function` indexes into the discriminating-function registry of
// the rewrite bundle that produced this rule (core/discriminating.h);
// `label` is only for printing (e.g. "h" or "h'").
struct HashConstraint {
  int function = 0;
  Symbol label = kInvalidSymbol;
  std::vector<Symbol> vars;  // the discriminating sequence, as variable names
  int target = 0;            // processor id the hash value must equal

  friend bool operator==(const HashConstraint& a, const HashConstraint& b) {
    return a.function == b.function && a.vars == b.vars &&
           a.target == b.target;
  }
};

// `head :- body, constraints.` An empty body makes the rule a fact-rule
// (used to seed derived predicates).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<HashConstraint> constraints;

  bool IsFact() const { return body.empty() && constraints.empty(); }

  // Distinct variables of head and body, in first-occurrence order.
  std::vector<Symbol> Variables() const;

  // True if every head variable also occurs in the body (range
  // restriction / the paper's safety property).
  bool IsRangeRestricted() const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head == b.head && a.body == b.body &&
           a.constraints == b.constraints;
  }
};

// A Datalog program: rules plus ground EDB facts, sharing one symbol
// table (not owned).
struct Program {
  SymbolTable* symbols = nullptr;
  std::vector<Rule> rules;
  std::vector<Atom> facts;  // ground atoms for base predicates
  // Embedded query directives `?- atom.` — answered after evaluation.
  std::vector<Atom> queries;
};

// --- Printing ------------------------------------------------------------

std::string ToString(const Term& term, const SymbolTable& symbols);
std::string ToString(const Atom& atom, const SymbolTable& symbols);
std::string ToString(const HashConstraint& c, const SymbolTable& symbols);
std::string ToString(const Rule& rule, const SymbolTable& symbols);
std::string ToString(const Program& program);

// --- Construction helpers ------------------------------------------------

// Builds atoms/rules tersely in tests and rewriters. Names starting with
// an uppercase letter or '_' denote variables (same rule as the parser).
Term MakeTerm(SymbolTable& symbols, std::string_view name);
Atom MakeAtom(SymbolTable& symbols, std::string_view predicate,
              const std::vector<std::string>& args);

// Appends all variables of `atom` not already in `out`.
void CollectVariables(const Atom& atom, std::vector<Symbol>* out);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_AST_H_
