// Program analysis: the "derives" relation, recursion detection, and
// canonical linear-sirup extraction (Section 2 of the paper).
#ifndef PDATALOG_DATALOG_ANALYSIS_H_
#define PDATALOG_DATALOG_ANALYSIS_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.h"
#include "datalog/validate.h"
#include "util/status.h"

namespace pdatalog {

// The paper's "derives" relation: Q derives R iff Q occurs in the body of
// a rule whose head is an R-atom. Edges run Q -> R.
class DependencyGraph {
 public:
  static DependencyGraph Build(const Program& program);

  // True iff `from` transitively derives `to` (path of length >= 1).
  bool Derives(Symbol from, Symbol to) const;

  // A rule is recursive iff its head predicate transitively derives some
  // predicate in its body (Section 2).
  bool IsRecursiveRule(const Rule& rule) const;

  // True iff some rule of the program is recursive.
  bool HasRecursion(const Program& program) const;

  const std::unordered_map<Symbol, std::unordered_set<Symbol>>& edges()
      const {
    return edges_;
  }

 private:
  // edges_[q] = predicates directly derived by q.
  std::unordered_map<Symbol, std::unordered_set<Symbol>> edges_;
  // reach_[q] = predicates transitively derived by q (path length >= 1).
  std::unordered_map<Symbol, std::unordered_set<Symbol>> reach_;
};

// An atom with a derived predicate, as it occurs in a rule body. The
// paper calls these "recursive atoms" in Section 7.
bool IsRecursiveAtom(const Atom& atom, const ProgramInfo& info);

// Canonical form of a linear sirup (Section 2):
//
//   e:  t(Z) :- s(Z).
//   r:  t(X) :- t(Y), b_1, ..., b_k.
//
// where t is the single derived predicate, s and the b_m are base
// predicates, and every head variable of r appears in r's body.
struct LinearSirup {
  Symbol t = kInvalidSymbol;  // output predicate
  Symbol s = kInvalidSymbol;  // base predicate of the exit rule
  Rule exit;
  Rule rec;
  int rec_atom_index = -1;       // position of the t-atom in rec.body
  std::vector<Atom> base_atoms;  // b_1, ..., b_k in body order

  int arity() const { return exit.head.arity(); }

  const Atom& rec_body_atom() const { return rec.body[rec_atom_index]; }

  // Variable sequences of the canonical form. Head or body argument
  // positions holding constants yield kInvalidSymbol entries.
  std::vector<Symbol> HeadVarsX() const;   // args of rec.head
  std::vector<Symbol> BodyVarsY() const;   // args of the body t-atom
  std::vector<Symbol> ExitVarsZ() const;   // args of exit.head
};

// Extracts the canonical linear sirup from `program`, or an error if the
// program is not a linear sirup (more than one derived predicate, more
// than two rules, a non-linear recursive rule, etc.).
StatusOr<LinearSirup> ExtractLinearSirup(const Program& program,
                                         const ProgramInfo& info);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_ANALYSIS_H_
