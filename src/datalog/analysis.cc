#include "datalog/analysis.h"

#include <algorithm>
#include <deque>

namespace pdatalog {

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph graph;
  for (const Rule& rule : program.rules) {
    for (const Atom& atom : rule.body) {
      graph.edges_[atom.predicate].insert(rule.head.predicate);
    }
  }
  // Transitive closure by BFS from every source predicate. Programs have
  // a handful of predicates, so this is more than fast enough.
  for (const auto& [src, _] : graph.edges_) {
    std::unordered_set<Symbol>& reach = graph.reach_[src];
    std::deque<Symbol> frontier(graph.edges_[src].begin(),
                                graph.edges_[src].end());
    while (!frontier.empty()) {
      Symbol p = frontier.front();
      frontier.pop_front();
      if (!reach.insert(p).second) continue;
      auto it = graph.edges_.find(p);
      if (it == graph.edges_.end()) continue;
      for (Symbol q : it->second) frontier.push_back(q);
    }
  }
  return graph;
}

bool DependencyGraph::Derives(Symbol from, Symbol to) const {
  auto it = reach_.find(from);
  return it != reach_.end() && it->second.count(to) > 0;
}

bool DependencyGraph::IsRecursiveRule(const Rule& rule) const {
  for (const Atom& atom : rule.body) {
    if (Derives(rule.head.predicate, atom.predicate)) return true;
  }
  return false;
}

bool DependencyGraph::HasRecursion(const Program& program) const {
  return std::any_of(
      program.rules.begin(), program.rules.end(),
      [this](const Rule& rule) { return IsRecursiveRule(rule); });
}

bool IsRecursiveAtom(const Atom& atom, const ProgramInfo& info) {
  return info.IsDerived(atom.predicate);
}

namespace {

std::vector<Symbol> ArgVars(const Atom& atom) {
  std::vector<Symbol> vars;
  vars.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    vars.push_back(t.is_var() ? t.sym : kInvalidSymbol);
  }
  return vars;
}

}  // namespace

std::vector<Symbol> LinearSirup::HeadVarsX() const {
  return ArgVars(rec.head);
}
std::vector<Symbol> LinearSirup::BodyVarsY() const {
  return ArgVars(rec_body_atom());
}
std::vector<Symbol> LinearSirup::ExitVarsZ() const {
  return ArgVars(exit.head);
}

StatusOr<LinearSirup> ExtractLinearSirup(const Program& program,
                                         const ProgramInfo& info) {
  if (info.derived.size() != 1) {
    return Status::InvalidArgument(
        "linear sirup must have exactly one derived predicate, found " +
        std::to_string(info.derived.size()));
  }
  if (program.rules.size() != 2) {
    return Status::InvalidArgument(
        "linear sirup must have exactly two rules, found " +
        std::to_string(program.rules.size()));
  }

  LinearSirup sirup;
  sirup.t = *info.derived.begin();

  const Rule* exit = nullptr;
  const Rule* rec = nullptr;
  for (const Rule& rule : program.rules) {
    bool has_derived_body = std::any_of(
        rule.body.begin(), rule.body.end(),
        [&](const Atom& a) { return info.IsDerived(a.predicate); });
    if (has_derived_body) {
      if (rec != nullptr) {
        return Status::InvalidArgument(
            "linear sirup must have exactly one recursive rule");
      }
      rec = &rule;
    } else {
      if (exit != nullptr) {
        return Status::InvalidArgument(
            "linear sirup must have exactly one exit rule");
      }
      exit = &rule;
    }
  }
  if (exit == nullptr || rec == nullptr) {
    return Status::InvalidArgument(
        "linear sirup needs one exit rule and one recursive rule");
  }

  if (exit->body.size() != 1) {
    return Status::InvalidArgument(
        "canonical exit rule must have a single base atom body: " +
        ToString(*exit, *program.symbols));
  }
  sirup.exit = *exit;
  sirup.s = exit->body[0].predicate;

  sirup.rec = *rec;
  int t_atoms = 0;
  for (size_t i = 0; i < rec->body.size(); ++i) {
    const Atom& atom = rec->body[i];
    if (info.IsDerived(atom.predicate)) {
      ++t_atoms;
      sirup.rec_atom_index = static_cast<int>(i);
    } else {
      sirup.base_atoms.push_back(atom);
    }
  }
  if (t_atoms != 1) {
    return Status::InvalidArgument(
        "recursive rule of a linear sirup must contain exactly one "
        "occurrence of the derived predicate, found " +
        std::to_string(t_atoms));
  }
  return sirup;
}

}  // namespace pdatalog
