// Static checks and base/derived classification for parsed or
// programmatically built programs.
#ifndef PDATALOG_DATALOG_VALIDATE_H_
#define PDATALOG_DATALOG_VALIDATE_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace pdatalog {

// Classification and signature information computed by Validate().
struct ProgramInfo {
  // Predicate -> arity (consistent across all uses).
  std::unordered_map<Symbol, int> arity;
  // All predicates in first-appearance order.
  std::vector<Symbol> predicates;
  // Derived (intensional) predicates: those heading at least one rule.
  std::unordered_set<Symbol> derived;
  // Base (extensional) predicates: all others.
  std::unordered_set<Symbol> base;

  bool IsDerived(Symbol p) const { return derived.count(p) > 0; }
  bool IsBase(Symbol p) const { return base.count(p) > 0; }
};

// Checks the program and fills `info`:
//   * every predicate is used with one arity everywhere;
//   * every rule is range-restricted (safety: head variables occur in the
//     body), per the paper's safety assumption in Section 2;
//   * facts are ground;
//   * no predicate is both a fact predicate and a rule head (the paper
//     forbids base predicates in rule heads; seed data for derived
//     predicates must instead be written as a base relation plus an exit
//     rule).
Status Validate(const Program& program, ProgramInfo* info);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_VALIDATE_H_
