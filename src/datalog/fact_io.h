// Loading extensional facts from delimiter-separated text files, so the
// CLI (and library users) can evaluate programs over external data.
//
// File format: one tuple per line; fields separated by tabs, commas or
// runs of spaces; '%' or '#' starts a comment line; blank lines are
// skipped. All fields are interned as constants.
#ifndef PDATALOG_DATALOG_FACT_IO_H_
#define PDATALOG_DATALOG_FACT_IO_H_

#include <string>
#include <string_view>

#include "datalog/symbol_table.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

// Parses `content` (the text of a fact file) into `db[predicate]`.
// Every line must have the same field count; the relation is created
// with that arity (or must match an existing relation's arity).
// Returns the number of distinct tuples inserted.
StatusOr<size_t> LoadFactsFromString(std::string_view content,
                                     const std::string& predicate,
                                     SymbolTable* symbols, Database* db);

// Reads `path` and calls LoadFactsFromString.
StatusOr<size_t> LoadFactsFromFile(const std::string& path,
                                   const std::string& predicate,
                                   SymbolTable* symbols, Database* db);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_FACT_IO_H_
