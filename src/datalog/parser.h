// Recursive-descent parser for textual Datalog.
//
// Grammar (Prolog-flavored):
//
//   program  := clause*
//   clause   := atom '.'                      (fact, must be ground)
//             | atom ':-' atom (',' atom)* '.'  (rule)
//   atom     := predicate '(' term (',' term)* ')'
//             | predicate                       (zero-arity)
//   term     := VARIABLE | identifier | NUMBER | 'quoted constant'
//
// Identifiers starting with an uppercase letter or '_' are variables;
// everything else is a constant. '%' starts a line comment.
//
// Facts are collected into Program::facts; clauses with bodies into
// Program::rules. A ground head with an empty body is always treated as
// a fact (validation later checks that facts only use base predicates or
// seed derived ones consistently).
#ifndef PDATALOG_DATALOG_PARSER_H_
#define PDATALOG_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

namespace pdatalog {

// Parses `source` into a Program whose names are interned in `symbols`.
// `symbols` must outlive the returned program.
StatusOr<Program> ParseProgram(std::string_view source, SymbolTable* symbols);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_PARSER_H_
