// Tokenizer for the textual Datalog syntax accepted by parser.h.
#ifndef PDATALOG_DATALOG_LEXER_H_
#define PDATALOG_DATALOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdatalog {

enum class TokenKind {
  kIdentifier,   // lowercase-initial: predicate or constant
  kVariable,     // uppercase- or '_'-initial
  kNumber,       // integer literal (treated as a constant symbol)
  kString,       // 'quoted constant'
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kPeriod,       // .
  kImplies,      // :-
  kQuery,        // ?-
  kEnd,          // end of input
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier/variable/number/string spelling
  int line = 1;
  int column = 1;
};

// Tokenizes `source`. Comments run from '%' to end of line. Returns an
// error with line/column info on any unrecognized character or unclosed
// string. The final token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_LEXER_H_
