#include "datalog/query.h"

#include <algorithm>

#include "datalog/parser.h"

namespace pdatalog {

std::string QueryResult::ToString(const SymbolTable& symbols) const {
  if (IsBoolean()) return Holds() ? "true\n" : "false\n";
  std::vector<Tuple> sorted = bindings;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Tuple& t : sorted) {
    for (size_t v = 0; v < variables.size(); ++v) {
      if (v > 0) out += ", ";
      out += symbols.Name(variables[v]) + " = " + symbols.Name(t[v]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<ParsedQuery> ParseQuery(std::string_view query_text,
                                 SymbolTable* symbols) {
  // Reuse the program parser: a query atom with variables parses as the
  // head of a bodyless clause only if ground, so parse `q :- ATOM.`
  // and take the body atom.
  std::string wrapped = "q__query :- " + std::string(query_text);
  // Allow an optional trailing period in the query text.
  while (!wrapped.empty() &&
         (wrapped.back() == '.' || wrapped.back() == ' ' ||
          wrapped.back() == '\n')) {
    wrapped.pop_back();
  }
  wrapped += ".";
  StatusOr<Program> parsed = ParseProgram(wrapped, symbols);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed query '" +
                                   std::string(query_text) +
                                   "': " + parsed.status().message());
  }
  if (parsed->rules.size() != 1 || parsed->rules[0].body.size() != 1 ||
      !parsed->facts.empty() || !parsed->queries.empty()) {
    return Status::InvalidArgument("query must be a single atom");
  }
  ParsedQuery query;
  query.atom = parsed->rules[0].body[0];
  if (query.atom.arity() > 32) {
    return Status::InvalidArgument("query arity exceeds 32");
  }
  CollectVariables(query.atom, &query.variables);
  return query;
}

namespace {

// The scan body, shared by the Database and DatabaseView entry points:
// `rel` needs arity()/size()/cell(row, col).
template <typename RelationLike>
void ScanRelation(const ParsedQuery& query, const RelationLike& rel,
                  QueryResult* result) {
  const Atom& atom = query.atom;
  const size_t num_vars = result->variables.size();
  Relation dedup(static_cast<int>(num_vars));
  for (size_t row = 0; row < rel.size(); ++row) {
    bool match = true;
    Value binding[32];
    for (int c = 0; c < atom.arity() && match; ++c) {
      const Term& term = atom.args[c];
      Value cell = rel.cell(row, c);
      if (term.is_const()) {
        if (cell != term.sym) match = false;
        continue;
      }
      // Variable: bind or check consistency with earlier columns.
      for (size_t v = 0; v < num_vars; ++v) {
        if (result->variables[v] != term.sym) continue;
        bool bound_earlier = false;
        for (int c2 = 0; c2 < c; ++c2) {
          if (atom.args[c2].is_var() && atom.args[c2].sym == term.sym) {
            bound_earlier = true;
            break;
          }
        }
        if (bound_earlier) {
          if (binding[v] != cell) match = false;
        } else {
          binding[v] = cell;
        }
        break;
      }
    }
    if (!match) continue;
    Tuple projected(binding, static_cast<int>(num_vars));
    if (dedup.Insert(projected)) result->bindings.push_back(projected);
  }
}

template <typename RelationLike>
StatusOr<QueryResult> MatchAgainst(const ParsedQuery& query,
                                   const RelationLike* rel) {
  QueryResult result;
  result.variables = query.variables;
  if (rel == nullptr) return result;
  if (rel->arity() != query.atom.arity()) {
    return Status::InvalidArgument(
        "query arity " + std::to_string(query.atom.arity()) +
        " does not match relation arity " + std::to_string(rel->arity()));
  }
  ScanRelation(query, *rel, &result);
  return result;
}

}  // namespace

StatusOr<QueryResult> MatchQuery(const ParsedQuery& query,
                                 const Database& db) {
  return MatchAgainst(query, db.Find(query.atom.predicate));
}

StatusOr<QueryResult> MatchQuery(const ParsedQuery& query,
                                 const DatabaseView& view) {
  return MatchAgainst(query, view.Find(query.atom.predicate));
}

StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const Database& db) {
  StatusOr<ParsedQuery> query = ParseQuery(query_text, symbols);
  if (!query.ok()) return query.status();
  return MatchQuery(*query, db);
}

StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const DatabaseView& view) {
  StatusOr<ParsedQuery> query = ParseQuery(query_text, symbols);
  if (!query.ok()) return query.status();
  return MatchQuery(*query, view);
}

}  // namespace pdatalog
