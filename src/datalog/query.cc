#include "datalog/query.h"

#include <algorithm>

#include "datalog/parser.h"

namespace pdatalog {

std::string QueryResult::ToString(const SymbolTable& symbols) const {
  if (IsBoolean()) return Holds() ? "true\n" : "false\n";
  std::vector<Tuple> sorted = bindings;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Tuple& t : sorted) {
    for (size_t v = 0; v < variables.size(); ++v) {
      if (v > 0) out += ", ";
      out += symbols.Name(variables[v]) + " = " + symbols.Name(t[v]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const Database& db) {
  // Reuse the program parser: a query atom with variables parses as the
  // head of a bodyless clause only if ground, so parse `q :- ATOM.`
  // and take the body atom.
  std::string wrapped = "q__query :- " + std::string(query_text);
  // Allow an optional trailing period in the query text.
  while (!wrapped.empty() &&
         (wrapped.back() == '.' || wrapped.back() == ' ' ||
          wrapped.back() == '\n')) {
    wrapped.pop_back();
  }
  wrapped += ".";
  StatusOr<Program> parsed = ParseProgram(wrapped, symbols);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed query '" +
                                   std::string(query_text) +
                                   "': " + parsed.status().message());
  }
  if (parsed->rules.size() != 1 || parsed->rules[0].body.size() != 1) {
    return Status::InvalidArgument("query must be a single atom");
  }
  const Atom& atom = parsed->rules[0].body[0];

  QueryResult result;
  CollectVariables(atom, &result.variables);

  if (atom.arity() > 32) {
    return Status::InvalidArgument("query arity exceeds 32");
  }
  const Relation* rel = db.Find(atom.predicate);
  if (rel == nullptr) return result;
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        "query arity " + std::to_string(atom.arity()) +
        " does not match relation arity " + std::to_string(rel->arity()));
  }

  Relation dedup(static_cast<int>(result.variables.size()));
  for (size_t row = 0; row < rel->size(); ++row) {
    const Tuple& t = rel->row(row);
    bool match = true;
    Value binding[32];
    for (int c = 0; c < atom.arity() && match; ++c) {
      const Term& term = atom.args[c];
      if (term.is_const()) {
        if (t[c] != term.sym) match = false;
        continue;
      }
      // Variable: bind or check consistency with earlier columns.
      for (size_t v = 0; v < result.variables.size(); ++v) {
        if (result.variables[v] != term.sym) continue;
        bool bound_earlier = false;
        for (int c2 = 0; c2 < c; ++c2) {
          if (atom.args[c2].is_var() && atom.args[c2].sym == term.sym) {
            bound_earlier = true;
            break;
          }
        }
        if (bound_earlier) {
          if (binding[v] != t[c]) match = false;
        } else {
          binding[v] = t[c];
        }
        break;
      }
    }
    if (!match) continue;
    Tuple projected(binding, static_cast<int>(result.variables.size()));
    if (dedup.Insert(projected)) result.bindings.push_back(projected);
  }
  return result;
}

}  // namespace pdatalog
