#include "datalog/symbol_table.h"

#include <cassert>

namespace pdatalog {

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::Name(Symbol sym) const {
  assert(sym < names_.size());
  return names_[sym];
}

}  // namespace pdatalog
