#include "datalog/ast.h"

#include <algorithm>
#include <cctype>

namespace pdatalog {

bool Atom::IsGround() const {
  return std::all_of(args.begin(), args.end(),
                     [](const Term& t) { return t.is_const(); });
}

void CollectVariables(const Atom& atom, std::vector<Symbol>* out) {
  for (const Term& t : atom.args) {
    if (!t.is_var()) continue;
    if (std::find(out->begin(), out->end(), t.sym) == out->end()) {
      out->push_back(t.sym);
    }
  }
}

std::vector<Symbol> Rule::Variables() const {
  std::vector<Symbol> vars;
  CollectVariables(head, &vars);
  for (const Atom& atom : body) CollectVariables(atom, &vars);
  return vars;
}

bool Rule::IsRangeRestricted() const {
  std::vector<Symbol> body_vars;
  for (const Atom& atom : body) CollectVariables(atom, &body_vars);
  for (const Term& t : head.args) {
    if (!t.is_var()) continue;
    if (std::find(body_vars.begin(), body_vars.end(), t.sym) ==
        body_vars.end()) {
      return false;
    }
  }
  return true;
}

std::string ToString(const Term& term, const SymbolTable& symbols) {
  return symbols.Name(term.sym);
}

std::string ToString(const Atom& atom, const SymbolTable& symbols) {
  std::string out = symbols.Name(atom.predicate);
  out += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(atom.args[i], symbols);
  }
  out += ')';
  return out;
}

std::string ToString(const HashConstraint& c, const SymbolTable& symbols) {
  std::string out =
      c.label == kInvalidSymbol ? std::string("h") : symbols.Name(c.label);
  out += '(';
  for (size_t i = 0; i < c.vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.Name(c.vars[i]);
  }
  out += ") = ";
  out += std::to_string(c.target);
  return out;
}

std::string ToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out = ToString(rule.head, symbols);
  if (!rule.body.empty() || !rule.constraints.empty()) {
    out += " :- ";
    bool first = true;
    for (const Atom& atom : rule.body) {
      if (!first) out += ", ";
      first = false;
      out += ToString(atom, symbols);
    }
    for (const HashConstraint& c : rule.constraints) {
      if (!first) out += ", ";
      first = false;
      out += ToString(c, symbols);
    }
  }
  out += '.';
  return out;
}

std::string ToString(const Program& program) {
  std::string out;
  for (const Rule& rule : program.rules) {
    out += ToString(rule, *program.symbols);
    out += '\n';
  }
  for (const Atom& fact : program.facts) {
    out += ToString(fact, *program.symbols);
    out += ".\n";
  }
  for (const Atom& query : program.queries) {
    out += "?- " + ToString(query, *program.symbols) + ".\n";
  }
  return out;
}

Term MakeTerm(SymbolTable& symbols, std::string_view name) {
  bool is_var =
      !name.empty() && (std::isupper(static_cast<unsigned char>(name[0])) ||
                        name[0] == '_');
  Symbol sym = symbols.Intern(name);
  return is_var ? Term::Var(sym) : Term::Const(sym);
}

Atom MakeAtom(SymbolTable& symbols, std::string_view predicate,
              const std::vector<std::string>& args) {
  Atom atom;
  atom.predicate = symbols.Intern(predicate);
  atom.args.reserve(args.size());
  for (const std::string& a : args) atom.args.push_back(MakeTerm(symbols, a));
  return atom;
}

}  // namespace pdatalog
