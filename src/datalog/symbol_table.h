// String interning shared by programs, databases and the runtime.
//
// Every name in the system — predicate symbols, variable names, and data
// constants — is interned once into a `Symbol` (a dense 32-bit id).
// Tuples then store plain ids, which makes hashing, equality and
// discriminating functions cheap and deterministic.
#ifndef PDATALOG_DATALOG_SYMBOL_TABLE_H_
#define PDATALOG_DATALOG_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pdatalog {

using Symbol = uint32_t;

inline constexpr Symbol kInvalidSymbol = 0xffffffffu;

// Bidirectional string <-> Symbol map. Not thread-safe for interning;
// the parallel engine only reads it (all interning happens before a run).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  // Returns the id for `name` or kInvalidSymbol if never interned.
  Symbol Lookup(std::string_view name) const;

  // Precondition: `sym` was returned by Intern().
  const std::string& Name(Symbol sym) const;

  size_t size() const { return names_.size(); }

 private:
  // deque: growing never moves existing strings, so the string_view keys
  // in index_ (which point into names_) stay valid.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_SYMBOL_TABLE_H_
