// Point/pattern queries against evaluated relations: given an atom such
// as `anc(alice, X)`, returns the bindings of its variables. This is
// the "answer to the query" step the paper's final pooling feeds, and
// the read path of the serving engine (src/server/).
//
// Parsing and matching are split so a server can intern symbols under a
// lock (ParseQuery) and then scan a frozen snapshot lock-free
// (MatchQuery over a DatabaseView).
#ifndef PDATALOG_DATALOG_QUERY_H_
#define PDATALOG_DATALOG_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/symbol_table.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace pdatalog {

struct QueryResult {
  // The query's distinct variables in first-occurrence order; empty for
  // a ground (boolean) query.
  std::vector<Symbol> variables;
  // One tuple per match, projected onto `variables` (deduplicated). A
  // ground query yields a single empty tuple when it holds, none when
  // it does not.
  std::vector<Tuple> bindings;

  bool IsBoolean() const { return variables.empty(); }
  bool Holds() const { return !bindings.empty(); }

  // "X = alice, Y = bob" lines, sorted; "true"/"false" for boolean.
  std::string ToString(const SymbolTable& symbols) const;
};

// A parsed query atom plus its distinct variables in first-occurrence
// order. Self-contained value: matching needs no symbol table.
struct ParsedQuery {
  Atom atom;
  std::vector<Symbol> variables;
};

// Parses `query_text` as a single atom (trailing '.' optional),
// interning constants into `symbols`. Rejects anything that is not one
// atom of arity <= 32.
StatusOr<ParsedQuery> ParseQuery(std::string_view query_text,
                                 SymbolTable* symbols);

// Matches a parsed query against `db` / a frozen `view`. An absent
// predicate yields an empty result (not an error), like an empty
// relation would; an arity mismatch is an error. The view overload
// touches only the frozen rows and is safe to run concurrently with
// writers of the underlying database.
StatusOr<QueryResult> MatchQuery(const ParsedQuery& query,
                                 const Database& db);
StatusOr<QueryResult> MatchQuery(const ParsedQuery& query,
                                 const DatabaseView& view);

// Parse + match in one call (the one-shot CLI path).
StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const Database& db);
StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const DatabaseView& view);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_QUERY_H_
