// Point/pattern queries against evaluated relations: given an atom such
// as `anc(alice, X)`, returns the bindings of its variables. This is
// the "answer to the query" step the paper's final pooling feeds.
#ifndef PDATALOG_DATALOG_QUERY_H_
#define PDATALOG_DATALOG_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/symbol_table.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

struct QueryResult {
  // The query's distinct variables in first-occurrence order; empty for
  // a ground (boolean) query.
  std::vector<Symbol> variables;
  // One tuple per match, projected onto `variables` (deduplicated). A
  // ground query yields a single empty tuple when it holds, none when
  // it does not.
  std::vector<Tuple> bindings;

  bool IsBoolean() const { return variables.empty(); }
  bool Holds() const { return !bindings.empty(); }

  // "X = alice, Y = bob" lines, sorted; "true"/"false" for boolean.
  std::string ToString(const SymbolTable& symbols) const;
};

// Parses `query_text` as a single atom (trailing '.' optional) and
// matches it against the corresponding relation of `db`. Unknown
// predicates yield an empty result (not an error), like an empty
// relation would.
StatusOr<QueryResult> EvaluateQuery(std::string_view query_text,
                                    SymbolTable* symbols,
                                    const Database& db);

}  // namespace pdatalog

#endif  // PDATALOG_DATALOG_QUERY_H_
