#include "datalog/lexer.h"

#include <cctype>

namespace pdatalog {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string At(int line, int column) {
  return " at line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '%') {  // comment to end of line
      size_t n = 0;
      while (i + n < source.size() && source[i + n] != '\n') ++n;
      advance(n);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (c == '(') {
      tok.kind = TokenKind::kLParen;
      advance(1);
    } else if (c == ')') {
      tok.kind = TokenKind::kRParen;
      advance(1);
    } else if (c == ',') {
      tok.kind = TokenKind::kComma;
      advance(1);
    } else if (c == '.') {
      tok.kind = TokenKind::kPeriod;
      advance(1);
    } else if (c == ':') {
      if (i + 1 >= source.size() || source[i + 1] != '-') {
        return Status::InvalidArgument("expected ':-'" + At(line, column));
      }
      tok.kind = TokenKind::kImplies;
      advance(2);
    } else if (c == '?') {
      if (i + 1 >= source.size() || source[i + 1] != '-') {
        return Status::InvalidArgument("expected '?-'" + At(line, column));
      }
      tok.kind = TokenKind::kQuery;
      advance(2);
    } else if (c == '\'') {
      size_t n = 1;
      while (i + n < source.size() && source[i + n] != '\'' &&
             source[i + n] != '\n') {
        ++n;
      }
      if (i + n >= source.size() || source[i + n] != '\'') {
        return Status::InvalidArgument("unterminated quoted constant" +
                                       At(line, column));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::string(source.substr(i + 1, n - 1));
      advance(n + 1);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < source.size() &&
                std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t n = (c == '-') ? 1 : 0;
      while (i + n < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i + n]))) {
        ++n;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = std::string(source.substr(i, n));
      advance(n);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t n = 0;
      while (i + n < source.size() && IsIdentChar(source[i + n])) ++n;
      tok.text = std::string(source.substr(i, n));
      bool is_var = std::isupper(static_cast<unsigned char>(c)) || c == '_';
      tok.kind = is_var ? TokenKind::kVariable : TokenKind::kIdentifier;
      advance(n);
    } else {
      return Status::InvalidArgument(
          std::string("unexpected character '") + c + "'" + At(line, column));
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(end);
  return tokens;
}

}  // namespace pdatalog
