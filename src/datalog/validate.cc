#include "datalog/validate.h"

#include <algorithm>

namespace pdatalog {

namespace {

Status CheckArity(const Atom& atom, const SymbolTable& symbols,
                  ProgramInfo* info) {
  auto [it, inserted] = info->arity.emplace(atom.predicate, atom.arity());
  if (inserted) {
    info->predicates.push_back(atom.predicate);
    return Status::Ok();
  }
  if (it->second != atom.arity()) {
    return Status::InvalidArgument(
        "predicate '" + symbols.Name(atom.predicate) +
        "' used with arities " + std::to_string(it->second) + " and " +
        std::to_string(atom.arity()));
  }
  return Status::Ok();
}

}  // namespace

Status Validate(const Program& program, ProgramInfo* info) {
  *info = ProgramInfo();
  if (program.symbols == nullptr) {
    return Status::InvalidArgument("program has no symbol table");
  }
  const SymbolTable& symbols = *program.symbols;

  for (const Rule& rule : program.rules) {
    PDATALOG_RETURN_IF_ERROR(CheckArity(rule.head, symbols, info));
    for (const Atom& atom : rule.body) {
      PDATALOG_RETURN_IF_ERROR(CheckArity(atom, symbols, info));
    }
    if (!rule.IsRangeRestricted()) {
      return Status::InvalidArgument(
          "rule is not range-restricted (unsafe): " + ToString(rule, symbols));
    }
    // Constraint variables must be bound by the body; otherwise a rewritten
    // rule could not be evaluated (Section 3 requires discriminating
    // variables to appear in the rule).
    std::vector<Symbol> body_vars;
    for (const Atom& atom : rule.body) CollectVariables(atom, &body_vars);
    for (const HashConstraint& c : rule.constraints) {
      for (Symbol v : c.vars) {
        if (std::find(body_vars.begin(), body_vars.end(), v) ==
            body_vars.end()) {
          return Status::InvalidArgument(
              "hash-constraint variable '" + symbols.Name(v) +
              "' does not occur in the rule body: " + ToString(rule, symbols));
        }
      }
    }
    info->derived.insert(rule.head.predicate);
  }

  for (const Atom& fact : program.facts) {
    if (!fact.IsGround()) {
      return Status::InvalidArgument("fact is not ground: " +
                                     ToString(fact, symbols));
    }
    PDATALOG_RETURN_IF_ERROR(CheckArity(fact, symbols, info));
    if (info->derived.count(fact.predicate) > 0) {
      return Status::InvalidArgument(
          "predicate '" + symbols.Name(fact.predicate) +
          "' appears both as a fact and in a rule head; base predicates may "
          "not appear in rule heads (Section 2)");
    }
  }

  for (const Atom& query : program.queries) {
    PDATALOG_RETURN_IF_ERROR(CheckArity(query, symbols, info));
  }

  for (Symbol p : info->predicates) {
    if (info->derived.count(p) == 0) info->base.insert(p);
  }
  return Status::Ok();
}

}  // namespace pdatalog
