#include "storage/database.h"

#include <cassert>

namespace pdatalog {

Relation& Database::GetOrCreate(Symbol predicate, int arity) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) {
    it = relations_.emplace(predicate, std::make_unique<Relation>(arity))
             .first;
  }
  assert(it->second->arity() == arity);
  return *it->second;
}

Relation* Database::Find(Symbol predicate) {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(Symbol predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : it->second.get();
}

bool Database::Insert(Symbol predicate, const Tuple& tuple, int arity) {
  return GetOrCreate(predicate, arity).Insert(tuple);
}

Status Database::LoadFacts(const Program& program) {
  for (const Atom& fact : program.facts) {
    if (!fact.IsGround()) {
      return Status::InvalidArgument("fact is not ground: " +
                                     ToString(fact, *program.symbols));
    }
    Value buf[32];
    if (fact.arity() > 32) {
      return Status::InvalidArgument("fact arity exceeds 32");
    }
    for (int i = 0; i < fact.arity(); ++i) buf[i] = fact.args[i].sym;
    Insert(fact.predicate, Tuple(buf, fact.arity()), fact.arity());
  }
  return Status::Ok();
}

}  // namespace pdatalog
