#include "storage/snapshot.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <fstream>
#include <vector>

#include "datalog/fact_io.h"

namespace pdatalog {

StatusOr<size_t> SaveDatabase(const Database& db, const SymbolTable& symbols,
                              const std::string& directory) {
  // POSIX mkdir (the style guide disallows <filesystem>); EEXIST is fine.
  if (mkdir(directory.c_str(), 0755) != 0) {
    struct stat st;
    if (stat(directory.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      return Status::Internal("cannot create directory '" + directory + "'");
    }
  }

  size_t files = 0;
  for (const auto& [pred, rel] : db.relations()) {
    std::string path = directory + "/" + symbols.Name(pred) + ".tsv";
    std::ofstream out(path);
    if (!out) {
      return Status::Internal("cannot write '" + path + "'");
    }
    std::vector<Tuple> rows;
    rows.reserve(rel->size());
    for (size_t r = 0; r < rel->size(); ++r) rows.push_back(rel->row(r));
    std::sort(rows.begin(), rows.end());
    for (const Tuple& t : rows) {
      for (int c = 0; c < t.arity(); ++c) {
        if (c > 0) out << '\t';
        out << symbols.Name(t[c]);
      }
      out << '\n';
    }
    ++files;
  }
  return files;
}

StatusOr<size_t> LoadDatabase(const std::string& directory,
                              SymbolTable* symbols, Database* db) {
  DIR* dir = opendir(directory.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open directory '" + directory + "'");
  }
  std::vector<std::string> stems;
  while (dirent* entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tsv") {
      stems.push_back(name.substr(0, name.size() - 4));
    }
  }
  closedir(dir);
  std::sort(stems.begin(), stems.end());  // deterministic intern order

  for (const std::string& stem : stems) {
    StatusOr<size_t> loaded = LoadFactsFromFile(
        directory + "/" + stem + ".tsv", stem, symbols, db);
    if (!loaded.ok()) return loaded.status();
  }
  return stems.size();
}

}  // namespace pdatalog
