#include "storage/snapshot.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace pdatalog {

RelationView::RelationView(const Relation& relation)
    : arity_(relation.arity()), num_rows_(relation.size()) {
  const ColumnStore& store = relation.store();
  columns_.resize(static_cast<size_t>(arity_));
  for (int c = 0; c < arity_; ++c) {
    std::vector<const Value*>& chunks = columns_[static_cast<size_t>(c)];
    chunks.reserve((num_rows_ + ColumnStore::kChunkRows - 1) >>
                   ColumnStore::kChunkShift);
    for (size_t row = 0; row < num_rows_; row += ColumnStore::kChunkRows) {
      size_t run;
      chunks.push_back(store.ColumnSpan(c, row, &run));
    }
  }
}

Tuple RelationView::row(size_t i) const {
  std::vector<Value> vals(static_cast<size_t>(arity_));
  for (int c = 0; c < arity_; ++c) vals[static_cast<size_t>(c)] = cell(i, c);
  return Tuple(vals.data(), arity_);
}

std::string RelationView::ToSortedString(const SymbolTable& symbols) const {
  // Same name-order sort as Relation::ToSortedString so the two dumps
  // compare equal over the same rows.
  std::vector<Tuple> sorted;
  sorted.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) sorted.push_back(row(r));
  std::sort(sorted.begin(), sorted.end(),
            [&symbols](const Tuple& a, const Tuple& b) {
              if (a.arity() != b.arity()) return a.arity() < b.arity();
              for (int c = 0; c < a.arity(); ++c) {
                const std::string& na = symbols.Name(a[c]);
                const std::string& nb = symbols.Name(b[c]);
                if (na != nb) return na < nb;
              }
              return false;
            });
  std::string out;
  for (const Tuple& t : sorted) {
    out += t.ToString(symbols);
    out += '\n';
  }
  return out;
}

DatabaseView DatabaseView::Freeze(const Database& db) {
  DatabaseView view;
  view.relations_.reserve(db.relation_count());
  for (const auto& [pred, rel] : db.relations()) {
    view.relations_.emplace(pred, RelationView(*rel));
  }
  return view;
}

const RelationView* DatabaseView::Find(Symbol predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t DatabaseView::total_rows() const {
  size_t rows = 0;
  for (const auto& [pred, rel] : relations_) rows += rel.size();
  return rows;
}

std::string EscapeTsvField(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

bool UnescapeTsvField(std::string_view field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    char ch = field[i];
    if (ch != '\\') {
      *out += ch;
      continue;
    }
    if (++i == field.size()) return false;  // trailing backslash
    switch (field[i]) {
      case '\\':
        *out += '\\';
        break;
      case 't':
        *out += '\t';
        break;
      case 'n':
        *out += '\n';
        break;
      case 'r':
        *out += '\r';
        break;
      default:
        return false;  // unknown escape
    }
  }
  return true;
}

namespace {

// Shared save body: `rel` needs size()/row(i) (Relation and
// RelationView both qualify).
template <typename RelationLike>
Status SaveRelationTsv(const RelationLike& rel, const SymbolTable& symbols,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot write '" + path + "'");
  }
  std::vector<Tuple> rows;
  rows.reserve(rel.size());
  for (size_t r = 0; r < rel.size(); ++r) rows.push_back(rel.row(r));
  std::sort(rows.begin(), rows.end());
  for (const Tuple& t : rows) {
    for (int c = 0; c < t.arity(); ++c) {
      if (c > 0) out << '\t';
      out << EscapeTsvField(symbols.Name(t[c]));
    }
    out << '\n';
  }
  return Status::Ok();
}

Status EnsureDirectory(const std::string& directory) {
  // POSIX mkdir (the style guide disallows <filesystem>); EEXIST is fine.
  if (mkdir(directory.c_str(), 0755) != 0) {
    struct stat st;
    if (stat(directory.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      return Status::Internal("cannot create directory '" + directory + "'");
    }
  }
  return Status::Ok();
}

// relations() maps to unique_ptr<Relation> on a Database and to a
// RelationView on a view; normalize to a reference.
const Relation& Deref(const std::unique_ptr<Relation>& rel) { return *rel; }
const RelationView& Deref(const RelationView& rel) { return rel; }

template <typename DatabaseLike>
StatusOr<size_t> SaveDatabaseImpl(const DatabaseLike& db,
                                  const SymbolTable& symbols,
                                  const std::string& directory) {
  PDATALOG_RETURN_IF_ERROR(EnsureDirectory(directory));
  size_t files = 0;
  for (const auto& [pred, rel] : db.relations()) {
    std::string path = directory + "/" + symbols.Name(pred) + ".tsv";
    PDATALOG_RETURN_IF_ERROR(SaveRelationTsv(Deref(rel), symbols, path));
    ++files;
  }
  return files;
}

// Strict TSV reader for one relation file: fields split on tabs only,
// unescaped; every row must match the relation's arity.
Status LoadRelationTsv(const std::string& path, const std::string& stem,
                       SymbolTable* symbols, Database* db) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open snapshot file '" + path + "'");
  }
  Symbol pred = symbols->Intern(stem);
  Relation* rel = db->Find(pred);
  int arity = rel == nullptr ? -1 : rel->arity();

  std::string line;
  int line_no = 0;
  std::string unescaped;
  Value vals[32];
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;  // blank lines carry no row
    auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument(stem + ".tsv line " +
                                     std::to_string(line_no) + ": " + why);
    };
    // Split on tabs only; escaped tabs were turned into "\t" on save.
    int fields = 0;
    size_t pos = 0;
    while (true) {
      size_t tab = line.find('\t', pos);
      std::string_view field(line.data() + pos,
                             (tab == std::string::npos ? line.size() : tab) -
                                 pos);
      if (fields == 32) return malformed("arity exceeds 32");
      if (!UnescapeTsvField(field, &unescaped)) {
        return malformed("malformed escape in field " +
                         std::to_string(fields + 1));
      }
      vals[fields++] = symbols->Intern(unescaped);
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    if (arity < 0) {
      arity = fields;
      rel = &db->GetOrCreate(pred, arity);
    } else if (fields != arity) {
      return malformed("expected " + std::to_string(arity) +
                       " fields, found " + std::to_string(fields));
    }
    rel->InsertView(vals, arity);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<size_t> SaveDatabase(const Database& db, const SymbolTable& symbols,
                              const std::string& directory) {
  return SaveDatabaseImpl(db, symbols, directory);
}

StatusOr<size_t> SaveDatabase(const DatabaseView& view,
                              const SymbolTable& symbols,
                              const std::string& directory) {
  return SaveDatabaseImpl(view, symbols, directory);
}

StatusOr<size_t> LoadDatabase(const std::string& directory,
                              SymbolTable* symbols, Database* db) {
  DIR* dir = opendir(directory.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open directory '" + directory + "'");
  }
  std::vector<std::string> stems;
  while (dirent* entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tsv") {
      stems.push_back(name.substr(0, name.size() - 4));
    }
  }
  closedir(dir);
  std::sort(stems.begin(), stems.end());  // deterministic intern order

  for (const std::string& stem : stems) {
    PDATALOG_RETURN_IF_ERROR(
        LoadRelationTsv(directory + "/" + stem + ".tsv", stem, symbols, db));
  }
  return stems.size();
}

}  // namespace pdatalog
