#include "storage/tuple.h"

#include <algorithm>

namespace pdatalog {

Tuple::Tuple(const Value* data, int n) : size_(static_cast<uint32_t>(n)) {
  Value* dst = size_ <= kInline ? inline_ : (heap_ = new Value[size_]);
  // An arity-0 tuple may come from an empty vector's data(), which is
  // allowed to be null; memcpy's arguments may not be.
  if (size_ != 0) std::memcpy(dst, data, size_ * sizeof(Value));
}

Tuple::Tuple(Tuple&& other) noexcept : size_(other.size_) {
  if (size_ <= kInline) {
    std::memcpy(inline_, other.inline_, size_ * sizeof(Value));
  } else {
    heap_ = other.heap_;
    other.size_ = 0;
  }
}

Tuple& Tuple::operator=(const Tuple& other) {
  if (this == &other) return *this;
  DestroyHeap();
  size_ = other.size_;
  Value* dst = size_ <= kInline ? inline_ : (heap_ = new Value[size_]);
  std::memcpy(dst, other.data(), size_ * sizeof(Value));
  return *this;
}

Tuple& Tuple::operator=(Tuple&& other) noexcept {
  if (this == &other) return *this;
  DestroyHeap();
  size_ = other.size_;
  if (size_ <= kInline) {
    std::memcpy(inline_, other.inline_, size_ * sizeof(Value));
  } else {
    heap_ = other.heap_;
    other.size_ = 0;
  }
  return *this;
}

bool operator<(const Tuple& a, const Tuple& b) {
  if (a.arity() != b.arity()) return a.arity() < b.arity();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

std::string Tuple::ToString(const SymbolTable& symbols) const {
  std::string out = "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.Name((*this)[i]);
  }
  out += ')';
  return out;
}

}  // namespace pdatalog
