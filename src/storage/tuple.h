// Fixed-arity tuples of interned constants.
//
// A `Value` is an interned constant symbol. `Tuple` stores up to four
// values inline (covering all the paper's programs) and spills larger
// arities to the heap. Tuples are value types: copyable, movable,
// hashable, and ordered lexicographically for deterministic output.
#ifndef PDATALOG_STORAGE_TUPLE_H_
#define PDATALOG_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>

#include "datalog/symbol_table.h"
#include "util/hash.h"

namespace pdatalog {

using Value = Symbol;  // interned constant id

class Tuple {
 public:
  Tuple() : size_(0) {}

  Tuple(std::initializer_list<Value> values)
      : Tuple(values.begin(), static_cast<int>(values.size())) {}

  // Copies `n` values from `data`.
  Tuple(const Value* data, int n);

  Tuple(const Tuple& other) : Tuple(other.data(), other.arity()) {}
  Tuple(Tuple&& other) noexcept;
  Tuple& operator=(const Tuple& other);
  Tuple& operator=(Tuple&& other) noexcept;
  ~Tuple() { DestroyHeap(); }

  int arity() const { return static_cast<int>(size_); }

  const Value* data() const {
    return size_ <= kInline ? inline_ : heap_;
  }
  Value* mutable_data() { return size_ <= kInline ? inline_ : heap_; }

  Value operator[](int i) const { return data()[i]; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  uint64_t Hash() const {
    uint64_t h = 0x12345678u ^ size_;
    for (Value v : *this) h = HashCombine(h, v);
    return h;
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(Value)) == 0;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  // Lexicographic order on (arity, values); used only for deterministic
  // printing and test assertions.
  friend bool operator<(const Tuple& a, const Tuple& b);

  // "(alice, bob)" using constant names from `symbols`.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  static constexpr uint32_t kInline = 4;

  void DestroyHeap() {
    if (size_ > kInline) delete[] heap_;
  }

  uint32_t size_;
  union {
    Value inline_[kInline];
    Value* heap_;
  };
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_TUPLE_H_
