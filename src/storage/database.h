// A catalog of named relations: predicate symbol -> Relation.
#ifndef PDATALOG_STORAGE_DATABASE_H_
#define PDATALOG_STORAGE_DATABASE_H_

#include <memory>
#include <unordered_map>

#include "datalog/ast.h"
#include "storage/relation.h"
#include "util/status.h"

namespace pdatalog {

// Owns one Relation per predicate. Used both for the extensional input
// database and for evaluation outputs.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Returns the relation for `predicate`, creating an empty one with the
  // given arity on first use. Asserts on arity mismatch with an existing
  // relation.
  Relation& GetOrCreate(Symbol predicate, int arity);

  // Returns the relation or nullptr if absent.
  Relation* Find(Symbol predicate);
  const Relation* Find(Symbol predicate) const;

  bool Insert(Symbol predicate, const Tuple& tuple, int arity);

  // Loads all ground facts of `program` into this database.
  Status LoadFacts(const Program& program);

  size_t relation_count() const { return relations_.size(); }

  const std::unordered_map<Symbol, std::unique_ptr<Relation>>& relations()
      const {
    return relations_;
  }

 private:
  std::unordered_map<Symbol, std::unique_ptr<Relation>> relations_;
};

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_DATABASE_H_
