// In-memory relations with set semantics, append-only column-major
// storage, and lazily built hash indexes.
//
// Rows are append-only and deduplicated on insert, which gives the
// semi-naive evaluator its delta windows for free: the tuples derived in
// round k occupy the contiguous row range [watermark_{k-1}, watermark_k).
// Evaluators track watermarks; the relation itself is oblivious to them.
//
// Values live in per-column chunked arrays (ColumnStore): column c of
// rows [0, size) is a chain of fixed-size chunks, so a whole column can
// be scanned with one pointer per chunk and a received TupleBlock's
// columnar payload appends with one copy per column — rows are never
// materialized on the ingest path. Chunks never relocate, so readers of
// a frozen prefix are safe while the relation grows.
//
// Both the dedup set and the column indexes are open-addressing flat
// hash tables keyed by hashes of raw column values, so neither inserts
// nor probes ever materialize a key `Tuple`; equality checks read back
// through the relation's own column chunks.
//
// Thread-safety: a Relation is either worker-local (mutable, no locking
// needed) or shared read-only across workers (base relations). For the
// shared case, all needed indexes must be built before the parallel run
// via EnsureIndex(); lookups afterwards are const and race-free.
#ifndef PDATALOG_STORAGE_RELATION_H_
#define PDATALOG_STORAGE_RELATION_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"
#include "util/hash.h"

namespace pdatalog {

class TraceRing;   // obs/trace.h; storage only holds a pointer
class Histogram;   // obs/histogram.h; likewise

// Hash of a value sequence; the one function the dedup set and every
// column index agree on, so a probe can hash bound values in place and
// match rows hashed column-by-column.
inline uint64_t HashProjection(const Value* values, int n) {
  uint64_t h = 0x12345678u ^ static_cast<uint64_t>(n);
  for (int i = 0; i < n; ++i) h = HashCombine(h, values[i]);
  return h;
}

// Column-major tuple storage: one chain of fixed-size chunks per column.
// Chunks are allocated once and never move, so a pointer into a column
// stays valid while the store grows (the frozen-prefix contract the
// parallel workers rely on).
class ColumnStore {
 public:
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkRows = size_t{1} << kChunkShift;  // 4096
  static constexpr size_t kChunkMask = kChunkRows - 1;

  explicit ColumnStore(int arity) : arity_(arity), columns_(arity) {}
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return num_rows_; }

  Value cell(size_t row, int col) const {
    return columns_[col].chunks[row >> kChunkShift][row & kChunkMask];
  }

  // Pointer to column `col` at `row`; `*run` receives the number of rows
  // readable contiguously from there (bounded by the chunk edge and the
  // store size).
  const Value* ColumnSpan(int col, size_t row, size_t* run) const {
    size_t in_chunk = row & kChunkMask;
    *run = std::min(kChunkRows - in_chunk, num_rows_ - row);
    return columns_[col].chunks[row >> kChunkShift].get() + in_chunk;
  }

  void AppendRow(const Value* values) {
    EnsureCapacity(num_rows_ + 1);
    size_t chunk = num_rows_ >> kChunkShift;
    size_t at = num_rows_ & kChunkMask;
    for (int c = 0; c < arity_; ++c) columns_[c].chunks[chunk][at] = values[c];
    ++num_rows_;
  }

  void CopyRow(size_t row, Value* out) const {
    size_t chunk = row >> kChunkShift;
    size_t at = row & kChunkMask;
    for (int c = 0; c < arity_; ++c) out[c] = columns_[c].chunks[chunk][at];
  }

  bool RowEquals(size_t row, const Value* values) const {
    size_t chunk = row >> kChunkShift;
    size_t at = row & kChunkMask;
    for (int c = 0; c < arity_; ++c) {
      if (columns_[c].chunks[chunk][at] != values[c]) return false;
    }
    return true;
  }

  // Same hash as HashProjection over the row's values, read per column.
  uint64_t HashRow(size_t row) const {
    size_t chunk = row >> kChunkShift;
    size_t at = row & kChunkMask;
    uint64_t h = 0x12345678u ^ static_cast<uint64_t>(arity_);
    for (int c = 0; c < arity_; ++c) {
      h = HashCombine(h, columns_[c].chunks[chunk][at]);
    }
    return h;
  }

  // Bulk-append support: EnsureCapacity allocates chunks for `rows`
  // total rows; MutableSpan exposes the write window (capacity, not
  // size, bounds it); CommitRows publishes the appended rows.
  void EnsureCapacity(size_t rows) {
    size_t chunks = (rows + kChunkRows - 1) >> kChunkShift;
    for (int c = 0; c < arity_; ++c) {
      while (columns_[c].chunks.size() < chunks) {
        columns_[c].chunks.push_back(std::make_unique<Value[]>(kChunkRows));
      }
    }
  }
  Value* MutableSpan(int col, size_t row, size_t limit, size_t* run) {
    size_t in_chunk = row & kChunkMask;
    *run = std::min(kChunkRows - in_chunk, limit - row);
    return columns_[col].chunks[row >> kChunkShift].get() + in_chunk;
  }
  void CommitRows(size_t new_size) { num_rows_ = new_size; }

 private:
  struct Column {
    std::vector<std::unique_ptr<Value[]>> chunks;
  };

  int arity_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

// Hash index over a subset of columns, identified by a bit mask
// (bit c set => column c is part of the key).
//
// Layout: an open-addressing slot array maps key hashes to buckets; each
// bucket chains fixed-size chunks of ascending row ids through one
// contiguous pool. Probes hash the bound values in place, verify the key
// against a representative row, and walk the chunk chain — no `Tuple`
// key is ever allocated, on insert or lookup.
class ColumnIndex {
 public:
  // `store` is the owning relation's column storage (for key equality
  // checks); it must outlive the index (Relation is pinned).
  ColumnIndex(uint32_t mask, int arity, const ColumnStore* store);

  uint32_t mask() const { return mask_; }
  // Columns in the mask, ascending; probe keys use this order.
  const std::vector<int>& key_columns() const { return key_columns_; }

  // Allocation-free cursor over the row ids matching one probe key,
  // restricted to ids in [begin, end), yielded in ascending order.
  class Probe {
   public:
    // Returns false when exhausted; otherwise stores the next row id.
    bool Next(uint32_t* row_id) {
      while (chunk_ != kNoChunk) {
        const Chunk& c = index_->pool_[chunk_];
        if (pos_ < c.count) {
          uint32_t id = c.rows[pos_];
          if (id >= end_) break;  // ids ascend: nothing later can match
          ++pos_;
          if (id < begin_) continue;
          *row_id = id;
          return true;
        }
        chunk_ = c.next;
        pos_ = 0;
        // Skip whole chunks below the range with one comparison each.
        while (chunk_ != kNoChunk) {
          const Chunk& n = index_->pool_[chunk_];
          if (n.rows[n.count - 1] >= begin_) break;
          chunk_ = n.next;
        }
      }
      chunk_ = kNoChunk;
      return false;
    }

   private:
    friend class ColumnIndex;
    const ColumnIndex* index_ = nullptr;
    uint32_t chunk_ = kNoChunk;
    uint32_t pos_ = 0;
    uint32_t begin_ = 0;
    uint32_t end_ = 0;
  };

  // Probes with `key` (values for key_columns(), in that order). Only
  // row ids in [begin, end) are yielded; the caller must keep the range
  // within built_upto().
  Probe ProbeRange(const Value* key, int n, size_t begin, size_t end) const;

  // Same, with the key hash precomputed by the caller (the batch join
  // kernel hashes a whole batch of keys in one tight loop, then probes).
  // `hash` must equal HashProjection(key, n).
  Probe ProbeRangeHashed(uint64_t hash, const Value* key, int n, size_t begin,
                         size_t end) const;

  // Prefetches the slot a key hash lands on, so a batch of probes can
  // overlap its cache misses before any ProbeRangeHashed call.
  void PrefetchHash(uint64_t hash) const {
    if (!slots_.empty()) __builtin_prefetch(&slots_[hash & slot_mask_]);
  }

  // Extracts the key projection of `row` (debugging/tests only; the
  // probe path never materializes keys).
  Tuple MakeKey(const Tuple& row) const;

  // Appends `row_id` (which must exceed every id already present) under
  // its key projection, read from the column store.
  void Add(uint32_t row_id);

  size_t built_upto() const { return built_upto_; }
  void set_built_upto(size_t n) { built_upto_ = n; }

  // Distinct keys present (for tests and stats).
  size_t num_keys() const { return buckets_.size(); }

 private:
  static constexpr uint32_t kNoChunk = 0xffffffffu;
  static constexpr uint32_t kNoBucket = 0xffffffffu;
  static constexpr int kChunkRows = 6;  // chunk = 32 bytes

  struct Chunk {
    uint32_t next = kNoChunk;
    uint32_t count = 0;
    uint32_t rows[kChunkRows];
  };
  struct Bucket {
    uint64_t hash;
    uint32_t head_chunk;
    uint32_t tail_chunk;
  };

  // True iff `key` equals the projection of the bucket's first row.
  bool KeyEquals(const Bucket& bucket, const Value* key, int n) const;
  uint32_t FindBucket(uint64_t hash, const Value* key, int n) const;
  void GrowSlots();

  uint32_t mask_;
  std::vector<int> key_columns_;  // columns in the mask, ascending
  size_t built_upto_ = 0;         // rows [0, built_upto_) are indexed
  const ColumnStore* store_;
  std::vector<uint32_t> slots_;   // bucket id + 1; 0 = empty. 2^k sized
  uint64_t slot_mask_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<Chunk> pool_;       // all buckets' row ids, one pool
};

class Relation {
 public:
  explicit Relation(int arity) : arity_(arity), store_(arity) {}
  // Not copyable or movable: the dedup table and indexes hold a pointer
  // to the column store. Databases store relations behind unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return store_.size(); }
  bool empty() const { return store_.size() == 0; }

  // Inserts `tuple` if absent. Returns true iff it was new.
  bool Insert(const Tuple& tuple) {
    return InsertView(tuple.data(), tuple.arity());
  }

  // Same, from a raw value sequence: duplicates are rejected without
  // ever constructing a Tuple (the evaluator's firing hot path).
  bool InsertView(const Value* values, int n);

  // Bulk ingest of `count` rows laid out contiguously, row-major by
  // default or column-major when `columnar` is set (a decoded
  // TupleBlock frame keeps the wire's columnar layout): hashes every
  // row in one pass, reserves dedup capacity up front, then appends the
  // surviving rows with one gathered copy per column — the receive path
  // never materializes per-tuple objects. Returns the number of rows
  // that were new.
  size_t InsertBlock(const Value* values, int arity, uint32_t count,
                     bool columnar = false);

  bool Contains(const Tuple& tuple) const;

  // Materializes row `i` (returned by value; the storage is columnar).
  // Cold paths only — hot loops should read cells or column spans.
  Tuple row(size_t i) const;
  // Single-cell read through the column chunks.
  Value cell(size_t row, int col) const { return store_.cell(row, col); }
  // Direct access to the column-major storage (batch kernels).
  const ColumnStore& store() const { return store_; }

  // Returns the index for `mask`, creating it if needed and extending it
  // to cover all current rows. Mutating: not for concurrent use.
  const ColumnIndex& EnsureIndex(uint32_t mask);

  // Returns the index for `mask` if it exists, else nullptr. The index
  // may lag behind recent inserts (it covers rows [0, built_upto()));
  // readers must only probe row ranges within its coverage. Const: safe
  // for concurrent readers of a frozen relation.
  const ColumnIndex* GetIndex(uint32_t mask) const;

  // Sorted textual dump, for tests and examples.
  std::string ToSortedString(const SymbolTable& symbols) const;

  // Observability hook: when set, InsertBlock brackets each bulk ingest
  // with a TracePhase::kInsert span on `ring`. The ring must be the one
  // owned by the thread that mutates this relation (workers set it on
  // their t_in relations); null (the default) disables tracing at the
  // cost of one branch per block.
  void set_trace(TraceRing* ring) { trace_ = ring; }

  // Companion hook: when set, each bulk ingest also records its
  // duration into `histogram` (owned by the worker that mutates this
  // relation; see WorkerProfile::insert_ns). Same threading contract
  // as set_trace.
  void set_insert_profile(Histogram* histogram) {
    insert_profile_ = histogram;
  }

  // Companion hook: when set, each bulk ingest records the block's
  // tuple count — including blocks whose tuples all dedup away, so
  // tuples-per-frame ratios in the report stay honest. Same threading
  // contract as set_trace.
  void set_insert_tuples(Histogram* histogram) {
    insert_tuples_ = histogram;
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // Grows the dedup table until it can hold `min_rows` rows below 3/4
  // load (one rehash even when doubling several times).
  void GrowDedup(size_t min_rows);

  int arity_;
  ColumnStore store_;
  // Open-addressing dedup set over row ids (hash + id per slot; equality
  // reads back through the column store).
  struct DedupSlot {
    uint64_t hash;
    uint32_t row;
  };
  std::vector<DedupSlot> dedup_;
  uint64_t dedup_mask_ = 0;
  std::unordered_map<uint32_t, ColumnIndex> indexes_;
  TraceRing* trace_ = nullptr;  // optional bulk-insert span target
  Histogram* insert_profile_ = nullptr;  // optional ingest durations
  Histogram* insert_tuples_ = nullptr;   // optional ingest tuple counts
  // InsertBlock scratch, reused across blocks (allocation-free once
  // warm): per-row hashes and the surviving source-row list.
  std::vector<uint64_t> block_hashes_;
  std::vector<uint32_t> block_keep_;
};

// Batches single-row emissions into InsertBlock calls. A join firing
// hands its head values to the sink one row at a time; inserting each
// immediately costs one dependent random load into the dedup table per
// firing. Buffering kRows rows and flushing through InsertBlock turns
// that into a tight hash loop plus prefetched probes, at identical
// final content and insertion order (InsertBlock keeps first
// occurrences in order). Callers must Flush() before reading the
// relation's size — the evaluators flush after every Execute call, so
// every frozen-range observation point sees the same state as the
// unbuffered path.
class BatchInserter {
 public:
  static constexpr uint32_t kRows = 256;

  explicit BatchInserter(Relation* rel)
      : rel_(rel), arity_(rel->arity()) {
    buf_.resize(static_cast<size_t>(kRows) *
                (arity_ > 0 ? static_cast<size_t>(arity_) : 1));
  }

  // Buffers one row; returns rows newly inserted by any flush this
  // push triggered (0 when the row was merely buffered).
  size_t Push(const Value* values, int n) {
    assert(n == arity_);
    Value* dst = buf_.data() + static_cast<size_t>(count_) * arity_;
    for (int c = 0; c < n; ++c) dst[c] = values[c];
    if (++count_ == kRows) return Flush();
    return 0;
  }

  // Drains the buffer; returns the number of rows that were new.
  size_t Flush() {
    if (count_ == 0) return 0;
    size_t added = rel_->InsertBlock(buf_.data(), arity_, count_);
    count_ = 0;
    return added;
  }

 private:
  Relation* rel_;
  int arity_;
  uint32_t count_ = 0;
  std::vector<Value> buf_;
};

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_RELATION_H_
