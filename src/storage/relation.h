// In-memory relations with set semantics, append-only row storage, and
// lazily built hash indexes.
//
// Rows are append-only and deduplicated on insert, which gives the
// semi-naive evaluator its delta windows for free: the tuples derived in
// round k occupy the contiguous row range [watermark_{k-1}, watermark_k).
// Evaluators track watermarks; the relation itself is oblivious to them.
//
// Both the dedup set and the column indexes are open-addressing flat
// hash tables keyed by hashes of raw column values, so neither inserts
// nor probes ever materialize a key `Tuple`; equality checks read back
// through the relation's own row storage.
//
// Thread-safety: a Relation is either worker-local (mutable, no locking
// needed) or shared read-only across workers (base relations). For the
// shared case, all needed indexes must be built before the parallel run
// via EnsureIndex(); lookups afterwards are const and race-free.
#ifndef PDATALOG_STORAGE_RELATION_H_
#define PDATALOG_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"
#include "util/hash.h"

namespace pdatalog {

class TraceRing;   // obs/trace.h; storage only holds a pointer
class Histogram;   // obs/histogram.h; likewise

// Hash of a value sequence; the one function the dedup set and every
// column index agree on, so a probe can hash bound values in place and
// match rows hashed column-by-column.
inline uint64_t HashProjection(const Value* values, int n) {
  uint64_t h = 0x12345678u ^ static_cast<uint64_t>(n);
  for (int i = 0; i < n; ++i) h = HashCombine(h, values[i]);
  return h;
}

// Hash index over a subset of columns, identified by a bit mask
// (bit c set => column c is part of the key).
//
// Layout: an open-addressing slot array maps key hashes to buckets; each
// bucket chains fixed-size chunks of ascending row ids through one
// contiguous pool. Probes hash the bound values in place, verify the key
// against a representative row, and walk the chunk chain — no `Tuple`
// key is ever allocated, on insert or lookup.
class ColumnIndex {
 public:
  // `rows` is the owning relation's row vector (for key equality checks);
  // it must outlive the index and never relocate (Relation is pinned).
  ColumnIndex(uint32_t mask, int arity, const std::vector<Tuple>* rows);

  uint32_t mask() const { return mask_; }
  // Columns in the mask, ascending; probe keys use this order.
  const std::vector<int>& key_columns() const { return key_columns_; }

  // Allocation-free cursor over the row ids matching one probe key,
  // restricted to ids in [begin, end), yielded in ascending order.
  class Probe {
   public:
    // Returns false when exhausted; otherwise stores the next row id.
    bool Next(uint32_t* row_id) {
      while (chunk_ != kNoChunk) {
        const Chunk& c = index_->pool_[chunk_];
        if (pos_ < c.count) {
          uint32_t id = c.rows[pos_];
          if (id >= end_) break;  // ids ascend: nothing later can match
          ++pos_;
          if (id < begin_) continue;
          *row_id = id;
          return true;
        }
        chunk_ = c.next;
        pos_ = 0;
        // Skip whole chunks below the range with one comparison each.
        while (chunk_ != kNoChunk) {
          const Chunk& n = index_->pool_[chunk_];
          if (n.rows[n.count - 1] >= begin_) break;
          chunk_ = n.next;
        }
      }
      chunk_ = kNoChunk;
      return false;
    }

   private:
    friend class ColumnIndex;
    const ColumnIndex* index_ = nullptr;
    uint32_t chunk_ = kNoChunk;
    uint32_t pos_ = 0;
    uint32_t begin_ = 0;
    uint32_t end_ = 0;
  };

  // Probes with `key` (values for key_columns(), in that order). Only
  // row ids in [begin, end) are yielded; the caller must keep the range
  // within built_upto().
  Probe ProbeRange(const Value* key, int n, size_t begin, size_t end) const;

  // Extracts the key projection of `row` (debugging/tests only; the
  // probe path never materializes keys).
  Tuple MakeKey(const Tuple& row) const;

  // Appends `row_id` (which must exceed every id already present) under
  // `row`'s key projection.
  void Add(const Tuple& row, uint32_t row_id);

  size_t built_upto() const { return built_upto_; }
  void set_built_upto(size_t n) { built_upto_ = n; }

  // Distinct keys present (for tests and stats).
  size_t num_keys() const { return buckets_.size(); }

 private:
  static constexpr uint32_t kNoChunk = 0xffffffffu;
  static constexpr uint32_t kNoBucket = 0xffffffffu;
  static constexpr int kChunkRows = 6;  // chunk = 32 bytes

  struct Chunk {
    uint32_t next = kNoChunk;
    uint32_t count = 0;
    uint32_t rows[kChunkRows];
  };
  struct Bucket {
    uint64_t hash;
    uint32_t head_chunk;
    uint32_t tail_chunk;
  };

  uint64_t HashRow(const Tuple& row) const;
  // True iff `key` equals the projection of the bucket's first row.
  bool KeyEquals(const Bucket& bucket, const Value* key, int n) const;
  uint32_t FindBucket(uint64_t hash, const Value* key, int n) const;
  void GrowSlots();

  uint32_t mask_;
  std::vector<int> key_columns_;  // columns in the mask, ascending
  size_t built_upto_ = 0;         // rows [0, built_upto_) are indexed
  const std::vector<Tuple>* rows_;
  std::vector<uint32_t> slots_;   // bucket id + 1; 0 = empty. 2^k sized
  uint64_t slot_mask_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<Chunk> pool_;       // all buckets' row ids, one pool
};

class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}
  // Not copyable or movable: the dedup table and indexes hold a pointer
  // to rows_. Databases store relations behind unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Inserts `tuple` if absent. Returns true iff it was new.
  bool Insert(const Tuple& tuple) {
    return InsertView(tuple.data(), tuple.arity());
  }

  // Same, from a raw value sequence: duplicates are rejected without
  // ever constructing a Tuple (the evaluator's firing hot path).
  bool InsertView(const Value* values, int n);

  // Bulk ingest of `count` rows laid out contiguously row-major (a
  // decoded TupleBlock's buffer): one dedup-capacity reservation up
  // front, then one probe-and-append loop — the receive path never
  // materializes a per-tuple Message. Returns the number of rows that
  // were new.
  size_t InsertBlock(const Value* rows, int arity, uint32_t count);

  bool Contains(const Tuple& tuple) const;

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  // Returns the index for `mask`, creating it if needed and extending it
  // to cover all current rows. Mutating: not for concurrent use.
  const ColumnIndex& EnsureIndex(uint32_t mask);

  // Returns the index for `mask` if it exists, else nullptr. The index
  // may lag behind recent inserts (it covers rows [0, built_upto()));
  // readers must only probe row ranges within its coverage. Const: safe
  // for concurrent readers of a frozen relation.
  const ColumnIndex* GetIndex(uint32_t mask) const;

  // Sorted textual dump, for tests and examples.
  std::string ToSortedString(const SymbolTable& symbols) const;

  // Observability hook: when set, InsertBlock brackets each bulk ingest
  // with a TracePhase::kInsert span on `ring`. The ring must be the one
  // owned by the thread that mutates this relation (workers set it on
  // their t_in relations); null (the default) disables tracing at the
  // cost of one branch per block.
  void set_trace(TraceRing* ring) { trace_ = ring; }

  // Companion hook: when set, each bulk ingest also records its
  // duration into `histogram` (owned by the worker that mutates this
  // relation; see WorkerProfile::insert_ns). Same threading contract
  // as set_trace.
  void set_insert_profile(Histogram* histogram) {
    insert_profile_ = histogram;
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // Grows the dedup table until it can hold `min_rows` rows below 3/4
  // load (one rehash even when doubling several times).
  void GrowDedup(size_t min_rows);

  int arity_;
  std::vector<Tuple> rows_;
  // Open-addressing dedup set over row ids (hash + id per slot; equality
  // reads back through rows_).
  struct DedupSlot {
    uint64_t hash;
    uint32_t row;
  };
  std::vector<DedupSlot> dedup_;
  uint64_t dedup_mask_ = 0;
  std::unordered_map<uint32_t, ColumnIndex> indexes_;
  TraceRing* trace_ = nullptr;  // optional bulk-insert span target
  Histogram* insert_profile_ = nullptr;  // optional ingest durations
};

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_RELATION_H_
