// In-memory relations with set semantics, append-only row storage, and
// lazily built hash indexes.
//
// Rows are append-only and deduplicated on insert, which gives the
// semi-naive evaluator its delta windows for free: the tuples derived in
// round k occupy the contiguous row range [watermark_{k-1}, watermark_k).
// Evaluators track watermarks; the relation itself is oblivious to them.
//
// Thread-safety: a Relation is either worker-local (mutable, no locking
// needed) or shared read-only across workers (base relations). For the
// shared case, all needed indexes must be built before the parallel run
// via EnsureIndex(); lookups afterwards are const and race-free.
#ifndef PDATALOG_STORAGE_RELATION_H_
#define PDATALOG_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/tuple.h"

namespace pdatalog {

// Hash index over a subset of columns, identified by a bit mask
// (bit c set => column c is part of the key). Maps key projections to
// ascending row ids.
class ColumnIndex {
 public:
  ColumnIndex(uint32_t mask, int arity);

  uint32_t mask() const { return mask_; }

  // Row ids whose projection on the masked columns equals `key`
  // (ascending). `key`'s arity must equal the mask's popcount.
  const std::vector<uint32_t>* Lookup(const Tuple& key) const;

  // Extracts the key projection of `row` for this index.
  Tuple MakeKey(const Tuple& row) const;

  void Add(const Tuple& row, uint32_t row_id);

  size_t built_upto() const { return built_upto_; }
  void set_built_upto(size_t n) { built_upto_ = n; }

 private:
  uint32_t mask_;
  std::vector<int> key_columns_;  // columns in the mask, ascending
  size_t built_upto_ = 0;         // rows [0, built_upto_) are indexed
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> map_;
};

class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}
  // Not copyable or movable: the dedup table holds a pointer to rows_.
  // Databases store relations behind unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Inserts `tuple` if absent. Returns true iff it was new.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const;

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  // Returns the index for `mask`, creating it if needed and extending it
  // to cover all current rows. Mutating: not for concurrent use.
  const ColumnIndex& EnsureIndex(uint32_t mask);

  // Returns the index for `mask` if it exists, else nullptr. The index
  // may lag behind recent inserts (it covers rows [0, built_upto()));
  // readers must only probe row ranges within its coverage. Const: safe
  // for concurrent readers of a frozen relation.
  const ColumnIndex* GetIndex(uint32_t mask) const;

  // Sorted textual dump, for tests and examples.
  std::string ToSortedString(const SymbolTable& symbols) const;

 private:
  struct RowRef {
    uint32_t id;
  };
  struct RowHash {
    const std::vector<Tuple>* rows;
    using is_transparent = void;
    size_t operator()(RowRef r) const {
      return static_cast<size_t>((*rows)[r.id].Hash());
    }
    size_t operator()(const Tuple& t) const {
      return static_cast<size_t>(t.Hash());
    }
  };
  struct RowEq {
    const std::vector<Tuple>* rows;
    using is_transparent = void;
    bool operator()(RowRef a, RowRef b) const {
      return (*rows)[a.id] == (*rows)[b.id];
    }
    bool operator()(RowRef a, const Tuple& b) const {
      return (*rows)[a.id] == b;
    }
    bool operator()(const Tuple& a, RowRef b) const {
      return a == (*rows)[b.id];
    }
  };

  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<RowRef, RowHash, RowEq> dedup_{
      16, RowHash{&rows_}, RowEq{&rows_}};
  std::unordered_map<uint32_t, ColumnIndex> indexes_;
};

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_RELATION_H_
