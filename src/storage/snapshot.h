// Database snapshots, in two forms:
//
//  * On disk: directories of TSV files (one file per relation, named
//    <predicate>.tsv). Constant names are escaped on save (\t, \n, \r
//    and \\ become two-character escapes) and unescaped on load, so
//    round-trips are exact for every internable string; malformed rows
//    (bad escapes, ragged field counts) are rejected with a Status
//    instead of being silently misparsed. Files written by older
//    versions (no escapes) load unchanged unless they contain a bare
//    backslash.
//
//  * In memory: `DatabaseView`, an immutable frozen view of a live
//    database. A view pins, per relation, the row count and the column
//    chunk pointers at freeze time. Chunks never relocate and rows are
//    append-only (set semantics: no update, no delete), so a view stays
//    valid and *constant* while the underlying relations keep growing —
//    this is the copy-on-write read snapshot the serving engine hands
//    to reader threads (src/server/). Freezing must be synchronized
//    with the single writer (the maintenance thread freezes its own
//    database between evaluation rounds); reads afterwards are
//    wait-free and touch no shared mutable state.
#ifndef PDATALOG_STORAGE_SNAPSHOT_H_
#define PDATALOG_STORAGE_SNAPSHOT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/symbol_table.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

// Frozen view of one relation: arity, the row count at freeze time, and
// one chunk-pointer list per column. Cells [0, size()) read through the
// live relation's chunks, which are immutable below the freeze point.
class RelationView {
 public:
  RelationView() = default;

  // Captures `relation` at its current size. Caller must guarantee no
  // concurrent mutation during the capture (single-writer contract).
  explicit RelationView(const Relation& relation);

  int arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  Value cell(size_t row, int col) const {
    return columns_[static_cast<size_t>(col)]
                   [row >> ColumnStore::kChunkShift]
                   [row & ColumnStore::kChunkMask];
  }

  // Materializes row `i` (cold paths: saving, sorted dumps).
  Tuple row(size_t i) const;

  // Sorted textual dump, identical to Relation::ToSortedString over the
  // same rows (tests compare the two directly).
  std::string ToSortedString(const SymbolTable& symbols) const;

 private:
  int arity_ = 0;
  size_t num_rows_ = 0;
  // columns_[col][chunk] -> first value of that chunk. Pointers alias
  // the live ColumnStore's chunks (never relocated, never freed while
  // the owning Relation lives).
  std::vector<std::vector<const Value*>> columns_;
};

// Frozen view of a whole database: one RelationView per relation.
class DatabaseView {
 public:
  DatabaseView() = default;

  // Captures every relation of `db`. Single-writer contract as above.
  static DatabaseView Freeze(const Database& db);

  const RelationView* Find(Symbol predicate) const;
  size_t relation_count() const { return relations_.size(); }

  // Sum of row counts over all relations (cheap liveness metric).
  size_t total_rows() const;

  const std::unordered_map<Symbol, RelationView>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<Symbol, RelationView> relations_;
};

// TSV field escaping used by Save/LoadDatabase. Exposed for tests.
std::string EscapeTsvField(const std::string& name);
// Returns false on a malformed escape (trailing '\' or unknown code).
bool UnescapeTsvField(std::string_view field, std::string* out);

// Writes every relation of `db` to `directory` (created if missing) as
// <name>.tsv with tab-separated, escaped constant names, rows sorted
// for reproducible output. Returns the number of files written.
StatusOr<size_t> SaveDatabase(const Database& db, const SymbolTable& symbols,
                              const std::string& directory);

// Same, from a frozen view (the serving engine's `!snapshot` verb saves
// the snapshot readers currently see, not the moving fixpoint).
StatusOr<size_t> SaveDatabase(const DatabaseView& view,
                              const SymbolTable& symbols,
                              const std::string& directory);

// Loads every *.tsv file of `directory` into `db`, using the file stem
// as the predicate name. Fields are split on tabs only and unescaped;
// a row whose field count disagrees with the relation arity or whose
// escapes are malformed fails the load with InvalidArgument. Returns
// the number of relations loaded.
StatusOr<size_t> LoadDatabase(const std::string& directory,
                              SymbolTable* symbols, Database* db);

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_SNAPSHOT_H_
