// Saving and loading databases as directories of TSV files (one file
// per relation, named <predicate>.tsv). Pairs with datalog/fact_io.h:
// saved relations reload with LoadFactsFromFile or the CLI's --facts.
#ifndef PDATALOG_STORAGE_SNAPSHOT_H_
#define PDATALOG_STORAGE_SNAPSHOT_H_

#include <string>

#include "datalog/symbol_table.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

// Writes every relation of `db` to `directory` (created if missing) as
// <name>.tsv with tab-separated constant names, rows sorted for
// reproducible output. Returns the number of files written.
StatusOr<size_t> SaveDatabase(const Database& db, const SymbolTable& symbols,
                              const std::string& directory);

// Loads every *.tsv file of `directory` into `db`, using the file stem
// as the predicate name. Returns the number of relations loaded.
StatusOr<size_t> LoadDatabase(const std::string& directory,
                              SymbolTable* symbols, Database* db);

}  // namespace pdatalog

#endif  // PDATALOG_STORAGE_SNAPSHOT_H_
