#include "storage/relation.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace pdatalog {

ColumnIndex::ColumnIndex(uint32_t mask, int arity, const ColumnStore* store)
    : mask_(mask), store_(store) {
  for (int c = 0; c < arity; ++c) {
    if (mask & (1u << c)) key_columns_.push_back(c);
  }
  assert(std::popcount(mask) == static_cast<int>(key_columns_.size()));
}

bool ColumnIndex::KeyEquals(const Bucket& bucket, const Value* key,
                            int n) const {
  uint32_t rep = pool_[bucket.head_chunk].rows[0];
  for (int i = 0; i < n; ++i) {
    if (store_->cell(rep, key_columns_[i]) != key[i]) return false;
  }
  return true;
}

uint32_t ColumnIndex::FindBucket(uint64_t hash, const Value* key,
                                 int n) const {
  if (slots_.empty()) return kNoBucket;
  uint64_t i = hash & slot_mask_;
  while (true) {
    uint32_t slot = slots_[i];
    if (slot == 0) return kNoBucket;
    const Bucket& bucket = buckets_[slot - 1];
    if (bucket.hash == hash && KeyEquals(bucket, key, n)) return slot - 1;
    i = (i + 1) & slot_mask_;
  }
}

void ColumnIndex::GrowSlots() {
  size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(cap, 0);
  slot_mask_ = cap - 1;
  for (uint32_t b = 0; b < buckets_.size(); ++b) {
    uint64_t i = buckets_[b].hash & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = b + 1;
  }
}

Tuple ColumnIndex::MakeKey(const Tuple& row) const {
  Value buf[32];
  assert(key_columns_.size() <= 32);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    buf[i] = row[key_columns_[i]];
  }
  return Tuple(buf, static_cast<int>(key_columns_.size()));
}

ColumnIndex::Probe ColumnIndex::ProbeRange(const Value* key, int n,
                                           size_t begin, size_t end) const {
  return ProbeRangeHashed(HashProjection(key, n), key, n, begin, end);
}

ColumnIndex::Probe ColumnIndex::ProbeRangeHashed(uint64_t hash,
                                                 const Value* key, int n,
                                                 size_t begin,
                                                 size_t end) const {
  assert(n == static_cast<int>(key_columns_.size()));
  assert(hash == HashProjection(key, n));
  Probe probe;
  probe.index_ = this;
  probe.begin_ = static_cast<uint32_t>(begin);
  probe.end_ = static_cast<uint32_t>(end);
  uint32_t bucket = FindBucket(hash, key, n);
  probe.chunk_ = bucket == kNoBucket ? kNoChunk : buckets_[bucket].head_chunk;
  return probe;
}

void ColumnIndex::Add(uint32_t row_id) {
  Value key[32];
  int n = static_cast<int>(key_columns_.size());
  for (int i = 0; i < n; ++i) {
    key[i] = store_->cell(row_id, key_columns_[i]);
  }
  uint64_t hash = HashProjection(key, n);
  uint32_t bucket_id = FindBucket(hash, key, n);
  if (bucket_id == kNoBucket) {
    // Resize at 3/4 load before inserting the new bucket.
    if ((buckets_.size() + 1) * 4 > slots_.size() * 3) GrowSlots();
    bucket_id = static_cast<uint32_t>(buckets_.size());
    uint32_t chunk_id = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
    buckets_.push_back(Bucket{hash, chunk_id, chunk_id});
    uint64_t i = hash & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = bucket_id + 1;
  }
  Bucket& bucket = buckets_[bucket_id];
  Chunk* tail = &pool_[bucket.tail_chunk];
  assert(tail->count == 0 || tail->rows[tail->count - 1] < row_id);
  if (tail->count == kChunkRows) {
    uint32_t chunk_id = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
    pool_[bucket.tail_chunk].next = chunk_id;
    bucket.tail_chunk = chunk_id;
    tail = &pool_[chunk_id];
  }
  tail->rows[tail->count++] = row_id;
}

bool Relation::InsertView(const Value* values, int n) {
  assert(n == arity_);
  uint64_t hash = HashProjection(values, n);
  if (!dedup_.empty()) {
    uint64_t i = hash & dedup_mask_;
    while (true) {
      const DedupSlot& slot = dedup_[i];
      if (slot.row == kEmptySlot) break;
      if (slot.hash == hash && store_.RowEquals(slot.row, values)) {
        return false;
      }
      i = (i + 1) & dedup_mask_;
    }
  }
  if ((store_.size() + 1) * 4 > dedup_.size() * 3) {
    GrowDedup(store_.size() + 1);
  }
  uint32_t id = static_cast<uint32_t>(store_.size());
  store_.AppendRow(values);
  uint64_t i = hash & dedup_mask_;
  while (dedup_[i].row != kEmptySlot) i = (i + 1) & dedup_mask_;
  dedup_[i] = DedupSlot{hash, id};
  return true;
}

size_t Relation::InsertBlock(const Value* values, int arity, uint32_t count,
                             bool columnar) {
  assert(arity == arity_);
  TraceScope span(trace_, TracePhase::kInsert, count, insert_profile_);
  // Record the block's tuple count unconditionally: a block whose rows
  // all dedup away is still one received frame of `count` tuples.
  if (insert_tuples_ != nullptr) insert_tuples_->Record(count);
  if (count == 0) return 0;

  // Pass 1: hash every row. Columnar payloads hash in one tight loop
  // per column (the layout a decoded TupleBlock frame arrives in).
  block_hashes_.resize(count);
  if (columnar) {
    uint64_t seed = 0x12345678u ^ static_cast<uint64_t>(arity);
    for (uint32_t r = 0; r < count; ++r) block_hashes_[r] = seed;
    for (int c = 0; c < arity; ++c) {
      const Value* col = values + static_cast<size_t>(c) * count;
      for (uint32_t r = 0; r < count; ++r) {
        block_hashes_[r] = HashCombine(block_hashes_[r], col[r]);
      }
    }
  } else {
    const Value* row = values;
    for (uint32_t r = 0; r < count; ++r, row += arity) {
      block_hashes_[r] = HashProjection(row, arity);
    }
  }

  // Reserve dedup capacity for the worst case (every row new) so the
  // probe loop below never rehashes mid-block.
  if ((store_.size() + count) * 4 > dedup_.size() * 3) {
    GrowDedup(store_.size() + count);
  }

  // `value_at` reads cell (r, c) of the incoming block in either layout.
  auto value_at = [&](uint32_t r, int c) -> Value {
    return columnar ? values[static_cast<size_t>(c) * count + r]
                    : values[static_cast<size_t>(r) * arity + c];
  };

  // Pass 2: dedup probe per row, against committed rows and against
  // earlier survivors of this same block (their ids are assigned but
  // their values still live in the incoming buffer). With every hash
  // already known, the probe's dependent random load can be prefetched
  // a few rows ahead — the single-row InsertView path cannot do this.
  constexpr uint32_t kLookahead = 8;
  const size_t base = store_.size();
  block_keep_.clear();
  for (uint32_t r = 0; r < count; ++r) {
    if (r + kLookahead < count) {
      __builtin_prefetch(&dedup_[block_hashes_[r + kLookahead] & dedup_mask_]);
    }
    uint64_t hash = block_hashes_[r];
    uint64_t i = hash & dedup_mask_;
    bool duplicate = false;
    while (true) {
      const DedupSlot& slot = dedup_[i];
      if (slot.row == kEmptySlot) break;
      if (slot.hash == hash) {
        bool equal = true;
        if (slot.row < base) {
          for (int c = 0; c < arity; ++c) {
            if (store_.cell(slot.row, c) != value_at(r, c)) {
              equal = false;
              break;
            }
          }
        } else {
          uint32_t other = block_keep_[slot.row - base];
          for (int c = 0; c < arity; ++c) {
            if (value_at(other, c) != value_at(r, c)) {
              equal = false;
              break;
            }
          }
        }
        if (equal) {
          duplicate = true;
          break;
        }
      }
      i = (i + 1) & dedup_mask_;
    }
    if (duplicate) continue;
    dedup_[i] =
        DedupSlot{hash, static_cast<uint32_t>(base + block_keep_.size())};
    block_keep_.push_back(r);
  }

  // Pass 3: append the survivors column by column — one gathered copy
  // per column (contiguous for a fully-new columnar block).
  const uint32_t kept = static_cast<uint32_t>(block_keep_.size());
  if (kept == 0) return 0;
  store_.EnsureCapacity(base + kept);
  for (int c = 0; c < arity; ++c) {
    const Value* src = columnar ? values + static_cast<size_t>(c) * count
                                : values + c;
    const size_t stride = columnar ? 1 : static_cast<size_t>(arity);
    size_t dst = base;
    uint32_t k = 0;
    while (k < kept) {
      size_t run;
      Value* out = store_.MutableSpan(c, dst, base + kept, &run);
      for (size_t t = 0; t < run; ++t) {
        out[t] = src[block_keep_[k + t] * stride];
      }
      k += static_cast<uint32_t>(run);
      dst += run;
    }
  }
  store_.CommitRows(base + kept);
  return kept;
}

void Relation::GrowDedup(size_t min_rows) {
  size_t cap = dedup_.empty() ? 16 : dedup_.size();
  while (cap * 3 < min_rows * 4) cap *= 2;
  dedup_.assign(cap, DedupSlot{0, kEmptySlot});
  dedup_mask_ = cap - 1;
  for (uint32_t id = 0; id < store_.size(); ++id) {
    uint64_t hash = store_.HashRow(id);
    uint64_t i = hash & dedup_mask_;
    while (dedup_[i].row != kEmptySlot) i = (i + 1) & dedup_mask_;
    dedup_[i] = DedupSlot{hash, id};
  }
}

bool Relation::Contains(const Tuple& tuple) const {
  if (dedup_.empty() || tuple.arity() != arity_) return false;
  uint64_t hash = HashProjection(tuple.data(), tuple.arity());
  uint64_t i = hash & dedup_mask_;
  while (true) {
    const DedupSlot& slot = dedup_[i];
    if (slot.row == kEmptySlot) return false;
    if (slot.hash == hash && store_.RowEquals(slot.row, tuple.data())) {
      return true;
    }
    i = (i + 1) & dedup_mask_;
  }
}

Tuple Relation::row(size_t i) const {
  if (arity_ <= 32) {
    Value buf[32];
    store_.CopyRow(i, buf);
    return Tuple(buf, arity_);
  }
  std::vector<Value> buf(arity_);
  store_.CopyRow(i, buf.data());
  return Tuple(buf.data(), arity_);
}

const ColumnIndex& Relation::EnsureIndex(uint32_t mask) {
  auto [it, inserted] = indexes_.try_emplace(mask, mask, arity_, &store_);
  ColumnIndex& index = it->second;
  for (size_t i = index.built_upto(); i < store_.size(); ++i) {
    index.Add(static_cast<uint32_t>(i));
  }
  index.set_built_upto(store_.size());
  return index;
}

const ColumnIndex* Relation::GetIndex(uint32_t mask) const {
  auto it = indexes_.find(mask);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::string Relation::ToSortedString(const SymbolTable& symbols) const {
  // Sort by constant names (not interned ids) so dumps compare equal
  // across databases whose symbol tables interned in different orders.
  std::vector<Tuple> sorted;
  sorted.reserve(store_.size());
  for (size_t i = 0; i < store_.size(); ++i) sorted.push_back(row(i));
  std::sort(sorted.begin(), sorted.end(),
            [&symbols](const Tuple& a, const Tuple& b) {
              if (a.arity() != b.arity()) return a.arity() < b.arity();
              for (int c = 0; c < a.arity(); ++c) {
                const std::string& na = symbols.Name(a[c]);
                const std::string& nb = symbols.Name(b[c]);
                if (na != nb) return na < nb;
              }
              return false;
            });
  std::string out;
  for (const Tuple& t : sorted) {
    out += t.ToString(symbols);
    out += '\n';
  }
  return out;
}

}  // namespace pdatalog
