#include "storage/relation.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pdatalog {

ColumnIndex::ColumnIndex(uint32_t mask, int arity) : mask_(mask) {
  for (int c = 0; c < arity; ++c) {
    if (mask & (1u << c)) key_columns_.push_back(c);
  }
  assert(std::popcount(mask) == static_cast<int>(key_columns_.size()));
}

Tuple ColumnIndex::MakeKey(const Tuple& row) const {
  Value buf[32];
  assert(key_columns_.size() <= 32);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    buf[i] = row[key_columns_[i]];
  }
  return Tuple(buf, static_cast<int>(key_columns_.size()));
}

const std::vector<uint32_t>* ColumnIndex::Lookup(const Tuple& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void ColumnIndex::Add(const Tuple& row, uint32_t row_id) {
  map_[MakeKey(row)].push_back(row_id);
}

bool Relation::Insert(const Tuple& tuple) {
  assert(tuple.arity() == arity_);
  if (dedup_.find(tuple) != dedup_.end()) return false;
  uint32_t id = static_cast<uint32_t>(rows_.size());
  rows_.push_back(tuple);
  dedup_.insert(RowRef{id});
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  return dedup_.find(tuple) != dedup_.end();
}

const ColumnIndex& Relation::EnsureIndex(uint32_t mask) {
  auto [it, inserted] = indexes_.try_emplace(mask, mask, arity_);
  ColumnIndex& index = it->second;
  for (size_t i = index.built_upto(); i < rows_.size(); ++i) {
    index.Add(rows_[i], static_cast<uint32_t>(i));
  }
  index.set_built_upto(rows_.size());
  return index;
}

const ColumnIndex* Relation::GetIndex(uint32_t mask) const {
  auto it = indexes_.find(mask);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::string Relation::ToSortedString(const SymbolTable& symbols) const {
  // Sort by constant names (not interned ids) so dumps compare equal
  // across databases whose symbol tables interned in different orders.
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(),
            [&symbols](const Tuple& a, const Tuple& b) {
              if (a.arity() != b.arity()) return a.arity() < b.arity();
              for (int c = 0; c < a.arity(); ++c) {
                const std::string& na = symbols.Name(a[c]);
                const std::string& nb = symbols.Name(b[c]);
                if (na != nb) return na < nb;
              }
              return false;
            });
  std::string out;
  for (const Tuple& t : sorted) {
    out += t.ToString(symbols);
    out += '\n';
  }
  return out;
}

}  // namespace pdatalog
