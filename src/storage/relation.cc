#include "storage/relation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "obs/trace.h"

namespace pdatalog {

ColumnIndex::ColumnIndex(uint32_t mask, int arity,
                         const std::vector<Tuple>* rows)
    : mask_(mask), rows_(rows) {
  for (int c = 0; c < arity; ++c) {
    if (mask & (1u << c)) key_columns_.push_back(c);
  }
  assert(std::popcount(mask) == static_cast<int>(key_columns_.size()));
}

uint64_t ColumnIndex::HashRow(const Tuple& row) const {
  uint64_t h = 0x12345678u ^ static_cast<uint64_t>(key_columns_.size());
  for (int c : key_columns_) h = HashCombine(h, row[c]);
  return h;
}

bool ColumnIndex::KeyEquals(const Bucket& bucket, const Value* key,
                            int n) const {
  const Tuple& rep = (*rows_)[pool_[bucket.head_chunk].rows[0]];
  for (int i = 0; i < n; ++i) {
    if (rep[key_columns_[i]] != key[i]) return false;
  }
  return true;
}

uint32_t ColumnIndex::FindBucket(uint64_t hash, const Value* key,
                                 int n) const {
  if (slots_.empty()) return kNoBucket;
  uint64_t i = hash & slot_mask_;
  while (true) {
    uint32_t slot = slots_[i];
    if (slot == 0) return kNoBucket;
    const Bucket& bucket = buckets_[slot - 1];
    if (bucket.hash == hash && KeyEquals(bucket, key, n)) return slot - 1;
    i = (i + 1) & slot_mask_;
  }
}

void ColumnIndex::GrowSlots() {
  size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(cap, 0);
  slot_mask_ = cap - 1;
  for (uint32_t b = 0; b < buckets_.size(); ++b) {
    uint64_t i = buckets_[b].hash & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = b + 1;
  }
}

Tuple ColumnIndex::MakeKey(const Tuple& row) const {
  Value buf[32];
  assert(key_columns_.size() <= 32);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    buf[i] = row[key_columns_[i]];
  }
  return Tuple(buf, static_cast<int>(key_columns_.size()));
}

ColumnIndex::Probe ColumnIndex::ProbeRange(const Value* key, int n,
                                           size_t begin, size_t end) const {
  assert(n == static_cast<int>(key_columns_.size()));
  Probe probe;
  probe.index_ = this;
  probe.begin_ = static_cast<uint32_t>(begin);
  probe.end_ = static_cast<uint32_t>(end);
  uint32_t bucket = FindBucket(HashProjection(key, n), key, n);
  probe.chunk_ = bucket == kNoBucket ? kNoChunk : buckets_[bucket].head_chunk;
  return probe;
}

void ColumnIndex::Add(const Tuple& row, uint32_t row_id) {
  Value key[32];
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    key[i] = row[key_columns_[i]];
  }
  int n = static_cast<int>(key_columns_.size());
  uint64_t hash = HashProjection(key, n);
  uint32_t bucket_id = FindBucket(hash, key, n);
  if (bucket_id == kNoBucket) {
    // Resize at 3/4 load before inserting the new bucket.
    if ((buckets_.size() + 1) * 4 > slots_.size() * 3) GrowSlots();
    bucket_id = static_cast<uint32_t>(buckets_.size());
    uint32_t chunk_id = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
    buckets_.push_back(Bucket{hash, chunk_id, chunk_id});
    uint64_t i = hash & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = bucket_id + 1;
  }
  Bucket& bucket = buckets_[bucket_id];
  Chunk* tail = &pool_[bucket.tail_chunk];
  assert(tail->count == 0 || tail->rows[tail->count - 1] < row_id);
  if (tail->count == kChunkRows) {
    uint32_t chunk_id = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
    pool_[bucket.tail_chunk].next = chunk_id;
    bucket.tail_chunk = chunk_id;
    tail = &pool_[chunk_id];
  }
  tail->rows[tail->count++] = row_id;
}

bool Relation::InsertView(const Value* values, int n) {
  assert(n == arity_);
  uint64_t hash = HashProjection(values, n);
  if (!dedup_.empty()) {
    uint64_t i = hash & dedup_mask_;
    while (true) {
      const DedupSlot& slot = dedup_[i];
      if (slot.row == kEmptySlot) break;
      if (slot.hash == hash &&
          std::memcmp(rows_[slot.row].data(), values,
                      static_cast<size_t>(n) * sizeof(Value)) == 0) {
        return false;
      }
      i = (i + 1) & dedup_mask_;
    }
  }
  if ((rows_.size() + 1) * 4 > dedup_.size() * 3) {
    GrowDedup(rows_.size() + 1);
  }
  uint32_t id = static_cast<uint32_t>(rows_.size());
  rows_.emplace_back(values, n);
  uint64_t i = hash & dedup_mask_;
  while (dedup_[i].row != kEmptySlot) i = (i + 1) & dedup_mask_;
  dedup_[i] = DedupSlot{hash, id};
  return true;
}

size_t Relation::InsertBlock(const Value* rows, int arity, uint32_t count) {
  assert(arity == arity_);
  if (count == 0) return 0;
  TraceScope span(trace_, TracePhase::kInsert, count, insert_profile_);
  // Reserve dedup capacity for the worst case (every row new) so the
  // ingest loop below never rehashes mid-block.
  if ((rows_.size() + count) * 4 > dedup_.size() * 3) {
    GrowDedup(rows_.size() + count);
  }
  size_t inserted = 0;
  const Value* values = rows;
  for (uint32_t r = 0; r < count; ++r, values += arity) {
    uint64_t hash = HashProjection(values, arity);
    uint64_t i = hash & dedup_mask_;
    bool duplicate = false;
    while (true) {
      const DedupSlot& slot = dedup_[i];
      if (slot.row == kEmptySlot) break;
      if (slot.hash == hash &&
          std::memcmp(rows_[slot.row].data(), values,
                      static_cast<size_t>(arity) * sizeof(Value)) == 0) {
        duplicate = true;
        break;
      }
      i = (i + 1) & dedup_mask_;
    }
    if (duplicate) continue;
    uint32_t id = static_cast<uint32_t>(rows_.size());
    rows_.emplace_back(values, arity);
    dedup_[i] = DedupSlot{hash, id};
    ++inserted;
  }
  return inserted;
}

void Relation::GrowDedup(size_t min_rows) {
  size_t cap = dedup_.empty() ? 16 : dedup_.size();
  while (cap * 3 < min_rows * 4) cap *= 2;
  dedup_.assign(cap, DedupSlot{0, kEmptySlot});
  dedup_mask_ = cap - 1;
  for (uint32_t id = 0; id < rows_.size(); ++id) {
    const Tuple& row = rows_[id];
    uint64_t hash = HashProjection(row.data(), row.arity());
    uint64_t i = hash & dedup_mask_;
    while (dedup_[i].row != kEmptySlot) i = (i + 1) & dedup_mask_;
    dedup_[i] = DedupSlot{hash, id};
  }
}

bool Relation::Contains(const Tuple& tuple) const {
  if (dedup_.empty() || tuple.arity() != arity_) return false;
  uint64_t hash = HashProjection(tuple.data(), tuple.arity());
  uint64_t i = hash & dedup_mask_;
  while (true) {
    const DedupSlot& slot = dedup_[i];
    if (slot.row == kEmptySlot) return false;
    if (slot.hash == hash && rows_[slot.row] == tuple) return true;
    i = (i + 1) & dedup_mask_;
  }
}

const ColumnIndex& Relation::EnsureIndex(uint32_t mask) {
  auto [it, inserted] = indexes_.try_emplace(mask, mask, arity_, &rows_);
  ColumnIndex& index = it->second;
  for (size_t i = index.built_upto(); i < rows_.size(); ++i) {
    index.Add(rows_[i], static_cast<uint32_t>(i));
  }
  index.set_built_upto(rows_.size());
  return index;
}

const ColumnIndex* Relation::GetIndex(uint32_t mask) const {
  auto it = indexes_.find(mask);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::string Relation::ToSortedString(const SymbolTable& symbols) const {
  // Sort by constant names (not interned ids) so dumps compare equal
  // across databases whose symbol tables interned in different orders.
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(),
            [&symbols](const Tuple& a, const Tuple& b) {
              if (a.arity() != b.arity()) return a.arity() < b.arity();
              for (int c = 0; c < a.arity(); ++c) {
                const std::string& na = symbols.Name(a[c]);
                const std::string& nb = symbols.Name(b[c]);
                if (na != nb) return na < nb;
              }
              return false;
            });
  std::string out;
  for (const Tuple& t : sorted) {
    out += t.ToString(symbols);
    out += '\n';
  }
  return out;
}

}  // namespace pdatalog
