#include "core/channel.h"

#include <cassert>

#include "core/transport.h"
#include "core/wire.h"
#include "obs/trace.h"

namespace pdatalog {

Channel::Channel() : transport_(MakeTransport(TransportKind::kMutex)) {}
Channel::~Channel() = default;

void Channel::set_transport(std::unique_ptr<Transport> transport) {
  assert(transport != nullptr);
  assert(!transport_->HasPending());
  transport_ = std::move(transport);
}

// --- send / drain ---
//
// Fast path (no faults, no retransmit): accounting via single increments
// on the atomic counters, flow instant, then hand the frame to the
// transport. The counter bump happens before the frame is published, so
// a receiver that observed the frame also observes counters covering it
// (the Mattern detector's CountSend in the worker has the same
// ordering). Slow path: everything under mutex_, transport unused.

void Channel::Send(Message message) {
  total_bytes_.fetch_add(message.WireBytes(), std::memory_order_relaxed);
  total_sent_.fetch_add(1, std::memory_order_relaxed);
  uint64_t frame = total_frames_.fetch_add(1, std::memory_order_relaxed);
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    EnqueueBlockLocked(BlockOfOne(std::move(message)));
    return;
  }
  NoteFlowSend(frame);
  transport_->SendBlock(BlockOfOne(std::move(message)));
}

void Channel::SendBatch(std::vector<Message>* batch) {
  if (batch->empty()) return;
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Message& m : *batch) {
      total_bytes_.fetch_add(m.WireBytes(), std::memory_order_relaxed);
      total_sent_.fetch_add(1, std::memory_order_relaxed);
      total_frames_.fetch_add(1, std::memory_order_relaxed);
      EnqueueBlockLocked(BlockOfOne(std::move(m)));
    }
    batch->clear();
    return;
  }
  // One block frame per message, published as a batch (one index store
  // on the ring backend).
  std::vector<TupleBlock> blocks;
  blocks.reserve(batch->size());
  for (Message& m : *batch) {
    total_bytes_.fetch_add(m.WireBytes(), std::memory_order_relaxed);
    total_sent_.fetch_add(1, std::memory_order_relaxed);
    uint64_t frame = total_frames_.fetch_add(1, std::memory_order_relaxed);
    NoteFlowSend(frame);
    blocks.push_back(BlockOfOne(std::move(m)));
  }
  batch->clear();
  transport_->SendBlocks(blocks.data(), blocks.size());
}

void Channel::SendBlock(TupleBlock block) {
  total_bytes_.fetch_add(block.WireBytes(), std::memory_order_relaxed);
  total_sent_.fetch_add(block.count, std::memory_order_relaxed);
  uint64_t frame = total_frames_.fetch_add(1, std::memory_order_relaxed);
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    EnqueueBlockLocked(std::move(block));
    return;
  }
  NoteFlowSend(frame);
  transport_->SendBlock(std::move(block));
}

size_t Channel::DrainBlocks(std::vector<TupleBlock>* out) {
  size_t start = out->size();
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    DrainBlocksLocked(out);
  } else {
    size_t frames = transport_->DrainBlocks(out);
    NoteFlowRecv(frames);
  }
  size_t tuples = 0;
  for (size_t i = start; i < out->size(); ++i) tuples += (*out)[i].count;
  return tuples;
}

size_t Channel::Drain(std::vector<Message>* out) {
  std::vector<TupleBlock> blocks;
  size_t tuples = DrainBlocks(&blocks);
  out->reserve(out->size() + tuples);
  for (TupleBlock& b : blocks) {
    for (uint32_t r = 0; r < b.count; ++r) {
      out->push_back(Message{b.predicate, Tuple(b.row(r), b.arity)});
    }
  }
  return tuples;
}

void Channel::SendBytes(std::vector<uint8_t> bytes, uint32_t tuples) {
  total_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  total_sent_.fetch_add(tuples, std::memory_order_relaxed);
  uint64_t frame = total_frames_.fetch_add(1, std::memory_order_relaxed);
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    SendBytesLocked(std::move(bytes));
    return;
  }
  NoteFlowSend(frame);
  transport_->SendBytes(std::move(bytes));
}

size_t Channel::DrainBytes(std::vector<std::vector<uint8_t>>* out) {
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    return DrainBytesLocked(out);
  }
  size_t frames = transport_->DrainBytes(out);
  NoteFlowRecv(frames);
  return frames;
}

bool Channel::HasPending() const {
  if (fx_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    return HasPendingLocked();
  }
  return transport_->HasPending();
}

Channel::Extras& Channel::EnsureExtras() {
  // Configuration happens before the run; nothing may be in flight when
  // the channel switches to the slow path.
  assert(!transport_->HasPending());
  if (fx_ == nullptr) fx_ = std::make_unique<Extras>();
  return *fx_;
}

void Channel::ConfigureFaults(const FaultSpec& spec, int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureExtras().injector =
      std::make_unique<FaultInjector>(spec, from, to);
}

void Channel::EnableRetransmit() {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureExtras().reliable = true;
}

void Channel::NoteFlowSend(uint64_t frame) {
  if (send_trace_ == nullptr) return;
  // Past the 22-bit sequence space, stop emitting rather than wrap (the
  // receiver side applies the same cutoff, so pairing stays consistent).
  if (frame > kFlowMaxSeq) return;
  send_trace_->Instant(TracePhase::kFlowSend, PackFlowArg(flow_to_, frame));
}

void Channel::NoteFlowRecv(size_t frames) {
  if (send_trace_ == nullptr) {
    delivered_frames_ += frames;
    return;
  }
  // The fast path is FIFO and lossless, so the k-th frame drained is
  // the k-th frame sent; a running delivery counter reconstructs each
  // frame's sequence without touching the wire format.
  for (size_t k = 0; k < frames; ++k) {
    uint64_t seq = delivered_frames_ + k;
    if (seq > kFlowMaxSeq) break;
    if (recv_trace_ != nullptr) {
      recv_trace_->Instant(TracePhase::kFlowRecv,
                           PackFlowArg(flow_from_, seq));
    }
  }
  delivered_frames_ += frames;
}

void Channel::EnqueueBlockLocked(TupleBlock block) {
  Extras& fx = *fx_;
  uint64_t seq = fx.next_seq++;
  if (fx.reliable) fx.unacked.emplace_back(seq, block);
  FaultInjector::Action action = fx.injector != nullptr
                                     ? fx.injector->Next()
                                     : FaultInjector::Action::kDeliver;
  switch (action) {
    case FaultInjector::Action::kDrop:
      ++fx.counters.dropped;
      return;  // never enqueued — every tuple of the block is lost
    case FaultInjector::Action::kDuplicate:
      ++fx.counters.duplicated;
      fx.queue.emplace_back(seq, block);
      fx.queue.emplace_back(seq, std::move(block));
      return;
    case FaultInjector::Action::kReorder:
      ++fx.counters.reordered;
      fx.queue.insert(fx.queue.begin(), {seq, std::move(block)});
      return;
    case FaultInjector::Action::kDelay:
      ++fx.counters.delayed;
      fx.delayed.push_back(
          {seq, std::move(block),
           fx.drain_calls + fx.injector->delay_polls()});
      return;
    case FaultInjector::Action::kCorrupt:
      // Block-object mode has no bytes to flip; only serialized
      // channels can corrupt. Deliver intact, without counting.
    case FaultInjector::Action::kDeliver:
      fx.queue.emplace_back(seq, std::move(block));
      return;
  }
}

void Channel::SendBytesLocked(std::vector<uint8_t> bytes) {
  Extras& fx = *fx_;
  uint64_t seq = fx.next_seq++;
  if (fx.reliable) fx.unacked_bytes.emplace_back(seq, bytes);
  FaultInjector::Action action = fx.injector != nullptr
                                     ? fx.injector->Next()
                                     : FaultInjector::Action::kDeliver;
  switch (action) {
    case FaultInjector::Action::kDrop:
      ++fx.counters.dropped;
      return;
    case FaultInjector::Action::kDuplicate:
      ++fx.counters.duplicated;
      fx.byte_queue.emplace_back(seq, bytes);
      fx.byte_queue.emplace_back(seq, std::move(bytes));
      return;
    case FaultInjector::Action::kReorder:
      ++fx.counters.reordered;
      fx.byte_queue.insert(fx.byte_queue.begin(), {seq, std::move(bytes)});
      return;
    case FaultInjector::Action::kDelay:
      ++fx.counters.delayed;
      fx.delayed_bytes.push_back(
          {seq, std::move(bytes),
           fx.drain_calls + fx.injector->delay_polls()});
      return;
    case FaultInjector::Action::kCorrupt: {
      ++fx.counters.corrupted;
      if (!bytes.empty()) {
        bytes[fx.injector->CorruptOffset(bytes.size())] ^= 0xa5;
      }
      fx.byte_queue.emplace_back(seq, std::move(bytes));
      return;
    }
    case FaultInjector::Action::kDeliver:
      fx.byte_queue.emplace_back(seq, std::move(bytes));
      return;
  }
}

void Channel::ReleaseMatureLocked() {
  Extras& fx = *fx_;
  if (!fx.delayed.empty()) {
    size_t kept = 0;
    for (size_t k = 0; k < fx.delayed.size(); ++k) {
      Extras::DelayedBlock& d = fx.delayed[k];
      if (d.release_at <= fx.drain_calls) {
        fx.queue.emplace_back(d.seq, std::move(d.block));
      } else {
        // Compact in place; guard the no-release case against
        // self-move-assignment, which would gut the block's buffer.
        if (kept != k) fx.delayed[kept] = std::move(d);
        ++kept;
      }
    }
    fx.delayed.resize(kept);
  }
  if (!fx.delayed_bytes.empty()) {
    size_t kept = 0;
    for (size_t k = 0; k < fx.delayed_bytes.size(); ++k) {
      Extras::DelayedBytes& d = fx.delayed_bytes[k];
      if (d.release_at <= fx.drain_calls) {
        fx.byte_queue.emplace_back(d.seq, std::move(d.bytes));
      } else {
        if (kept != k) fx.delayed_bytes[kept] = std::move(d);
        ++kept;
      }
    }
    fx.delayed_bytes.resize(kept);
  }
}

void Channel::DeliverBlockLocked(TupleBlock block,
                                 std::vector<TupleBlock>* out) {
  Extras& fx = *fx_;
  out->push_back(std::move(block));
  ++fx.deliver_next;
  // Flush consecutive frames that were buffered ahead of the gap.
  for (auto it = fx.ahead.find(fx.deliver_next); it != fx.ahead.end();
       it = fx.ahead.find(fx.deliver_next)) {
    out->push_back(std::move(it->second));
    fx.ahead.erase(it);
    ++fx.deliver_next;
  }
}

void Channel::DeliverBytesLocked(std::vector<uint8_t> bytes,
                                 std::vector<std::vector<uint8_t>>* out,
                                 size_t* delivered) {
  Extras& fx = *fx_;
  out->push_back(std::move(bytes));
  ++*delivered;
  ++fx.deliver_next;
  for (auto it = fx.ahead_bytes.find(fx.deliver_next);
       it != fx.ahead_bytes.end();
       it = fx.ahead_bytes.find(fx.deliver_next)) {
    out->push_back(std::move(it->second));
    fx.ahead_bytes.erase(it);
    ++*delivered;
    ++fx.deliver_next;
  }
}

size_t Channel::DrainBlocksLocked(std::vector<TupleBlock>* out) {
  Extras& fx = *fx_;
  ++fx.drain_calls;
  ReleaseMatureLocked();
  size_t start = out->size();
  if (!fx.reliable) {
    for (auto& [seq, b] : fx.queue) out->push_back(std::move(b));
    fx.queue.clear();
    return out->size() - start;
  }
  for (auto& [seq, b] : fx.queue) {
    if (seq < fx.deliver_next) {
      ++fx.counters.duplicates_discarded;
      if (recv_trace_ != nullptr) {
        recv_trace_->Instant(TracePhase::kDupFrame);
      }
    } else if (seq == fx.deliver_next) {
      DeliverBlockLocked(std::move(b), out);
    } else if (!fx.ahead.emplace(seq, std::move(b)).second) {
      ++fx.counters.duplicates_discarded;
      if (recv_trace_ != nullptr) {
        recv_trace_->Instant(TracePhase::kDupFrame);
      }
    }
  }
  fx.queue.clear();
  return out->size() - start;
}

size_t Channel::DrainBytesLocked(std::vector<std::vector<uint8_t>>* out) {
  Extras& fx = *fx_;
  ++fx.drain_calls;
  ReleaseMatureLocked();
  size_t delivered = 0;
  if (!fx.reliable) {
    for (auto& [seq, b] : fx.byte_queue) {
      out->push_back(std::move(b));
      ++delivered;
    }
    fx.byte_queue.clear();
    return delivered;
  }
  for (auto& [seq, b] : fx.byte_queue) {
    if (seq < fx.deliver_next) {
      ++fx.counters.duplicates_discarded;
      if (recv_trace_ != nullptr) {
        recv_trace_->Instant(TracePhase::kDupFrame);
      }
      continue;
    }
    // A frame the injector corrupted fails its checksum; treat it as
    // lost (no delivery, no ack) so the sender's resend recovers it.
    if (!FrameChecksumOk(b.data(), b.size())) {
      ++fx.counters.corrupt_discarded;
      if (recv_trace_ != nullptr) {
        recv_trace_->Instant(TracePhase::kCorruptFrame);
      }
      continue;
    }
    if (seq == fx.deliver_next) {
      DeliverBytesLocked(std::move(b), out, &delivered);
    } else if (!fx.ahead_bytes.emplace(seq, std::move(b)).second) {
      ++fx.counters.duplicates_discarded;
      if (recv_trace_ != nullptr) {
        recv_trace_->Instant(TracePhase::kDupFrame);
      }
    }
  }
  fx.byte_queue.clear();
  return delivered;
}

bool Channel::HasPendingLocked() const {
  const Extras& fx = *fx_;
  return !fx.queue.empty() || !fx.byte_queue.empty() ||
         !fx.delayed.empty() || !fx.delayed_bytes.empty();
}

size_t Channel::RetransmitUnacked() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fx_ == nullptr || !fx_->reliable) return 0;
  Extras& fx = *fx_;
  while (!fx.unacked.empty() && fx.unacked.front().first < fx.deliver_next) {
    fx.unacked.pop_front();
  }
  while (!fx.unacked_bytes.empty() &&
         fx.unacked_bytes.front().first < fx.deliver_next) {
    fx.unacked_bytes.pop_front();
  }
  size_t resent = 0;
  for (const auto& [seq, b] : fx.unacked) {
    if (fx.ahead.count(seq) != 0) continue;  // receiver already holds it
    fx.queue.emplace_back(seq, b);
    ++fx.counters.retransmitted;
    ++resent;
  }
  for (const auto& [seq, b] : fx.unacked_bytes) {
    if (fx.ahead_bytes.count(seq) != 0) continue;
    fx.byte_queue.emplace_back(seq, b);
    ++fx.counters.retransmitted;
    ++resent;
  }
  return resent;
}

FaultCounters Channel::fault_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fx_ != nullptr ? fx_->counters : FaultCounters{};
}

}  // namespace pdatalog
