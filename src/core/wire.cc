#include "core/wire.h"

namespace pdatalog {

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

bool GetU32(const std::vector<uint8_t>& data, size_t* offset, uint32_t* v) {
  if (*offset + 4 > data.size()) return false;
  *v = static_cast<uint32_t>(data[*offset]) |
       static_cast<uint32_t>(data[*offset + 1]) << 8 |
       static_cast<uint32_t>(data[*offset + 2]) << 16 |
       static_cast<uint32_t>(data[*offset + 3]) << 24;
  *offset += 4;
  return true;
}

bool GetU16(const std::vector<uint8_t>& data, size_t* offset, uint16_t* v) {
  if (*offset + 2 > data.size()) return false;
  *v = static_cast<uint16_t>(data[*offset] | data[*offset + 1] << 8);
  *offset += 2;
  return true;
}

}  // namespace

void EncodeMessage(const Message& message, std::vector<uint8_t>* out) {
  PutU32(message.predicate, out);
  PutU16(static_cast<uint16_t>(message.tuple.arity()), out);
  for (Value v : message.tuple) PutU32(v, out);
}

StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& data,
                                size_t* offset) {
  uint32_t predicate;
  uint16_t arity;
  if (!GetU32(data, offset, &predicate) || !GetU16(data, offset, &arity)) {
    return Status::InvalidArgument("truncated message header");
  }
  if (arity > 32) {
    return Status::InvalidArgument("message arity exceeds 32");
  }
  Value values[32];
  for (int c = 0; c < arity; ++c) {
    uint32_t v;
    if (!GetU32(data, offset, &v)) {
      return Status::InvalidArgument("truncated message body");
    }
    values[c] = v;
  }
  Message message;
  message.predicate = predicate;
  message.tuple = Tuple(values, arity);
  return message;
}

std::vector<uint8_t> EncodeBatch(const std::vector<Message>& messages) {
  std::vector<uint8_t> out;
  for (const Message& m : messages) EncodeMessage(m, &out);
  return out;
}

StatusOr<std::vector<Message>> DecodeBatch(const std::vector<uint8_t>& data) {
  std::vector<Message> messages;
  size_t offset = 0;
  while (offset < data.size()) {
    StatusOr<Message> m = DecodeMessage(data, &offset);
    if (!m.ok()) return m.status();
    messages.push_back(std::move(*m));
  }
  return messages;
}

}  // namespace pdatalog
