#include "core/wire.h"

namespace pdatalog {

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

bool GetU32(const std::vector<uint8_t>& data, size_t* offset, uint32_t* v) {
  if (*offset + 4 > data.size()) return false;
  *v = static_cast<uint32_t>(data[*offset]) |
       static_cast<uint32_t>(data[*offset + 1]) << 8 |
       static_cast<uint32_t>(data[*offset + 2]) << 16 |
       static_cast<uint32_t>(data[*offset + 3]) << 24;
  *offset += 4;
  return true;
}

bool GetU16(const std::vector<uint8_t>& data, size_t* offset, uint16_t* v) {
  if (*offset + 2 > data.size()) return false;
  *v = static_cast<uint16_t>(data[*offset] | data[*offset + 1] << 8);
  *offset += 2;
  return true;
}

// FNV-1a, 32-bit.
uint32_t Fnv1a(const uint8_t* data, size_t size) {
  uint32_t h = 0x811c9dc5u;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x01000193u;
  }
  return h;
}

}  // namespace

Status EncodeMessage(const Message& message, std::vector<uint8_t>* out) {
  if (message.tuple.arity() > kMaxWireArity) {
    return Status::InvalidArgument(
        "message arity " + std::to_string(message.tuple.arity()) +
        " exceeds wire limit " + std::to_string(kMaxWireArity));
  }
  size_t start = out->size();
  PutU32(message.predicate, out);
  PutU16(static_cast<uint16_t>(message.tuple.arity()), out);
  for (Value v : message.tuple) PutU32(v, out);
  PutU32(Fnv1a(out->data() + start, out->size() - start), out);
  return Status::Ok();
}

StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& data,
                                size_t* offset) {
  size_t start = *offset;
  uint32_t predicate;
  uint16_t arity;
  if (!GetU32(data, offset, &predicate) || !GetU16(data, offset, &arity)) {
    return Status::InvalidArgument("truncated message header");
  }
  if (arity > kMaxWireArity) {
    return Status::InvalidArgument("message arity exceeds " +
                                   std::to_string(kMaxWireArity));
  }
  Value values[kMaxWireArity];
  for (int c = 0; c < arity; ++c) {
    uint32_t v;
    if (!GetU32(data, offset, &v)) {
      return Status::InvalidArgument("truncated message body");
    }
    values[c] = v;
  }
  uint32_t stored;
  if (!GetU32(data, offset, &stored)) {
    return Status::InvalidArgument("truncated message checksum");
  }
  uint32_t computed =
      Fnv1a(data.data() + start, *offset - start - kWireChecksumBytes);
  if (stored != computed) {
    return Status::InvalidArgument("message checksum mismatch");
  }
  Message message;
  message.predicate = predicate;
  message.tuple = Tuple(values, arity);
  return message;
}

StatusOr<std::vector<uint8_t>> EncodeBatch(
    const std::vector<Message>& messages) {
  std::vector<uint8_t> out;
  for (const Message& m : messages) {
    PDATALOG_RETURN_IF_ERROR(EncodeMessage(m, &out));
  }
  return out;
}

StatusOr<std::vector<Message>> DecodeBatch(const std::vector<uint8_t>& data) {
  std::vector<Message> messages;
  size_t offset = 0;
  while (offset < data.size()) {
    StatusOr<Message> m = DecodeMessage(data, &offset);
    if (!m.ok()) return m.status();
    messages.push_back(std::move(*m));
  }
  return messages;
}

Status EncodeBlock(const TupleBlock& block, std::vector<uint8_t>* out) {
  if (block.arity < 0 || block.arity > kMaxWireArity) {
    return Status::InvalidArgument(
        "block arity " + std::to_string(block.arity) +
        " exceeds wire limit " + std::to_string(kMaxWireArity));
  }
  if (block.count == 0) {
    return Status::InvalidArgument("refusing to encode an empty block");
  }
  if (block.count > kMaxBlockTuples) {
    return Status::InvalidArgument(
        "block tuple count " + std::to_string(block.count) +
        " exceeds wire limit " + std::to_string(kMaxBlockTuples));
  }
  if (block.values.size() !=
      static_cast<size_t>(block.arity) * block.count) {
    return Status::InvalidArgument(
        "block value buffer does not match arity * count");
  }
  size_t start = out->size();
  out->reserve(start + block.WireBytes());
  PutU32(block.predicate, out);
  PutU16(static_cast<uint16_t>(kBlockArityFlag | block.arity), out);
  PutU32(block.count, out);
  if (block.columnar) {
    // Already column-major (a decoded block being re-encoded): the wire
    // body is a straight copy.
    for (Value v : block.values) PutU32(v, out);
  } else {
    // Transpose the row-major accumulation buffer to the columnar wire
    // layout: all of column 0's values, then column 1's, ...
    for (int c = 0; c < block.arity; ++c) {
      const Value* v = block.values.data() + c;
      for (uint32_t r = 0; r < block.count; ++r, v += block.arity) {
        PutU32(*v, out);
      }
    }
  }
  PutU32(Fnv1a(out->data() + start, out->size() - start), out);
  return Status::Ok();
}

Status DecodeBlockInto(const std::vector<uint8_t>& data, size_t* offset,
                       TupleBlock* block) {
  size_t start = *offset;
  uint32_t predicate;
  uint16_t tag;
  uint32_t count;
  if (!GetU32(data, offset, &predicate) || !GetU16(data, offset, &tag) ||
      !GetU32(data, offset, &count)) {
    *offset = start;
    return Status::InvalidArgument("truncated block header");
  }
  if ((tag & kBlockArityFlag) == 0) {
    *offset = start;
    return Status::InvalidArgument(
        "frame is not a tuple block (missing block marker)");
  }
  int arity = tag & ~kBlockArityFlag;
  if (arity > kMaxWireArity) {
    *offset = start;
    return Status::InvalidArgument("block arity exceeds " +
                                   std::to_string(kMaxWireArity));
  }
  if (count == 0) {
    *offset = start;
    return Status::InvalidArgument("empty block frame");
  }
  if (count > kMaxBlockTuples) {
    *offset = start;
    return Status::InvalidArgument("block tuple count exceeds " +
                                   std::to_string(kMaxBlockTuples));
  }
  size_t body = static_cast<size_t>(arity) * count * kWireValueBytes;
  if (data.size() - *offset < body + kWireChecksumBytes) {
    *offset = start;
    return Status::InvalidArgument("truncated block body");
  }
  // Verify the checksum before touching the caller's buffer, so a
  // corrupt frame never partially overwrites a previous good decode.
  uint32_t stored =
      static_cast<uint32_t>(data[*offset + body]) |
      static_cast<uint32_t>(data[*offset + body + 1]) << 8 |
      static_cast<uint32_t>(data[*offset + body + 2]) << 16 |
      static_cast<uint32_t>(data[*offset + body + 3]) << 24;
  if (stored != Fnv1a(data.data() + start, *offset - start + body)) {
    *offset = start;
    return Status::InvalidArgument("block checksum mismatch");
  }
  block->predicate = predicate;
  block->arity = arity;
  block->count = count;
  block->columnar = true;
  block->values.resize(static_cast<size_t>(arity) * count);
  // Keep the wire's column-major layout: one linear little-endian
  // decode, no transpose — Relation::InsertBlock appends the columns
  // directly.
  const uint8_t* p = data.data() + *offset;
  Value* v = block->values.data();
  for (size_t i = 0, total = static_cast<size_t>(arity) * count; i < total;
       ++i, p += 4) {
    v[i] = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
  }
  *offset += body + kWireChecksumBytes;
  return Status::Ok();
}

bool FrameChecksumOk(const uint8_t* data, size_t size) {
  if (size < kWireHeaderBytes + kWireChecksumBytes) return false;
  size_t body = size - kWireChecksumBytes;
  uint32_t stored = static_cast<uint32_t>(data[body]) |
                    static_cast<uint32_t>(data[body + 1]) << 8 |
                    static_cast<uint32_t>(data[body + 2]) << 16 |
                    static_cast<uint32_t>(data[body + 3]) << 24;
  return stored == Fnv1a(data, body);
}

}  // namespace pdatalog
