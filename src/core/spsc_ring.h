// A bounded lock-free single-producer single-consumer ring (Lamport
// queue). This is the data plane of the SPSC transport backend
// (core/transport.h): each engine channel has exactly one sending and
// one receiving worker, so a pair of monotone indices with
// release/acquire publication replaces the channel mutex entirely.
//
// Memory-ordering argument (the whole correctness story):
//   - `tail_` is written only by the producer, `head_` only by the
//     consumer; each index is single-writer, so plain read-modify-write
//     races cannot exist.
//   - The producer fills slot (tail & mask) and then publishes with a
//     release store of tail+1. The consumer observes the new tail with
//     an acquire load, which makes every slot write that preceded the
//     release visible — a frame can never be observed half-written
//     (torn) because visibility is all-or-nothing on the index.
//   - The consumer moves slots out and then publishes the new head with
//     a release store. The producer refreshes its cached head with an
//     acquire load before reusing a slot, so it cannot overwrite a slot
//     the consumer is still reading.
//   - Indices are monotone uint64 (never wrapped to capacity), so
//     "full" is tail - head == capacity and ABA is impossible within
//     any realistic run length.
//
// Batch publication: TryPushN fills as many slots as fit and issues a
// single release store covering all of them, so a whole SendBatch costs
// one published index update instead of one per frame.
#ifndef PDATALOG_CORE_SPSC_RING_H_
#define PDATALOG_CORE_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pdatalog {

// Destructive reads: slots hand their contents out via std::move, so T
// must be cheaply move-constructible (TupleBlock and byte vectors are).
template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to the next power of two (minimum 2) so the
  // slot index is a mask, not a modulo.
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer. Moves from `item` on success; leaves it untouched on a
  // full ring.
  bool TryPush(T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer. Moves up to `count` items into the ring and publishes
  // them with ONE release store. Returns how many were taken (a prefix
  // of `items`); the rest stay untouched.
  size_t TryPushN(T* items, size_t count) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = slots_.size() - (tail - cached_head_);
    if (free < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - cached_head_);
    }
    const size_t take = count < free ? count : free;
    if (take == 0) return 0;
    for (size_t k = 0; k < take; ++k) {
      slots_[(tail + k) & mask_] = std::move(items[k]);
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  // Consumer. Appends every published item to `out` in FIFO order and
  // returns the count.
  size_t PopAll(std::vector<T>* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const size_t n = static_cast<size_t>(tail - head);
    if (n == 0) return 0;
    out->reserve(out->size() + n);
    for (; head != tail; ++head) {
      out->push_back(std::move(slots_[head & mask_]));
    }
    head_.store(head, std::memory_order_release);
    return n;
  }

  // Any thread; conservative (a concurrent push may or may not be
  // visible yet, exactly like the mutex queue's HasPending).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

 private:
  size_t mask_ = 0;
  std::vector<T> slots_;
  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<uint64_t> head_{0};
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_SPSC_RING_H_
