#include "core/engine.h"

#include <algorithm>
#include <thread>

#include "core/partition.h"
#include "eval/stratify.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace pdatalog {

double ParallelResult::ModeledMakespan(double cpu_cost,
                                       double net_cost) const {
  double makespan = 0;
  for (size_t j = 0; j < workers.size(); ++j) {
    uint64_t recv_cross = 0;
    for (size_t i = 0; i < workers.size(); ++i) {
      if (i != j) recv_cross += channel_matrix[i][j];
    }
    double t = static_cast<double>(workers[j].firings) * cpu_cost +
               static_cast<double>(recv_cross) * net_cost;
    makespan = std::max(makespan, t);
  }
  return makespan;
}

namespace {

// Best-effort static range check of the bundle's functions.
Status ValidateFunctions(const RewriteBundle& bundle) {
  for (int f = 0; f < bundle.registry->size(); ++f) {
    const DiscriminatingFunction& fn = bundle.registry->function(f);
    switch (fn.kind) {
      case DiscriminatingFunction::Kind::kConstant:
        if (fn.constant < 0 || fn.constant >= bundle.num_processors) {
          return Status::OutOfRange(
              "constant discriminating function value " +
              std::to_string(fn.constant) + " outside processor set");
        }
        break;
      case DiscriminatingFunction::Kind::kLinear: {
        for (int v : LinearAchievableValues(fn.coeffs)) {
          int mapped = v;
          if (!fn.remap.empty()) {
            auto it = fn.remap.find(v);
            if (it == fn.remap.end()) {
              return Status::OutOfRange(
                  "linear function remap misses achievable value " +
                  std::to_string(v));
            }
            mapped = it->second;
          }
          if (mapped < 0 || mapped >= bundle.num_processors) {
            return Status::OutOfRange(
                "linear discriminating function reaches processor " +
                std::to_string(mapped) + " outside [0, " +
                std::to_string(bundle.num_processors) +
                "); use WithDenseRemap and a matching processor count");
          }
        }
        break;
      }
      default: {
        if (fn.num_processors > bundle.num_processors) {
          return Status::OutOfRange(
              "discriminating function range exceeds processor count");
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Status ValidateFaultSpec(const ParallelOptions& options) {
  const FaultSpec& f = options.faults;
  const double probs[] = {f.drop, f.duplicate, f.reorder, f.corrupt, f.delay};
  for (double p : probs) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "fault probabilities must lie in [0, 1]");
    }
  }
  if (f.total() > 1.0) {
    return Status::InvalidArgument(
        "fault probabilities must sum to at most 1");
  }
  if (f.delay > 0.0 && f.delay_polls < 1) {
    return Status::InvalidArgument("fault delay_polls must be >= 1");
  }
  if (f.corrupt > 0.0 && !options.serialize_messages) {
    // Shared-memory channels move block objects, so there are no wire
    // bytes to corrupt; refuse rather than silently not injecting.
    return Status::InvalidArgument(
        "corrupt faults require serialize_messages (there are no wire "
        "bytes to corrupt on shared-memory channels)");
  }
  if (options.block_tuples < 1 ||
      static_cast<uint32_t>(options.block_tuples) > kMaxBlockTuples) {
    return Status::InvalidArgument(
        "block_tuples must be in [1, " + std::to_string(kMaxBlockTuples) +
        "]");
  }
  if (options.transport_ring_frames != 0 &&
      (options.transport_ring_frames < 2 ||
       options.transport_ring_frames > (1 << 20))) {
    return Status::InvalidArgument(
        "transport_ring_frames must be 0 (auto) or in [2, 1048576]");
  }
  return Status::Ok();
}

// Folds one worker's stats into the run's metrics registry, both under
// the worker's own prefix and into the run-level totals the scalar
// ParallelResult fields are projected from.
void AbsorbWorkerStats(int i, const WorkerStats& w, MetricsRegistry* m) {
  const std::string prefix = "worker." + std::to_string(i) + ".";
  m->AddCounter(prefix + "rounds", static_cast<uint64_t>(w.rounds));
  m->AddCounter(prefix + "firings", w.firings);
  m->AddCounter(prefix + "out_inserted", w.out_inserted);
  m->AddCounter(prefix + "in_inserted", w.in_inserted);
  m->AddCounter(prefix + "received", w.received);
  m->AddCounter(prefix + "sent_cross", w.sent_cross);
  m->AddCounter(prefix + "sent_self", w.sent_self);
  m->AddCounter(prefix + "broadcasts", w.broadcasts);
  m->AddCounter(prefix + "frames", w.frames);
  m->AddCounter(prefix + "rows_examined", w.rows_examined);
  m->AddCounter(prefix + "batch_fallbacks", w.batch_fallbacks);
  m->AddCounter("run.firings", w.firings);
  m->AddCounter("run.cross_tuples", w.sent_cross);
  m->AddCounter("run.self_tuples", w.sent_self);
  // Scalar-join executions the batch kernel could not cover; a nonzero
  // count under --profile flags plans degenerating off the fast path.
  m->AddCounter("eval.batch_fallbacks", w.batch_fallbacks);
}

void AbsorbFaultCounters(const FaultCounters& f, MetricsRegistry* m) {
  m->AddCounter("faults.dropped", f.dropped);
  m->AddCounter("faults.duplicated", f.duplicated);
  m->AddCounter("faults.reordered", f.reordered);
  m->AddCounter("faults.corrupted", f.corrupted);
  m->AddCounter("faults.delayed", f.delayed);
  m->AddCounter("faults.retransmitted", f.retransmitted);
  m->AddCounter("faults.duplicates_discarded", f.duplicates_discarded);
  m->AddCounter("faults.corrupt_discarded", f.corrupt_discarded);
}

// Validates the rebalance knobs and picks the function the coordinator
// manages: the most-used determined kUniformHash/kSymmetricHash send
// function. Only hash kinds carry the bucket structure the overlay
// needs; a bundle routing exclusively through other kinds (linear,
// table lookup, keep-or-hash) cannot be rebalanced.
StatusOr<int> ResolveRebalanceFunction(const RewriteBundle& bundle,
                                       const RebalanceOptions& opts) {
  if (opts.skew_threshold < 1.0) {
    return Status::InvalidArgument(
        "rebalance skew threshold must be >= 1 (max/mean busy is never "
        "below 1)");
  }
  if (opts.buckets_per_processor < 1 ||
      opts.buckets_per_processor > (1u << 16)) {
    return Status::InvalidArgument(
        "rebalance buckets_per_processor must be in [1, 65536]");
  }
  for (const BaseOccurrence& occ : bundle.base_occurrences) {
    if (occ.access == BaseOccurrence::Access::kFragment) {
      return Status::FailedPrecondition(
          "rebalancing requires replicated base relations: a fragmented "
          "base cannot follow a moved bucket, so the reassigned worker "
          "would join against a missing fragment (rebuild the bundle "
          "with fragment_bases = false)");
    }
  }
  std::unordered_map<int, int> uses;
  for (const auto& sends : bundle.sends) {
    for (const SendSpec& spec : sends) {
      if (!spec.determined) continue;
      DiscriminatingFunction::Kind kind =
          bundle.registry->function(spec.function).kind;
      if (kind == DiscriminatingFunction::Kind::kUniformHash ||
          kind == DiscriminatingFunction::Kind::kSymmetricHash) {
        ++uses[spec.function];
      }
    }
  }
  int best = -1;
  int best_uses = 0;
  for (const auto& [fn, n] : uses) {
    if (n > best_uses || (n == best_uses && fn < best)) {
      best = fn;
      best_uses = n;
    }
  }
  if (best < 0) {
    return Status::FailedPrecondition(
        "rebalancing requires a determined uniform- or symmetric-hash "
        "send function; this bundle has none");
  }
  return best;
}

// Re-derives the run-level scalar fields from the registry so the text
// report and a metrics JSON export always agree (single source of
// truth).
void ProjectScalarsFromMetrics(ParallelResult* result) {
  const MetricsRegistry& m = result->metrics;
  result->total_firings = m.counter("run.firings");
  result->cross_tuples = m.counter("run.cross_tuples");
  result->self_tuples = m.counter("run.self_tuples");
  result->cross_bytes = m.counter("run.cross_bytes");
  result->cross_frames = m.counter("run.cross_frames");
  result->out_tuples_total = m.counter("run.out_tuples_total");
  result->pooling_messages = m.counter("run.pooling_messages");
  result->pooling_bytes = m.counter("run.pooling_bytes");
  result->pooled_tuples = m.counter("run.pooled_tuples");
}

}  // namespace

StatusOr<ParallelResult> RunParallel(const RewriteBundle& bundle,
                                     Database* edb,
                                     const ParallelOptions& options) {
  if (bundle.num_processors < 1 ||
      bundle.per_processor.size() !=
          static_cast<size_t>(bundle.num_processors)) {
    return Status::InvalidArgument("malformed rewrite bundle");
  }
  PDATALOG_RETURN_IF_ERROR(ValidateFunctions(bundle));
  PDATALOG_RETURN_IF_ERROR(ValidateFaultSpec(options));
  if (options.tracer != nullptr &&
      options.tracer->num_workers() < bundle.num_processors) {
    return Status::InvalidArgument(
        "tracer sized for " +
        std::to_string(options.tracer->num_workers()) +
        " workers but the bundle has " +
        std::to_string(bundle.num_processors) + " processors");
  }

  // Materialize every base relation so shared reads have a target.
  for (const auto& [pred, arity] : bundle.arity) {
    bool is_derived =
        std::find(bundle.derived.begin(), bundle.derived.end(), pred) !=
        bundle.derived.end();
    if (!is_derived) edb->GetOrCreate(pred, arity);
  }

  std::unique_ptr<RebalanceCoordinator> rebalance;
  if (options.rebalance.enabled()) {
    StatusOr<int> managed =
        ResolveRebalanceFunction(bundle, options.rebalance);
    if (!managed.ok()) return managed.status();
    rebalance = std::make_unique<RebalanceCoordinator>(
        bundle.registry.get(), *managed, bundle.num_processors,
        options.rebalance, options.serialize_messages);
  }

  StatusOr<PartitionResult> partition = PartitionBases(bundle, *edb);
  if (!partition.ok()) return partition.status();

  CommNetwork network(bundle.num_processors);
  TerminationDetector detector(bundle.num_processors);
  const bool faults_on = options.faults.any();
  if (options.transport == TransportKind::kSpsc) {
    TransportOptions topts;
    topts.ring_frames = static_cast<size_t>(options.transport_ring_frames);
    // The single-threaded round-robin scheduler can never resolve a
    // blocking send (the receiver only runs after the sender returns),
    // so a full ring overflows to the spillway instead.
    topts.blocking = options.use_threads;
    InstallTransports(&network, TransportKind::kSpsc, topts);
  }
  if (faults_on) network.InstallFaults(options.faults);
  if (options.retransmit) network.EnableRetransmit();
  if (faults_on && !options.retransmit) {
    // Without retransmission a lost or duplicated message would
    // livelock the detector (counters never balance); loss detection
    // turns that state into a reported failure. It is unsound under
    // retransmission — a pending resend would be declared lost.
    detector.EnableLossDetection(&network);
  }

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(bundle.num_processors);
  for (int i = 0; i < bundle.num_processors; ++i) {
    StatusOr<std::unique_ptr<Worker>> worker =
        Worker::Create(&bundle, i, edb, std::move(partition->fragments[i]),
                       &network, &detector);
    if (!worker.ok()) return worker.status();
    (*worker)->set_serialize_messages(options.serialize_messages);
    (*worker)->set_retransmit(options.retransmit);
    (*worker)->set_block_tuples(options.block_tuples);
    // Faults' delay mode stretches quiescence across many idle polls;
    // spinning through those would be a busy-wait regression, so the
    // slow path keeps the yield-then-sleep ladder even under kSpsc.
    (*worker)->set_wait_policy(MakeIdleWaitPolicy(
        options.transport, faults_on || options.retransmit));
    if (rebalance != nullptr) (*worker)->set_rebalance(rebalance.get());
    if (options.tracer != nullptr) {
      (*worker)->set_trace(options.tracer->ring(i));
    }
    workers.push_back(std::move(*worker));
  }

  if (options.transport == TransportKind::kSpsc && options.use_threads) {
    // Bounded rings mean a sender can block on a full channel while
    // every peer is also mid-round — a backpressure cycle. The stall
    // handler breaks it: the blocked *sender* drains its own inbound
    // channels (which always frees its peers) and keeps waiting only
    // while the run is live; on abort the frame diverts to the
    // transport's spillway so the receiver's exit cannot hang a sender.
    for (int i = 0; i < bundle.num_processors; ++i) {
      for (int j = 0; j < bundle.num_processors; ++j) {
        network.channel(i, j).transport()->set_stall_handler(
            [w = workers[i].get(), det = &detector]() {
              w->DrainForStall();
              return !det->terminated();
            });
      }
    }
  }

  if (options.tracer != nullptr) {
    // Channel (i, j) is drained on worker j's thread, so its receive-
    // side discard instants land on ring j (single-writer invariant).
    // Cross channels additionally emit flow instants: sends on ring i
    // (the sending worker's thread holds the channel lock), deliveries
    // on ring j — the exporter and analyzer pair them by (i, j, frame
    // sequence). Self-channels carry no communication, so no flows.
    for (int i = 0; i < bundle.num_processors; ++i) {
      for (int j = 0; j < bundle.num_processors; ++j) {
        network.channel(i, j).set_receive_trace(options.tracer->ring(j));
        if (i != j) {
          network.channel(i, j).set_flow_trace(
              i, j, options.tracer->ring(i), options.tracer->ring(j));
        }
      }
    }
  }

  // Pre-build every index the workers will probe on shared (replicated)
  // EDB relations: they are read concurrently and must not be mutated
  // during the run.
  for (const auto& worker : workers) {
    for (const auto& [pred, mask] : worker->compiled().required_indexes()) {
      Relation* rel = edb->Find(pred);
      if (rel != nullptr) rel->EnsureIndex(mask);
    }
  }

  Stopwatch watch;
  if (options.use_threads) {
    std::vector<Status> worker_status(workers.size());
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (size_t i = 0; i < workers.size(); ++i) {
      Worker* worker = workers[i].get();
      Status* slot = &worker_status[i];
      threads.emplace_back([worker, slot] { *slot = worker->RunLoop(); });
    }
    for (std::thread& t : threads) t.join();
    // The detector's status is the first failure (a failing worker
    // aborts the run for everyone); individual loop statuses are
    // checked too in case a loop exited before publishing.
    PDATALOG_RETURN_IF_ERROR(detector.run_status());
    for (const Status& st : worker_status) PDATALOG_RETURN_IF_ERROR(st);
  } else {
    // Deterministic round-robin schedule.
    for (auto& worker : workers) {
      PDATALOG_RETURN_IF_ERROR(worker->Init());
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& worker : workers) {
        StatusOr<bool> stepped = worker->Step();
        if (!stepped.ok()) return stepped.status();
        if (*stepped) progress = true;
      }
      if (!progress && options.retransmit) {
        // Quiescent but possibly short a dropped frame: re-send every
        // unacknowledged copy, then keep stepping if anything went out.
        size_t resent = 0;
        for (auto& worker : workers) resent += worker->RetransmitUnacked();
        if (resent > 0) progress = true;
      }
      if (!progress && network.AnyPending()) {
        // Delayed frames mature on future drain polls; keep stepping.
        progress = true;
      }
    }
    if (faults_on && !options.retransmit) {
      // The round-robin schedule quiesces by construction, so loss
      // shows up as a final send/receive imbalance rather than a
      // livelock; check it explicitly.
      PDATALOG_RETURN_IF_ERROR(detector.CheckCounterBalance());
    }
  }

  ParallelResult result;
  result.wall_seconds = watch.ElapsedSeconds();
  result.channel_matrix = network.SentMatrix();
  result.bytes_matrix = network.BytesMatrix();
  result.frames_matrix = network.FramesMatrix();
  result.faults = network.AggregateFaultCounters();
  MetricsRegistry& m = result.metrics;
  for (int i = 0; i < bundle.num_processors; ++i) {
    for (int j = 0; j < bundle.num_processors; ++j) {
      if (i != j) {
        m.AddCounter("run.cross_bytes", result.bytes_matrix[i][j]);
        m.AddCounter("run.cross_frames", result.frames_matrix[i][j]);
      }
    }
  }
  for (size_t i = 0; i < workers.size(); ++i) {
    result.workers.push_back(workers[i]->stats());
    result.worker_rounds.push_back(workers[i]->round_logs());
    AbsorbWorkerStats(static_cast<int>(i), workers[i]->stats(), &m);
  }
  AbsorbFaultCounters(result.faults, &m);
  if (rebalance != nullptr) {
    result.rebalance_log = rebalance->TakeLog();
    m.AddCounter("rebalance.moves", rebalance->moves());
    m.AddCounter("rebalance.replications", rebalance->replications());
    m.AddCounter("rebalance.rounds", rebalance->epochs());
    m.AddCounter("rebalance.windows", rebalance->windows());
  }
  if (options.tracer != nullptr) {
    // Fold every worker's single-writer histograms into the registry;
    // stratified runs then merge these bucket-wise across strata.
    auto fold = [&m](const char* name, const Histogram& h) {
      if (!h.empty()) m.MergeHistogram(name, h);
    };
    for (const auto& worker : workers) {
      const WorkerProfile& p = worker->profile();
      fold("hist.probe_ns", p.probe_ns);
      fold("hist.insert_ns", p.insert_ns);
      fold("hist.drain_ns", p.drain_ns);
      fold("hist.flush_ns", p.flush_ns);
      fold("hist.idle_ns", p.idle_ns);
      fold("hist.block_tuples", p.block_tuples);
      fold("hist.queue_frames_at_drain", p.queue_frames);
      fold("hist.probe_batch", p.probe_batch);
      fold("hist.insert_tuples", p.insert_tuples);
    }
  }

  // Final pooling (Section 3, step 5). Collector is processor 0: every
  // other processor ships its t_out across the network.
  {
    TraceScope pool_span(
        options.tracer != nullptr ? options.tracer->engine_ring() : nullptr,
        TracePhase::kPool);
    for (Symbol p : bundle.derived) {
      Relation& pooled = result.output.GetOrCreate(p, bundle.arity.at(p));
      int arity = bundle.arity.at(p);
      for (size_t w = 0; w < workers.size(); ++w) {
        const Relation& out = workers[w]->OutputRelation(p);
        m.AddCounter("run.out_tuples_total", out.size());
        if (w != 0) {
          m.AddCounter("run.pooling_messages", out.size());
          m.AddCounter("run.pooling_bytes",
                       out.size() * MessageWireBytes(arity));
        }
        for (size_t row = 0; row < out.size(); ++row) {
          pooled.Insert(out.row(row));
        }
      }
      m.AddCounter("run.pooled_tuples", pooled.size());
    }
  }
  m.SetGauge("run.wall_seconds", result.wall_seconds);
  m.SetGauge("run.transport_spsc",
             options.transport == TransportKind::kSpsc ? 1.0 : 0.0);
  ProjectScalarsFromMetrics(&result);
  return result;
}

StatusOr<ParallelResult> RunParallelStratified(
    const Program& program, const ProgramInfo& info, int num_processors,
    const std::vector<GeneralRuleSpec>& rule_specs, Database* edb,
    const ParallelOptions& options) {
  if (rule_specs.size() != program.rules.size()) {
    return Status::InvalidArgument(
        "RunParallelStratified requires one GeneralRuleSpec per rule");
  }
  Stratification strat = Stratify(program, info);

  ParallelResult total;
  Stopwatch watch;
  total.workers.resize(num_processors);
  total.worker_rounds.resize(num_processors);
  total.channel_matrix.assign(num_processors,
                              std::vector<uint64_t>(num_processors, 0));
  total.bytes_matrix.assign(num_processors,
                            std::vector<uint64_t>(num_processors, 0));
  total.frames_matrix.assign(num_processors,
                             std::vector<uint64_t>(num_processors, 0));

  for (size_t s = 0; s < strat.strata.size(); ++s) {
    Program sub;
    sub.symbols = program.symbols;
    std::vector<GeneralRuleSpec> sub_specs;
    for (int r : strat.rules_by_stratum[s]) {
      sub.rules.push_back(program.rules[r]);
      sub_specs.push_back(rule_specs[r]);
    }
    ProgramInfo sub_info;
    PDATALOG_RETURN_IF_ERROR(Validate(sub, &sub_info));
    StatusOr<RewriteBundle> bundle =
        RewriteGeneral(sub, sub_info, num_processors, sub_specs);
    if (!bundle.ok()) return bundle.status();

    StatusOr<ParallelResult> result = RunParallel(*bundle, edb, options);
    if (!result.ok()) return result.status();

    // Pooled outputs of this stratum feed later strata as base inputs.
    for (Symbol p : strat.strata[s]) {
      const Relation* pooled = result->output.Find(p);
      Relation& into = edb->GetOrCreate(p, pooled->arity());
      for (size_t row = 0; row < pooled->size(); ++row) {
        into.Insert(pooled->row(row));
      }
      Relation& out =
          total.output.GetOrCreate(p, pooled->arity());
      for (size_t row = 0; row < pooled->size(); ++row) {
        out.Insert(pooled->row(row));
      }
    }

    // Aggregate statistics: counters add across strata; the scalar
    // fields are re-projected from the merged registry at the end.
    total.metrics.Merge(result->metrics);
    total.faults += result->faults;
    for (const RebalanceLogEntry& entry : result->rebalance_log) {
      total.rebalance_log.push_back(entry);
    }
    for (int i = 0; i < num_processors; ++i) {
      const WorkerStats& w = result->workers[i];
      total.workers[i].rounds += w.rounds;
      total.workers[i].firings += w.firings;
      total.workers[i].out_inserted += w.out_inserted;
      total.workers[i].in_inserted += w.in_inserted;
      total.workers[i].received += w.received;
      total.workers[i].sent_cross += w.sent_cross;
      total.workers[i].sent_self += w.sent_self;
      total.workers[i].broadcasts += w.broadcasts;
      total.workers[i].frames += w.frames;
      total.workers[i].rows_examined += w.rows_examined;
      total.workers[i].batch_fallbacks += w.batch_fallbacks;
      for (int j = 0; j < num_processors; ++j) {
        total.channel_matrix[i][j] += result->channel_matrix[i][j];
        total.bytes_matrix[i][j] += result->bytes_matrix[i][j];
        total.frames_matrix[i][j] += result->frames_matrix[i][j];
      }
      // Concatenate round logs stratum after stratum (the strata are
      // sequential phases, so this is the true global round order).
      for (const RoundLog& log : result->worker_rounds[i]) {
        total.worker_rounds[i].push_back(log);
      }
    }
  }
  total.wall_seconds = watch.ElapsedSeconds();
  total.metrics.SetGauge("run.wall_seconds", total.wall_seconds);
  ProjectScalarsFromMetrics(&total);
  return total;
}

}  // namespace pdatalog
