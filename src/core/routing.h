// Precompiled tuple routing: the sending rules' per-tuple hot path.
//
// The rewriters express sending rules as `SendSpec`s. Matching a freshly
// derived tuple against them naively means re-scanning the whole spec
// list, re-deriving variable positions, and linear-searching a
// destination list for dedup — per tuple. `TupleRouter` compiles the
// specs once: grouped by predicate, with the pattern reduced to plain
// (column, constant) and (column, column) checks and the discriminating
// sequence to a flat column list, and destination dedup done with a
// round-stamped array instead of a scan.
#ifndef PDATALOG_CORE_ROUTING_H_
#define PDATALOG_CORE_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/discriminating.h"
#include "core/rewrite.h"
#include "storage/tuple.h"

namespace pdatalog {

class TupleRouter {
 public:
  TupleRouter() = default;

  // Compiles `specs` (one processor's sending rules). `registry` must
  // outlive the router. Accepts any ConstraintEvaluator so the skew
  // rebalancer's per-worker RemapView can stand in for the shared
  // registry.
  TupleRouter(const std::vector<SendSpec>& specs, int num_processors,
              const ConstraintEvaluator* registry);

  // Appends the destination processors of `tuple` (predicate `pred`) to
  // `dests` — deduplicated, in first-computed order, matching the
  // sending-rule semantics of Section 3. Returns the number of
  // undetermined (broadcast) specs that matched, for stats. Not
  // thread-safe; each worker owns its router.
  int Route(Symbol pred, const Tuple& tuple, std::vector<int>* dests) {
    return Route(pred, tuple.data(), dests);
  }
  // Same, from a raw value sequence (the worker's send path routes rows
  // gathered out of the column store; no Tuple is built).
  int Route(Symbol pred, const Value* values, std::vector<int>* dests);

  // Routes `count` row-major rows in one call: one predicate lookup,
  // per-row stamped dedup. Destinations append to `dests`;
  // `offsets` receives count + 1 entries where row r's destinations are
  // dests[offsets[r] .. offsets[r+1]). Returns the total number of
  // undetermined (broadcast) spec matches across the batch.
  int RouteBatch(Symbol pred, const Value* rows, int arity, uint32_t count,
                 std::vector<int>* dests, std::vector<uint32_t>* offsets);

  // Total routes compiled (for tests).
  size_t num_routes() const { return num_routes_; }

 private:
  struct ConstCheck {
    int column;
    Value value;
  };
  struct EqCheck {
    int column;
    int earlier_column;  // must hold an equal value
  };
  struct SendRoute {
    std::vector<ConstCheck> const_checks;
    std::vector<EqCheck> eq_checks;
    bool determined = false;
    int function = -1;
    std::vector<int> var_columns;  // pattern columns of v(r), in order
  };

  bool Matches(const SendRoute& route, const Value* values) const;
  // Routes one row against the (non-null) route list, deduplicating
  // destinations with a fresh stamp. Returns broadcast-spec matches.
  int RouteRow(const std::vector<SendRoute>& routes, const Value* values,
               std::vector<int>* dests);

  int num_processors_ = 0;
  const ConstraintEvaluator* registry_ = nullptr;
  std::unordered_map<Symbol, std::vector<SendRoute>> routes_by_pred_;
  size_t num_routes_ = 0;

  // Consecutive tuples of one round share a predicate almost always;
  // memoizing the last lookup keeps the hot loop off the hash map.
  // (A null cached_routes_ with a valid cached_pred_ caches a miss.)
  Symbol cached_pred_ = kInvalidSymbol;
  const std::vector<SendRoute>* cached_routes_ = nullptr;

  // Round-stamped destination dedup: dest_stamp_[d] == stamp_ marks d
  // as already emitted for the current tuple.
  std::vector<uint64_t> dest_stamp_;
  uint64_t stamp_ = 0;
  std::vector<Value> vals_;  // discriminating values scratch
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_ROUTING_H_
