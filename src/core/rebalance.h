// Skew-adaptive repartitioning (Section 6 trade-off, made dynamic).
//
// PR 5's profiler measures per-worker busy time and names the straggler;
// this layer acts on it. Between semi-naive rounds every worker reports
// its busy window and per-bucket routed-tuple counts to a shared
// RebalanceCoordinator. When the cumulative busy skew (max/mean) crosses
// a threshold, the coordinator picks the hottest discriminating-hash
// bucket owned by the straggler and publishes a bucket override: either
// forward the bucket to the least-busy worker, or — when the cost model
// says replication beats forwarding (Section 6's redundancy point) —
// keep the bucket local at every sender (kKeepLocalDest).
//
// Overrides are distributed as epochs of a kRemapped overlay
// (DiscriminatingFunction::Remapped) with a two-phase handshake that
// keeps the fixpoint bit-identical with rebalancing on or off:
//
//   publish  — the coordinator appends the override and bumps the
//              published epoch. Workers pick it up in Sync() by widening
//              their *acceptance* set first: a worker accepts tuples for
//              a bucket if it is the base owner, the current override
//              target, or any past target (acceptance is monotone, so a
//              tuple routed under any epoch is accepted wherever it
//              lands; duplicates are absorbed by set semantics).
//   commit   — once every worker has acknowledged the published epoch,
//              the epoch commits and Sync() switches the *routing* side
//              of each worker's RemapView to the new destinations. A
//              worker never routes by an epoch some peer has not yet
//              accepted, so no derivation can be dropped in flight.
//
// The handshake piggybacks on the existing round structure (workers call
// Sync() at the top of every Step and while idling), so Mattern's
// termination counters and the retransmit protocol are untouched: control
// state never rides the counted tuple channels. The override payload is
// still exercised as a wire control frame (Encode/DecodeControlFrame)
// whenever the engine runs with serialized messages.
#ifndef PDATALOG_CORE_REBALANCE_H_
#define PDATALOG_CORE_REBALANCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/discriminating.h"
#include "obs/analyze.h"
#include "util/status.h"

namespace pdatalog {

// Tuning knobs for the coordinator. Disabled unless skew_threshold > 0.
struct RebalanceOptions {
  // Trigger when max busy / mean busy >= this. 0 disables rebalancing;
  // enabled values must be >= 1 (a ratio below 1 is impossible).
  double skew_threshold = 0.0;

  // Buckets per processor in the kRemapped overlay. The overlay has
  // buckets_per_processor * num_processors buckets so an unmoved bucket
  // routes exactly where the base hash would.
  uint32_t buckets_per_processor = 32;

  // Don't decide until the workers have accumulated at least this much
  // busy time since the last decision (debounces startup noise).
  uint64_t min_window_busy_ns = 1'000'000;

  // Ignore buckets that routed fewer tuples than this since the last
  // decision; moving a cold bucket cannot help.
  uint64_t min_bucket_tuples = 16;

  // After a bucket moves, leave it alone for this many full report
  // cycles — a cycle is one window from every worker, i.e. roughly one
  // semi-naive round (prevents ping-ponging one ultra-hot bucket
  // between workers).
  int cooldown_windows = 8;

  // Cost-model inputs for the forward-vs-replicate choice (see
  // PreferReplication in core/cost_model.h).
  double cpu_per_firing = 1.0;
  double net_per_message = 1.0;

  bool enabled() const { return skew_threshold > 0.0; }
};

// One broadcast of the full override state, as it would travel on the
// wire: u32 magic | u64 epoch | i32 function | u32 num_buckets |
// u32 count | count x (u32 bucket, i32 dest) | u32 FNV-1a checksum.
struct RemapControlFrame {
  uint64_t epoch = 0;
  int32_t function = -1;
  uint32_t num_buckets = 0;
  std::vector<std::pair<uint32_t, int32_t>> overrides;
};

void EncodeControlFrame(const RemapControlFrame& frame,
                        std::vector<uint8_t>* out);
Status DecodeControlFrame(const uint8_t* data, size_t size,
                          RemapControlFrame* frame);

// Per-worker view of the managed discriminating function. Implements
// ConstraintEvaluator so it can stand in for the shared registry at both
// call sites: the router's Evaluate (which also counts tuples per bucket
// for the coordinator) and the join executor's hash-constraint Accepts
// (widened monotonically as epochs publish). All methods — including the
// coordinator's Apply*/count hooks, which run inside Sync/ReportWindow —
// execute on the owning worker's thread only.
class RemapView : public ConstraintEvaluator {
 public:
  RemapView(const DiscriminatingRegistry* base, int function,
            const DiscriminatingFunction& overlay);

  int Evaluate(int function, const Value* values, int n) const override;
  bool Accepts(int function, const Value* values, int n,
               int target) const override;
  void ChargeFiring(int function, const Value* values, int n) const override;

  // --- called by the coordinator on this worker's behalf ---

  uint64_t accept_epoch() const { return accept_epoch_; }
  uint64_t route_epoch() const { return route_epoch_; }

  // Widens acceptance with every override published so far. Monotone: a
  // bucket reassigned a second time escalates to accept-everywhere,
  // which is sound (over-acceptance only re-derives duplicates).
  void ApplyAcceptance(
      const std::vector<std::pair<uint32_t, int32_t>>& overrides,
      uint64_t epoch);

  // Installs the committed prefix of the override list into the routing
  // overlay. `overrides` carries (bucket, dest) in publish order;
  // `count` is the committed prefix length.
  void ApplyRouting(
      const std::vector<std::pair<uint32_t, int32_t>>& overrides,
      size_t count, uint64_t epoch);

  const std::vector<uint64_t>& bucket_counts() const {
    return bucket_counts_;
  }
  const std::vector<uint64_t>& bucket_heat() const { return bucket_heat_; }
  void ResetBucketCounts();

  const DiscriminatingFunction& routing_function() const { return routing_; }

 private:
  const DiscriminatingRegistry* base_;
  int function_;
  DiscriminatingFunction routing_;  // kRemapped; committed overrides only
  std::vector<uint8_t> accept_all_;
  std::vector<int32_t> accept_extra_;  // second accepted owner, -1 = none
  uint64_t accept_epoch_ = 0;
  uint64_t route_epoch_ = 0;
  size_t routed_overrides_ = 0;  // committed prefix already installed
  // Tuples routed per bucket since the last report; written from the
  // router on this worker's thread, read+reset by ReportWindow (also on
  // this worker's thread).
  mutable std::vector<uint64_t> bucket_counts_;
  // Join firings charged per bucket since the last report (via
  // ChargeFiring). This is the heat signal the coordinator ranks buckets
  // by: a hot key's work is deltas x fan-in, which routed counts alone
  // cannot see.
  mutable std::vector<uint64_t> bucket_heat_;
};

// One rebalancing decision, for the profile report and tests.
// (RebalanceLogEntry itself lives in obs/analyze.h so the profiler can
// render it without depending on core.)

// Shared, mutex-guarded decision maker. Passive: workers drive it from
// their own threads via Sync (epoch handshake) and ReportWindow (load
// accounting + decision trigger); the engine reads the totals after the
// run. Never touches the tuple channels, so termination detection and
// retransmit are unaffected.
class RebalanceCoordinator {
 public:
  RebalanceCoordinator(const DiscriminatingRegistry* registry, int function,
                       int num_processors, const RebalanceOptions& options,
                       bool serialize_frames);

  int function() const { return function_; }
  uint32_t num_buckets() const { return num_buckets_; }

  // A fresh per-worker view with no overrides installed.
  std::unique_ptr<RemapView> MakeView(int worker) const;

  // Pulls the worker's view up to date: widens acceptance to the
  // published epoch (acknowledging it), commits the epoch once every
  // worker has acknowledged, and installs committed routing.
  void Sync(int worker, RemapView* view);

  // Reports one processing round: busy nanoseconds plus the view's
  // per-bucket routed counts (which are consumed and reset). May trigger
  // a decision and publish a new epoch.
  void ReportWindow(int worker, uint64_t busy_ns, RemapView* view);

  // --- post-run accessors (call after all workers stopped) ---
  uint64_t moves() const { return moves_; }
  uint64_t replications() const { return replications_; }
  uint64_t epochs() const { return published_epoch_; }
  uint64_t windows() const { return windows_; }
  std::vector<RebalanceLogEntry> TakeLog() { return std::move(log_); }
  const std::vector<uint8_t>& last_frame() const { return frame_bytes_; }

 private:
  void TryDecide();  // caller holds mu_
  void Publish();    // caller holds mu_

  const DiscriminatingRegistry* registry_;
  const int function_;
  const int num_processors_;
  const RebalanceOptions options_;
  const bool serialize_frames_;
  uint32_t num_buckets_;

  mutable std::mutex mu_;
  uint64_t published_epoch_ = 0;
  uint64_t committed_epoch_ = 0;
  // Override list in publish order; entry i was published by epoch i+1.
  std::vector<std::pair<uint32_t, int32_t>> overrides_;
  std::vector<uint64_t> acks_;  // per worker: highest acknowledged epoch

  // Accumulators since the last decision. A decision is only considered
  // once every worker has reported at least one window since the last
  // reset — a partial cycle would compare one worker's busy time against
  // a mean diluted by workers that have not reported yet and read as
  // enormous skew.
  std::vector<uint32_t> window_reports_;  // per worker, since last reset
  std::vector<uint64_t> busy_;
  std::vector<uint64_t> counts_;       // per bucket
  std::vector<uint8_t> sender_seen_;   // bucket * P + worker
  std::vector<int32_t> owner_;         // per bucket; kKeepLocalDest = replicated
  std::vector<uint64_t> cooldown_until_;  // per bucket, in windows
  uint64_t windows_ = 0;

  uint64_t moves_ = 0;
  uint64_t replications_ = 0;
  std::vector<RebalanceLogEntry> log_;
  std::vector<uint8_t> frame_bytes_;  // latest encoded control frame
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_REBALANCE_H_
