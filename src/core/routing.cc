#include "core/routing.h"

#include <algorithm>
#include <cassert>

namespace pdatalog {

TupleRouter::TupleRouter(const std::vector<SendSpec>& specs,
                         int num_processors,
                         const ConstraintEvaluator* registry)
    : num_processors_(num_processors), registry_(registry) {
  size_t max_vars = 0;
  for (const SendSpec& spec : specs) {
    SendRoute route;
    const Atom& pat = spec.pattern;
    for (int c = 0; c < pat.arity(); ++c) {
      const Term& term = pat.args[c];
      if (term.is_const()) {
        route.const_checks.push_back(ConstCheck{c, term.sym});
        continue;
      }
      // A repeated variable constrains the tuple to equal values at the
      // first occurrence's column.
      for (int c2 = 0; c2 < c; ++c2) {
        if (pat.args[c2].is_var() && pat.args[c2].sym == term.sym) {
          route.eq_checks.push_back(EqCheck{c, c2});
          break;
        }
      }
    }
    route.determined = spec.determined;
    route.function = spec.function;
    route.var_columns = spec.var_positions;
    max_vars = std::max(max_vars, route.var_columns.size());
    routes_by_pred_[spec.predicate].push_back(std::move(route));
    ++num_routes_;
  }
  // Sized from the specs: discriminating sequences of any length are
  // routed without a fixed-size stack buffer.
  vals_.resize(max_vars);
  dest_stamp_.assign(static_cast<size_t>(num_processors), 0);
}

bool TupleRouter::Matches(const SendRoute& route, const Value* values) const {
  for (const ConstCheck& check : route.const_checks) {
    if (values[check.column] != check.value) return false;
  }
  for (const EqCheck& check : route.eq_checks) {
    if (values[check.column] != values[check.earlier_column]) return false;
  }
  return true;
}

int TupleRouter::RouteRow(const std::vector<SendRoute>& routes,
                          const Value* values, std::vector<int>* dests) {
  if (++stamp_ == 0) {  // wrapped: every stale stamp must be cleared
    dest_stamp_.assign(dest_stamp_.size(), 0);
    stamp_ = 1;
  }
  auto add_dest = [&](int d) {
    if (dest_stamp_[d] != stamp_) {
      dest_stamp_[d] = stamp_;
      dests->push_back(d);
    }
  };

  int broadcasts = 0;
  for (const SendRoute& route : routes) {
    if (!Matches(route, values)) continue;  // cannot fire anyone's rule
    if (route.determined) {
      for (size_t k = 0; k < route.var_columns.size(); ++k) {
        vals_[k] = values[route.var_columns[k]];
      }
      int dest = registry_->Evaluate(
          route.function, vals_.data(),
          static_cast<int>(route.var_columns.size()));
      assert(dest >= 0 && dest < num_processors_);
      add_dest(dest);
    } else {
      // Example 2: the sender cannot evaluate h(v(r)); broadcast.
      ++broadcasts;
      for (int j = 0; j < num_processors_; ++j) add_dest(j);
    }
  }
  return broadcasts;
}

int TupleRouter::Route(Symbol pred, const Value* values,
                       std::vector<int>* dests) {
  if (pred != cached_pred_) {
    auto it = routes_by_pred_.find(pred);
    cached_pred_ = pred;
    cached_routes_ = it == routes_by_pred_.end() ? nullptr : &it->second;
  }
  if (cached_routes_ == nullptr) return 0;
  return RouteRow(*cached_routes_, values, dests);
}

int TupleRouter::RouteBatch(Symbol pred, const Value* rows, int arity,
                            uint32_t count, std::vector<int>* dests,
                            std::vector<uint32_t>* offsets) {
  offsets->clear();
  // One predicate lookup for the whole batch (the memo still helps the
  // next batch of the same predicate).
  if (pred != cached_pred_) {
    auto it = routes_by_pred_.find(pred);
    cached_pred_ = pred;
    cached_routes_ = it == routes_by_pred_.end() ? nullptr : &it->second;
  }
  if (cached_routes_ == nullptr) {
    offsets->assign(count + 1, static_cast<uint32_t>(dests->size()));
    return 0;
  }
  int broadcasts = 0;
  const Value* row = rows;
  for (uint32_t r = 0; r < count; ++r, row += arity) {
    offsets->push_back(static_cast<uint32_t>(dests->size()));
    broadcasts += RouteRow(*cached_routes_, row, dests);
  }
  offsets->push_back(static_cast<uint32_t>(dests->size()));
  return broadcasts;
}

}  // namespace pdatalog
