// One processor of the abstract architecture: evaluates its rewritten
// program Q_i/R_i/T_i with a local semi-naive loop, sending output
// deltas through the channel network and receiving asynchronously
// (Section 3: "processor i does not wait for data from processor j").
#ifndef PDATALOG_CORE_WORKER_H_
#define PDATALOG_CORE_WORKER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/channel.h"
#include "core/partition.h"
#include "core/transport.h"
#include "core/rebalance.h"
#include "core/rewrite.h"
#include "core/routing.h"
#include "core/termination.h"
#include "eval/seminaive.h"
#include "obs/histogram.h"
#include "storage/database.h"

namespace pdatalog {

class TraceRing;  // obs/trace.h; phase spans for this worker's thread

// Per-round record used by the BSP cost model (core/cost_model.h):
// round 0 is initialization; round k >= 1 is the k-th processing round.
struct RoundLog {
  uint64_t firings = 0;
  uint64_t received = 0;           // messages drained entering this round
  std::vector<uint64_t> sent_to;   // messages enqueued, by destination
};

// Per-worker latency/size distributions, recorded only while tracing
// is enabled (set_trace with a non-null ring) so the default hot path
// pays nothing beyond the existing null checks. All histograms are
// fixed-footprint (obs/histogram.h) and written only by the worker's
// own thread; the engine merges them into the run's MetricsRegistry
// (hist.* entries) after the workers have joined.
struct WorkerProfile {
  Histogram probe_ns;       // semi-naive pass duration, per round
  Histogram insert_ns;      // bulk t_in ingest duration, per block
  Histogram drain_ns;       // channel drain duration, per Step
  Histogram flush_ns;       // end-of-round flush duration
  Histogram idle_ns;        // idle backoff duration, per wait
  Histogram block_tuples;   // tuples per flushed block frame
  Histogram queue_frames;   // frames pending when a drain ran
  Histogram probe_batch;    // surviving keys per batch-kernel probe batch
  Histogram insert_tuples;  // tuples per ingested block (dedup-blind)
};

struct WorkerStats {
  int rounds = 0;
  uint64_t firings = 0;          // successful ground substitutions
  uint64_t out_inserted = 0;     // distinct tuples added to t_out
  uint64_t in_inserted = 0;      // distinct tuples added to t_in
  uint64_t received = 0;         // tuples drained (incl. self-channel)
  uint64_t sent_cross = 0;       // tuples to other processors
  uint64_t sent_self = 0;        // tuples routed to self
  uint64_t broadcasts = 0;       // tuples broadcast for undetermined sends
  uint64_t frames = 0;           // block frames flushed (all destinations)
  uint64_t rows_examined = 0;
  uint64_t batch_fallbacks = 0;  // joins the batch kernel could not cover
};

class Worker {
 public:
  // `fragments` are this worker's base fragments, moved in; replicated
  // base relations are read directly (and concurrently) from `edb`.
  // All pointers must outlive the worker.
  static StatusOr<std::unique_ptr<Worker>> Create(
      const RewriteBundle* bundle, int id, const Database* edb,
      std::unordered_map<int, std::unique_ptr<Relation>> fragments,
      CommNetwork* network, TerminationDetector* detector);

  // Evaluates the initialization rules (those without t_in body atoms)
  // and sends the resulting output delta. Call once before stepping.
  // Fails if an outgoing tuple cannot be encoded.
  Status Init();

  // Drains the incoming channels and, if anything new arrived, runs one
  // semi-naive round over the new t_in delta and sends the new outputs.
  // Returns false when there was nothing to do; a non-OK status (corrupt
  // or malformed incoming message, encode failure) must abort the run —
  // the worker's counters can no longer be trusted.
  StatusOr<bool> Step();

  // Thread body: Init() + Step() until global termination is detected
  // or any worker fails. A local failure is published through
  // TerminationDetector::Abort so peers stop too; the returned status
  // is this worker's own error, or the detector's run status.
  Status RunLoop();

  // Re-sends this worker's unacknowledged outgoing frames (retransmit
  // mode only; see Channel::RetransmitUnacked). Returns frames resent.
  size_t RetransmitUnacked();

  // Transport stall hook: drains this worker's inbound channels while
  // one of its *outbound* sends is blocked on a full ring (bounded SPSC
  // backpressure). Without it, a cycle of full rings — every producer
  // mid-round, nobody draining — would deadlock; draining our own
  // inbound side always frees our peers. Safe to call mid-round: drains
  // never send, use scratch buffers disjoint from the send path, and
  // tuples ingested past the frozen delta window simply become the next
  // round's delta. Errors latch into the same status Step() surfaces.
  void DrainForStall();

  // Idle-loop wait ladder (spin, then yield, then bounded sleep),
  // normally derived from the transport via MakeIdleWaitPolicy. Set
  // before Init(). The default is the mutex backend's yield-then-sleep
  // ladder with no spin phase.
  void set_wait_policy(const IdleWaitPolicy& policy) {
    wait_policy_ = policy;
  }

  // Serialized (message-passing) mode: encode every outgoing tuple to
  // bytes and decode on receipt instead of passing Message objects
  // through shared memory. Set before Init().
  void set_serialize_messages(bool on) { serialize_messages_ = on; }

  // Retransmit mode: the idle loop periodically re-sends unacknowledged
  // frames. The engine must also have called CommNetwork::
  // EnableRetransmit. Set before Init().
  void set_retransmit(bool on) { retransmit_ = on; }

  // Flush threshold for the per-(destination, predicate) send blocks: a
  // block normally flushes at the end of the round, but flushes early
  // once it holds `n` tuples. n == 1 degenerates to one frame per tuple
  // (the old per-tuple protocol). Set before Init().
  void set_block_tuples(int n) { block_tuples_ = n; }

  // Skew-adaptive repartitioning: route and accept through a per-worker
  // RemapView of `coordinator`'s managed function, sync override epochs
  // at every Step and idle poll, and report busy windows after each
  // processing round. Null (the default) disables rebalancing. Set
  // before Init(); must be called after Create() because it rebuilds
  // the router around the view.
  void set_rebalance(RebalanceCoordinator* coordinator);

  // Observability: record phase spans (init/drain/probe/insert/encode/
  // flush/idle) and round instants on `ring`. The ring must be owned by
  // this worker's thread (the engine hands worker i ring i); it is also
  // propagated to the worker's t_in relations so bulk ingests appear as
  // insert spans. Null (the default) disables tracing at the cost of
  // one branch per site. Set before Init().
  void set_trace(TraceRing* ring);

  const WorkerStats& stats() const { return stats_; }
  const WorkerProfile& profile() const { return profile_; }
  const std::vector<RoundLog>& round_logs() const { return round_logs_; }
  const Database& local_db() const { return local_db_; }
  const CompiledProgram& compiled() const { return compiled_; }

  // The worker's t_out relation for original derived predicate `p`.
  const Relation& OutputRelation(Symbol p) const;

 private:
  Worker(const RewriteBundle* bundle, int id, const Database* edb,
         std::unordered_map<int, std::unique_ptr<Relation>> fragments,
         CommNetwork* network, TerminationDetector* detector);

  Status Setup();

  // Appends all pending channel blocks into the t_in relations (bulk
  // ingest via Relation::InsertBlock; no per-tuple Message objects).
  // Returns the number of tuples drained, or an error when an incoming
  // frame fails to decode or names an unknown predicate.
  StatusOr<size_t> DrainChannels();
  // Ingests one received block into its t_in relation; returns the
  // block's tuple count on success.
  StatusOr<size_t> IngestBlock(const TupleBlock& block, int from);

  // Runs the delta variants of every processing rule over the current
  // t_in deltas, then routes new t_out tuples.
  void ProcessRound();

  // Applies the sending rules to `out`'s freshly derived rows
  // [begin, end): gathers up to 256 rows out of the column store,
  // computes their destinations with one RouteBatch call, and appends
  // each row to its (destination, predicate) accumulation blocks. A
  // block that reaches block_tuples_ flushes immediately; FlushSends()
  // flushes the remainder at the end of the round.
  void SendNewRows(Symbol pred, const Relation& out, size_t begin,
                   size_t end);
  // Ships one accumulated block as a single frame: one CountSend(n),
  // one lock acquisition, one sequence number — shared by the
  // shared-memory, serialized, and retransmit configurations.
  void FlushBlock(int dest, TupleBlock* block);
  void FlushSends();

  void EnsureLocalIndexes();

  const RewriteBundle* bundle_;
  int id_;
  int num_processors_;
  const Database* edb_;
  CommNetwork* network_;
  TerminationDetector* detector_;

  const Program* local_program_;  // bundle_->per_processor[id_]
  CompiledProgram compiled_;

  Database local_db_;  // holds t_out / t_in relations (decorated names)
  // Base fragments keyed by occurrence index (see RewriteBundle).
  std::unordered_map<int, std::unique_ptr<Relation>> fragments_;
  // Resolved data source for every (rule, body atom): local t_in
  // relation, shared EDB relation, or fragment.
  std::vector<std::vector<const Relation*>> body_sources_;

  // Semi-naive watermarks.
  std::unordered_map<Symbol, size_t> in_old_end_;   // by t_in symbol
  std::unordered_map<Symbol, size_t> out_sent_end_; // by t_out symbol

  // Precompiled sending rules (pattern checks + routing positions per
  // predicate; see core/routing.h), built once in Setup().
  TupleRouter router_;
  // Hash-constraint + routing evaluator: the shared registry, or the
  // rebalancer's per-worker view when set_rebalance was called.
  const ConstraintEvaluator* constraint_eval_ = nullptr;
  RebalanceCoordinator* rebalance_ = nullptr;
  std::unique_ptr<RemapView> remap_view_;
  // One buffered inserter per head (t_out) relation: rule firings
  // batch through Relation::InsertBlock instead of one dedup probe
  // per firing. Flushed after every Execute call, before anything
  // reads the relation's size. Built in Setup().
  std::unordered_map<Symbol, BatchInserter> head_inserters_;
  std::vector<int> dests_;              // scratch for SendNewRows
  std::vector<uint32_t> route_offsets_; // per-row dest ranges into dests_
  std::vector<Value> send_rows_;        // row-major gather buffer
  JoinScratch join_scratch_;
  WorkerStats stats_;
  TraceRing* trace_ = nullptr;  // optional per-worker trace ring
  WorkerProfile profile_;       // recorded only when trace_ is set
  std::vector<RoundLog> round_logs_;
  RoundLog* current_log_ = nullptr;  // active during Init/ProcessRound
  uint64_t pending_received_ = 0;    // drained since the last round started
  bool serialize_messages_ = false;
  bool retransmit_ = false;
  IdleWaitPolicy wait_policy_;
  bool in_stall_drain_ = false;  // re-entrancy guard for DrainForStall
  int block_tuples_ = 256;  // flush threshold (see set_block_tuples)
  // First send-side failure (encode error); SendTuple runs deep inside
  // the join callbacks, so the error is latched here and surfaced by the
  // next Step()/Init() return.
  Status send_status_;
  std::vector<std::vector<uint8_t>> byte_buffer_;  // scratch for drains
  std::vector<TupleBlock> block_buffer_;           // scratch for drains
  TupleBlock decode_block_;  // reusable decode target (serialized mode)
  // Outgoing accumulation blocks, indexed [dest * num_derived + slot]
  // where slot is the predicate's position in bundle_->derived. Blocks
  // keep their buffer capacity across rounds.
  std::vector<TupleBlock> send_blocks_;
  int num_derived_ = 0;
  std::unordered_map<Symbol, int> pred_slot_;  // derived pred -> slot
  // Memoized slot lookup: derivations arrive predicate-by-predicate, so
  // the previous SendTuple's slot almost always answers the next one.
  Symbol last_pred_ = kInvalidSymbol;
  int last_slot_ = 0;
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_WORKER_H_
