#include "core/rebalance.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/cost_model.h"

namespace pdatalog {

namespace {

constexpr uint32_t kFrameMagic = 0x5242414cu;  // "RBAL"

uint32_t Fnv1a(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

}  // namespace

void EncodeControlFrame(const RemapControlFrame& frame,
                        std::vector<uint8_t>* out) {
  out->clear();
  PutU32(out, kFrameMagic);
  PutU64(out, frame.epoch);
  PutU32(out, static_cast<uint32_t>(frame.function));
  PutU32(out, frame.num_buckets);
  PutU32(out, static_cast<uint32_t>(frame.overrides.size()));
  for (const auto& [bucket, dest] : frame.overrides) {
    PutU32(out, bucket);
    PutU32(out, static_cast<uint32_t>(dest));
  }
  PutU32(out, Fnv1a(out->data(), out->size()));
}

Status DecodeControlFrame(const uint8_t* data, size_t size,
                          RemapControlFrame* frame) {
  // magic + epoch + function + num_buckets + count + checksum.
  constexpr size_t kHeader = 4 + 8 + 4 + 4 + 4;
  if (size < kHeader + 4) {
    return Status::InvalidArgument("control frame truncated");
  }
  if (GetU32(data) != kFrameMagic) {
    return Status::InvalidArgument("control frame has bad magic");
  }
  uint32_t count = GetU32(data + 20);
  size_t expect = kHeader + static_cast<size_t>(count) * 8 + 4;
  if (size != expect) {
    return Status::InvalidArgument(
        "control frame size does not match its override count");
  }
  uint32_t stored = GetU32(data + size - 4);
  if (Fnv1a(data, size - 4) != stored) {
    return Status::InvalidArgument("control frame checksum mismatch");
  }
  frame->epoch = GetU64(data + 4);
  frame->function = static_cast<int32_t>(GetU32(data + 12));
  frame->num_buckets = GetU32(data + 16);
  frame->overrides.clear();
  frame->overrides.reserve(count);
  const uint8_t* p = data + kHeader;
  for (uint32_t i = 0; i < count; ++i, p += 8) {
    frame->overrides.emplace_back(GetU32(p),
                                  static_cast<int32_t>(GetU32(p + 4)));
  }
  return Status::Ok();
}

// --- RemapView ---

RemapView::RemapView(const DiscriminatingRegistry* base, int function,
                     const DiscriminatingFunction& overlay)
    : base_(base), function_(function), routing_(overlay) {
  assert(routing_.kind == DiscriminatingFunction::Kind::kRemapped);
  accept_all_.assign(routing_.num_buckets, 0);
  accept_extra_.assign(routing_.num_buckets, -1);
  bucket_counts_.assign(routing_.num_buckets, 0);
  bucket_heat_.assign(routing_.num_buckets, 0);
}

int RemapView::Evaluate(int function, const Value* values, int n) const {
  if (function != function_) return base_->Evaluate(function, values, n);
  uint32_t bucket = routing_.BucketOf(values, n);
  ++bucket_counts_[bucket];
  auto it = routing_.bucket_overrides.find(bucket);
  if (it == routing_.bucket_overrides.end()) {
    return static_cast<int>(bucket %
                            static_cast<uint32_t>(routing_.num_processors));
  }
  return it->second == DiscriminatingFunction::kKeepLocalDest
             ? routing_.constant
             : it->second;
}

bool RemapView::Accepts(int function, const Value* values, int n,
                        int target) const {
  if (function != function_) {
    return base_->Evaluate(function, values, n) == target;
  }
  uint32_t bucket = routing_.BucketOf(values, n);
  if (accept_all_[bucket]) return true;
  if (static_cast<int>(bucket % static_cast<uint32_t>(
                                    routing_.num_processors)) == target) {
    return true;
  }
  return accept_extra_[bucket] == target;
}

void RemapView::ChargeFiring(int function, const Value* values,
                             int n) const {
  if (function != function_) return;
  ++bucket_heat_[routing_.BucketOf(values, n)];
}

void RemapView::ApplyAcceptance(
    const std::vector<std::pair<uint32_t, int32_t>>& overrides,
    uint64_t epoch) {
  for (const auto& [bucket, dest] : overrides) {
    if (accept_all_[bucket]) continue;
    if (dest == DiscriminatingFunction::kKeepLocalDest) {
      // Replicated: every worker may keep the bucket's tuples.
      accept_all_[bucket] = 1;
      continue;
    }
    int base_owner = static_cast<int>(
        bucket % static_cast<uint32_t>(routing_.num_processors));
    if (dest == base_owner) continue;
    if (accept_extra_[bucket] < 0 || accept_extra_[bucket] == dest) {
      accept_extra_[bucket] = dest;
    } else {
      // Third distinct owner: widen to accept-everywhere rather than
      // track the full history. Sound — spurious acceptance only
      // re-derives tuples the set semantics absorb.
      accept_all_[bucket] = 1;
    }
  }
  accept_epoch_ = epoch;
}

void RemapView::ApplyRouting(
    const std::vector<std::pair<uint32_t, int32_t>>& overrides, size_t count,
    uint64_t epoch) {
  assert(count <= overrides.size());
  for (size_t i = routed_overrides_; i < count; ++i) {
    routing_.bucket_overrides[overrides[i].first] = overrides[i].second;
  }
  routed_overrides_ = count;
  route_epoch_ = epoch;
}

void RemapView::ResetBucketCounts() {
  std::fill(bucket_counts_.begin(), bucket_counts_.end(), 0);
  std::fill(bucket_heat_.begin(), bucket_heat_.end(), 0);
}

// --- RebalanceCoordinator ---

RebalanceCoordinator::RebalanceCoordinator(
    const DiscriminatingRegistry* registry, int function, int num_processors,
    const RebalanceOptions& options, bool serialize_frames)
    : registry_(registry),
      function_(function),
      num_processors_(num_processors),
      options_(options),
      serialize_frames_(serialize_frames) {
  num_buckets_ = options_.buckets_per_processor *
                 static_cast<uint32_t>(num_processors_);
  acks_.assign(num_processors_, 0);
  window_reports_.assign(num_processors_, 0);
  busy_.assign(num_processors_, 0);
  counts_.assign(num_buckets_, 0);
  sender_seen_.assign(static_cast<size_t>(num_buckets_) * num_processors_, 0);
  owner_.resize(num_buckets_);
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    owner_[b] = static_cast<int32_t>(
        b % static_cast<uint32_t>(num_processors_));
  }
  cooldown_until_.assign(num_buckets_, 0);
}

std::unique_ptr<RemapView> RebalanceCoordinator::MakeView(int worker) const {
  DiscriminatingFunction overlay = DiscriminatingFunction::Remapped(
      registry_->function(function_), num_buckets_, worker);
  return std::make_unique<RemapView>(registry_, function_, overlay);
}

void RebalanceCoordinator::Sync(int worker, RemapView* view) {
  std::lock_guard<std::mutex> lock(mu_);
  if (view->accept_epoch() < published_epoch_) {
    view->ApplyAcceptance(overrides_, published_epoch_);
  }
  if (acks_[worker] < published_epoch_) {
    acks_[worker] = published_epoch_;
    uint64_t min_ack = *std::min_element(acks_.begin(), acks_.end());
    if (min_ack > committed_epoch_) committed_epoch_ = min_ack;
  }
  if (view->route_epoch() < committed_epoch_) {
    // Entry i of the override list was published by epoch i+1, so the
    // committed prefix has exactly committed_epoch_ entries.
    view->ApplyRouting(overrides_,
                       static_cast<size_t>(committed_epoch_),
                       committed_epoch_);
  }
}

void RebalanceCoordinator::ReportWindow(int worker, uint64_t busy_ns,
                                        RemapView* view) {
  std::lock_guard<std::mutex> lock(mu_);
  busy_[worker] += busy_ns;
  ++window_reports_[worker];
  const std::vector<uint64_t>& routed = view->bucket_counts();
  const std::vector<uint64_t>& heat = view->bucket_heat();
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    if (routed[b] != 0) {
      // Routing a bucket's tuples marks this worker as one of its
      // senders (the cost model's replication input).
      sender_seen_[static_cast<size_t>(b) * num_processors_ + worker] = 1;
    }
    // Rank buckets by firings first (where the join work actually
    // happened; deltas times fan-in), with routed tuples as the
    // tiebreaker so never-fired buckets still register.
    counts_[b] += heat[b] + routed[b];
  }
  view->ResetBucketCounts();
  ++windows_;
  TryDecide();
}

void RebalanceCoordinator::TryDecide() {
  uint64_t total = 0;
  uint64_t max_busy = 0;
  int straggler = -1;
  for (int i = 0; i < num_processors_; ++i) {
    // Never compare a partial cycle: a worker that has not reported
    // since the last reset dilutes the mean and fakes a huge skew.
    if (window_reports_[i] == 0) return;
    total += busy_[i];
    if (busy_[i] > max_busy) {
      max_busy = busy_[i];
      straggler = i;
    }
  }
  if (straggler < 0 || total < options_.min_window_busy_ns) return;
  double mean =
      static_cast<double>(total) / static_cast<double>(num_processors_);
  double skew = static_cast<double>(max_busy) / mean;
  if (skew < options_.skew_threshold) return;

  // Hottest bucket still owned by the straggler and past its cooldown.
  int best = -1;
  uint64_t best_count = 0;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    if (owner_[b] != straggler) continue;
    if (windows_ < cooldown_until_[b]) continue;
    if (counts_[b] > best_count) {
      best = static_cast<int>(b);
      best_count = counts_[b];
    }
  }
  if (best < 0 || best_count < options_.min_bucket_tuples) return;

  // Producers of the bucket's tuples, minus the straggler itself:
  // replication hands each producer its own share, so only the others
  // can relieve the straggler.
  int spread_senders = 0;
  const uint8_t* row =
      sender_seen_.data() + static_cast<size_t>(best) * num_processors_;
  for (int i = 0; i < num_processors_; ++i) {
    if (row[i] != 0 && i != straggler) ++spread_senders;
  }

  // Attribute the window's bucket weights to their owners to find the
  // forwarding target (least-loaded worker) and the headroom a forward
  // can actually exploit. Weight, not busy time: busy includes drain and
  // flush noise, while the weights are exactly the firings + routed
  // tuples the move would reassign.
  std::vector<uint64_t> weight(static_cast<size_t>(num_processors_), 0);
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    if (owner_[b] >= 0) weight[static_cast<size_t>(owner_[b])] += counts_[b];
  }
  int target = 0;
  for (int i = 0; i < num_processors_; ++i) {
    if (weight[i] < weight[target]) target = i;
  }
  uint64_t headroom = weight[straggler] - weight[target];

  int dest;
  if (PreferReplication(best_count, headroom, spread_senders,
                        options_.cpu_per_firing, options_.net_per_message)) {
    dest = DiscriminatingFunction::kKeepLocalDest;
    owner_[best] = DiscriminatingFunction::kKeepLocalDest;
    ++replications_;
  } else {
    if (target == straggler) return;  // everyone equally loaded
    dest = target;
    owner_[best] = target;
    ++moves_;
  }
  // Cooldown in full report cycles: windows_ advances once per worker
  // per round, so one cycle is num_processors_ windows.
  cooldown_until_[best] =
      windows_ + static_cast<uint64_t>(options_.cooldown_windows) *
                     static_cast<uint64_t>(num_processors_);

  ++published_epoch_;
  overrides_.emplace_back(static_cast<uint32_t>(best),
                          static_cast<int32_t>(dest));
  RebalanceLogEntry entry;
  entry.window = windows_;
  entry.function = function_;
  entry.bucket = static_cast<uint32_t>(best);
  entry.from = straggler;
  entry.to = dest;
  entry.tuples = best_count;
  entry.skew = skew;
  log_.push_back(entry);
  Publish();

  // Start the next observation window from scratch so later decisions
  // reflect the post-move distribution, not stale history.
  std::fill(window_reports_.begin(), window_reports_.end(), 0);
  std::fill(busy_.begin(), busy_.end(), 0);
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(sender_seen_.begin(), sender_seen_.end(), 0);
}

void RebalanceCoordinator::Publish() {
  RemapControlFrame frame;
  frame.epoch = published_epoch_;
  frame.function = function_;
  frame.num_buckets = num_buckets_;
  frame.overrides = overrides_;
  EncodeControlFrame(frame, &frame_bytes_);
  if (serialize_frames_) {
    // The in-process "broadcast" is the shared override list; with
    // serialized messages on, round-trip the frame the way a real
    // network would carry it so the wire format is exercised every
    // epoch.
    RemapControlFrame decoded;
    Status s =
        DecodeControlFrame(frame_bytes_.data(), frame_bytes_.size(), &decoded);
    assert(s.ok() && decoded.epoch == frame.epoch &&
           decoded.overrides.size() == frame.overrides.size());
    (void)s;
  }
}

}  // namespace pdatalog
