// Discriminating functions (Section 3): functions from ground instances
// of a discriminating variable sequence to processor ids.
//
// The registry owns every function used by one rewrite bundle and
// implements eval::ConstraintEvaluator so compiled rules can check
// `h(v(r)) = i` conjuncts during joins.
//
// Function kinds cover everything the paper uses:
//   * kUniformHash      — an arbitrary hash onto {0..P-1} (Examples 1, 3, 8).
//   * kSymmetricHash    — order-invariant hash; required by the
//                         communication-free construction of Theorem 3,
//                         where produced tuples carry a cyclic shift of
//                         the discriminating values.
//   * kLinear           — h(a_1..a_k) = sum_l coeffs[l] * g(a_l) with
//                         g: constants -> {0,1} (Section 5, Examples 6/7).
//                         Values may be negative; the engine maps them to
//                         dense processor indices.
//   * kTableLookup      — h defined by an arbitrary horizontal
//                         fragmentation of a base relation: h(t) = i iff
//                         t is in fragment i (Example 2, Valduriez-
//                         Khoshafian).
//   * kConstant         — h_i == i: keep everything local (Section 6,
//                         the no-communication scheme of [18]).
//   * kKeepOrHash       — keep a tuple locally with probability rho
//                         (deterministically, by tuple hash), otherwise
//                         fall through to the uniform hash. Interpolates
//                         between kConstant (rho=1) and kUniformHash
//                         (rho=0); realizes the Section 6 trade-off
//                         spectrum.
//   * kRemapped         — adaptive overlay over a hash base: the raw
//                         hash is first reduced to one of `num_buckets`
//                         buckets (num_buckets a multiple of
//                         num_processors, so an unmoved bucket lands on
//                         the same processor the base hash picks), then
//                         per-bucket overrides broadcast by the skew
//                         rebalancer redirect hot buckets — either to a
//                         specific processor or, with kKeepLocalDest, to
//                         whichever processor evaluates the function
//                         (Section 6's redundancy fallback).
#ifndef PDATALOG_CORE_DISCRIMINATING_H_
#define PDATALOG_CORE_DISCRIMINATING_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "eval/plan.h"
#include "storage/tuple.h"
#include "util/hash.h"
#include "util/status.h"

namespace pdatalog {

struct DiscriminatingFunction {
  enum class Kind {
    kUniformHash,
    kSymmetricHash,
    kLinear,
    kTableLookup,
    kConstant,
    kKeepOrHash,
    kCustom,
    kRemapped,
  };

  // kRemapped bucket override destination meaning "keep the tuple at the
  // evaluating processor" (the `constant` field names that processor for
  // a standalone function; the rebalancer's per-worker views substitute
  // their own id).
  static constexpr int kKeepLocalDest = -1;

  Kind kind = Kind::kUniformHash;
  int num_processors = 1;  // kUniformHash/kSymmetricHash/kKeepOrHash range
  uint64_t seed = 0;       // hash salt; also salts g for kLinear

  // kLinear: per-sequence-position coefficients of g(a_l).
  std::vector<int> coeffs;

  // kTableLookup: tuple -> processor. Tuples absent from the map get
  // processor (hash % num_processors) as a total-function fallback.
  std::unordered_map<Tuple, int, TupleHash> table;

  // kConstant: the fixed result. kKeepOrHash: the local owner.
  int constant = 0;

  // kKeepOrHash: probability of keeping the tuple at `constant`.
  double keep_probability = 0.0;

  // kLinear: optional remap of raw linear values to dense processor
  // indices (see WithDenseRemap). Empty = return raw values.
  std::unordered_map<int, int> remap;

  // kRemapped: bucket count (a positive multiple of num_processors) and
  // the rebalancer's bucket -> destination overrides. Buckets absent
  // from the map keep their base assignment `bucket % num_processors`;
  // a kKeepLocalDest entry resolves to `constant`. `base_kind` names the
  // wrapped hash (kUniformHash or kSymmetricHash).
  uint32_t num_buckets = 0;
  std::unordered_map<uint32_t, int> bucket_overrides;
  Kind base_kind = Kind::kUniformHash;

  // kCustom: arbitrary user routing policy. Must be pure (same input ->
  // same output, on every processor) and map into [0, num_processors).
  std::function<int(const Value*, int)> custom;

  static DiscriminatingFunction UniformHash(int num_processors,
                                            uint64_t seed = 0x5eed);
  static DiscriminatingFunction SymmetricHash(int num_processors,
                                              uint64_t seed = 0x5eed);
  static DiscriminatingFunction Linear(std::vector<int> coeffs,
                                       uint64_t seed = 0x5eed);
  static DiscriminatingFunction TableLookup(
      std::unordered_map<Tuple, int, TupleHash> table, int num_processors);
  static DiscriminatingFunction Constant(int value);
  static DiscriminatingFunction KeepOrHash(int owner, double keep_probability,
                                           int num_processors,
                                           uint64_t seed = 0x5eed);
  static DiscriminatingFunction Custom(
      std::function<int(const Value*, int)> fn, int num_processors);
  // Overlay over `base` (kUniformHash or kSymmetricHash): same hash,
  // reduced to `num_buckets` buckets (must be a positive multiple of
  // base.num_processors) before the processor projection, so overrides
  // can be installed per bucket. `local_owner` resolves kKeepLocalDest
  // entries.
  static DiscriminatingFunction Remapped(const DiscriminatingFunction& base,
                                         uint32_t num_buckets,
                                         int local_owner);

  // The g function of kLinear: a salted hash bit of the constant.
  int G(Value v) const { return static_cast<int>(Mix64(v ^ seed) & 1); }

  // The pre-projection hash of the hash kinds (kUniformHash,
  // kSymmetricHash, and kRemapped via its base_kind) — what Evaluate
  // reduces mod num_processors. Other kinds have no raw hash; asserts.
  uint64_t RawHash(const Value* values, int n) const;
  // kRemapped: the bucket of a value sequence (RawHash % num_buckets).
  uint32_t BucketOf(const Value* values, int n) const {
    return num_buckets == 0
               ? 0
               : static_cast<uint32_t>(RawHash(values, n) % num_buckets);
  }

  int Evaluate(const Value* values, int n) const;
};

// Owns the discriminating functions of one rewrite bundle and evaluates
// hash constraints for the join executor. Thread-safe for concurrent
// Evaluate() once registration is complete.
class DiscriminatingRegistry : public ConstraintEvaluator {
 public:
  // Returns the function id used in HashConstraint::function.
  int Register(DiscriminatingFunction fn);

  const DiscriminatingFunction& function(int id) const {
    return functions_[id];
  }
  int size() const { return static_cast<int>(functions_.size()); }

  int Evaluate(int function, const Value* values, int n) const override;

 private:
  std::vector<DiscriminatingFunction> functions_;
};

// All values sum_l coeffs[l]*b_l over b in {0,1}^k, deduplicated and
// sorted ascending. These are the paper's processor ids for a linear
// discriminating function (Example 7: coeffs (1,-1,1) give {-1,0,1,2}).
std::vector<int> LinearAchievableValues(const std::vector<int>& coeffs);

// Copy of a kLinear function that maps raw values to dense indices
// 0..n-1 in ascending raw-value order, so the engine can use linear
// functions whose range includes negative values.
DiscriminatingFunction WithDenseRemap(const DiscriminatingFunction& linear);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_DISCRIMINATING_H_
