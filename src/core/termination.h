// Distributed termination detection for the parallel evaluation.
//
// The paper (Section 3, "Parallel Termination") requires detecting the
// condition "every processor is idle and all channels are empty" and
// cites standard algorithms [5, 7]. In shared memory we use Mattern's
// four-counter method: a detector scan reads (all-idle, total-sent,
// total-received); termination is declared after two consecutive scans
// that both see all workers idle with equal, unchanged send/receive
// totals. Workers count a send *before* the message becomes visible in
// the channel and count a receive only *after* taking messages out, so
// stable equal counters imply empty channels.
#ifndef PDATALOG_CORE_TERMINATION_H_
#define PDATALOG_CORE_TERMINATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pdatalog {

class TerminationDetector {
 public:
  explicit TerminationDetector(int num_workers);

  // Called by worker `w` before enqueueing `n` messages.
  void CountSend(int w, uint64_t n) {
    states_[w].sent.fetch_add(n, std::memory_order_seq_cst);
  }

  // Called by worker `w` after draining `n` messages from its channels.
  void CountReceive(int w, uint64_t n) {
    states_[w].received.fetch_add(n, std::memory_order_seq_cst);
  }

  // Worker `w` transitions between active and idle. A worker must be
  // active whenever it sends.
  void SetIdle(int w, bool idle) {
    states_[w].idle.store(idle, std::memory_order_seq_cst);
  }

  // Performed by an idle worker: runs one detection scan. Returns true
  // once global termination has been declared (by this call or a prior
  // one). Safe to call concurrently.
  bool TryDetect();

  bool terminated() const {
    return terminated_.load(std::memory_order_seq_cst);
  }

 private:
  struct WorkerState {
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> received{0};
    std::atomic<bool> idle{false};
  };

  struct Snapshot {
    bool all_idle = false;
    uint64_t sent = 0;
    uint64_t received = 0;
    bool operator==(const Snapshot&) const = default;
  };

  Snapshot Scan() const;

  int num_workers_;
  std::unique_ptr<WorkerState[]> states_;
  std::atomic<bool> terminated_{false};
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_TERMINATION_H_
