// Distributed termination detection for the parallel evaluation.
//
// The paper (Section 3, "Parallel Termination") requires detecting the
// condition "every processor is idle and all channels are empty" and
// cites standard algorithms [5, 7]. In shared memory we use Mattern's
// four-counter method: a detector scan reads (all-idle, total-sent,
// total-received); termination is declared after two consecutive scans
// that both see all workers idle with equal, unchanged send/receive
// totals. Workers count a send *before* the message becomes visible in
// the channel and count a receive only *after* taking messages out, so
// stable equal counters imply empty channels.
//
// The detector is also the runtime's failure rendezvous: a worker that
// hits an error calls Abort(), which terminates every loop with a
// non-OK run_status() instead of leaving peers livelocked. When fault
// injection runs without retransmit, EnableLossDetection() additionally
// turns the would-be livelock of a lost message (counters stably
// unbalanced, all workers idle, every channel empty) into a reported
// error — a silent drop can never look like quiescence.
#ifndef PDATALOG_CORE_TERMINATION_H_
#define PDATALOG_CORE_TERMINATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace pdatalog {

class CommNetwork;

class TerminationDetector {
 public:
  explicit TerminationDetector(int num_workers);

  // Called by worker `w` before enqueueing `n` messages.
  void CountSend(int w, uint64_t n) {
    states_[w].sent.fetch_add(n, std::memory_order_seq_cst);
  }

  // Called by worker `w` after draining `n` messages from its channels.
  void CountReceive(int w, uint64_t n) {
    states_[w].received.fetch_add(n, std::memory_order_seq_cst);
  }

  // Worker `w` transitions between active and idle. A worker must be
  // active whenever it sends.
  void SetIdle(int w, bool idle) {
    states_[w].idle.store(idle, std::memory_order_seq_cst);
  }

  // Performed by an idle worker: runs one detection scan. Returns true
  // once the run has terminated — successfully (by this call or a prior
  // one) or via Abort()/loss detection; run_status() distinguishes.
  // Safe to call concurrently.
  bool TryDetect();

  // Marks the run failed and releases every worker loop. The first
  // abort wins; later calls keep the original status.
  void Abort(Status status);

  // Enables message-loss detection against `network` (which must
  // outlive the detector): a stable scan showing all workers idle and
  // all channels empty while sent != received proves a message vanished
  // and fails the run. Only sound without retransmission — a reliable
  // channel's pending resend would be declared lost.
  void EnableLossDetection(const CommNetwork* network) {
    network_ = network;
  }

  // Ok while running and after clean termination; the failure after
  // Abort() or detected loss.
  Status run_status() const;

  // Compares the global send/receive totals right now. Used by the
  // deterministic round-robin scheduler, which quiesces by construction
  // and only needs the final balance check. Returns the loss error on
  // mismatch.
  Status CheckCounterBalance() const;

  bool terminated() const {
    return terminated_.load(std::memory_order_seq_cst);
  }

 private:
  struct WorkerState {
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> received{0};
    std::atomic<bool> idle{false};
  };

  struct Snapshot {
    bool all_idle = false;
    bool channels_empty = false;  // only meaningful with network_
    uint64_t sent = 0;
    uint64_t received = 0;
    bool operator==(const Snapshot&) const = default;
  };

  Snapshot Scan() const;

  int num_workers_;
  std::unique_ptr<WorkerState[]> states_;
  const CommNetwork* network_ = nullptr;  // loss detection, optional
  std::atomic<bool> terminated_{false};
  mutable std::mutex status_mutex_;
  Status status_;  // guarded by status_mutex_
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_TERMINATION_H_
