// Dataflow graphs of linear recursive rules (Section 5, Definition 2)
// and the constructive side of Theorem 3: a cycle yields a choice of
// discriminating sequence that makes the parallel execution
// communication-free.
#ifndef PDATALOG_CORE_DATAFLOW_GRAPH_H_
#define PDATALOG_CORE_DATAFLOW_GRAPH_H_

#include <string>
#include <vector>

#include "core/rewrite.h"
#include "datalog/analysis.h"
#include "util/status.h"

namespace pdatalog {

// Definition 2: for head t(X_1..X_m) and body atom t(Y_1..Y_m), vertex i
// exists iff Y_i equals some X_j, and edge i -> j exists iff Y_i == X_j.
// Positions are 0-based here; ToString prints them 1-based like the
// paper's figures.
struct DataflowGraph {
  int arity = 0;
  std::vector<int> vertices;                 // 0-based positions
  std::vector<std::pair<int, int>> edges;    // (i, j), 0-based

  static DataflowGraph Build(const LinearSirup& sirup);

  bool HasCycle() const;

  // Body-atom positions lying on some cycle (empty if acyclic).
  std::vector<int> CyclePositions() const;

  // e.g. "1 -> 2, 2 -> 3" (1-based, matching Figures 1 and 2).
  std::string ToString() const;
};

// Theorem 3 (constructive): if the dataflow graph has a cycle, returns a
// scheme specification whose parallel execution requires no
// communication: v(r) = the variables at the cycle positions of Y,
// v(e) = the exit-head variables at the same column positions, and a
// symmetric (order-invariant) hash, since along a cycle the produced
// tuple's discriminating values are a permutation of the consumed
// tuple's. Fails if the graph is acyclic.
StatusOr<LinearSchemeOptions> CommunicationFreeScheme(
    const LinearSirup& sirup, int num_processors, uint64_t seed = 0x5eed);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_DATAFLOW_GRAPH_H_
