#include "core/cost_model.h"

#include <algorithm>

namespace pdatalog {

CostBreakdown BspCost(const std::vector<std::vector<RoundLog>>& rounds,
                      const CostParams& params) {
  CostBreakdown out;
  const int workers = static_cast<int>(rounds.size());
  size_t max_rounds = 0;
  for (const auto& log : rounds) max_rounds = std::max(max_rounds, log.size());

  for (size_t k = 0; k < max_rounds; ++k) {
    // Cross traffic of superstep k, charged to the receiver: messages
    // worker i sends to j in its round k must be absorbed by j before
    // its round k+1 can proceed, so they bound this superstep's
    // communication phase.
    std::vector<uint64_t> recv_cross(workers, 0);
    for (int i = 0; i < workers; ++i) {
      if (k >= rounds[i].size()) continue;
      const RoundLog& log = rounds[i][k];
      for (int j = 0; j < workers; ++j) {
        if (j != i && j < static_cast<int>(log.sent_to.size())) {
          recv_cross[j] += log.sent_to[j];
        }
      }
    }

    double step_compute = 0.0;
    double step_network = 0.0;
    double step_total = 0.0;
    for (int j = 0; j < workers; ++j) {
      uint64_t firings = k < rounds[j].size() ? rounds[j][k].firings : 0;
      double compute = static_cast<double>(firings) * params.cpu_per_firing;
      double network =
          static_cast<double>(recv_cross[j]) * params.net_per_message;
      step_compute = std::max(step_compute, compute);
      step_network = std::max(step_network, network);
      step_total = std::max(step_total, compute + network);
    }
    out.compute += step_compute;
    out.network += step_network;
    out.makespan += step_total + params.round_latency;
    ++out.supersteps;
  }
  return out;
}

}  // namespace pdatalog
