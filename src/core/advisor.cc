#include "core/advisor.h"

#include <algorithm>

#include "core/dataflow_graph.h"
#include "core/partition.h"
#include "util/table.h"

namespace pdatalog {

namespace {

// Distinct variables of the recursive body atom, in position order.
std::vector<Symbol> RecAtomVars(const LinearSirup& sirup) {
  std::vector<Symbol> vars;
  CollectVariables(sirup.rec_body_atom(), &vars);
  return vars;
}

// v(e) matching v(r) positionally: for each v(r) variable's first
// position in the recursive body atom, take the exit head's variable at
// the same column. Tuples are then seeded where they will be consumed,
// so initialization incurs no forwarding. Falls back to the exit head's
// first variable when a column holds a constant.
std::vector<Symbol> MatchingExitVars(const LinearSirup& sirup,
                                     const std::vector<Symbol>& v_r) {
  std::vector<Symbol> z = sirup.ExitVarsZ();
  std::vector<Symbol> y = sirup.BodyVarsY();
  std::vector<Symbol> v_e;
  for (Symbol v : v_r) {
    int pos = -1;
    for (size_t c = 0; c < y.size(); ++c) {
      if (y[c] == v) {
        pos = static_cast<int>(c);
        break;
      }
    }
    Symbol pick = kInvalidSymbol;
    if (pos >= 0 && z[pos] != kInvalidSymbol) {
      pick = z[pos];
    } else {
      for (Symbol cand : z) {
        if (cand != kInvalidSymbol) {
          pick = cand;
          break;
        }
      }
    }
    if (pick != kInvalidSymbol) v_e.push_back(pick);
  }
  return v_e;
}

struct Candidate {
  std::string name;
  std::string description;
  RewriteBundle bundle;
};

StatusOr<SchemeCandidate> Profile(const Candidate& candidate, Database* edb,
                                  const AdvisorOptions& options) {
  ParallelOptions popts;
  popts.use_threads = false;  // deterministic round structure
  StatusOr<ParallelResult> result =
      RunParallel(candidate.bundle, edb, popts);
  if (!result.ok()) return result.status();

  SchemeCandidate out;
  out.name = candidate.name;
  out.description = candidate.description;
  out.non_redundant = candidate.bundle.non_redundant;
  out.firings = result->total_firings;
  out.cross_messages = result->cross_tuples;
  out.communication_free = result->cross_tuples == 0;
  out.determined_sends = true;
  for (const auto& sends : candidate.bundle.sends) {
    for (const SendSpec& spec : sends) {
      if (!spec.determined) out.determined_sends = false;
    }
  }
  out.makespan = BspCost(result->worker_rounds, options.cost).makespan;

  uint64_t max_firings = 0;
  uint64_t sum = 0;
  for (const WorkerStats& w : result->workers) {
    max_firings = std::max(max_firings, w.firings);
    sum += w.firings;
  }
  double mean = static_cast<double>(sum) /
                static_cast<double>(result->workers.size());
  out.load_imbalance = mean == 0 ? 1.0 : max_firings / mean;
  return out;
}

}  // namespace

std::string AdvisorReport::ToString() const {
  TextTable table({"rank", "scheme", "makespan", "firings", "cross-msgs",
                   "imbalance", "comm-free", "nonredundant"});
  for (size_t i = 0; i < candidates.size(); ++i) {
    const SchemeCandidate& c = candidates[i];
    table.AddRow({TextTable::Cell(static_cast<int>(i + 1)), c.name,
                  TextTable::Cell(c.makespan, 0), TextTable::Cell(c.firings),
                  TextTable::Cell(c.cross_messages),
                  TextTable::Cell(c.load_imbalance, 2),
                  c.communication_free ? "yes" : "no",
                  c.non_redundant ? "yes" : "no"});
  }
  return table.ToString();
}

StatusOr<AdvisorReport> AdviseScheme(const Program& program,
                                     const ProgramInfo& info,
                                     const LinearSirup& sirup, Database* edb,
                                     const AdvisorOptions& options) {
  const int P = options.num_processors;
  const SymbolTable& symbols = *program.symbols;
  std::vector<Candidate> candidates;

  // 1. Theorem 3 communication-free candidate, when the dataflow graph
  //    has a cycle.
  StatusOr<LinearSchemeOptions> free_scheme =
      CommunicationFreeScheme(sirup, P, options.seed);
  if (free_scheme.ok()) {
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(program, info, sirup, P, *free_scheme);
    if (bundle.ok()) {
      std::string vars;
      for (Symbol v : free_scheme->v_r) {
        if (!vars.empty()) vars += ",";
        vars += symbols.Name(v);
      }
      candidates.push_back({"theorem3<" + vars + ">",
                            "communication-free (dataflow cycle)",
                            std::move(*bundle)});
    }
  }

  // 2. Hash partitioning on each single variable of the recursive atom,
  //    and on the full variable list (Example 3 style).
  std::vector<std::vector<Symbol>> hash_sequences;
  for (Symbol v : RecAtomVars(sirup)) hash_sequences.push_back({v});
  if (RecAtomVars(sirup).size() > 1) {
    hash_sequences.push_back(RecAtomVars(sirup));
  }
  for (const std::vector<Symbol>& v_r : hash_sequences) {
    LinearSchemeOptions scheme;
    scheme.v_r = v_r;
    scheme.v_e = MatchingExitVars(sirup, v_r);
    if (scheme.v_e.size() != v_r.size()) continue;
    scheme.h = DiscriminatingFunction::UniformHash(P, options.seed);
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(program, info, sirup, P, scheme);
    if (!bundle.ok()) continue;
    std::string vars;
    for (Symbol v : v_r) {
      if (!vars.empty()) vars += ",";
      vars += symbols.Name(v);
    }
    candidates.push_back({"hash<" + vars + ">",
                          "hash partitioning (Section 3)",
                          std::move(*bundle)});
  }

  // 3. Arbitrary fragmentation (Example 2), when the base relation has
  //    facts to fragment.
  if (options.include_arbitrary_fragmentation) {
    const Relation* base = edb->Find(sirup.s);
    const Atom& base_atom = sirup.base_atoms.empty()
                                ? sirup.exit.body[0]
                                : sirup.base_atoms[0];
    if (base != nullptr && !base->empty()) {
      LinearSchemeOptions scheme;
      CollectVariables(base_atom, &scheme.v_r);
      CollectVariables(sirup.exit.body[0], &scheme.v_e);
      scheme.h = MakeArbitraryFragmentation(*base, P, options.seed);
      StatusOr<RewriteBundle> bundle =
          RewriteLinearSirup(program, info, sirup, P, scheme);
      if (bundle.ok()) {
        candidates.push_back({"fragmented",
                              "arbitrary fragmentation + broadcast "
                              "(Example 2)",
                              std::move(*bundle)});
      }
    }
  }

  // 4. The Section 6 spectrum at the requested keep-fractions.
  for (double rho : options.tradeoff_rhos) {
    TradeoffOptions scheme;
    std::vector<Symbol> v_r = RecAtomVars(sirup);
    scheme.v_r = v_r;
    scheme.v_e = MatchingExitVars(sirup, v_r);
    if (scheme.v_e.size() != v_r.size()) continue;
    scheme.h_prime = DiscriminatingFunction::UniformHash(P, options.seed);
    for (int i = 0; i < P; ++i) {
      scheme.h_i.push_back(
          DiscriminatingFunction::KeepOrHash(i, rho, P, options.seed));
    }
    StatusOr<RewriteBundle> bundle =
        RewriteTradeoff(program, info, sirup, P, scheme);
    if (!bundle.ok()) continue;
    candidates.push_back(
        {"tradeoff(" + TextTable::Cell(rho, 2) + ")",
         "Section 6 spectrum, keep-fraction " + TextTable::Cell(rho, 2),
         std::move(*bundle)});
  }

  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no parallelization candidate applies to this sirup");
  }

  AdvisorReport report;
  for (const Candidate& candidate : candidates) {
    StatusOr<SchemeCandidate> profiled = Profile(candidate, edb, options);
    if (!profiled.ok()) return profiled.status();
    report.candidates.push_back(std::move(*profiled));
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const SchemeCandidate& a, const SchemeCandidate& b) {
              if (a.makespan != b.makespan) return a.makespan < b.makespan;
              return a.name < b.name;
            });
  return report;
}

}  // namespace pdatalog
