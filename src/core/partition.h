// Base-relation placement: builds the per-processor fragments b_k^i
// (Section 3) / D_in^i (Section 7) prescribed by a rewrite bundle, and
// helpers for the arbitrary horizontal fragmentations of Example 2.
#ifndef PDATALOG_CORE_PARTITION_H_
#define PDATALOG_CORE_PARTITION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rewrite.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

// The materialized fragments for one parallel run.
struct PartitionResult {
  // fragments[worker][occurrence] = the worker's fragment for
  // bundle.base_occurrences[occurrence]; only kFragment occurrences have
  // entries. Distinct occurrences of the same predicate may be
  // fragmented differently (Example 3 fragments `par` on column 0 for
  // the initialization rule and on column 1 for the processing rule).
  std::vector<std::unordered_map<int, std::unique_ptr<Relation>>> fragments;

  // Rows stored per worker across its fragments (locality metric).
  std::vector<uint64_t> fragment_rows;
  // Rows each worker can reach through replicated occurrences.
  uint64_t replicated_rows = 0;
};

// Splits the base relations of `edb` according to
// `bundle.base_occurrences`. Fails if a fragmenting function assigns a
// row outside [0, num_processors).
StatusOr<PartitionResult> PartitionBases(const RewriteBundle& bundle,
                                         const Database& edb);

// Example 2 support: an arbitrary horizontal fragmentation of `relation`
// into `num_processors` parts (deterministic in `seed`), returned as a
// table-lookup discriminating function: h(t) = the fragment holding t.
DiscriminatingFunction MakeArbitraryFragmentation(const Relation& relation,
                                                  int num_processors,
                                                  uint64_t seed);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_PARTITION_H_
