// Message serialization: the paper's abstract architecture may be
// realized "by either shared memory or message passing" (Section 3).
// The default channels move Message objects through shared memory; in
// serialized mode every message is encoded to bytes on send and decoded
// on receive, proving nothing in the engine depends on shared address
// space (beyond the read-only symbol table, which a real deployment
// would replicate).
//
// Wire format (little-endian):
//   u32 predicate id | u16 arity | arity * u32 column values
#ifndef PDATALOG_CORE_WIRE_H_
#define PDATALOG_CORE_WIRE_H_

#include <cstdint>
#include <vector>

#include "core/channel.h"
#include "util/status.h"

namespace pdatalog {

// Appends the encoding of `message` to `out`.
void EncodeMessage(const Message& message, std::vector<uint8_t>* out);

// Decodes one message starting at `data[*offset]`, advancing *offset.
// Fails on truncated input.
StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& data,
                                size_t* offset);

// Encodes a whole batch (concatenated messages).
std::vector<uint8_t> EncodeBatch(const std::vector<Message>& messages);

// Decodes a concatenated batch.
StatusOr<std::vector<Message>> DecodeBatch(const std::vector<uint8_t>& data);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_WIRE_H_
