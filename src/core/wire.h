// Message serialization: the paper's abstract architecture may be
// realized "by either shared memory or message passing" (Section 3).
// The default channels move Message objects through shared memory; in
// serialized mode every message is encoded to bytes on send and decoded
// on receive, proving nothing in the engine depends on shared address
// space (beyond the read-only symbol table, which a real deployment
// would replicate).
//
// Wire formats (little-endian), sizes defined once in core/channel.h:
//   legacy: u32 predicate id | u16 arity | arity * u32 values | u32 checksum
//   block:  u32 predicate id | u16 (kBlockArityFlag | arity) | u32 count |
//           columnar values (count * u32 for column 0, then column 1, ...)
//           | u32 checksum
//
// The block frame amortizes the header, checksum, and count bookkeeping
// over a whole run of same-predicate tuples, and its columnar value
// layout keeps each column's bytes contiguous on the wire. The flagged
// arity word keeps the two formats mutually unintelligible: a legacy
// decoder sees an impossible arity in a block frame and vice versa.
//
// The trailing checksum is FNV-1a over the frame's preceding bytes, so
// a corrupted frame is *detected* at decode time and surfaces as a
// Status instead of silently feeding a wrong tuple into the fixpoint.
// Encode and decode are symmetric: both reject arity > kMaxWireArity.
#ifndef PDATALOG_CORE_WIRE_H_
#define PDATALOG_CORE_WIRE_H_

#include <cstdint>
#include <vector>

#include "core/channel.h"
#include "util/status.h"

namespace pdatalog {

// Appends the encoding of `message` to `out`. Fails (appending nothing)
// when the tuple's arity exceeds kMaxWireArity.
Status EncodeMessage(const Message& message, std::vector<uint8_t>* out);

// Decodes one message starting at `data[*offset]`, advancing *offset.
// Fails on truncated input, oversized arity, or checksum mismatch.
StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& data,
                                size_t* offset);

// Encodes a whole batch (concatenated messages).
StatusOr<std::vector<uint8_t>> EncodeBatch(
    const std::vector<Message>& messages);

// Decodes a concatenated batch.
StatusOr<std::vector<Message>> DecodeBatch(const std::vector<uint8_t>& data);

// Appends the block-frame encoding of `block` to `out` (columnar value
// layout). Fails (appending nothing) on oversized arity, an empty or
// oversized tuple count, or a value buffer that does not match
// arity * count.
Status EncodeBlock(const TupleBlock& block, std::vector<uint8_t>* out);

// Decodes one block frame starting at `data[*offset]` into `block`
// (reusing its buffer; the row-major transpose of the wire's columnar
// values), advancing *offset. Fails on truncated input, a legacy
// (non-block) frame, oversized arity or count, or checksum mismatch —
// `block` is left unspecified on failure and *offset is not advanced
// past the bad frame.
Status DecodeBlockInto(const std::vector<uint8_t>& data, size_t* offset,
                       TupleBlock* block);

// True iff the frame ends in a u32 equal to the FNV-1a hash of the
// preceding bytes. Used by reliable channels to discard corrupted
// frames without fully decoding them.
bool FrameChecksumOk(const uint8_t* data, size_t size);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_WIRE_H_
