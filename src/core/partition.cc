#include "core/partition.h"

#include <iterator>
#include <string>

#include "util/hash.h"

namespace pdatalog {

StatusOr<PartitionResult> PartitionBases(const RewriteBundle& bundle,
                                         const Database& edb) {
  PartitionResult result;
  result.fragments.resize(bundle.num_processors);
  result.fragment_rows.assign(bundle.num_processors, 0);

  for (size_t occ_idx = 0; occ_idx < bundle.base_occurrences.size();
       ++occ_idx) {
    const BaseOccurrence& occ = bundle.base_occurrences[occ_idx];
    // All processors share the same local-rule structure, so the atom of
    // this occurrence can be read from processor 0's program.
    const Atom& atom =
        bundle.per_processor[0].rules[occ.rule_index].body[occ.body_index];
    const Relation* rel = edb.Find(atom.predicate);

    if (occ.access == BaseOccurrence::Access::kReplicated) {
      if (rel != nullptr) result.replicated_rows += rel->size();
      continue;
    }

    // Create the (possibly empty) fragment relations.
    int arity = bundle.arity.at(atom.predicate);
    for (int i = 0; i < bundle.num_processors; ++i) {
      result.fragments[i].emplace(static_cast<int>(occ_idx),
                                  std::make_unique<Relation>(arity));
    }
    if (rel == nullptr) continue;

    // The gather buffer below is fixed; a discriminating sequence longer
    // than it would write off the end (the same overflow class PR 1
    // fixed in routing — routing sizes its scratch from the specs, but
    // fragmentation runs before any router exists).
    Value vals[32];
    if (occ.positions.size() > std::size(vals)) {
      return Status::OutOfRange(
          "base occurrence discriminating sequence has " +
          std::to_string(occ.positions.size()) +
          " positions; fragmentation supports at most " +
          std::to_string(std::size(vals)));
    }
    for (size_t row = 0; row < rel->size(); ++row) {
      const Tuple& t = rel->row(row);
      for (size_t k = 0; k < occ.positions.size(); ++k) {
        vals[k] = t[occ.positions[k]];
      }
      int dest = bundle.registry->Evaluate(
          occ.function, vals, static_cast<int>(occ.positions.size()));
      if (dest < 0 || dest >= bundle.num_processors) {
        return Status::OutOfRange(
            "fragmenting function assigned a tuple to processor " +
            std::to_string(dest) + " outside [0, " +
            std::to_string(bundle.num_processors) + ")");
      }
      result.fragments[dest].at(static_cast<int>(occ_idx))->Insert(t);
      ++result.fragment_rows[dest];
    }
  }
  return result;
}

DiscriminatingFunction MakeArbitraryFragmentation(const Relation& relation,
                                                  int num_processors,
                                                  uint64_t seed) {
  SplitMix64 rng(seed);
  std::unordered_map<Tuple, int, TupleHash> table;
  table.reserve(relation.size());
  for (size_t row = 0; row < relation.size(); ++row) {
    table.emplace(relation.row(row),
                  static_cast<int>(rng.NextBelow(num_processors)));
  }
  return DiscriminatingFunction::TableLookup(std::move(table),
                                             num_processors);
}

}  // namespace pdatalog
