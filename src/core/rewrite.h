// Program rewriting: from a Datalog program to the per-processor
// programs of the paper's parallelization schemes.
//
// One parameterized transformation covers all three schemes:
//
//   * Section 3 (Q_i, non-redundant, linear sirups): every rule gets a
//     `h(v(r)) = i` constraint on its processing rule, and tuples are
//     routed by the same shared h. RewriteLinearSirup().
//
//   * Section 7 (T_i, arbitrary programs): same construction applied
//     per rule, with a discriminating sequence and function chosen for
//     each rule. RewriteGeneral().
//
//   * Section 6 (R_i, redundancy/communication trade-off): processing
//     rules carry NO constraint, and each processor routes its outputs
//     with its own h_i. RewriteTradeoff().
//
// The per-processor program is materialized as a real, printable Datalog
// Program over decorated predicates (`t_out`, `t_in`) with hash
// constraints, exactly as the paper presents the rewriting. Sending and
// receiving rules are represented as SendSpecs: the engine implements
// the channel predicates t_ij natively.
#ifndef PDATALOG_CORE_REWRITE_H_
#define PDATALOG_CORE_REWRITE_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/discriminating.h"
#include "datalog/analysis.h"
#include "datalog/validate.h"
#include "util/status.h"

namespace pdatalog {

// One sending rule `t_ij(Y) :- t_out^i(Y), h(v(r)) = j` (Section 3).
// `pattern` is the recursive body atom the tuples will feed at the
// receiver; a tuple is routed by matching it against the pattern and
// hashing the bindings of `vars`.
//
// If some var of `vars` does not occur in the pattern, the sender cannot
// evaluate the constraint and must broadcast (the paper's Example 2:
// "all tuples in anc_out^i are communicated to processor j").
struct SendSpec {
  Symbol predicate = kInvalidSymbol;  // derived predicate being sent
  Atom pattern;                       // recursive body atom (args = Y)
  std::vector<Symbol> vars;           // discriminating sequence v(r)
  int function = -1;                  // registry id of h
  bool determined = false;            // vars all occur in pattern
  // For determined specs: var_positions[k] = first column of `pattern`
  // holding vars[k].
  std::vector<int> var_positions;
};

// How one base-atom occurrence of the local program is accessed at each
// processor: the paper's b_k^i (Section 3) / D_in^i (Section 7).
struct BaseOccurrence {
  int rule_index = -1;  // into the local program's rules
  int body_index = -1;  // into that rule's body

  enum class Access { kReplicated, kFragment };
  Access access = Access::kReplicated;

  // kFragment: h(v(r)) evaluated on these columns of the base atom must
  // equal the processor id.
  int function = -1;
  std::vector<int> positions;
};

// The result of rewriting: everything the parallel engine needs.
struct RewriteBundle {
  int num_processors = 0;

  std::shared_ptr<DiscriminatingRegistry> registry;

  // per_processor[i] = the program Q_i/R_i/T_i (init + processing rules
  // only; sending/receiving/pooling are engine-native). All processors
  // share rule structure; only constraint targets differ.
  std::vector<Program> per_processor;

  // sends[i] = sending rules evaluated at processor i. Identical across
  // processors for the Q/T schemes; per-processor for the R scheme.
  std::vector<std::vector<SendSpec>> sends;

  // Access decision for every base atom occurrence of the local rules.
  std::vector<BaseOccurrence> base_occurrences;

  // Original derived predicates, and their decorated names.
  std::vector<Symbol> derived;
  std::unordered_map<Symbol, Symbol> out_name;  // t -> t_out
  std::unordered_map<Symbol, Symbol> in_name;   // t -> t_in
  std::unordered_map<Symbol, int> arity;        // original predicates

  // True when every processing rule carries its h(v(r))=i constraint;
  // then the parallel execution is semi-naive non-redundant (Thm 2/6).
  bool non_redundant = false;
};

// --- Scheme constructors ---------------------------------------------

// Section 3. `v_r` / `v_e` are the discriminating sequences for the
// recursive and exit rules; `h` is shared by all processors (and used
// as h' unless `h_prime` is provided). `fragment_bases` enables the
// b_k^i fragmentation when the sequence's variables appear in the atom.
struct LinearSchemeOptions {
  std::vector<Symbol> v_r;
  std::vector<Symbol> v_e;
  DiscriminatingFunction h;
  std::optional<DiscriminatingFunction> h_prime;
  bool fragment_bases = true;
};

StatusOr<RewriteBundle> RewriteLinearSirup(const Program& program,
                                           const ProgramInfo& info,
                                           const LinearSirup& sirup,
                                           int num_processors,
                                           const LinearSchemeOptions& options);

// Section 7. One spec per rule of `program` (same order).
struct GeneralRuleSpec {
  std::vector<Symbol> vars;  // v(r_k); must occur in the rule body
  DiscriminatingFunction h;
};

StatusOr<RewriteBundle> RewriteGeneral(
    const Program& program, const ProgramInfo& info, int num_processors,
    const std::vector<GeneralRuleSpec>& rule_specs, bool fragment_bases = true);

// Section 6. Processing rules carry no constraint; processor i routes
// outputs with its own h_i. Requires every v_r variable to occur in the
// recursive body atom (the section's stated restriction). With all
// h_i = Constant(i) this is the no-communication scheme of [18]; with
// all h_i equal to one shared h it coincides with Section 3.
struct TradeoffOptions {
  std::vector<Symbol> v_r;
  std::vector<Symbol> v_e;
  DiscriminatingFunction h_prime;             // splits the exit rule
  std::vector<DiscriminatingFunction> h_i;    // size = num_processors
};

StatusOr<RewriteBundle> RewriteTradeoff(const Program& program,
                                        const ProgramInfo& info,
                                        const LinearSirup& sirup,
                                        int num_processors,
                                        const TradeoffOptions& options);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_REWRITE_H_
