// Profile-guided scheme selection: the "compiler" of the paper's
// Section 8 ("the particular scheme used in a compiler may be dependent
// on the underlying characteristics of the architecture, e.g.,
// computation cost as opposed to communication cost").
//
// Given a linear sirup, an input database, and the architecture's cost
// parameters, the advisor enumerates candidate parallelizations,
// executes each deterministically, replays the round logs through the
// BSP cost model, and returns the candidates ranked by modeled makespan
// together with their qualitative properties (communication-free?
// deterministic single-destination sends? fragmentable bases?).
#ifndef PDATALOG_CORE_ADVISOR_H_
#define PDATALOG_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/engine.h"
#include "core/rewrite.h"
#include "datalog/analysis.h"
#include "util/status.h"

namespace pdatalog {

struct AdvisorOptions {
  int num_processors = 4;
  uint64_t seed = 0x5eed;
  CostParams cost;           // architecture model
  // Also evaluate the Section 6 spectrum at these keep-fractions.
  std::vector<double> tradeoff_rhos = {1.0};
  // Include the Example 2 scheme (arbitrary fragmentation + broadcast);
  // needs facts for the sirup's base relation.
  bool include_arbitrary_fragmentation = true;
};

struct SchemeCandidate {
  std::string name;          // e.g. "theorem3<Y>", "hash<Z>", "tradeoff(1.0)"
  std::string description;
  // Qualitative properties.
  bool communication_free = false;
  bool determined_sends = false;  // no broadcasts possible
  bool non_redundant = false;
  // Measured on the given database (deterministic round-robin run).
  uint64_t firings = 0;
  uint64_t cross_messages = 0;
  double makespan = 0.0;     // BSP cost under AdvisorOptions::cost
  double load_imbalance = 1.0;  // max/mean firings across processors
};

struct AdvisorReport {
  // Candidates sorted by ascending makespan; front() is the advice.
  std::vector<SchemeCandidate> candidates;

  const SchemeCandidate& best() const { return candidates.front(); }

  // Rendered ranking table.
  std::string ToString() const;
};

// Profiles candidate schemes for `sirup` over the facts in `edb`.
// `edb` gains indexes but no tuples. Fails if no candidate applies.
StatusOr<AdvisorReport> AdviseScheme(const Program& program,
                                     const ProgramInfo& info,
                                     const LinearSirup& sirup, Database* edb,
                                     const AdvisorOptions& options = {});

}  // namespace pdatalog

#endif  // PDATALOG_CORE_ADVISOR_H_
