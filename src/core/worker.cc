#include "core/worker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "core/wire.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace pdatalog {

StatusOr<std::unique_ptr<Worker>> Worker::Create(
    const RewriteBundle* bundle, int id, const Database* edb,
    std::unordered_map<int, std::unique_ptr<Relation>> fragments,
    CommNetwork* network, TerminationDetector* detector) {
  std::unique_ptr<Worker> worker(new Worker(
      bundle, id, edb, std::move(fragments), network, detector));
  Status status = worker->Setup();
  if (!status.ok()) return status;
  return worker;
}

Worker::Worker(const RewriteBundle* bundle, int id, const Database* edb,
               std::unordered_map<int, std::unique_ptr<Relation>> fragments,
               CommNetwork* network, TerminationDetector* detector)
    : bundle_(bundle),
      id_(id),
      num_processors_(bundle->num_processors),
      edb_(edb),
      network_(network),
      detector_(detector),
      fragments_(std::move(fragments)) {}

Status Worker::Setup() {
  local_program_ = &bundle_->per_processor[id_];

  // Local classification: t_in predicates are fed by the channels, so
  // the semi-naive compiler must treat them as delta-tracked (derived).
  ProgramInfo local_info;
  PDATALOG_RETURN_IF_ERROR(Validate(*local_program_, &local_info));
  for (const auto& [orig, in_sym] : bundle_->in_name) {
    if (local_info.arity.find(in_sym) == local_info.arity.end()) {
      // This t_in never occurs in the local program (no rule consumes
      // the predicate); register it so receives still have a home.
      local_info.arity[in_sym] = bundle_->arity.at(orig);
      local_info.predicates.push_back(in_sym);
    }
    local_info.base.erase(in_sym);
    local_info.derived.insert(in_sym);
  }

  StatusOr<CompiledProgram> compiled =
      CompiledProgram::Compile(*local_program_, local_info);
  if (!compiled.ok()) return compiled.status();
  compiled_ = std::move(*compiled);

  // Local t_out / t_in relations, plus a buffered inserter per t_out
  // (the head relations the processing rules fire into).
  for (Symbol p : bundle_->derived) {
    int arity = bundle_->arity.at(p);
    Symbol out_sym = bundle_->out_name.at(p);
    Relation& out = local_db_.GetOrCreate(out_sym, arity);
    local_db_.GetOrCreate(bundle_->in_name.at(p), arity);
    in_old_end_[bundle_->in_name.at(p)] = 0;
    out_sent_end_[out_sym] = 0;
    head_inserters_.try_emplace(out_sym, &out);
  }

  // Occurrence lookup for fragment resolution.
  std::unordered_map<int64_t, int> occ_by_pos;
  for (size_t k = 0; k < bundle_->base_occurrences.size(); ++k) {
    const BaseOccurrence& occ = bundle_->base_occurrences[k];
    occ_by_pos[(static_cast<int64_t>(occ.rule_index) << 32) |
               occ.body_index] = static_cast<int>(k);
  }

  // Resolve every body atom to its data source.
  body_sources_.resize(local_program_->rules.size());
  for (size_t r = 0; r < local_program_->rules.size(); ++r) {
    const Rule& rule = local_program_->rules[r];
    body_sources_[r].resize(rule.body.size());
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const Atom& atom = rule.body[b];
      if (Relation* local = local_db_.Find(atom.predicate)) {
        body_sources_[r][b] = local;  // t_in relation
        continue;
      }
      auto occ_it =
          occ_by_pos.find((static_cast<int64_t>(r) << 32) | b);
      assert(occ_it != occ_by_pos.end());
      const BaseOccurrence& occ = bundle_->base_occurrences[occ_it->second];
      if (occ.access == BaseOccurrence::Access::kFragment) {
        auto frag_it = fragments_.find(occ_it->second);
        assert(frag_it != fragments_.end());
        body_sources_[r][b] = frag_it->second.get();
      } else {
        const Relation* shared = edb_->Find(atom.predicate);
        if (shared == nullptr) {
          // No facts for this base predicate: use an empty local one.
          shared = &local_db_.GetOrCreate(atom.predicate,
                                          bundle_->arity.at(atom.predicate));
        }
        body_sources_[r][b] = shared;
      }
    }
  }

  // One accumulation block per (destination, derived predicate); the
  // slot order follows bundle_->derived so SendTuple indexes a flat
  // array instead of hashing.
  num_derived_ = static_cast<int>(bundle_->derived.size());
  pred_slot_.reserve(bundle_->derived.size());
  for (size_t k = 0; k < bundle_->derived.size(); ++k) {
    pred_slot_[bundle_->derived[k]] = static_cast<int>(k);
  }
  send_blocks_.resize(static_cast<size_t>(num_processors_) * num_derived_);

  // Precompile the sending rules: per-predicate routing tables with
  // resolved variable positions and flattened pattern checks, so
  // SendTuple never re-scans the spec list. set_rebalance() rebuilds
  // the router around its per-worker view.
  constraint_eval_ = bundle_->registry.get();
  router_ =
      TupleRouter(bundle_->sends[id_], num_processors_, constraint_eval_);

  // Indexes on static sources (fragments and empty locals); shared EDB
  // relations are pre-indexed by the engine before workers start.
  for (const auto& [pred, mask] : compiled_.required_indexes()) {
    for (size_t r = 0; r < local_program_->rules.size(); ++r) {
      const Rule& rule = local_program_->rules[r];
      for (size_t b = 0; b < rule.body.size(); ++b) {
        if (rule.body[b].predicate != pred) continue;
        // const_cast is safe here: fragments and local relations belong
        // to this worker and are only indexed before/between rounds.
        Relation* src = const_cast<Relation*>(body_sources_[r][b]);
        bool is_in_rel = in_old_end_.count(pred) > 0;
        bool is_shared_edb = edb_->Find(pred) == src;
        if (!is_in_rel && !is_shared_edb) src->EnsureIndex(mask);
      }
    }
  }
  return Status::Ok();
}

void Worker::set_rebalance(RebalanceCoordinator* coordinator) {
  rebalance_ = coordinator;
  if (coordinator == nullptr) return;
  remap_view_ = coordinator->MakeView(id_);
  constraint_eval_ = remap_view_.get();
  router_ =
      TupleRouter(bundle_->sends[id_], num_processors_, constraint_eval_);
}

void Worker::set_trace(TraceRing* ring) {
  trace_ = ring;
  // Bulk ingests into the t_in relations happen on this worker's thread
  // (DrainChannels), so they may share the worker's ring — and, when
  // tracing is on, the worker's ingest histograms.
  for (const auto& [in_sym, unused] : in_old_end_) {
    (void)unused;
    Relation* rel = local_db_.Find(in_sym);
    rel->set_trace(ring);
    rel->set_insert_profile(ring != nullptr ? &profile_.insert_ns : nullptr);
    rel->set_insert_tuples(ring != nullptr ? &profile_.insert_tuples
                                           : nullptr);
  }
  // The batch join kernel records surviving keys per probe batch.
  join_scratch_.probe_batch =
      ring != nullptr ? &profile_.probe_batch : nullptr;
}

const Relation& Worker::OutputRelation(Symbol p) const {
  const Relation* rel = local_db_.Find(bundle_->out_name.at(p));
  assert(rel != nullptr);
  return *rel;
}

void Worker::EnsureLocalIndexes() {
  for (const auto& [pred, mask] : compiled_.required_indexes()) {
    if (in_old_end_.count(pred) == 0) continue;  // only t_in grows
    local_db_.Find(pred)->EnsureIndex(mask);
  }
}

Status Worker::Init() {
  TraceScope span(trace_, TracePhase::kInit);
  round_logs_.emplace_back();
  current_log_ = &round_logs_.back();
  current_log_->sent_to.assign(num_processors_, 0);
  ExecStats es;
  for (size_t r = 0; r < local_program_->rules.size(); ++r) {
    const auto& variants = compiled_.rules()[r];
    if (variants.has_derived_body) continue;
    const Rule& rule = local_program_->rules[r];
    BatchInserter& inserter = head_inserters_.at(rule.head.predicate);
    std::vector<AtomInput> inputs(rule.body.size());
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const Relation* src = body_sources_[r][b];
      inputs[b] = AtomInput{src, 0, src->size()};
    }
    JoinExecutor::Execute(
        variants.full, inputs, constraint_eval_,
        [&](const Value* values, int n) {
          stats_.out_inserted += inserter.Push(values, n);
        },
        &es, &join_scratch_);
    stats_.out_inserted += inserter.Flush();
  }
  stats_.firings += es.firings;
  stats_.rows_examined += es.rows_examined;
  stats_.batch_fallbacks += es.batch_fallbacks;
  current_log_->firings = es.firings;

  // Route the initial output delta (Section 3: tuples derived by the
  // initialization rule flow through the sending rules like any other).
  for (Symbol p : bundle_->derived) {
    Relation* out = local_db_.Find(bundle_->out_name.at(p));
    size_t& sent = out_sent_end_[bundle_->out_name.at(p)];
    SendNewRows(p, *out, sent, out->size());
    sent = out->size();
  }
  FlushSends();
  current_log_ = nullptr;
  return send_status_;
}

StatusOr<size_t> Worker::IngestBlock(const TupleBlock& block, int from) {
  auto in_it = bundle_->in_name.find(block.predicate);
  Relation* in_rel = in_it == bundle_->in_name.end()
                         ? nullptr
                         : local_db_.Find(in_it->second);
  if (in_rel == nullptr || in_rel->arity() != block.arity) {
    // A corrupted frame can pass the checksum only with probability
    // 2^-32, but a bug in the sending rules would land here too; both
    // must fail the run rather than feed wrong tuples to the fixpoint.
    return Status::Internal(
        "worker " + std::to_string(id_) +
        ": received tuple block for unknown predicate id " +
        std::to_string(block.predicate) + " (arity " +
        std::to_string(block.arity) + ") from processor " +
        std::to_string(from));
  }
  stats_.in_inserted += in_rel->InsertBlock(
      block.values.data(), block.arity, block.count, block.columnar);
  return static_cast<size_t>(block.count);
}

StatusOr<size_t> Worker::DrainChannels() {
  TraceScope span(trace_, TracePhase::kDrain, 0,
                  trace_ != nullptr ? &profile_.drain_ns : nullptr);
  size_t total = 0;
  size_t frames = 0;
  for (int j = 0; j < num_processors_; ++j) {
    Channel& channel = network_->channel(j, id_);
    block_buffer_.clear();
    channel.DrainBlocks(&block_buffer_);
    frames += block_buffer_.size();
    for (const TupleBlock& block : block_buffer_) {
      StatusOr<size_t> n = IngestBlock(block, j);
      if (!n.ok()) return n.status();
      total += *n;
    }
    if (serialize_messages_) {
      byte_buffer_.clear();
      channel.DrainBytes(&byte_buffer_);
      frames += byte_buffer_.size();
      // Count decoded tuples, not drained frames: the termination
      // detector's receive counter must agree with the block-granular
      // CountSend(n) on the send side.
      for (const std::vector<uint8_t>& bytes : byte_buffer_) {
        size_t offset = 0;
        while (offset < bytes.size()) {
          Status decoded = DecodeBlockInto(bytes, &offset, &decode_block_);
          if (!decoded.ok()) {
            return Status(decoded.code(),
                          "worker " + std::to_string(id_) +
                              ": bad frame on channel " + std::to_string(j) +
                              "->" + std::to_string(id_) + ": " +
                              decoded.message());
          }
          StatusOr<size_t> n = IngestBlock(decode_block_, j);
          if (!n.ok()) return n.status();
          total += *n;
        }
      }
    }
  }
  // Queue depth observed by this drain (frames across all inbound
  // channels, zero included — idle polls drain too, and an empty drain
  // is a real queue-depth sample).
  if (trace_ != nullptr) {
    profile_.queue_frames.Record(static_cast<uint64_t>(frames));
  }
  if (total == 0) return size_t{0};
  detector_->CountReceive(id_, total);
  stats_.received += total;
  pending_received_ += total;
  return total;
}

void Worker::ProcessRound() {
  ++stats_.rounds;
  if (trace_ != nullptr) {
    trace_->Instant(TracePhase::kRound, static_cast<uint32_t>(stats_.rounds));
  }
  round_logs_.emplace_back();
  current_log_ = &round_logs_.back();
  current_log_->sent_to.assign(num_processors_, 0);
  current_log_->received = pending_received_;
  pending_received_ = 0;

  // Freeze this round's delta windows.
  std::unordered_map<Symbol, size_t> cur_end;
  for (auto& [in_sym, old_end] : in_old_end_) {
    (void)old_end;
    cur_end[in_sym] = local_db_.Find(in_sym)->size();
  }
  EnsureLocalIndexes();

  ExecStats es;
  {
    TraceScope probe(trace_, TracePhase::kProbe,
                     static_cast<uint32_t>(stats_.rounds),
                     trace_ != nullptr ? &profile_.probe_ns : nullptr);
    for (size_t r = 0; r < local_program_->rules.size(); ++r) {
      const auto& variants = compiled_.rules()[r];
      if (!variants.has_derived_body) continue;
      const Rule& rule = local_program_->rules[r];
      BatchInserter& inserter = head_inserters_.at(rule.head.predicate);

      for (const auto& [delta_idx, delta_rule] : variants.deltas) {
        std::vector<AtomInput> inputs(rule.body.size());
        bool empty_delta = false;
        for (size_t b = 0; b < rule.body.size(); ++b) {
          const Atom& atom = rule.body[b];
          const Relation* src = body_sources_[r][b];
          auto old_it = in_old_end_.find(atom.predicate);
          if (old_it == in_old_end_.end()) {  // base atom
            inputs[b] = AtomInput{src, 0, src->size()};
            continue;
          }
          size_t old_end = old_it->second;
          size_t cur = cur_end.at(atom.predicate);
          if (static_cast<int>(b) == delta_idx) {
            inputs[b] = AtomInput{src, old_end, cur};
            if (old_end == cur) empty_delta = true;
          } else if (static_cast<int>(b) < delta_idx) {
            inputs[b] = AtomInput{src, 0, old_end};
          } else {
            inputs[b] = AtomInput{src, 0, cur};
          }
        }
        if (empty_delta) continue;
        JoinExecutor::Execute(
            delta_rule, inputs, constraint_eval_,
            [&](const Value* values, int n) {
              stats_.out_inserted += inserter.Push(values, n);
            },
            &es, &join_scratch_);
        stats_.out_inserted += inserter.Flush();
      }
    }
  }
  stats_.firings += es.firings;
  stats_.rows_examined += es.rows_examined;
  stats_.batch_fallbacks += es.batch_fallbacks;
  current_log_->firings = es.firings;

  // Send the new outputs, then advance the t_in watermarks.
  for (Symbol p : bundle_->derived) {
    Relation* out = local_db_.Find(bundle_->out_name.at(p));
    size_t& sent = out_sent_end_[bundle_->out_name.at(p)];
    SendNewRows(p, *out, sent, out->size());
    sent = out->size();
  }
  for (auto& [in_sym, old_end] : in_old_end_) {
    old_end = cur_end.at(in_sym);
  }
  FlushSends();
  current_log_ = nullptr;
}

void Worker::FlushBlock(int dest, TupleBlock* block) {
  if (block->count == 0) return;
  if (trace_ != nullptr) {
    profile_.block_tuples.Record(block->count);
  }
  // Count the whole block before it becomes visible to the receiver
  // (Mattern's rule), in one detector call instead of one per tuple.
  detector_->CountSend(id_, block->count);
  ++stats_.frames;
  Channel& channel = network_->channel(id_, dest);
  if (serialize_messages_) {
    std::vector<uint8_t> bytes;
    Status encoded;
    {
      TraceScope enc(trace_, TracePhase::kEncode, block->count);
      encoded = EncodeBlock(*block, &bytes);
    }
    if (!encoded.ok()) {
      // Plan validation rejects arity > kMaxWireArity up front, so
      // this is defensive. The block is not enqueued; the latched
      // status aborts the run before quiescence is ever declared.
      if (send_status_.ok()) send_status_ = std::move(encoded);
      block->Reset();
      return;
    }
    channel.SendBytes(std::move(bytes), block->count);
  } else {
    channel.SendBlock(std::move(*block));
  }
  block->Reset();
}

void Worker::FlushSends() {
  TraceScope span(trace_, TracePhase::kFlush, 0,
                  trace_ != nullptr ? &profile_.flush_ns : nullptr);
  for (int dest = 0; dest < num_processors_; ++dest) {
    for (int slot = 0; slot < num_derived_; ++slot) {
      FlushBlock(dest, &send_blocks_[static_cast<size_t>(dest) *
                                         num_derived_ +
                                     slot]);
    }
  }
}

void Worker::SendNewRows(Symbol pred, const Relation& out, size_t begin,
                         size_t end) {
  if (begin >= end) return;
  const int arity = out.arity();
  int slot;
  if (pred == last_pred_) {
    slot = last_slot_;
  } else {
    slot = pred_slot_.at(pred);
    last_pred_ = pred;
    last_slot_ = slot;
  }

  // Gather up to 256 rows out of the column store, route them in one
  // batch (one predicate lookup, per-row stamp dedup: the channel
  // predicate t_ij is a set, so a tuple travels each channel at most
  // once no matter how many sending rules select it), then append each
  // row to its destinations' accumulation blocks.
  constexpr size_t kSendBatch = 256;
  send_rows_.resize(kSendBatch * static_cast<size_t>(arity > 0 ? arity : 1));
  const ColumnStore& store = out.store();
  for (size_t base = begin; base < end; base += kSendBatch) {
    const uint32_t n =
        static_cast<uint32_t>(std::min(kSendBatch, end - base));
    for (uint32_t r = 0; r < n; ++r) {
      store.CopyRow(base + r,
                    send_rows_.data() + static_cast<size_t>(r) * arity);
    }
    dests_.clear();
    stats_.broadcasts += static_cast<uint64_t>(router_.RouteBatch(
        pred, send_rows_.data(), arity, n, &dests_, &route_offsets_));
    if (dests_.empty()) continue;
    for (uint32_t r = 0; r < n; ++r) {
      const Value* row = send_rows_.data() + static_cast<size_t>(r) * arity;
      for (uint32_t k = route_offsets_[r]; k < route_offsets_[r + 1]; ++k) {
        int dest = dests_[k];
        TupleBlock& block =
            send_blocks_[static_cast<size_t>(dest) * num_derived_ + slot];
        if (block.count == 0) {
          block.predicate = pred;
          block.arity = arity;
        }
        block.Append(row, arity);
        if (current_log_ != nullptr) ++current_log_->sent_to[dest];
        if (dest == id_) {
          ++stats_.sent_self;
        } else {
          ++stats_.sent_cross;
        }
        // Mid-round flush once the block is full, bounding buffered
        // bytes and letting the receiver overlap ingestion with our
        // round.
        if (block.count >= static_cast<uint32_t>(block_tuples_)) {
          FlushBlock(dest, &block);
        }
      }
    }
  }
}

StatusOr<bool> Worker::Step() {
  if (!send_status_.ok()) return send_status_;
  // Pull the rebalancer's override epochs forward before routing
  // anything this round: acceptance widens on publish, routing switches
  // only once every worker has acknowledged (see core/rebalance.h).
  if (rebalance_ != nullptr) rebalance_->Sync(id_, remap_view_.get());
  StatusOr<size_t> got = DrainChannels();
  if (!got.ok()) return got.status();
  bool has_delta = false;
  for (const auto& [in_sym, old_end] : in_old_end_) {
    if (old_end < local_db_.Find(in_sym)->size()) {
      has_delta = true;
      break;
    }
  }
  if (*got == 0 && !has_delta) return false;
  if (rebalance_ != nullptr) {
    Stopwatch round_watch;
    ProcessRound();
    rebalance_->ReportWindow(
        id_, static_cast<uint64_t>(round_watch.ElapsedSeconds() * 1e9),
        remap_view_.get());
  } else {
    ProcessRound();
  }
  if (!send_status_.ok()) return send_status_;
  return true;
}

size_t Worker::RetransmitUnacked() {
  size_t resent = 0;
  for (int dest = 0; dest < num_processors_; ++dest) {
    if (dest == id_) continue;
    resent += network_->channel(id_, dest).RetransmitUnacked();
  }
  if (trace_ != nullptr && resent > 0) {
    trace_->Instant(TracePhase::kRetransmit, static_cast<uint32_t>(resent));
  }
  return resent;
}

void Worker::DrainForStall() {
  if (in_stall_drain_) return;  // a drain can never block, but be safe
  in_stall_drain_ = true;
  StatusOr<size_t> got = DrainChannels();
  if (!got.ok() && send_status_.ok()) send_status_ = got.status();
  in_stall_drain_ = false;
}

namespace {

// Bounded backoff ladder for the idle poll loop, parameterized by the
// transport's IdleWaitPolicy: an optional busy-spin phase (SPSC rings —
// the producer publishes with one store, so data usually lands within
// a few hundred cycles), then yields (cheap wakeup while traffic is
// still flowing), then sleeps doubling from 1us up to the cap so an
// idle worker stops burning its core while termination latency stays
// well under a millisecond.
class IdleBackoff {
 public:
  explicit IdleBackoff(const IdleWaitPolicy& policy) : policy_(policy) {}

  void Pause() {
    if (spins_ < policy_.spin_polls) {
      ++spins_;
      CpuRelax();
      return;
    }
    if (yields_ < policy_.yield_polls) {
      ++yields_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    sleep_us_ = std::min<int64_t>(sleep_us_ * 2, policy_.max_sleep_us);
  }

  void Reset() {
    spins_ = 0;
    yields_ = 0;
    sleep_us_ = 1;
  }

 private:
  IdleWaitPolicy policy_;
  int spins_ = 0;
  int yields_ = 0;
  int64_t sleep_us_ = 1;
};

}  // namespace

Status Worker::RunLoop() {
  detector_->SetIdle(id_, false);
  Status init = Init();
  if (!init.ok()) {
    detector_->SetIdle(id_, true);
    detector_->Abort(init);
    return init;
  }
  IdleBackoff backoff(wait_policy_);
  uint64_t idle_polls = 0;
  while (true) {
    // A peer may have aborted (or detection may have completed) while
    // this worker was mid-round.
    if (detector_->terminated()) return detector_->run_status();
    StatusOr<bool> progressed = Step();
    if (!progressed.ok()) {
      detector_->SetIdle(id_, true);
      detector_->Abort(progressed.status());
      return progressed.status();
    }
    if (*progressed) {
      backoff.Reset();
      idle_polls = 0;
      continue;
    }
    detector_->SetIdle(id_, true);
    TraceScope idle(trace_, TracePhase::kIdle, 0,
                    trace_ != nullptr ? &profile_.idle_ns : nullptr);
    while (true) {
      // An idle worker must keep acknowledging rebalance epochs: a
      // publish cannot commit until every worker — including ones with
      // no pending work — has widened its acceptance set.
      if (rebalance_ != nullptr) rebalance_->Sync(id_, remap_view_.get());
      if (detector_->TryDetect()) return detector_->run_status();
      bool pending = false;
      for (int j = 0; j < num_processors_; ++j) {
        if (network_->channel(j, id_).HasPending()) {
          pending = true;
          break;
        }
      }
      if (pending) {
        detector_->SetIdle(id_, false);
        break;
      }
      ++idle_polls;
      // In retransmit mode an idle worker periodically re-sends its
      // unacknowledged frames; a dropped first transmission is thus
      // recovered without any negative-acknowledgement machinery.
      if (retransmit_ && (idle_polls & 7) == 0 && RetransmitUnacked() > 0) {
        backoff.Reset();
      }
      backoff.Pause();
    }
  }
}

}  // namespace pdatalog
