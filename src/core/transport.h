// The pluggable data-movement layer behind Channel (Section 3's
// point-to-point network made a first-class component). A Transport
// owns the in-flight frame queues of one directed channel and nothing
// else: accounting, flow instants, fault injection, retransmit, and
// checksums all stay in Channel, so every backend ships the same bytes
// with the same statistics.
//
// Contract (what Channel relies on, and what the engine guarantees):
//   - Exactly one sending worker and one receiving worker per channel.
//     Send* is called only by the sender's thread, Drain* only by the
//     receiver's; HasPending may be called from any thread.
//   - FIFO per channel and lossless: a sent frame is drained exactly
//     once, in send order. Backpressure may block or buffer, never
//     drop.
//   - A frame published by Send* happens-before its observation by
//     Drain* (the mutex backend gets this from lock ordering, the ring
//     backend from release/acquire index publication), so a trace
//     instant recorded before the send has an earlier timestamp than
//     one recorded after the matching drain.
//
// Backends:
//   kMutex — the original lock-append queue; reference implementation
//     and the substrate the fault/retransmit slow path always uses.
//   kSpsc — a pair of bounded lock-free rings (core/spsc_ring.h), one
//     for block frames and one for serialized byte frames. Bounded
//     means backpressure: in threaded runs a full ring spins briefly,
//     then repeatedly invokes a stall handler (which drains the
//     *sender's own* inbound channels — cycles of full rings would
//     otherwise deadlock — and reports whether the run is still live),
//     then parks in short sleeps. In the single-threaded round-robin
//     scheduler blocking can never resolve, so the engine configures
//     the ring in non-blocking mode and overflow diverts to an
//     unbounded spillway; a sticky rule (once spilling, keep spilling
//     until the receiver has fully emptied the spillway) preserves
//     FIFO across the diversion.
#ifndef PDATALOG_CORE_TRANSPORT_H_
#define PDATALOG_CORE_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/channel.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pdatalog {

// One spin-wait poll: tells the core we're busy-waiting (pause/yield
// instruction) without giving up the timeslice.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

enum class TransportKind {
  kMutex,
  kSpsc,
};

const char* TransportKindName(TransportKind kind);
// Accepts "mutex" or "spsc"; returns false on anything else.
bool ParseTransportKind(std::string_view name, TransportKind* out);

struct TransportOptions {
  // Ring capacity in frames (rounded up to a power of two). 0 means
  // DefaultRingFrames(P). Ignored by the mutex backend.
  size_t ring_frames = 0;
  // Blocking backpressure (threaded scheduler). false = overflow
  // spillway (round-robin scheduler, where blocking cannot resolve).
  bool blocking = true;
  // Blocking-mode wait ladder: busy polls, then yields, then bounded
  // sleeps (microseconds, doubling from 1).
  int spin_polls = 64;
  int yield_polls = 16;
  int64_t max_sleep_us = 256;
};

// P*P channels own two rings each, so per-ring capacity shrinks as the
// topology grows to keep the slot memory bounded.
size_t DefaultRingFrames(int num_processors);

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  // Sender's thread only.
  virtual void SendBlock(TupleBlock block) = 0;
  // Batch publication: all `count` blocks become visible to the
  // receiver together where the backend supports it (the SPSC ring
  // publishes a whole batch with one index store).
  virtual void SendBlocks(TupleBlock* blocks, size_t count) = 0;
  virtual void SendBytes(std::vector<uint8_t> bytes) = 0;

  // Receiver's thread only. Append in FIFO order; return frames moved.
  virtual size_t DrainBlocks(std::vector<TupleBlock>* out) = 0;
  virtual size_t DrainBytes(std::vector<std::vector<uint8_t>>* out) = 0;

  // Any thread; conservative snapshot.
  virtual bool HasPending() const = 0;

  // Invoked repeatedly while a blocking send waits for ring space.
  // Returns true to keep waiting. The engine installs a handler that
  // drains the sending worker's inbound channels (breaking backpressure
  // cycles) and returns false once the run is aborting — the frame is
  // then diverted to the unbounded spillway instead of being dropped,
  // so the lossless contract holds even when the receiver has exited.
  using StallHandler = std::function<bool()>;
  virtual void set_stall_handler(StallHandler handler) {
    (void)handler;  // meaningless for non-blocking backends
  }
};

std::unique_ptr<Transport> MakeTransport(
    TransportKind kind, const TransportOptions& options = {});

// Installs a fresh transport of `kind` on every channel of `network`,
// self-channels included (a worker's route-to-self rides the same
// backend). ring_frames == 0 resolves to DefaultRingFrames(P).
void InstallTransports(CommNetwork* network, TransportKind kind,
                       TransportOptions options = {});

// Worker idle-loop wait parameters, derived from the transport. The
// SPSC backend earns a short busy-spin phase (the producer publishes
// with one store, so data usually arrives within a few hundred cycles);
// the mutex backend — and any run on the fault/retransmit slow path,
// where --faults delay mode deliberately stretches quiescence — keeps
// today's yield-then-sleep ladder with no spinning.
struct IdleWaitPolicy {
  int spin_polls = 0;        // busy polls before yielding
  int yield_polls = 16;      // yields before sleeping
  int64_t max_sleep_us = 256;  // sleep doubles from 1us up to this
};

IdleWaitPolicy MakeIdleWaitPolicy(TransportKind kind, bool slow_path);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_TRANSPORT_H_
