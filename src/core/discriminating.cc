#include "core/discriminating.h"

#include <algorithm>
#include <cassert>

namespace pdatalog {

DiscriminatingFunction DiscriminatingFunction::UniformHash(int num_processors,
                                                           uint64_t seed) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kUniformHash;
  fn.num_processors = num_processors;
  fn.seed = seed;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::SymmetricHash(
    int num_processors, uint64_t seed) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kSymmetricHash;
  fn.num_processors = num_processors;
  fn.seed = seed;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::Linear(std::vector<int> coeffs,
                                                      uint64_t seed) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kLinear;
  fn.coeffs = std::move(coeffs);
  fn.seed = seed;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::TableLookup(
    std::unordered_map<Tuple, int, TupleHash> table, int num_processors) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kTableLookup;
  fn.table = std::move(table);
  fn.num_processors = num_processors;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::Constant(int value) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kConstant;
  fn.constant = value;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::KeepOrHash(
    int owner, double keep_probability, int num_processors, uint64_t seed) {
  DiscriminatingFunction fn;
  fn.kind = Kind::kKeepOrHash;
  fn.constant = owner;
  fn.keep_probability = keep_probability;
  fn.num_processors = num_processors;
  fn.seed = seed;
  return fn;
}

DiscriminatingFunction DiscriminatingFunction::Custom(
    std::function<int(const Value*, int)> fn, int num_processors) {
  DiscriminatingFunction f;
  f.kind = Kind::kCustom;
  f.custom = std::move(fn);
  f.num_processors = num_processors;
  return f;
}

DiscriminatingFunction DiscriminatingFunction::Remapped(
    const DiscriminatingFunction& base, uint32_t num_buckets,
    int local_owner) {
  assert(base.kind == Kind::kUniformHash ||
         base.kind == Kind::kSymmetricHash);
  assert(base.num_processors > 0 && num_buckets > 0 &&
         num_buckets % static_cast<uint32_t>(base.num_processors) == 0);
  DiscriminatingFunction fn;
  fn.kind = Kind::kRemapped;
  fn.base_kind = base.kind;
  fn.num_processors = base.num_processors;
  fn.seed = base.seed;
  fn.num_buckets = num_buckets;
  fn.constant = local_owner;
  return fn;
}

uint64_t DiscriminatingFunction::RawHash(const Value* values, int n) const {
  Kind k = kind == Kind::kRemapped ? base_kind : kind;
  switch (k) {
    case Kind::kUniformHash: {
      uint64_t h = seed;
      for (int i = 0; i < n; ++i) h = HashCombine(h, values[i]);
      return h;
    }
    case Kind::kSymmetricHash: {
      // XOR of per-value mixes: invariant under permutation of the
      // sequence, as required by the Theorem 3 construction.
      uint64_t h = 0;
      for (int i = 0; i < n; ++i) h ^= Mix64(values[i] ^ seed);
      return h;
    }
    default:
      assert(false && "RawHash is only defined for the hash kinds");
      return 0;
  }
}

int DiscriminatingFunction::Evaluate(const Value* values, int n) const {
  switch (kind) {
    case Kind::kUniformHash:
    case Kind::kSymmetricHash: {
      if (num_processors <= 0) return 0;  // malformed; keep % defined
      return static_cast<int>(RawHash(values, n) %
                              static_cast<uint64_t>(num_processors));
    }
    case Kind::kLinear: {
      assert(n == static_cast<int>(coeffs.size()));
      int sum = 0;
      for (int i = 0; i < n; ++i) sum += coeffs[i] * G(values[i]);
      if (!remap.empty()) {
        auto it = remap.find(sum);
        // A raw value outside the remap means the remap was built for a
        // different coefficient vector (ValidateFunctions rejects such
        // bundles up front). Map it to processor 0 instead of
        // dereferencing remap.end() — the old debug assert was
        // undefined behavior in release builds.
        return it == remap.end() ? 0 : it->second;
      }
      return sum;
    }
    case Kind::kTableLookup: {
      auto it = table.find(Tuple(values, n));
      if (it != table.end()) return it->second;
      if (num_processors <= 0) return 0;
      uint64_t h = seed;
      for (int i = 0; i < n; ++i) h = HashCombine(h, values[i]);
      return static_cast<int>(h % static_cast<uint64_t>(num_processors));
    }
    case Kind::kConstant:
      return constant;
    case Kind::kCustom:
      assert(custom != nullptr);
      return custom(values, n);
    case Kind::kKeepOrHash: {
      // Deterministic coin from the tuple itself: every processor that
      // sees the same tuple makes the same keep/forward decision.
      if (num_processors <= 0) return 0;
      uint64_t mix = Mix64(seed);
      for (int i = 0; i < n; ++i) mix = HashCombine(mix, values[i]);
      double coin =
          static_cast<double>(mix >> 11) * (1.0 / 9007199254740992.0);
      if (coin < keep_probability) return constant;
      uint64_t u = Mix64(mix ^ 0xabcdefULL);
      return static_cast<int>(u % static_cast<uint64_t>(num_processors));
    }
    case Kind::kRemapped: {
      if (num_processors <= 0 || num_buckets == 0) return 0;
      uint32_t bucket = BucketOf(values, n);
      auto it = bucket_overrides.find(bucket);
      if (it == bucket_overrides.end()) {
        // num_buckets is a multiple of num_processors, so this equals
        // the base hash's RawHash % num_processors: an unmoved bucket
        // routes exactly where the base function would.
        return static_cast<int>(bucket %
                                static_cast<uint32_t>(num_processors));
      }
      return it->second == kKeepLocalDest ? constant : it->second;
    }
  }
  return 0;
}

std::vector<int> LinearAchievableValues(const std::vector<int>& coeffs) {
  std::vector<int> values = {0};
  for (int c : coeffs) {
    size_t n = values.size();
    for (size_t i = 0; i < n; ++i) values.push_back(values[i] + c);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

DiscriminatingFunction WithDenseRemap(const DiscriminatingFunction& linear) {
  assert(linear.kind == DiscriminatingFunction::Kind::kLinear);
  DiscriminatingFunction fn = linear;
  std::vector<int> values = LinearAchievableValues(fn.coeffs);
  fn.remap.clear();
  for (size_t i = 0; i < values.size(); ++i) {
    fn.remap[values[i]] = static_cast<int>(i);
  }
  fn.num_processors = static_cast<int>(values.size());
  return fn;
}

int DiscriminatingRegistry::Register(DiscriminatingFunction fn) {
  functions_.push_back(std::move(fn));
  return static_cast<int>(functions_.size() - 1);
}

int DiscriminatingRegistry::Evaluate(int function, const Value* values,
                                     int n) const {
  assert(function >= 0 && function < size());
  return functions_[function].Evaluate(values, n);
}

}  // namespace pdatalog
