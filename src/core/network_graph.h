// Network-graph derivation (Section 5): which processor pairs can ever
// need to communicate, for linear discriminating functions.
//
// For h(a_1..a_k) = sum_l coeffs[l] * g(a_l) with g an *arbitrary*
// function from constants to {0,1}, a tuple's source and destination
// processors are linear forms over the unknown g-values of the tuple's
// columns (and of the producer's free variables). Enumerating all 0/1
// assignments of those unknowns — the paper's equation systems (1)+(3)
// and (4)+(5) — yields exactly the channels that some database can
// exercise; the result is the minimal network graph (Figures 3 and 4).
#ifndef PDATALOG_CORE_NETWORK_GRAPH_H_
#define PDATALOG_CORE_NETWORK_GRAPH_H_

#include <string>
#include <vector>

#include "datalog/analysis.h"
#include "util/status.h"

namespace pdatalog {

struct NetworkGraph {
  // All achievable h values, ascending: the processor set P. (The ids
  // are raw linear-form values, e.g. {-1, 0, 1, 2} in Example 7.)
  std::vector<int> processors;

  // Channels that some input database exercises, as (from, to) pairs of
  // raw processor ids. rec_edges come from tuples produced by the
  // recursive rule, exit_edges from tuples produced by the exit rule;
  // edges is their union.
  std::vector<std::pair<int, int>> edges;
  std::vector<std::pair<int, int>> rec_edges;
  std::vector<std::pair<int, int>> exit_edges;

  bool HasEdge(int from, int to) const;

  // True iff every edge is a self-loop: the compile-time proof that the
  // chosen discriminating sequence needs no interconnect.
  bool SelfLoopsOnly() const;

  // True iff every ordered processor pair is an edge (a full crossbar
  // is required).
  bool IsComplete() const;

  // Largest out-degree over processors (counting self-loops): an upper
  // bound on the fan-out a router must support.
  int MaxOutDegree() const;

  // Adjacency dump, e.g. "0 -> {0, 1}\n1 -> {2}".
  std::string ToString() const;
};

// Derives the minimal network graph of `sirup` under discriminating
// sequences `v_r` / `v_e` and linear discriminating functions with the
// given coefficient vectors (one coefficient per sequence position).
// Requirements: |coeffs_h| == |v_r|, |coeffs_h_prime| == |v_e|, every
// v_r variable occurs in the recursive rule, every v_e variable in the
// exit rule.
StatusOr<NetworkGraph> DeriveNetworkGraph(
    const LinearSirup& sirup, const std::vector<Symbol>& v_r,
    const std::vector<Symbol>& v_e, const std::vector<int>& coeffs_h,
    const std::vector<int>& coeffs_h_prime);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_NETWORK_GRAPH_H_
