#include "core/dataflow_graph.h"

#include <algorithm>

namespace pdatalog {

DataflowGraph DataflowGraph::Build(const LinearSirup& sirup) {
  DataflowGraph graph;
  graph.arity = sirup.arity();
  const std::vector<Symbol> x = sirup.HeadVarsX();
  const std::vector<Symbol> y = sirup.BodyVarsY();
  for (int i = 0; i < graph.arity; ++i) {
    if (y[i] == kInvalidSymbol) continue;  // constant position
    for (int j = 0; j < graph.arity; ++j) {
      if (y[i] == x[j]) graph.edges.emplace_back(i, j);
    }
  }
  for (const auto& [i, j] : graph.edges) {
    if (!std::count(graph.vertices.begin(), graph.vertices.end(), i)) {
      graph.vertices.push_back(i);
    }
    if (!std::count(graph.vertices.begin(), graph.vertices.end(), j)) {
      graph.vertices.push_back(j);
    }
  }
  std::sort(graph.vertices.begin(), graph.vertices.end());
  return graph;
}

namespace {

// DFS cycle search returning the vertices of one simple cycle.
bool FindCycleFrom(int v, const std::vector<std::vector<int>>& adj,
                   std::vector<int>* color, std::vector<int>* stack,
                   std::vector<int>* cycle) {
  (*color)[v] = 1;  // on stack
  stack->push_back(v);
  for (int w : adj[v]) {
    if ((*color)[w] == 1) {
      // Found a cycle: the stack suffix starting at w.
      auto it = std::find(stack->begin(), stack->end(), w);
      cycle->assign(it, stack->end());
      return true;
    }
    if ((*color)[w] == 0 &&
        FindCycleFrom(w, adj, color, stack, cycle)) {
      return true;
    }
  }
  stack->pop_back();
  (*color)[v] = 2;
  return false;
}

std::vector<int> FindCycle(int arity,
                           const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(arity);
  for (const auto& [i, j] : edges) adj[i].push_back(j);
  std::vector<int> color(arity, 0);
  std::vector<int> stack;
  std::vector<int> cycle;
  for (int v = 0; v < arity; ++v) {
    if (color[v] == 0 &&
        FindCycleFrom(v, adj, &color, &stack, &cycle)) {
      return cycle;
    }
  }
  return {};
}

}  // namespace

bool DataflowGraph::HasCycle() const {
  return !FindCycle(arity, edges).empty();
}

std::vector<int> DataflowGraph::CyclePositions() const {
  std::vector<int> cycle = FindCycle(arity, edges);
  std::sort(cycle.begin(), cycle.end());
  return cycle;
}

std::string DataflowGraph::ToString() const {
  std::string out;
  for (size_t k = 0; k < edges.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(edges[k].first + 1);
    out += " -> ";
    out += std::to_string(edges[k].second + 1);
  }
  return out;
}

StatusOr<LinearSchemeOptions> CommunicationFreeScheme(
    const LinearSirup& sirup, int num_processors, uint64_t seed) {
  DataflowGraph graph = DataflowGraph::Build(sirup);
  std::vector<int> cycle = graph.CyclePositions();
  if (cycle.empty()) {
    return Status::FailedPrecondition(
        "dataflow graph is acyclic; Theorem 3 does not apply");
  }

  const std::vector<Symbol> y = sirup.BodyVarsY();
  const std::vector<Symbol> z = sirup.ExitVarsZ();
  LinearSchemeOptions options;
  for (int pos : cycle) {
    if (y[pos] == kInvalidSymbol || z[pos] == kInvalidSymbol) {
      return Status::FailedPrecondition(
          "cycle position holds a constant; cannot build the "
          "communication-free sequence");
    }
    options.v_r.push_back(y[pos]);
    options.v_e.push_back(z[pos]);
  }
  // Along the cycle, the produced tuple's discriminating values are a
  // cyclic shift of the consumed tuple's, so the hash must be
  // order-invariant for the target processor to stay fixed.
  options.h = DiscriminatingFunction::SymmetricHash(num_processors, seed);
  return options;
}

}  // namespace pdatalog
