// Deterministic fault injection for the channel network.
//
// The paper's Section 3 architecture *assumes* reliable channels: "if a
// processor i puts some data in channel ij, then processor j receives
// this data without error within some finite time". This module lets
// tests and experiments violate that assumption on purpose — dropping,
// duplicating, reordering, corrupting, or delaying individual messages
// with seeded per-channel probabilities — so the runtime's failure
// behavior is defined and tested instead of accidental. See
// docs/architecture.md, "Failure model".
//
// Determinism: every channel owns its own injector seeded from
// (run seed, from, to), and decisions are drawn under the channel lock
// in send order. A channel has exactly one sending worker, so the
// decision sequence of a run is reproducible regardless of thread
// interleaving across channels.
#ifndef PDATALOG_CORE_FAULT_H_
#define PDATALOG_CORE_FAULT_H_

#include <cstddef>
#include <cstdint>

#include "util/hash.h"

namespace pdatalog {

// Per-message fault probabilities. All-zero (the default) disables
// injection entirely and keeps the channel fast path branch-free.
struct FaultSpec {
  double drop = 0;       // message vanishes (never enqueued)
  double duplicate = 0;  // message enqueued twice
  double reorder = 0;    // message jumps the queue (front insertion)
  double corrupt = 0;    // one payload byte flipped (serialized mode)
  double delay = 0;      // message held back for `delay_polls` drains
  int delay_polls = 3;   // maturity: drains before a delayed msg appears
  uint64_t seed = 0x5eed;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           delay > 0;
  }
  double total() const {
    return drop + duplicate + reorder + corrupt + delay;
  }
};

// Counts of injected events, kept per channel and aggregated per run so
// reports can show exactly what the injector did.
struct FaultCounters {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t delayed = 0;
  // Reliable-mode bookkeeping (not injector actions, but part of the
  // same fault story): retransmitted frames and receiver-side discards.
  uint64_t retransmitted = 0;
  uint64_t duplicates_discarded = 0;
  uint64_t corrupt_discarded = 0;

  bool any() const {
    return dropped || duplicated || reordered || corrupted || delayed ||
           retransmitted || duplicates_discarded || corrupt_discarded;
  }
  FaultCounters& operator+=(const FaultCounters& o) {
    dropped += o.dropped;
    duplicated += o.duplicated;
    reordered += o.reordered;
    corrupted += o.corrupted;
    delayed += o.delayed;
    retransmitted += o.retransmitted;
    duplicates_discarded += o.duplicates_discarded;
    corrupt_discarded += o.corrupt_discarded;
    return *this;
  }
};

// One channel's decision stream. Not thread-safe by itself; the owning
// channel draws decisions under its send lock.
class FaultInjector {
 public:
  enum class Action { kDeliver, kDrop, kDuplicate, kReorder, kCorrupt, kDelay };

  FaultInjector(const FaultSpec& spec, int from, int to)
      : spec_(spec),
        rng_(Mix64(spec.seed ^ (static_cast<uint64_t>(from) << 32) ^
                   static_cast<uint64_t>(to) ^ 0xfa017ULL)) {}

  // Draws the fate of the next message. Cumulative-threshold pick, so a
  // single uniform draw decides among all modes.
  Action Next() {
    double u = rng_.NextDouble();
    if (u < spec_.drop) return Action::kDrop;
    u -= spec_.drop;
    if (u < spec_.duplicate) return Action::kDuplicate;
    u -= spec_.duplicate;
    if (u < spec_.reorder) return Action::kReorder;
    u -= spec_.reorder;
    if (u < spec_.corrupt) return Action::kCorrupt;
    u -= spec_.corrupt;
    if (u < spec_.delay) return Action::kDelay;
    return Action::kDeliver;
  }

  // Which byte of a `size`-byte frame to flip for kCorrupt.
  size_t CorruptOffset(size_t size) {
    return size == 0 ? 0 : static_cast<size_t>(rng_.NextBelow(size));
  }

  int delay_polls() const { return spec_.delay_polls; }

 private:
  FaultSpec spec_;
  SplitMix64 rng_;
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_FAULT_H_
