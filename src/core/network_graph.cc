#include "core/network_graph.h"

#include <algorithm>
#include <unordered_map>

#include "core/discriminating.h"

namespace pdatalog {

namespace {

// Tiny union-find over g-value slots.
class SlotUnion {
 public:
  int NewSlot() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int Find(int a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  int size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
};

// Assigns one slot per variable of one rule binding, merging a slot
// with the tuple-column slot x_q wherever the term occupies column q of
// `anchor` (the atom bound to the communicated tuple). Variables get
// per-binding slots (production and consumption are distinct firings);
// constants get globally shared slots, since g(constant) is one value
// no matter which binding mentions the constant.
class BindingSlots {
 public:
  BindingSlots(SlotUnion* uf, std::unordered_map<Symbol, int>* const_slots,
               const std::vector<int>& column_slots, const Atom& anchor)
      : uf_(uf), const_slots_(const_slots) {
    for (size_t q = 0; q < anchor.args.size(); ++q) {
      const Term& t = anchor.args[q];
      uf_->Union(SlotFor(t), column_slots[q]);
    }
  }

  // Slot for a term of this rule binding.
  int SlotFor(const Term& t) {
    auto& slots = t.is_const() ? *const_slots_ : var_slots_;
    auto it = slots.find(t.sym);
    if (it != slots.end()) return it->second;
    int slot = uf_->NewSlot();
    slots.emplace(t.sym, slot);
    return slot;
  }

  int SlotForVar(Symbol v) { return SlotFor(Term::Var(v)); }

 private:
  SlotUnion* uf_;
  std::unordered_map<Symbol, int>* const_slots_;
  std::unordered_map<Symbol, int> var_slots_;
};

void SortUnique(std::vector<std::pair<int, int>>* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

}  // namespace

bool NetworkGraph::HasEdge(int from, int to) const {
  return std::find(edges.begin(), edges.end(), std::make_pair(from, to)) !=
         edges.end();
}

bool NetworkGraph::SelfLoopsOnly() const {
  for (const auto& [from, to] : edges) {
    if (from != to) return false;
  }
  return true;
}

bool NetworkGraph::IsComplete() const {
  return edges.size() == processors.size() * processors.size();
}

int NetworkGraph::MaxOutDegree() const {
  int best = 0;
  for (int p : processors) {
    int degree = 0;
    for (const auto& [from, to] : edges) {
      (void)to;
      if (from == p) ++degree;
    }
    best = std::max(best, degree);
  }
  return best;
}

std::string NetworkGraph::ToString() const {
  std::string out;
  for (int p : processors) {
    out += std::to_string(p);
    out += " -> {";
    bool first = true;
    for (const auto& [from, to] : edges) {
      if (from != p) continue;
      if (!first) out += ", ";
      first = false;
      out += std::to_string(to);
    }
    out += "}\n";
  }
  return out;
}

StatusOr<NetworkGraph> DeriveNetworkGraph(
    const LinearSirup& sirup, const std::vector<Symbol>& v_r,
    const std::vector<Symbol>& v_e, const std::vector<int>& coeffs_h,
    const std::vector<int>& coeffs_h_prime) {
  if (coeffs_h.size() != v_r.size() || coeffs_h_prime.size() != v_e.size()) {
    return Status::InvalidArgument(
        "coefficient vectors must match the discriminating sequences");
  }

  const int m = sirup.arity();
  SlotUnion uf;
  std::vector<int> column_slots(m);
  for (int c = 0; c < m; ++c) column_slots[c] = uf.NewSlot();

  std::unordered_map<Symbol, int> const_slots;

  // Consumption: the tuple is bound to the recursive body atom Y.
  BindingSlots consume(&uf, &const_slots, column_slots,
                       sirup.rec_body_atom());
  std::vector<int> consume_slots;
  for (Symbol v : v_r) consume_slots.push_back(consume.SlotForVar(v));

  // Production by the recursive rule: the tuple is bound to the head X;
  // the producer's other variables are free unknowns.
  BindingSlots produce_rec(&uf, &const_slots, column_slots,
                           sirup.rec.head);
  std::vector<int> produce_rec_slots;
  for (Symbol v : v_r) produce_rec_slots.push_back(produce_rec.SlotForVar(v));

  // Production by the exit rule: the tuple is bound to the exit head Z.
  BindingSlots produce_exit(&uf, &const_slots, column_slots,
                            sirup.exit.head);
  std::vector<int> produce_exit_slots;
  for (Symbol v : v_e) {
    produce_exit_slots.push_back(produce_exit.SlotForVar(v));
  }

  // Compress to root slots and enumerate 0/1 assignments.
  std::vector<int> roots;
  std::unordered_map<int, int> root_index;
  for (int s = 0; s < uf.size(); ++s) {
    int r = uf.Find(s);
    if (root_index.emplace(r, static_cast<int>(roots.size())).second) {
      roots.push_back(r);
    }
  }
  if (roots.size() > 24) {
    return Status::OutOfRange(
        "too many independent g-value unknowns (" +
        std::to_string(roots.size()) + "); enumeration would be 2^n");
  }

  auto eval = [&](const std::vector<int>& slots,
                  const std::vector<int>& coeffs, uint64_t assignment) {
    int sum = 0;
    for (size_t l = 0; l < slots.size(); ++l) {
      int bit = static_cast<int>(
          (assignment >> root_index.at(uf.Find(slots[l]))) & 1);
      sum += coeffs[l] * bit;
    }
    return sum;
  };

  NetworkGraph graph;
  for (uint64_t a = 0; a < (1ull << roots.size()); ++a) {
    int j = eval(consume_slots, coeffs_h, a);
    graph.rec_edges.emplace_back(eval(produce_rec_slots, coeffs_h, a), j);
    graph.exit_edges.emplace_back(
        eval(produce_exit_slots, coeffs_h_prime, a), j);
  }
  SortUnique(&graph.rec_edges);
  SortUnique(&graph.exit_edges);
  graph.edges = graph.rec_edges;
  graph.edges.insert(graph.edges.end(), graph.exit_edges.begin(),
                     graph.exit_edges.end());
  SortUnique(&graph.edges);

  graph.processors = LinearAchievableValues(coeffs_h);
  for (int v : LinearAchievableValues(coeffs_h_prime)) {
    if (!std::count(graph.processors.begin(), graph.processors.end(), v)) {
      graph.processors.push_back(v);
    }
  }
  std::sort(graph.processors.begin(), graph.processors.end());
  return graph;
}

}  // namespace pdatalog
