// Human-readable rendering of parallel execution results: per-processor
// statistics, the channel traffic matrix, and aggregate totals. Shared
// by the CLI (--stats), the examples, and the benches.
#ifndef PDATALOG_CORE_REPORT_H_
#define PDATALOG_CORE_REPORT_H_

#include <string>

#include "core/engine.h"
#include "obs/analyze.h"

namespace pdatalog {

struct ReportOptions {
  bool per_worker = true;       // per-processor statistics table
  bool channel_matrix = false;  // tuples per channel ij
  bool totals = true;           // one-line aggregate summary
  bool histograms = true;       // percentile table (when recorded)
};

// Renders `result` as aligned text tables.
std::string RenderReport(const ParallelResult& result,
                         const ReportOptions& options = {});

// Renders the registry's latency/size distributions as the percentile
// table RenderReport embeds; empty string when none were recorded.
// Shared with the serving engine's `!stats` report (src/server/).
std::string RenderHistogramTable(const MetricsRegistry& metrics);

// The trace-ring overflow warning, one line with trailing newline;
// empty string when nothing was dropped. Shared by RenderReport, the
// CLI's one-shot paths, and the serving engine's `!stats` report —
// every mode that exports traces warns the same way.
std::string TraceDropWarning(uint64_t dropped);

// Renders the BSP replay of the round logs as a text timeline: one row
// per processor, one column block per superstep, bar length scaled to
// that superstep's cost share. `width` caps the total character width.
std::string RenderBspTimeline(const ParallelResult& result,
                              double cpu_cost, double net_cost,
                              int width = 72);

// Builds the analyzer's run context (obs/analyze.h) from a finished
// result: communication matrices, per-round sent tuples from the round
// logs, and a pointer to the result's registry — `result` must outlive
// any AnalyzeRun call using the returned context.
ProfileContext MakeProfileContext(const ParallelResult& result);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_REPORT_H_
