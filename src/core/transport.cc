#include "core/transport.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "core/spsc_ring.h"

namespace pdatalog {

namespace {

// The original lock-append queue, verbatim: senders (plural, in tests)
// append under the lock, the receiver drains the whole backlog in one
// swap. Reference implementation and the only backend the fault /
// retransmit slow path ever rides on.
class MutexTransport final : public Transport {
 public:
  TransportKind kind() const override { return TransportKind::kMutex; }

  void SendBlock(TupleBlock block) override {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(block));
  }

  void SendBlocks(TupleBlock* blocks, size_t count) override {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.reserve(queue_.size() + count);
    for (size_t k = 0; k < count; ++k) queue_.push_back(std::move(blocks[k]));
  }

  void SendBytes(std::vector<uint8_t> bytes) override {
    std::lock_guard<std::mutex> lock(mutex_);
    byte_queue_.push_back(std::move(bytes));
  }

  size_t DrainBlocks(std::vector<TupleBlock>* out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = queue_.size();
    out->reserve(out->size() + n);
    for (TupleBlock& b : queue_) out->push_back(std::move(b));
    queue_.clear();
    return n;
  }

  size_t DrainBytes(std::vector<std::vector<uint8_t>>* out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = byte_queue_.size();
    out->reserve(out->size() + n);
    for (auto& b : byte_queue_) out->push_back(std::move(b));
    byte_queue_.clear();
    return n;
  }

  bool HasPending() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return !queue_.empty() || !byte_queue_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TupleBlock> queue_;
  std::vector<std::vector<uint8_t>> byte_queue_;
};

// Two bounded SPSC rings (block frames + serialized byte frames) with
// an unbounded mutex-guarded spillway behind them. The spillway absorbs
// overflow in non-blocking mode and abort-escapes in blocking mode;
// the sticky flag keeps FIFO across the diversion (see transport.h).
class SpscTransport final : public Transport {
 public:
  explicit SpscTransport(const TransportOptions& options)
      : opts_(options),
        blocks_(options.ring_frames),
        bytes_(options.ring_frames) {}

  TransportKind kind() const override { return TransportKind::kSpsc; }

  void set_stall_handler(StallHandler handler) override {
    stall_ = std::move(handler);
  }

  void SendBlock(TupleBlock block) override {
    if (spilling_blocks_ && !TryUnstickBlocks()) {
      SpillBlock(std::move(block));
      return;
    }
    if (blocks_.TryPush(block)) return;
    if (!opts_.blocking || !WaitForSpace(&blocks_, &block)) {
      spilling_blocks_ = true;
      SpillBlock(std::move(block));
    }
  }

  void SendBlocks(TupleBlock* items, size_t count) override {
    if (spilling_blocks_ && !TryUnstickBlocks()) {
      for (size_t k = 0; k < count; ++k) SpillBlock(std::move(items[k]));
      return;
    }
    size_t done = blocks_.TryPushN(items, count);
    while (done < count) {
      // Ring full mid-batch: the published prefix is already visible
      // (one index store); push the tail through the scalar path, which
      // blocks or spills per mode.
      SendBlock(std::move(items[done]));
      if (spilling_blocks_) {
        for (size_t k = done + 1; k < count; ++k) {
          SpillBlock(std::move(items[k]));
        }
        return;
      }
      ++done;
    }
  }

  void SendBytes(std::vector<uint8_t> bytes) override {
    if (spilling_bytes_ && !TryUnstickBytes()) {
      SpillBytes(std::move(bytes));
      return;
    }
    if (bytes_.TryPush(bytes)) return;
    if (!opts_.blocking || !WaitForSpace(&bytes_, &bytes)) {
      spilling_bytes_ = true;
      SpillBytes(std::move(bytes));
    }
  }

  size_t DrainBlocks(std::vector<TupleBlock>* out) override {
    // Ring first, then spillway: the sticky send rule guarantees every
    // spilled frame was sent after every ring-resident one.
    size_t n = blocks_.PopAll(out);
    if (spill_count_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      n += spill_blocks_.size();
      for (TupleBlock& b : spill_blocks_) out->push_back(std::move(b));
      spill_count_.fetch_sub(spill_blocks_.size(),
                             std::memory_order_release);
      spill_blocks_.clear();
    }
    return n;
  }

  size_t DrainBytes(std::vector<std::vector<uint8_t>>* out) override {
    size_t n = bytes_.PopAll(out);
    if (spill_count_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      n += spill_bytes_.size();
      for (auto& b : spill_bytes_) out->push_back(std::move(b));
      spill_count_.fetch_sub(spill_bytes_.size(), std::memory_order_release);
      spill_bytes_.clear();
    }
    return n;
  }

  bool HasPending() const override {
    return !blocks_.Empty() || !bytes_.Empty() ||
           spill_count_.load(std::memory_order_acquire) != 0;
  }

 private:
  template <typename Ring, typename T>
  bool WaitForSpace(Ring* ring, T* item) {
    int spins = 0;
    int yields = 0;
    int64_t sleep_us = 1;
    while (!ring->TryPush(*item)) {
      if (stall_ != nullptr && !stall_()) return false;  // run aborting
      if (spins < opts_.spin_polls) {
        ++spins;
        CpuRelax();
      } else if (yields < opts_.yield_polls) {
        ++yields;
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        if (sleep_us < opts_.max_sleep_us) sleep_us *= 2;
      }
    }
    return true;
  }

  void SpillBlock(TupleBlock block) {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    spill_blocks_.push_back(std::move(block));
    spill_count_.fetch_add(1, std::memory_order_release);
  }

  void SpillBytes(std::vector<uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    spill_bytes_.push_back(std::move(bytes));
    spill_count_.fetch_add(1, std::memory_order_release);
  }

  // Sender side. The sticky flag may only clear once the receiver has
  // emptied the block spillway — checked under the same lock the drain
  // holds, so "empty here" means "already delivered".
  bool TryUnstickBlocks() {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    if (!spill_blocks_.empty()) return false;
    spilling_blocks_ = false;
    return true;
  }

  bool TryUnstickBytes() {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    if (!spill_bytes_.empty()) return false;
    spilling_bytes_ = false;
    return true;
  }

  TransportOptions opts_;
  StallHandler stall_;
  SpscRing<TupleBlock> blocks_;
  SpscRing<std::vector<uint8_t>> bytes_;

  // Sender-owned sticky flags (one sender per channel).
  bool spilling_blocks_ = false;
  bool spilling_bytes_ = false;

  mutable std::mutex spill_mutex_;
  std::vector<TupleBlock> spill_blocks_;
  std::vector<std::vector<uint8_t>> spill_bytes_;
  // Fast "is the spillway empty" probe so drains and HasPending skip
  // the lock on the common path.
  std::atomic<uint64_t> spill_count_{0};
};

}  // namespace

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kMutex:
      return "mutex";
    case TransportKind::kSpsc:
      return "spsc";
  }
  return "?";
}

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "mutex") {
    *out = TransportKind::kMutex;
    return true;
  }
  if (name == "spsc") {
    *out = TransportKind::kSpsc;
    return true;
  }
  return false;
}

size_t DefaultRingFrames(int num_processors) {
  if (num_processors <= 16) return 1024;
  if (num_processors <= 64) return 256;
  return 64;
}

std::unique_ptr<Transport> MakeTransport(TransportKind kind,
                                         const TransportOptions& options) {
  switch (kind) {
    case TransportKind::kMutex:
      return std::make_unique<MutexTransport>();
    case TransportKind::kSpsc: {
      TransportOptions o = options;
      if (o.ring_frames == 0) o.ring_frames = 1024;
      return std::make_unique<SpscTransport>(o);
    }
  }
  return nullptr;
}

void InstallTransports(CommNetwork* network, TransportKind kind,
                       TransportOptions options) {
  if (options.ring_frames == 0) {
    options.ring_frames = DefaultRingFrames(network->num_processors());
  }
  for (int i = 0; i < network->num_processors(); ++i) {
    for (int j = 0; j < network->num_processors(); ++j) {
      network->channel(i, j).set_transport(MakeTransport(kind, options));
    }
  }
}

IdleWaitPolicy MakeIdleWaitPolicy(TransportKind kind, bool slow_path) {
  IdleWaitPolicy policy;  // defaults = today's mutex-backend ladder
  if (kind == TransportKind::kSpsc && !slow_path) {
    policy.spin_polls = 256;
  }
  return policy;
}

}  // namespace pdatalog
