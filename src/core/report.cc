#include "core/report.h"

#include <algorithm>

#include "core/cost_model.h"
#include "util/table.h"

namespace pdatalog {

std::string RenderReport(const ParallelResult& result,
                         const ReportOptions& options) {
  std::string out;
  const size_t n = result.workers.size();

  if (options.totals) {
    double tuples_per_frame =
        result.cross_frames == 0
            ? 0.0
            : static_cast<double>(result.cross_tuples) /
                  static_cast<double>(result.cross_frames);
    out += "totals: " + std::to_string(result.total_firings) +
           " firings, " + std::to_string(result.pooled_tuples) +
           " output tuples, " + std::to_string(result.cross_tuples) +
           " cross messages (" + std::to_string(result.cross_bytes) +
           " bytes, " + std::to_string(result.cross_frames) + " frames, " +
           TextTable::Cell(tuples_per_frame, 1) + " tuples/frame), " +
           std::to_string(result.self_tuples) + " self-routed, " +
           TextTable::Cell(result.wall_seconds * 1e3, 2) + " ms\n";
    out += TraceDropWarning(result.metrics.counter("trace.dropped"));
    if (result.faults.any()) {
      out += "faults: " + std::to_string(result.faults.dropped) +
             " dropped, " + std::to_string(result.faults.duplicated) +
             " duplicated, " + std::to_string(result.faults.reordered) +
             " reordered, " + std::to_string(result.faults.corrupted) +
             " corrupted, " + std::to_string(result.faults.delayed) +
             " delayed; " + std::to_string(result.faults.retransmitted) +
             " retransmitted, " +
             std::to_string(result.faults.duplicates_discarded) +
             " duplicates discarded, " +
             std::to_string(result.faults.corrupt_discarded) +
             " corrupt frames discarded\n";
    }
  }

  if (options.per_worker) {
    TextTable table({"proc", "rounds", "firings", "out", "in", "recv",
                     "sent-cross", "sent-self", "frames", "tup/frame",
                     "rows examined", "rows/round"});
    for (size_t i = 0; i < n; ++i) {
      const WorkerStats& w = result.workers[i];
      // Every ratio guards its denominator: a worker that flushed no
      // frames (or ran no rounds) reports 0.0, not inf/nan.
      double tuples_per_frame =
          w.frames == 0
              ? 0.0
              : static_cast<double>(w.sent_cross + w.sent_self) /
                    static_cast<double>(w.frames);
      double rows_per_round =
          w.rounds == 0 ? 0.0
                        : static_cast<double>(w.rows_examined) /
                              static_cast<double>(w.rounds);
      table.AddRow({TextTable::Cell(static_cast<int>(i)),
                    TextTable::Cell(w.rounds), TextTable::Cell(w.firings),
                    TextTable::Cell(w.out_inserted),
                    TextTable::Cell(w.in_inserted),
                    TextTable::Cell(w.received),
                    TextTable::Cell(w.sent_cross),
                    TextTable::Cell(w.sent_self),
                    TextTable::Cell(w.frames),
                    TextTable::Cell(tuples_per_frame, 1),
                    TextTable::Cell(w.rows_examined),
                    TextTable::Cell(rows_per_round, 1)});
    }
    out += table.ToString();
  }

  if (options.channel_matrix) {
    std::vector<std::string> header = {"from\\to"};
    for (size_t j = 0; j < n; ++j) {
      header.push_back("p" + std::to_string(j));
    }
    TextTable table(std::move(header));
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> row = {"p" + std::to_string(i)};
      for (size_t j = 0; j < n; ++j) {
        row.push_back(TextTable::Cell(result.channel_matrix[i][j]));
      }
      table.AddRow(std::move(row));
    }
    out += table.ToString();
  }

  if (options.histograms) {
    out += RenderHistogramTable(result.metrics);
  }
  return out;
}

std::string TraceDropWarning(uint64_t dropped) {
  if (dropped == 0) return "";
  return "warning: trace ring overflow dropped " + std::to_string(dropped) +
         " events; the exported trace and profile are truncated "
         "(raise --trace-ring-kb)\n";
}

std::string RenderHistogramTable(const MetricsRegistry& metrics) {
  if (metrics.histograms().empty()) return "";
  std::string out = "percentiles (ns for *_ns, counts otherwise):\n";
  TextTable table({"metric", "count", "p50", "p95", "p99", "max"});
  for (const auto& [name, h] : metrics.histograms()) {
    table.AddRow({name, TextTable::Cell(h.count()),
                  TextTable::Cell(h.Percentile(50), 0),
                  TextTable::Cell(h.Percentile(95), 0),
                  TextTable::Cell(h.Percentile(99), 0),
                  TextTable::Cell(h.max())});
  }
  out += table.ToString();
  return out;
}

ProfileContext MakeProfileContext(const ParallelResult& result) {
  ProfileContext ctx;
  ctx.tuples_matrix = result.channel_matrix;
  ctx.frames_matrix = result.frames_matrix;
  ctx.sent_by_round.resize(result.worker_rounds.size());
  for (size_t i = 0; i < result.worker_rounds.size(); ++i) {
    ctx.sent_by_round[i].reserve(result.worker_rounds[i].size());
    for (const RoundLog& log : result.worker_rounds[i]) {
      ctx.sent_by_round[i].push_back(log.sent_to);
    }
  }
  ctx.rebalance_log = result.rebalance_log;
  ctx.metrics = &result.metrics;
  return ctx;
}

std::string RenderBspTimeline(const ParallelResult& result,
                              double cpu_cost, double net_cost, int width) {
  const size_t n = result.worker_rounds.size();
  size_t max_rounds = 0;
  for (const auto& log : result.worker_rounds) {
    max_rounds = std::max(max_rounds, log.size());
  }
  if (n == 0 || max_rounds == 0) return "(no rounds)\n";

  // Per (worker, superstep) cost, mirroring BspCost's attribution.
  std::vector<std::vector<double>> cost(n,
                                        std::vector<double>(max_rounds, 0));
  double max_cost = 0;
  for (size_t k = 0; k < max_rounds; ++k) {
    for (size_t j = 0; j < n; ++j) {
      double c = 0;
      if (k < result.worker_rounds[j].size()) {
        c += result.worker_rounds[j][k].firings * cpu_cost;
      }
      for (size_t i = 0; i < n; ++i) {
        if (i == j || k >= result.worker_rounds[i].size()) continue;
        const RoundLog& log = result.worker_rounds[i][k];
        if (j < log.sent_to.size()) c += log.sent_to[j] * net_cost;
      }
      cost[j][k] = c;
      max_cost = std::max(max_cost, c);
    }
  }
  if (max_cost == 0) max_cost = 1;

  // One char column per superstep block, bar height scaled into 8
  // levels using 1/8th block approximations in ASCII (#, +, ., space).
  int cols = std::min<int>(static_cast<int>(max_rounds), width);
  std::string out = "BSP timeline (cpu=" + TextTable::Cell(cpu_cost, 1) +
                    ", net=" + TextTable::Cell(net_cost, 1) +
                    "; column = superstep, darker = more loaded):\n";
  for (size_t j = 0; j < n; ++j) {
    out += "p" + std::to_string(j) + " |";
    for (int k = 0; k < cols; ++k) {
      // When supersteps exceed width, aggregate ranges of rounds.
      size_t lo = static_cast<size_t>(k) * max_rounds / cols;
      size_t hi = static_cast<size_t>(k + 1) * max_rounds / cols;
      double c = 0;
      for (size_t r = lo; r < std::max(hi, lo + 1) && r < max_rounds; ++r) {
        c = std::max(c, cost[j][r]);
      }
      double share = c / max_cost;
      out += share > 0.75  ? '#'
             : share > 0.4 ? '+'
             : share > 0.0 ? '.'
                           : ' ';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace pdatalog
