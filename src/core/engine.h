// The parallel evaluation engine: given a rewrite bundle and an input
// database, runs the per-processor programs on the abstract architecture
// (worker threads + channel network + termination detection) and pools
// the outputs (Section 3, "Final Pooling").
#ifndef PDATALOG_CORE_ENGINE_H_
#define PDATALOG_CORE_ENGINE_H_

#include <vector>

#include "core/fault.h"
#include "core/rebalance.h"
#include "core/rewrite.h"
#include "core/worker.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdatalog {

class Tracer;  // obs/trace.h

struct ParallelOptions {
  // true: one OS thread per processor with asynchronous receives and
  // Mattern termination detection (the paper's execution model).
  // false: deterministic round-robin scheduling of the same workers in
  // the calling thread; used by tests to get reproducible interleavings.
  bool use_threads = true;
  // true: realize the channels by message passing — every tuple is
  // encoded to bytes on send and decoded on receipt (core/wire.h) —
  // instead of moving objects through shared memory. Same results,
  // slightly slower; exists to validate the paper's "either shared
  // memory or message passing" claim.
  bool serialize_messages = false;
  // Deterministic fault injection on the cross-processor channels (see
  // core/fault.h). Corruption faults flip wire bytes and therefore
  // require serialize_messages. With faults enabled and retransmit off,
  // a run whose messages were lost/duplicated fails with a diagnostic
  // Status — never a silently wrong fixpoint.
  FaultSpec faults;
  // At-least-once delivery: senders keep unacknowledged copies of every
  // cross frame and idle workers periodically re-send them; receivers
  // deliver in order exactly once. Makes the fixpoint exact under drop/
  // duplicate/reorder/corrupt/delay faults.
  bool retransmit = false;
  // Data-movement backend for the channel fast path (core/transport.h).
  // kMutex is the reference lock-append queue; kSpsc installs a bounded
  // lock-free SPSC ring per (sender, receiver) pair. Fault injection
  // and retransmit always run on the mutex-guarded slow path, so under
  // --faults the two backends are behaviorally identical by
  // construction; the ring pays off on the fault-free fast path.
  TransportKind transport = TransportKind::kMutex;
  // SPSC ring capacity in frames; 0 auto-scales with the processor
  // count (P*P channels own two rings each, so capacity shrinks as the
  // topology grows). Ignored by the mutex backend.
  int transport_ring_frames = 0;
  // Flush threshold for the block-oriented wire protocol: each worker
  // accumulates outgoing tuples per (destination, predicate) and ships
  // one frame per block — at the end of the round, or mid-round once a
  // block holds this many tuples. 1 reproduces the per-tuple protocol
  // (one frame per tuple); must be in [1, kMaxBlockTuples].
  int block_tuples = 256;
  // Observability: when set, worker i records phase spans on the
  // tracer's ring i and channel (i, j) records receive-side discard
  // instants on ring j. The tracer must be sized for at least
  // num_processors workers and must outlive the run. Null (the
  // default) disables tracing entirely.
  Tracer* tracer = nullptr;
  // Skew-adaptive repartitioning (core/rebalance.h): off unless
  // rebalance.skew_threshold > 0. Requires a bundle whose sending rules
  // use a determined kUniformHash/kSymmetricHash function and whose
  // base occurrences are all replicated (fragmented bases cannot follow
  // a moved bucket, so RunParallel rejects the combination).
  RebalanceOptions rebalance;
};

struct ParallelResult {
  // Pooled derived relations under their original predicate names.
  Database output;

  std::vector<WorkerStats> workers;
  // worker_rounds[i] = per-round logs of processor i, for the BSP cost
  // model (core/cost_model.h).
  std::vector<std::vector<RoundLog>> worker_rounds;
  // channel_matrix[i][j] = tuples sent from processor i to j.
  std::vector<std::vector<uint64_t>> channel_matrix;
  // bytes_matrix[i][j] = wire bytes sent from processor i to j.
  std::vector<std::vector<uint64_t>> bytes_matrix;
  // frames_matrix[i][j] = block frames sent from processor i to j.
  std::vector<std::vector<uint64_t>> frames_matrix;

  uint64_t total_firings = 0;
  uint64_t cross_tuples = 0;   // inter-processor tuples
  uint64_t cross_bytes = 0;    // inter-processor wire bytes
  uint64_t cross_frames = 0;   // inter-processor block frames
  uint64_t self_tuples = 0;    // self-routed tuples (no communication)
  // Sum over processors of distinct t_out tuples; exceeds the pooled
  // output size exactly when computation was redundant.
  uint64_t out_tuples_total = 0;
  uint64_t pooled_tuples = 0;
  // Final pooling (Section 3, step 5) "might require communication from
  // all processors to a single processor": messages/bytes to ship every
  // processor's t_out to collector 0 (its own tuples stay local).
  uint64_t pooling_messages = 0;
  uint64_t pooling_bytes = 0;
  // Injected-fault totals summed over all channels (zero when fault
  // injection is off).
  FaultCounters faults;
  // Skew-rebalancer decisions in publish order (empty when off); the
  // totals also appear as rebalance.* metrics.
  std::vector<RebalanceLogEntry> rebalance_log;
  double wall_seconds = 0;

  // Every run-level and per-worker counter above, as named metrics
  // (run.*, worker.N.*, faults.*). This registry is the single source
  // of truth: the scalar fields above are projections of it, so the
  // text report and a --metrics JSON export can never disagree.
  MetricsRegistry metrics;

  // Work-model makespan: max over processors of
  //   firings_i * cpu_cost + (received_cross_i) * net_cost.
  // The container this reproduction runs on is single-core, so modeled
  // makespan (not wall time) is the scaling metric (see DESIGN.md).
  double ModeledMakespan(double cpu_cost, double net_cost) const;
};

// Runs the parallel evaluation. `edb` is mutated only by index creation
// and by materializing empty relations for unused base predicates.
StatusOr<ParallelResult> RunParallel(const RewriteBundle& bundle,
                                     Database* edb,
                                     const ParallelOptions& options = {});

// Stratified parallel evaluation: the program's dependency-graph
// condensation is evaluated bottom-up, one parallel run per stratum
// (Section 7 general scheme within each). Completed strata become
// extensional inputs of later ones, so upper-stratum processors never
// idle through lower-stratum rounds and the per-stratum discriminating
// choices are independent. `rule_specs` follows Program::rules order.
// Returns the pooled outputs of every stratum plus summed statistics
// (worker/channel details are per-stratum internally and aggregated).
StatusOr<ParallelResult> RunParallelStratified(
    const Program& program, const ProgramInfo& info, int num_processors,
    const std::vector<GeneralRuleSpec>& rule_specs, Database* edb,
    const ParallelOptions& options = {});

}  // namespace pdatalog

#endif  // PDATALOG_CORE_ENGINE_H_
