// The abstract architecture of Section 3: reliable point-to-point
// channels `ij` between every pair of processors, realized in shared
// memory. "If a processor i puts some data in channel ij, then processor
// j (and no other processor) receives this data without error within
// some finite time."
#ifndef PDATALOG_CORE_CHANNEL_H_
#define PDATALOG_CORE_CHANNEL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "datalog/symbol_table.h"
#include "storage/tuple.h"

namespace pdatalog {

// One tuple of a derived predicate in flight on a channel.
struct Message {
  Symbol predicate;
  Tuple tuple;

  // Wire size under a simple fixed encoding: 4-byte predicate id,
  // 2-byte arity, 4 bytes per column value.
  size_t WireBytes() const {
    return 6 + static_cast<size_t>(tuple.arity()) * 4;
  }
};

// A single directed channel. Senders append under a lock; the receiver
// drains the entire backlog in one swap.
class Channel {
 public:
  void Send(Message message) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_bytes_ += message.WireBytes();
    queue_.push_back(std::move(message));
    ++total_sent_;
  }

  // Appends a whole batch under one lock acquisition. The workers
  // buffer per-destination messages within a round and flush once
  // (`batch` keeps its capacity for the next round).
  void SendBatch(std::vector<Message>* batch) {
    if (batch->empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.reserve(queue_.size() + batch->size());
    for (Message& m : *batch) {
      total_bytes_ += m.WireBytes();
      queue_.push_back(std::move(m));
    }
    total_sent_ += batch->size();
    batch->clear();
  }

  // Moves all pending messages into `out` (appending). Returns the
  // number drained.
  size_t Drain(std::vector<Message>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = queue_.size();
    out->reserve(out->size() + n);
    for (Message& m : queue_) out->push_back(std::move(m));
    queue_.clear();
    return n;
  }

  // Serialized (message-passing) mode: enqueue one encoded message.
  void SendBytes(std::vector<uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_bytes_ += bytes.size();
    byte_queue_.push_back(std::move(bytes));
    ++total_sent_;
  }

  // Drains all encoded messages (appending). Returns the number drained.
  size_t DrainBytes(std::vector<std::vector<uint8_t>>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = byte_queue_.size();
    out->reserve(out->size() + n);
    for (auto& b : byte_queue_) out->push_back(std::move(b));
    byte_queue_.clear();
    return n;
  }

  bool HasPending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !queue_.empty() || !byte_queue_.empty();
  }

  // Total messages ever sent on this channel (monotone; for stats).
  uint64_t total_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_sent_;
  }

  // Total wire bytes ever sent on this channel.
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_bytes_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Message> queue_;
  std::vector<std::vector<uint8_t>> byte_queue_;  // serialized mode
  uint64_t total_sent_ = 0;
  uint64_t total_bytes_ = 0;
};

// The full P x P channel matrix. channel(i, j) carries data from
// processor i to processor j; self-channels (i == i) model a processor
// routing tuples to itself and are not counted as communication.
class CommNetwork {
 public:
  explicit CommNetwork(int num_processors)
      : num_processors_(num_processors),
        channels_(static_cast<size_t>(num_processors) * num_processors) {}

  int num_processors() const { return num_processors_; }

  Channel& channel(int from, int to) {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }
  const Channel& channel(int from, int to) const {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }

  // Per-channel totals, [from][to].
  std::vector<std::vector<uint64_t>> SentMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_sent();
      }
    }
    return m;
  }

  // Per-channel wire bytes, [from][to].
  std::vector<std::vector<uint64_t>> BytesMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_bytes();
      }
    }
    return m;
  }

 private:
  int num_processors_;
  std::vector<Channel> channels_;
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_CHANNEL_H_
