// The abstract architecture of Section 3: reliable point-to-point
// channels `ij` between every pair of processors, realized in shared
// memory. "If a processor i puts some data in channel ij, then processor
// j (and no other processor) receives this data without error within
// some finite time."
//
// The unit of communication is a *block*: a run of same-predicate tuples
// accumulated by the sender and shipped as one frame — one header, one
// checksum, one sequence number, one publication — instead of one frame
// per tuple. Statistics stay tuple-granular (total_sent counts tuples)
// so the Mattern termination counters and the channel matrix keep their
// paper semantics; frames are tracked separately.
//
// Data movement itself is delegated to a pluggable Transport
// (core/transport.h): the default is the original mutex-guarded queue,
// and the engine can install a lock-free bounded SPSC ring per channel
// instead (--transport=spsc). The Channel keeps everything that must be
// backend-independent: tuple/byte/frame accounting, flow-trace
// instants, and the fault-injection / retransmit machinery below.
//
// The reliability assumption is exactly that — an assumption — so the
// channel also supports a deterministic fault-injection mode
// (core/fault.h) that violates it on purpose, and an optional
// at-least-once retransmit protocol (per-channel sequence numbers,
// receiver-side dedup and in-order delivery, sender-side resend of
// unacknowledged frames) that restores it. Both are opt-in, and both
// run on a mutex-guarded slow path regardless of the installed
// transport: reordering, delaying, and acknowledging frames are queue
// surgery that a lock-free ring cannot express, and a channel whose
// reliability is being deliberately violated has nothing to gain from
// a lock-free fast path. Faults and sequence numbers apply per block: a
// dropped block loses all its tuples, one retransmission recovers all
// of them.
#ifndef PDATALOG_CORE_CHANNEL_H_
#define PDATALOG_CORE_CHANNEL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/fault.h"
#include "datalog/symbol_table.h"
#include "storage/tuple.h"

namespace pdatalog {

class TraceRing;  // obs/trace.h; receive-side discard instants
class Transport;  // core/transport.h; pluggable data movement

// Single source of truth for the fixed wire encodings' layout
// (core/wire.cc implements the encoders against these constants;
// tests/wire_test.cc asserts WireBytes() == EncodeMessage().size()
// across arities so the byte statistics cannot drift from the real
// encoder).
//
// Legacy per-tuple frame (little-endian):
//   u32 predicate id | u16 arity | arity * u32 values | u32 checksum
//
// Block frame (little-endian):
//   u32 predicate id | u16 (kBlockArityFlag | arity) | u32 count |
//   count * u32 per column (columnar: column 0's values, then column
//   1's, ...) | u32 checksum
//
// The arity word's high bit distinguishes the two: kBlockArityFlag |
// arity always exceeds kMaxWireArity, so a legacy decoder rejects a
// block frame instead of misreading it (and vice versa).
inline constexpr size_t kWireHeaderBytes = 6;    // u32 predicate + u16 arity
inline constexpr size_t kWireValueBytes = 4;     // u32 per column
inline constexpr size_t kWireChecksumBytes = 4;  // FNV-1a over the frame
inline constexpr int kMaxWireArity = 32;

inline constexpr uint16_t kBlockArityFlag = 0x8000;
// u32 predicate + u16 flagged arity + u32 tuple count.
inline constexpr size_t kBlockHeaderBytes = 10;
// Sanity cap on the per-frame tuple count; bounds decode-side buffer
// growth against a corrupted count field that beat the checksum.
inline constexpr uint32_t kMaxBlockTuples = 1u << 20;

constexpr size_t MessageWireBytes(int arity) {
  return kWireHeaderBytes + static_cast<size_t>(arity) * kWireValueBytes +
         kWireChecksumBytes;
}

constexpr size_t BlockWireBytes(int arity, uint32_t count) {
  return kBlockHeaderBytes +
         static_cast<size_t>(arity) * count * kWireValueBytes +
         kWireChecksumBytes;
}

// One tuple of a derived predicate in flight on a channel (legacy unit;
// kept for tests and for callers that deal in single tuples).
struct Message {
  Symbol predicate;
  Tuple tuple;

  size_t WireBytes() const { return MessageWireBytes(tuple.arity()); }
};

// A run of same-predicate tuples shipped as one frame. Send-side blocks
// accumulate row-major (append order) and the wire encoder transposes
// to the columnar layout; decoded blocks keep the wire's column-major
// layout (`columnar` set) so the receive path can append them to the
// column store without ever re-rowifying.
struct TupleBlock {
  Symbol predicate = 0;
  int arity = 0;
  uint32_t count = 0;
  bool columnar = false;      // layout of `values`; false = row-major
  std::vector<Value> values;  // count * arity

  void Append(const Value* vals, int n) {
    assert(!columnar);
    values.insert(values.end(), vals, vals + n);
    ++count;
  }
  // Layout-aware single-cell read (tests and cold paths).
  Value value(uint32_t r, int c) const {
    return columnar ? values[static_cast<size_t>(c) * count + r]
                    : values[static_cast<size_t>(r) * arity + c];
  }
  // Row pointer; only meaningful for send-side (row-major) blocks.
  const Value* row(uint32_t r) const {
    assert(!columnar);
    return values.data() + static_cast<size_t>(r) * arity;
  }
  size_t WireBytes() const { return BlockWireBytes(arity, count); }
  // Keeps capacity for the next accumulation cycle.
  void Reset() {
    count = 0;
    columnar = false;
    values.clear();
  }
};

// A single directed channel. Each channel has exactly one sending
// worker and one receiving worker in the engine; the installed
// Transport carries the frames between them (the default mutex backend
// also tolerates multiple senders, which the stress tests exercise).
// Accounting counters are atomics incremented on the send side and read
// from anywhere, so the fast path takes no channel lock at all; mutex_
// guards only the fault/retransmit slow-path state.
class Channel {
 public:
  Channel();   // installs the default mutex transport
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Legacy single-tuple send: wraps the message into a one-tuple block
  // frame. Byte accounting uses the legacy per-message layout so
  // existing per-tuple statistics stay exact.
  void Send(Message message);

  // Sends a whole batch, one block frame per message; backends with
  // batch publication make the entire batch visible to the receiver
  // with a single index store (`batch` keeps its capacity for the next
  // round).
  void SendBatch(std::vector<Message>* batch);

  // Enqueues one block as one frame: one publication, one sequence
  // number, one fault-injection decision for all `block.count` tuples.
  void SendBlock(TupleBlock block);

  // Moves all pending (deliverable) blocks into `out` (appending).
  // Returns the number of *tuples* drained — in retransmit mode this
  // counts only newly delivered logical tuples, never duplicates.
  size_t DrainBlocks(std::vector<TupleBlock>* out);

  // Legacy drain: explodes blocks back into per-tuple messages.
  // Returns the number of tuples drained.
  size_t Drain(std::vector<Message>* out);

  // Serialized (message-passing) mode: enqueue one encoded frame
  // carrying `tuples` tuples (a block frame, or a legacy single-message
  // frame with the default).
  void SendBytes(std::vector<uint8_t> bytes, uint32_t tuples = 1);

  // Drains all deliverable encoded frames (appending). Returns the
  // number of frames drained. In retransmit mode, frames whose checksum
  // the injector broke are discarded here (and later retransmitted by
  // the sender) instead of being surfaced.
  size_t DrainBytes(std::vector<std::vector<uint8_t>>* out);

  // Whether anything is drainable now or will become drainable without
  // sender action (delayed frames count; out-of-order frames held back
  // by a lost predecessor do not — those need a retransmit).
  bool HasPending() const;

  // --- transport (configure before the run) ---

  // Replaces the data-movement backend. Nothing may be in flight.
  void set_transport(std::unique_ptr<Transport> transport);
  Transport* transport() { return transport_.get(); }

  // --- fault injection / retransmit (configure before the run) ---

  // Installs a fault injector for this channel; (from, to) seed the
  // per-channel decision stream deterministically.
  void ConfigureFaults(const FaultSpec& spec, int from, int to);

  // Enables the at-least-once protocol: frames carry sequence numbers,
  // the receiver delivers in order exactly once, and the sender keeps
  // copies of unacknowledged frames for RetransmitUnacked().
  void EnableRetransmit();

  // Sender side: re-enqueues every unacknowledged frame the receiver is
  // still missing. Retransmissions bypass fault injection (faults apply
  // to first transmissions), so one resend recovers a loss. Returns the
  // number of frames re-enqueued.
  size_t RetransmitUnacked();

  // Injected-event counts for this channel (zeroes when no injector).
  FaultCounters fault_counters() const;

  // Observability hook: drains emit instant events (corrupt frame
  // discarded, duplicate discarded) on `ring`. Drains run only on the
  // receiving worker's thread, so the ring must be the receiver's;
  // configure before the run, alongside faults/retransmit. These
  // discards happen only on the fault/retransmit slow path, so the
  // default fast path never touches the ring.
  void set_receive_trace(TraceRing* ring) {
    std::lock_guard<std::mutex> lock(mutex_);
    recv_trace_ = ring;
  }

  // Observability hook: pair each frame's send with its delivery via
  // flow instants (obs/trace.h, kFlowSend/kFlowRecv). `send_ring` must
  // be the sending worker's ring and `recv_ring` the receiver's — sends
  // run on the sender's thread and drains on the receiver's, so both
  // keep the single-writer invariant. Flow identity is (from, to,
  // per-channel frame index); nothing changes on the wire. The send
  // instant is recorded before the frame is published and the receive
  // instant after it is drained, so the transport's happens-before
  // publication edge keeps send ts < recv ts without any lock. Only the
  // default fast path emits flows: once faults or retransmit are
  // configured, delivery order no longer matches the frame counter
  // (drops, duplicates, reordering), so flows are suppressed there.
  void set_flow_trace(int from, int to, TraceRing* send_ring,
                      TraceRing* recv_ring) {
    std::lock_guard<std::mutex> lock(mutex_);
    flow_from_ = from;
    flow_to_ = to;
    send_trace_ = send_ring;
    recv_trace_ = recv_ring;
  }

  // Total tuples ever sent on this channel (monotone; for stats).
  // Counts logical sends: a dropped tuple still counts, a retransmit
  // does not count again.
  uint64_t total_sent() const {
    return total_sent_.load(std::memory_order_relaxed);
  }

  // Total wire bytes ever sent on this channel.
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  // Total frames ever sent on this channel; total_sent() / total_frames()
  // is the achieved batching factor.
  uint64_t total_frames() const {
    return total_frames_.load(std::memory_order_relaxed);
  }

 private:
  // Slow-path state, allocated only when faults or retransmit are
  // configured. All fields are guarded by mutex_.
  struct Extras {
    std::unique_ptr<FaultInjector> injector;  // null: retransmit only
    bool reliable = false;

    uint64_t next_seq = 0;      // sender: next sequence number
    uint64_t deliver_next = 0;  // receiver: next in-order seq (= ack)
    uint64_t drain_calls = 0;   // receiver: poll clock for delays

    // Seq-stamped in-flight queues (the slow path bypasses the
    // transport entirely).
    std::vector<std::pair<uint64_t, TupleBlock>> queue;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> byte_queue;

    // Delayed frames, released once drain_calls reaches release_at.
    struct DelayedBlock {
      uint64_t seq;
      TupleBlock block;
      uint64_t release_at;
    };
    struct DelayedBytes {
      uint64_t seq;
      std::vector<uint8_t> bytes;
      uint64_t release_at;
    };
    std::vector<DelayedBlock> delayed;
    std::vector<DelayedBytes> delayed_bytes;

    // Receiver: frames ahead of a gap (reliable mode only).
    std::map<uint64_t, TupleBlock> ahead;
    std::map<uint64_t, std::vector<uint8_t>> ahead_bytes;

    // Sender: copies awaiting acknowledgement (reliable mode only).
    std::deque<std::pair<uint64_t, TupleBlock>> unacked;
    std::deque<std::pair<uint64_t, std::vector<uint8_t>>> unacked_bytes;

    FaultCounters counters;
  };

  static TupleBlock BlockOfOne(Message message) {
    TupleBlock block;
    block.predicate = message.predicate;
    block.arity = message.tuple.arity();
    block.Append(message.tuple.data(), message.tuple.arity());
    return block;
  }

  Extras& EnsureExtras();
  // Flow-instant emitters for the fault-free fast path. `frame` is the
  // frame's index (the value total_frames_ held before that frame was
  // counted). NoteFlowSend runs on the sender's thread before the frame
  // is published; NoteFlowRecv on the receiver's thread after the
  // drain. delivered_frames_ is receiver-only state; the trace/endpoint
  // pointers are configured before the run starts.
  void NoteFlowSend(uint64_t frame);
  void NoteFlowRecv(size_t frames);
  // Seq-stamping/fault-injecting slow path (mutex_ held). Accounting
  // (total_sent_/total_bytes_/total_frames_) happens in the public
  // callers, before the block is visible to the receiver.
  void EnqueueBlockLocked(TupleBlock block);
  void SendBytesLocked(std::vector<uint8_t> bytes);
  size_t DrainBlocksLocked(std::vector<TupleBlock>* out);
  size_t DrainBytesLocked(std::vector<std::vector<uint8_t>>* out);
  bool HasPendingLocked() const;
  void ReleaseMatureLocked();
  // Delivers one in-order frame and flushes any directly following
  // frames buffered in ahead/ahead_bytes.
  void DeliverBlockLocked(TupleBlock block, std::vector<TupleBlock>* out);
  void DeliverBytesLocked(std::vector<uint8_t> bytes,
                          std::vector<std::vector<uint8_t>>* out,
                          size_t* delivered);

  mutable std::mutex mutex_;  // slow-path (Extras) state only
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Extras> fx_;
  TraceRing* recv_trace_ = nullptr;  // receiver's ring (drain instants)
  TraceRing* send_trace_ = nullptr;  // sender's ring (flow sends)
  int flow_from_ = -1;               // channel endpoints for flow args
  int flow_to_ = -1;
  uint64_t delivered_frames_ = 0;  // fast-path frames drained so far
  std::atomic<uint64_t> total_sent_{0};    // tuples
  std::atomic<uint64_t> total_bytes_{0};   // wire bytes
  std::atomic<uint64_t> total_frames_{0};  // frames (blocks or encoded)
};

// The full P x P channel matrix. channel(i, j) carries data from
// processor i to processor j; self-channels (i == i) model a processor
// routing tuples to itself and are not counted as communication.
class CommNetwork {
 public:
  explicit CommNetwork(int num_processors)
      : num_processors_(num_processors),
        channels_(static_cast<size_t>(num_processors) * num_processors) {}

  int num_processors() const { return num_processors_; }

  Channel& channel(int from, int to) {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }
  const Channel& channel(int from, int to) const {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }

  // Installs `spec` on every cross channel (self-channels stay
  // fault-free: a processor handing tuples to itself is not
  // communication, per Section 3).
  void InstallFaults(const FaultSpec& spec) {
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        if (i != j) channel(i, j).ConfigureFaults(spec, i, j);
      }
    }
  }

  // Enables the at-least-once protocol on every cross channel.
  void EnableRetransmit() {
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        if (i != j) channel(i, j).EnableRetransmit();
      }
    }
  }

  bool AnyPending() const {
    for (const Channel& c : channels_) {
      if (c.HasPending()) return true;
    }
    return false;
  }

  FaultCounters AggregateFaultCounters() const {
    FaultCounters total;
    for (const Channel& c : channels_) total += c.fault_counters();
    return total;
  }

  // Per-channel tuple totals, [from][to].
  std::vector<std::vector<uint64_t>> SentMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_sent();
      }
    }
    return m;
  }

  // Per-channel wire bytes, [from][to].
  std::vector<std::vector<uint64_t>> BytesMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_bytes();
      }
    }
    return m;
  }

  // Per-channel frame totals, [from][to].
  std::vector<std::vector<uint64_t>> FramesMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_frames();
      }
    }
    return m;
  }

 private:
  int num_processors_;
  // Non-movable elements are fine: the vector is sized once at
  // construction and never reallocates.
  std::vector<Channel> channels_;
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_CHANNEL_H_
