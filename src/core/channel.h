// The abstract architecture of Section 3: reliable point-to-point
// channels `ij` between every pair of processors, realized in shared
// memory. "If a processor i puts some data in channel ij, then processor
// j (and no other processor) receives this data without error within
// some finite time."
//
// The reliability assumption is exactly that — an assumption — so the
// channel also supports a deterministic fault-injection mode
// (core/fault.h) that violates it on purpose, and an optional
// at-least-once retransmit protocol (per-channel sequence numbers,
// receiver-side dedup and in-order delivery, sender-side resend of
// unacknowledged frames) that restores it. Both are opt-in: the default
// configuration keeps the original lock-append fast path.
#ifndef PDATALOG_CORE_CHANNEL_H_
#define PDATALOG_CORE_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/fault.h"
#include "datalog/symbol_table.h"
#include "storage/tuple.h"

namespace pdatalog {

// Single source of truth for the fixed wire encoding's layout
// (core/wire.cc implements the encoder against these constants;
// tests/wire_test.cc asserts WireBytes() == EncodeMessage().size()
// across arities so the byte statistics cannot drift from the real
// encoder).
//
// Frame layout (little-endian):
//   u32 predicate id | u16 arity | arity * u32 values | u32 checksum
inline constexpr size_t kWireHeaderBytes = 6;    // u32 predicate + u16 arity
inline constexpr size_t kWireValueBytes = 4;     // u32 per column
inline constexpr size_t kWireChecksumBytes = 4;  // FNV-1a over the frame
inline constexpr int kMaxWireArity = 32;

constexpr size_t MessageWireBytes(int arity) {
  return kWireHeaderBytes + static_cast<size_t>(arity) * kWireValueBytes +
         kWireChecksumBytes;
}

// One tuple of a derived predicate in flight on a channel.
struct Message {
  Symbol predicate;
  Tuple tuple;

  size_t WireBytes() const { return MessageWireBytes(tuple.arity()); }
};

// A single directed channel. Senders append under a lock; the receiver
// drains the entire backlog in one swap. Each channel has exactly one
// sending worker and one receiving worker; the lock exists because the
// sender and receiver race, not because senders race each other.
class Channel {
 public:
  void Send(Message message) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) {
      SendLocked(std::move(message));
      return;
    }
    total_bytes_ += message.WireBytes();
    queue_.push_back(std::move(message));
    ++total_sent_;
  }

  // Appends a whole batch under one lock acquisition. The workers
  // buffer per-destination messages within a round and flush once
  // (`batch` keeps its capacity for the next round).
  void SendBatch(std::vector<Message>* batch) {
    if (batch->empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) {
      for (Message& m : *batch) SendLocked(std::move(m));
      batch->clear();
      return;
    }
    queue_.reserve(queue_.size() + batch->size());
    for (Message& m : *batch) {
      total_bytes_ += m.WireBytes();
      queue_.push_back(std::move(m));
    }
    total_sent_ += batch->size();
    batch->clear();
  }

  // Moves all pending (deliverable) messages into `out` (appending).
  // Returns the number drained — in retransmit mode this counts only
  // newly delivered logical messages, never duplicates.
  size_t Drain(std::vector<Message>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) return DrainLocked(out);
    size_t n = queue_.size();
    out->reserve(out->size() + n);
    for (Message& m : queue_) out->push_back(std::move(m));
    queue_.clear();
    return n;
  }

  // Serialized (message-passing) mode: enqueue one encoded message
  // frame. Each frame holds exactly one message's bytes.
  void SendBytes(std::vector<uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) {
      SendBytesLocked(std::move(bytes));
      return;
    }
    total_bytes_ += bytes.size();
    byte_queue_.push_back(std::move(bytes));
    ++total_sent_;
  }

  // Drains all deliverable encoded frames (appending). Returns the
  // number drained. In retransmit mode, frames whose checksum the
  // injector broke are discarded here (and later retransmitted by the
  // sender) instead of being surfaced.
  size_t DrainBytes(std::vector<std::vector<uint8_t>>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) return DrainBytesLocked(out);
    size_t n = byte_queue_.size();
    out->reserve(out->size() + n);
    for (auto& b : byte_queue_) out->push_back(std::move(b));
    byte_queue_.clear();
    return n;
  }

  // Whether anything is drainable now or will become drainable without
  // sender action (delayed frames count; out-of-order frames held back
  // by a lost predecessor do not — those need a retransmit).
  bool HasPending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fx_ != nullptr) return HasPendingLocked();
    return !queue_.empty() || !byte_queue_.empty();
  }

  // --- fault injection / retransmit (configure before the run) ---

  // Installs a fault injector for this channel; (from, to) seed the
  // per-channel decision stream deterministically.
  void ConfigureFaults(const FaultSpec& spec, int from, int to);

  // Enables the at-least-once protocol: frames carry sequence numbers,
  // the receiver delivers in order exactly once, and the sender keeps
  // copies of unacknowledged frames for RetransmitUnacked().
  void EnableRetransmit();

  // Sender side: re-enqueues every unacknowledged frame the receiver is
  // still missing. Retransmissions bypass fault injection (faults apply
  // to first transmissions), so one resend recovers a loss. Returns the
  // number of frames re-enqueued.
  size_t RetransmitUnacked();

  // Injected-event counts for this channel (zeroes when no injector).
  FaultCounters fault_counters() const;

  // Total messages ever sent on this channel (monotone; for stats).
  // Counts logical sends: a dropped message still counts, a retransmit
  // does not count again.
  uint64_t total_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_sent_;
  }

  // Total wire bytes ever sent on this channel.
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_bytes_;
  }

 private:
  // Slow-path state, allocated only when faults or retransmit are
  // configured. All fields are guarded by mutex_.
  struct Extras {
    std::unique_ptr<FaultInjector> injector;  // null: retransmit only
    bool reliable = false;

    uint64_t next_seq = 0;      // sender: next sequence number
    uint64_t deliver_next = 0;  // receiver: next in-order seq (= ack)
    uint64_t drain_calls = 0;   // receiver: poll clock for delays

    // Seq-stamped in-flight queues (replace queue_/byte_queue_).
    std::vector<std::pair<uint64_t, Message>> queue;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> byte_queue;

    // Delayed frames, released once drain_calls reaches release_at.
    struct DelayedMessage {
      uint64_t seq;
      Message message;
      uint64_t release_at;
    };
    struct DelayedBytes {
      uint64_t seq;
      std::vector<uint8_t> bytes;
      uint64_t release_at;
    };
    std::vector<DelayedMessage> delayed;
    std::vector<DelayedBytes> delayed_bytes;

    // Receiver: frames ahead of a gap (reliable mode only).
    std::map<uint64_t, Message> ahead;
    std::map<uint64_t, std::vector<uint8_t>> ahead_bytes;

    // Sender: copies awaiting acknowledgement (reliable mode only).
    std::deque<std::pair<uint64_t, Message>> unacked;
    std::deque<std::pair<uint64_t, std::vector<uint8_t>>> unacked_bytes;

    FaultCounters counters;
  };

  Extras& EnsureExtras();
  void SendLocked(Message message);
  void SendBytesLocked(std::vector<uint8_t> bytes);
  size_t DrainLocked(std::vector<Message>* out);
  size_t DrainBytesLocked(std::vector<std::vector<uint8_t>>* out);
  bool HasPendingLocked() const;
  void ReleaseMatureLocked();
  // Delivers one in-order frame and flushes any directly following
  // frames buffered in ahead/ahead_bytes.
  void DeliverMessageLocked(Message message, std::vector<Message>* out,
                            size_t* delivered);
  void DeliverBytesLocked(std::vector<uint8_t> bytes,
                          std::vector<std::vector<uint8_t>>* out,
                          size_t* delivered);

  mutable std::mutex mutex_;
  std::vector<Message> queue_;
  std::vector<std::vector<uint8_t>> byte_queue_;  // serialized mode
  std::unique_ptr<Extras> fx_;
  uint64_t total_sent_ = 0;
  uint64_t total_bytes_ = 0;
};

// The full P x P channel matrix. channel(i, j) carries data from
// processor i to processor j; self-channels (i == i) model a processor
// routing tuples to itself and are not counted as communication.
class CommNetwork {
 public:
  explicit CommNetwork(int num_processors)
      : num_processors_(num_processors),
        channels_(static_cast<size_t>(num_processors) * num_processors) {}

  int num_processors() const { return num_processors_; }

  Channel& channel(int from, int to) {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }
  const Channel& channel(int from, int to) const {
    return channels_[static_cast<size_t>(from) * num_processors_ + to];
  }

  // Installs `spec` on every cross channel (self-channels stay
  // fault-free: a processor handing tuples to itself is not
  // communication, per Section 3).
  void InstallFaults(const FaultSpec& spec) {
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        if (i != j) channel(i, j).ConfigureFaults(spec, i, j);
      }
    }
  }

  // Enables the at-least-once protocol on every cross channel.
  void EnableRetransmit() {
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        if (i != j) channel(i, j).EnableRetransmit();
      }
    }
  }

  bool AnyPending() const {
    for (const Channel& c : channels_) {
      if (c.HasPending()) return true;
    }
    return false;
  }

  FaultCounters AggregateFaultCounters() const {
    FaultCounters total;
    for (const Channel& c : channels_) total += c.fault_counters();
    return total;
  }

  // Per-channel totals, [from][to].
  std::vector<std::vector<uint64_t>> SentMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_sent();
      }
    }
    return m;
  }

  // Per-channel wire bytes, [from][to].
  std::vector<std::vector<uint64_t>> BytesMatrix() const {
    std::vector<std::vector<uint64_t>> m(
        num_processors_, std::vector<uint64_t>(num_processors_, 0));
    for (int i = 0; i < num_processors_; ++i) {
      for (int j = 0; j < num_processors_; ++j) {
        m[i][j] = channel(i, j).total_bytes();
      }
    }
    return m;
  }

 private:
  int num_processors_;
  std::vector<Channel> channels_;
};

}  // namespace pdatalog

#endif  // PDATALOG_CORE_CHANNEL_H_
