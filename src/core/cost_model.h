// BSP-style cost model over the workers' per-round logs: the
// quantitative performance study the paper defers to future work
// (Section 8, "computation cost as opposed to communication cost").
//
// The asynchronous execution is replayed as bulk-synchronous supersteps
// aligned by round index: in superstep k, every processor performs its
// round-k firings and absorbs its round-k receives, then all processors
// barrier. The makespan is
//
//   sum_k ( max_i (firings_{i,k} * cpu + received_{i,k} * net) + latency )
//
// This upper-bounds the asynchronous schedule (which never waits at a
// barrier) while preserving the data dependencies between rounds, and
// lets benches sweep the comm/compute cost ratio to locate the scheme
// crossovers a compiler targeting a concrete architecture would use.
#ifndef PDATALOG_CORE_COST_MODEL_H_
#define PDATALOG_CORE_COST_MODEL_H_

#include <vector>

#include "core/worker.h"

namespace pdatalog {

struct CostParams {
  double cpu_per_firing = 1.0;
  double net_per_message = 1.0;  // applies to cross-processor messages only
  double round_latency = 0.0;    // fixed barrier cost per superstep
};

struct CostBreakdown {
  double makespan = 0.0;
  double compute = 0.0;    // sum over supersteps of the max compute term
  double network = 0.0;    // sum over supersteps of the max network term
  int supersteps = 0;
};

// `rounds[i]` is worker i's log (rounds[i][k] = its k-th round; workers
// may have different round counts — missing rounds cost nothing).
// Self-channel messages are free: routing a tuple to yourself is not
// communication.
CostBreakdown BspCost(const std::vector<std::vector<RoundLog>>& rounds,
                      const CostParams& params);

// Forward-vs-replicate choice for one hot bucket (Section 6's
// redundancy <-> communication trade-off, applied locally by the skew
// rebalancer). Forwarding the bucket to the idlest worker ships roughly
// `bucket_tuples` messages and re-concentrates all of its work there;
// replicating instead (every sender keeps its share of the bucket
// local, kKeepLocalDest) splits the work across the senders and ships
// nothing, at the price of duplicate derivations where senders produce
// the same tuple.
//
// `headroom` is the load gap between the straggler and the idlest
// worker: forwarding improves the makespan only while the bucket fits
// into it (idlest + bucket < straggler). `spread_senders` counts the
// distinct producers of the bucket's tuples EXCLUDING the straggler —
// replication hands each producer its own share, so producers other
// than the straggler are the only ones that relieve it. Replication
// wins when there are at least two of them and either
//
//   * the bucket does not fit the headroom (forwarding would only
//     relocate the straggler), or
//   * the wire beats the redundancy:
//     bucket_tuples * net  >  bucket_tuples * (spread - 1) * cpu.
inline bool PreferReplication(uint64_t bucket_tuples, uint64_t headroom,
                              int spread_senders, double cpu_per_firing,
                              double net_per_message) {
  if (bucket_tuples == 0 || spread_senders < 2) return false;
  if (bucket_tuples > headroom) return true;
  return net_per_message >
         cpu_per_firing * static_cast<double>(spread_senders - 1);
}

}  // namespace pdatalog

#endif  // PDATALOG_CORE_COST_MODEL_H_
