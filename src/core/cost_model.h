// BSP-style cost model over the workers' per-round logs: the
// quantitative performance study the paper defers to future work
// (Section 8, "computation cost as opposed to communication cost").
//
// The asynchronous execution is replayed as bulk-synchronous supersteps
// aligned by round index: in superstep k, every processor performs its
// round-k firings and absorbs its round-k receives, then all processors
// barrier. The makespan is
//
//   sum_k ( max_i (firings_{i,k} * cpu + received_{i,k} * net) + latency )
//
// This upper-bounds the asynchronous schedule (which never waits at a
// barrier) while preserving the data dependencies between rounds, and
// lets benches sweep the comm/compute cost ratio to locate the scheme
// crossovers a compiler targeting a concrete architecture would use.
#ifndef PDATALOG_CORE_COST_MODEL_H_
#define PDATALOG_CORE_COST_MODEL_H_

#include <vector>

#include "core/worker.h"

namespace pdatalog {

struct CostParams {
  double cpu_per_firing = 1.0;
  double net_per_message = 1.0;  // applies to cross-processor messages only
  double round_latency = 0.0;    // fixed barrier cost per superstep
};

struct CostBreakdown {
  double makespan = 0.0;
  double compute = 0.0;    // sum over supersteps of the max compute term
  double network = 0.0;    // sum over supersteps of the max network term
  int supersteps = 0;
};

// `rounds[i]` is worker i's log (rounds[i][k] = its k-th round; workers
// may have different round counts — missing rounds cost nothing).
// Self-channel messages are free: routing a tuple to yourself is not
// communication.
CostBreakdown BspCost(const std::vector<std::vector<RoundLog>>& rounds,
                      const CostParams& params);

}  // namespace pdatalog

#endif  // PDATALOG_CORE_COST_MODEL_H_
